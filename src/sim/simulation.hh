/**
 * @file
 * Simulation: the top-level container that owns the event queue and
 * provides periodic-callback plumbing used by the scheduler tick,
 * the governor sampler, and the statistics samplers.
 */

#ifndef BIGLITTLE_SIM_SIMULATION_HH
#define BIGLITTLE_SIM_SIMULATION_HH

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/types.hh"
#include "sim/event.hh"
#include "sim/eventq.hh"

namespace biglittle
{

class RaceDetector;

/**
 * A repeating event: fires every @p period ticks and invokes a
 * callback until cancelled.  The callback receives the current tick.
 */
class PeriodicTask : public Event
{
  public:
    using Callback = std::function<void(Tick)>;

    PeriodicTask(EventQueue &queue, Tick period, Callback cb,
                 EventPriority prio, std::string label);

    /** Begin firing; first fire is at now + period + phase. */
    void start(Tick phase = 0);

    /** Stop firing (idempotent). */
    void cancel();

    /** Change the period; takes effect from the next fire. */
    void setPeriod(Tick period);

    Tick period() const { return periodTicks; }

    void process() override;
    std::string name() const override { return label; }

  private:
    EventQueue &eq;
    Tick periodTicks;
    Callback callback;
    std::string label;
};

/**
 * Owns the event queue and any periodic tasks created through it.
 * Modules keep references to the Simulation to read time and to
 * schedule their own events.
 */
class Simulation
{
  public:
    Simulation() = default;

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    /** Current simulated time. */
    Tick now() const { return queue.now(); }

    /** The underlying event queue. */
    EventQueue &eventQueue() { return queue; }

    /**
     * Create (and retain) a periodic task.  The returned reference
     * stays valid for the lifetime of the Simulation.
     */
    PeriodicTask &addPeriodic(Tick period, PeriodicTask::Callback cb,
                              EventPriority prio, const std::string &label);

    /** Schedule a one-shot callback at an absolute tick. */
    void at(Tick when, std::function<void()> fn,
            EventPriority prio = EventPriority::deferred,
            const std::string &label = "one-shot");

    /** Schedule a one-shot callback @p delay ticks from now. */
    void after(Tick delay, std::function<void()> fn,
               EventPriority prio = EventPriority::deferred,
               const std::string &label = "one-shot");

    /** Advance the simulation to @p until. */
    void runUntil(Tick until);

    /** Advance by @p delta ticks. */
    void runFor(Tick delta);

    /**
     * abrace access tracking (sim/abrace.hh).  Event handlers call
     * these to declare which state cell they touch; the calls are
     * near-free no-ops unless a RaceDetector is attached to the
     * event queue.  @p component is a stable instance name ("cpu0",
     * "big.domain"), @p field the logical member ("rq", "freq").
     */
    void noteRead(std::string_view component, std::string_view field);

    /** Declare a write of @p component's @p field.  @see noteRead */
    void noteWrite(std::string_view component, std::string_view field);

    /** The attached race detector, nullptr when detection is off. */
    RaceDetector *race() const { return queue.raceDetector(); }

  private:
    /** One-shot event that deletes itself after firing. */
    class OneShot : public Event
    {
      public:
        OneShot(std::function<void()> fn, EventPriority prio,
                std::string label);
        void process() override;
        void orphaned() override { delete this; }
        std::string name() const override { return label; }

      private:
        std::function<void()> fn;
        std::string label;
    };

    EventQueue queue;
    std::vector<std::unique_ptr<PeriodicTask>> periodics;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_SIMULATION_HH
