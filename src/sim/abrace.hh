/**
 * @file
 * abrace: the same-tick event race detector.
 *
 * The event queue's `(when, priority, sequence)` total order makes
 * every run deterministic, but the `sequence` tie-break is
 * *semantically arbitrary*: two events at the same `(tick, priority)`
 * fire in schedule order, and nothing in the model justifies that
 * order.  If their handlers touch the same state - one writes what
 * the other reads or writes - the simulation's outcome silently
 * depends on an ordering accident, which is exactly the
 * nondeterminism class that breaks checkpoint digests, trace replay,
 * and figure reproduction three PRs later.
 *
 * abrace surfaces that class at runtime, TSan-style.  Event handlers
 * (and the component methods they call) declare their state accesses
 * through `Simulation::noteRead()/noteWrite(component, field)`.  The
 * queue brackets every serviced event, so each access is charged to
 * the event being processed; after each same-`(tick, priority)` batch
 * drains, the detector intersects the access sets of every *unordered*
 * pair of events in the batch (an event scheduled during another
 * batch member's handler is causally ordered and exempt) and reports
 * write-write and read-write conflicts with both event identities,
 * the contested state cell, and schedule-site provenance.
 *
 * Suppression mirrors ablint: an inline `allow(eventA, eventB, cell)`
 * call for individually justified pairs (trailing-`*` globs
 * supported), plus a checked-in baseline file
 * (`tools/abrace/baseline.txt`, kept empty) of `eventA|eventB|cell`
 * lines for adopting the detector on a tree with known debt.
 *
 * The companion to detection is *proof*: EventQueue::setTieBreak()
 * reverses (lifo) or seeded-shuffles the service order within each
 * same-key batch.  A conflict whose permuted rerun changes the
 * checkpoint digest is a confirmed determinism bug, not a false
 * positive.  See docs/DETERMINISM.md for the workflow and the event
 * priority table that keeps cross-component handlers out of each
 * other's batches.
 */

#ifndef BIGLITTLE_SIM_ABRACE_HH
#define BIGLITTLE_SIM_ABRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"
#include "sim/eventq.hh"

namespace biglittle
{

class Event;

/** Runtime detector of same-(tick, priority) access conflicts. */
class RaceDetector
{
  public:
    /** One distinct (eventA, eventB, cell) conflict, with counts. */
    struct Conflict
    {
        Tick tick = 0; ///< first occurrence
        std::int32_t priority = 0;
        std::string eventA; ///< serviced first at the first occurrence
        std::string eventB;
        std::string cell; ///< "component/field"
        bool writeA = false; ///< access mode of each side ...
        bool writeB = false; ///< ... (false means read)
        std::string provenanceA; ///< schedule site of each event
        std::string provenanceB;
        std::uint64_t count = 1; ///< occurrences across the run

        /** Multi-line TSan-style report of this conflict. */
        std::string describe() const;

        /** Canonical `eventA|eventB|cell` baseline key (sorted). */
        std::string key() const;
    };

    RaceDetector() = default;

    RaceDetector(const RaceDetector &) = delete;
    RaceDetector &operator=(const RaceDetector &) = delete;

    // ---- access-tracking API (via Simulation::noteRead/noteWrite) --

    /** Charge a read of @p component's @p field to the current event. */
    void noteRead(std::string_view component, std::string_view field);

    /** Charge a write likewise.  A write dominates a prior read. */
    void noteWrite(std::string_view component, std::string_view field);

    // ---- suppression ----------------------------------------------

    /**
     * Inline allow: conflicts between events matching @p eventA and
     * @p eventB (either order) on cells matching @p cell are
     * suppressed.  Patterns are exact strings or trailing-`*` globs
     * (`"*"` matches everything).  Mirrors ablint's inline
     * `ablint:allow` - each call should be individually justified.
     */
    void allow(std::string_view eventA, std::string_view eventB,
               std::string_view cell);

    /**
     * Load a baseline file of `eventA|eventB|cell` suppression lines
     * (`#` comments, blank lines ignored).  The checked-in baseline
     * (tools/abrace/baseline.txt) is empty and must stay that way -
     * new conflicts get fixed (distinct priorities) or inline-allowed
     * with a reason, exactly like ablint's baseline discipline.
     */
    [[nodiscard]] Status loadBaseline(const std::string &path);

    /** Parse baseline text directly (filesystem-free, for tests). */
    void loadBaselineText(const std::string &text);

    // ---- event queue integration ----------------------------------

    /** Called by EventQueue::schedule: records provenance. */
    void onScheduled(const Event &event, Tick now);

    /** Called by EventQueue::deschedule: drops provenance. */
    void onDescheduled(const Event &event);

    /** Called before an event processes; flushes a finished batch. */
    void beginEvent(const ServicedEvent &event);

    /** Called after the event's process() returns. */
    void endEvent();

    /** Analyze the still-open batch (call once at end of run). */
    void finish();

    // ---- results --------------------------------------------------

    /** Distinct unsuppressed conflicts, in first-occurrence order. */
    const std::vector<Conflict> &conflicts() const { return found; }

    /** Conflict occurrences swallowed by allow()/baseline rules. */
    std::uint64_t suppressedCount() const { return suppressed; }

    /** Same-key batches with more than one event that were analyzed. */
    std::uint64_t batchesAnalyzed() const { return batches; }

    /** Events that recorded at least one access. */
    std::uint64_t eventsTracked() const { return tracked; }

    /** Full human-readable report (empty string when clean). */
    std::string report() const;

  private:
    struct Access
    {
        bool read = false;
        bool write = false;
    };

    /** One serviced event of the open batch, with its access set. */
    struct Record
    {
        std::string name;
        std::uint64_t sequence = 0;
        std::string provenance;
        std::map<std::string, Access, std::less<>> cells;
    };

    struct AllowRule
    {
        std::string a;
        std::string b;
        std::string cell;
    };

    void note(std::string_view component, std::string_view field,
              bool write);
    void analyzeBatch();
    bool isAncestor(std::uint64_t ancestorSeq,
                    std::uint64_t seq) const;
    bool allowed(const std::string &a, const std::string &b,
                 const std::string &cell) const;

    // Open batch state.
    bool batchOpen = false;
    Tick batchTick = 0;
    std::int32_t batchPriority = 0;
    std::vector<Record> batch; ///< members that recorded accesses
    /** sequence -> parent sequence, for every batch member. */
    std::map<std::uint64_t, std::uint64_t> batchParent;

    // Currently processing event (valid between begin/endEvent).
    bool inEvent = false;
    Record current;

    // Pending (scheduled, not yet serviced) event provenance.
    std::map<std::uint64_t, std::string> pendingProvenance;
    std::map<std::uint64_t, std::uint64_t> pendingParent;

    std::vector<AllowRule> allowRules;

    std::vector<Conflict> found;
    std::map<std::string, std::size_t> foundIndex; ///< dedup by key
    std::uint64_t suppressed = 0;
    std::uint64_t batches = 0;
    std::uint64_t tracked = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_ABRACE_HH
