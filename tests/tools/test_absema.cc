/**
 * @file
 * absema's test suite: golden tests for the entity-model parser
 * (templates, nested classes, macros, default member initializers,
 * out-of-line definitions, ctor init-lists), positive and negative
 * coverage for every semantic rule (serialize-coverage, schema-drift,
 * fatal-reach, rng-stream, layer-cycle, stale-allow), the manifest
 * round-trip and the --write-schema refusal guard, and the CI output
 * formats.  The headline acceptance test: adding a field to a
 * serialized class without a checkpointVersion bump fires BOTH
 * serialize-coverage and schema-drift.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ablint/ablint.hh"
#include "ablint/model.hh"

namespace ablint = biglittle::ablint;

namespace
{

ablint::ScanInput
input(const std::vector<std::pair<std::string, std::string>> &files,
      const std::string &registryText = "",
      const std::string &schemaText = "")
{
    ablint::ScanInput in;
    for (const auto &[path, text] : files)
        in.files.push_back(ablint::lexString(path, text));
    in.registryText = registryText;
    in.schemaText = schemaText;
    return in;
}

std::vector<ablint::Finding>
ofRule(const std::vector<ablint::Finding> &findings,
       const std::string &rule)
{
    std::vector<ablint::Finding> out;
    for (const auto &f : findings)
        if (f.rule == rule)
            out.push_back(f);
    return out;
}

const ablint::ClassInfo *
classNamed(const ablint::Model &m, const std::string &qualName)
{
    for (const auto &c : m.classes)
        if (c.qualName == qualName)
            return &c;
    return nullptr;
}

const ablint::FunctionDef *
fnNamed(const ablint::Model &m, const std::string &qualName)
{
    for (const auto &f : m.functions)
        if (f.qualName == qualName)
            return &f;
    return nullptr;
}

bool
callsName(const ablint::FunctionDef &fn, const std::string &name)
{
    for (const auto &c : fn.calls)
        if (c == name)
            return true;
    return false;
}

/* ------------------------------------------------------------------ */
/* model parser goldens                                                */
/* ------------------------------------------------------------------ */

TEST(AbsemaModel, MembersWithTypesLinesAndInitializers)
{
    const auto in = input({{"src/sim/box.hh",
                            "class Box\n"
                            "{\n"
                            "    std::uint64_t id = 0;\n"
                            "    double load{0.5};\n"
                            "    int grid[4];\n"
                            "    static int liveCount;\n"
                            "    constexpr static int maxId = 9;\n"
                            "};\n"}});
    const auto m = ablint::buildModel(in.files);
    const auto *box = classNamed(m, "Box");
    ASSERT_NE(box, nullptr);
    ASSERT_EQ(box->members.size(), 5u);

    EXPECT_EQ(box->members[0].name, "id");
    EXPECT_NE(box->members[0].type.find("uint64_t"),
              std::string::npos);
    // Initializer is not part of the declared type.
    EXPECT_EQ(box->members[0].type.find("0"), std::string::npos);
    EXPECT_EQ(box->members[0].line, 3);
    EXPECT_FALSE(box->members[0].isStatic);

    EXPECT_EQ(box->members[1].name, "load");
    EXPECT_EQ(box->members[1].line, 4);

    EXPECT_EQ(box->members[2].name, "grid");

    EXPECT_TRUE(box->members[3].isStatic);
    EXPECT_TRUE(box->members[4].isStatic);
}

TEST(AbsemaModel, NestedClassesGetQualifiedNames)
{
    const auto in = input({{"src/sim/outer.hh",
                            "namespace biglittle {\n"
                            "class Outer\n"
                            "{\n"
                            "    struct Inner\n"
                            "    {\n"
                            "        int depth;\n"
                            "    };\n"
                            "    Inner inner;\n"
                            "};\n"
                            "} // namespace biglittle\n"}});
    const auto m = ablint::buildModel(in.files);
    const auto *inner = classNamed(m, "Outer::Inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->name, "Inner");
    ASSERT_EQ(inner->members.size(), 1u);
    EXPECT_EQ(inner->members[0].name, "depth");
    const auto *outer = classNamed(m, "Outer");
    ASSERT_NE(outer, nullptr);
    ASSERT_EQ(outer->members.size(), 1u);
    EXPECT_EQ(outer->members[0].name, "inner");
    // findClass resolves both exact and last-component lookups.
    EXPECT_EQ(m.findClass("Outer::Inner"), inner);
    EXPECT_EQ(m.findClass("Inner"), inner);
}

TEST(AbsemaModel, TemplatesParse)
{
    const auto in = input(
        {{"src/base/holder.hh",
          "template <typename T, int N>\n"
          "struct Holder\n"
          "{\n"
          "    T value;\n"
          "    std::array<T, N> history;\n"
          "    void push(const T &v) { record(v); }\n"
          "};\n"}});
    const auto m = ablint::buildModel(in.files);
    const auto *h = classNamed(m, "Holder");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->members.size(), 2u);
    EXPECT_EQ(h->members[0].name, "value");
    EXPECT_EQ(h->members[1].name, "history");
    const auto *push = fnNamed(m, "Holder::push");
    ASSERT_NE(push, nullptr);
    EXPECT_TRUE(callsName(*push, "record"));
}

TEST(AbsemaModel, MacroDirectivesAreSkipped)
{
    const auto in = input(
        {{"src/base/macros.hh",
          "#define MAKE_COUNTER(name) \\\n"
          "    int name = 0; \\\n"
          "    void bump_##name() { ++name; }\n"
          "#include \"base/logging.hh\"\n"
          "class Counted\n"
          "{\n"
          "    int real;\n"
          "};\n"}});
    const auto m = ablint::buildModel(in.files);
    // The #define body (including its continuation lines) must not
    // leak members or functions into the model.
    const auto *c = classNamed(m, "Counted");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->members.size(), 1u);
    EXPECT_EQ(c->members[0].name, "real");
    // ...but the #include on the way past is harvested.
    ASSERT_EQ(m.includes.size(), 1u);
    EXPECT_EQ(m.includes[0].target, "base/logging.hh");
    EXPECT_EQ(m.includes[0].line, 4);
}

TEST(AbsemaModel, OutOfLineDefinitionsAndCalls)
{
    const auto in = input(
        {{"src/sched/task.cc",
          "void Task::tick(Tick now)\n"
          "{\n"
          "    accounting.charge(now);\n"
          "    reschedule();\n"
          "}\n"
          "int freeHelper() { return compute(); }\n"}});
    const auto m = ablint::buildModel(in.files);
    const auto *tick = fnNamed(m, "Task::tick");
    ASSERT_NE(tick, nullptr);
    EXPECT_EQ(tick->name, "tick");
    EXPECT_EQ(tick->line, 1);
    EXPECT_TRUE(callsName(*tick, "charge"));
    EXPECT_TRUE(callsName(*tick, "reschedule"));
    const auto *helper = fnNamed(m, "freeHelper");
    ASSERT_NE(helper, nullptr);
    EXPECT_TRUE(callsName(*helper, "compute"));
}

TEST(AbsemaModel, CtorInitListsAndTrailingConstBodies)
{
    // Regression: a ctor init-list's braced initializers, and the
    // `const` before a method body's '{', must not displace the real
    // body (the early parser ate `... const { ... }` definitions).
    const auto in = input(
        {{"src/sim/w.hh",
          "class W\n"
          "{\n"
          "  public:\n"
          "    W() : a(1), b{2} { setup(); }\n"
          "    void go() const { run(); }\n"
          "  private:\n"
          "    int a;\n"
          "    int b;\n"
          "};\n"
          "void W::stop() const { halt(); }\n"}});
    const auto m = ablint::buildModel(in.files);
    const auto *ctor = fnNamed(m, "W::W");
    ASSERT_NE(ctor, nullptr);
    EXPECT_TRUE(callsName(*ctor, "setup"));
    const auto *go = fnNamed(m, "W::go");
    ASSERT_NE(go, nullptr);
    EXPECT_TRUE(callsName(*go, "run"));
    const auto *stop = fnNamed(m, "W::stop");
    ASSERT_NE(stop, nullptr);
    EXPECT_TRUE(callsName(*stop, "halt"));
    const auto *w = classNamed(m, "W");
    ASSERT_NE(w, nullptr);
    ASSERT_EQ(w->members.size(), 2u);
}

/* ------------------------------------------------------------------ */
/* serialize-coverage                                                  */
/* ------------------------------------------------------------------ */

const char *const boxSource =
    "class Box\n"
    "{\n"
    "  public:\n"
    "    void serialize(Serializer &s) const\n"
    "    {\n"
    "        s.putU64(id);\n"
    "        s.putDouble(load);\n"
    "    }\n"
    "    void deserialize(Deserializer &d)\n"
    "    {\n"
    "        id = d.getU64();\n"
    "        load = d.getDouble();\n"
    "    }\n"
    "  private:\n"
    "    std::uint64_t id = 0;\n"
    "    double load = 0.0;\n"
    "};\n";

const char *const checkpointSource =
    "constexpr int checkpointVersion = 2;\n";

TEST(AbsemaSerializeCoverage, CoveredClassIsClean)
{
    const auto in =
        input({{"src/sim/box.hh", boxSource}}, "Box runtime\n");
    const auto findings = ablint::runSemaRules(in);
    EXPECT_TRUE(ofRule(findings, "serialize-coverage").empty());
}

TEST(AbsemaSerializeCoverage, UncoveredMemberIsFlagged)
{
    std::string src = boxSource;
    src.insert(src.find("  private:") + 11,
               "    int forgotten = 0;\n");
    const auto in =
        input({{"src/sim/box.hh", src}}, "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "serialize-coverage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("forgotten"), std::string::npos);
    EXPECT_EQ(hits[0].line, 15); // the member's own line
}

TEST(AbsemaSerializeCoverage, WriteOnlyMemberIsFlagged)
{
    // Written by serialize() but never read back: the message calls
    // out the asymmetric side.
    const auto in = input(
        {{"src/sim/box.hh",
          "class Box\n"
          "{\n"
          "    void serialize(Serializer &s) const\n"
          "    { s.putU64(id); }\n"
          "    void deserialize(Deserializer &d) { (void)d; }\n"
          "    std::uint64_t id = 0;\n"
          "};\n"}},
        "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "serialize-coverage");
    ASSERT_GE(hits.size(), 1u);
    bool sawMember = false;
    for (const auto &h : hits)
        if (h.message.find("never read back") != std::string::npos)
            sawMember = true;
    EXPECT_TRUE(sawMember);
}

TEST(AbsemaSerializeCoverage, WireOrderMismatchIsFlagged)
{
    const auto in = input(
        {{"src/sim/box.hh",
          "class Box\n"
          "{\n"
          "    void serialize(Serializer &s) const\n"
          "    {\n"
          "        s.putU64(id);\n"
          "        s.putDouble(load);\n"
          "    }\n"
          "    void deserialize(Deserializer &d)\n"
          "    {\n"
          "        load = d.getDouble();\n"
          "        id = d.getU64();\n"
          "    }\n"
          "    std::uint64_t id = 0;\n"
          "    double load = 0.0;\n"
          "};\n"}},
        "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "serialize-coverage");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("wire-format mismatch"),
              std::string::npos);
    EXPECT_NE(hits[0].message.find("putU64"), std::string::npos);
    EXPECT_NE(hits[0].message.find("getDouble"), std::string::npos);
}

TEST(AbsemaSerializeCoverage, GetCountPairsWithPutU64)
{
    // The Serializer contract: getCount() reads what putU64() wrote.
    const auto in = input(
        {{"src/sim/box.hh",
          "class Box\n"
          "{\n"
          "    void serialize(Serializer &s) const\n"
          "    { s.putU64(items.size()); }\n"
          "    void deserialize(Deserializer &d)\n"
          "    { items.resize(d.getCount(8)); }\n"
          "    std::vector<std::uint64_t> items;\n"
          "};\n"}},
        "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "serialize-coverage");
    EXPECT_TRUE(hits.empty());
}

TEST(AbsemaSerializeCoverage, ExemptMembersAndInlineAllow)
{
    const auto in = input(
        {{"src/sim/box.hh",
          "class Box\n"
          "{\n"
          "    void serialize(Serializer &s) const\n"
          "    { s.putU64(id); }\n"
          "    void deserialize(Deserializer &d)\n"
          "    { id = d.getU64(); }\n"
          "    std::uint64_t id = 0;\n"
          "    Sim *sim;\n"                // pointer: wiring
          "    const int lanes = 4;\n"     // const: config
          "    BoxParams params;\n"        // *Params: config struct
          "    std::function<void()> cb;\n" // callback
          "    // ablint:allow(serialize-coverage): diagnostic only\n"
          "    std::uint64_t dropCount = 0;\n"
          "};\n"}},
        "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "serialize-coverage");
    EXPECT_TRUE(hits.empty());
}

TEST(AbsemaSerializeCoverage, SplitAcrossFlavorPairs)
{
    // Base/derived split: serializeState covers what serialize does
    // not; coverage is the union across flavor pairs.
    const auto in = input(
        {{"src/sim/box.hh",
          "class Box\n"
          "{\n"
          "    void serialize(Serializer &s) const\n"
          "    { s.putU64(id); }\n"
          "    void deserialize(Deserializer &d)\n"
          "    { id = d.getU64(); }\n"
          "    void serializeState(Serializer &s) const\n"
          "    { s.putDouble(load); }\n"
          "    void deserializeState(Deserializer &d)\n"
          "    { load = d.getDouble(); }\n"
          "    std::uint64_t id = 0;\n"
          "    double load = 0.0;\n"
          "};\n"}},
        "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "serialize-coverage");
    EXPECT_TRUE(hits.empty());
}

/* ------------------------------------------------------------------ */
/* schema-drift                                                        */
/* ------------------------------------------------------------------ */

TEST(AbsemaSchemaDrift, ManifestRoundTripIsClean)
{
    auto in = input({{"src/sim/box.hh", boxSource},
                     {"src/snapshot/checkpoint.hh",
                      checkpointSource}},
                    "Box runtime\n");
    const std::string manifest = ablint::renderSchemaManifest(in);
    EXPECT_NE(manifest.find("version 2"), std::string::npos);
    EXPECT_NE(manifest.find("Box "), std::string::npos);
    in.schemaText = manifest;
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "schema-drift").empty());
}

TEST(AbsemaSchemaDrift, MissingManifestIsFlagged)
{
    const auto in = input({{"src/sim/box.hh", boxSource},
                           {"src/snapshot/checkpoint.hh",
                            checkpointSource}},
                          "Box runtime\n");
    const auto hits =
        ofRule(ablint::runSemaRules(in), "schema-drift");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "tools/ablint/state_schema.txt");
    EXPECT_NE(hits[0].message.find("--write-schema"),
              std::string::npos);
}

TEST(AbsemaSchemaDrift, AddedFieldFiresBothRules)
{
    // The acceptance scenario: a field is added to a serialized
    // class without serializing it or bumping checkpointVersion.
    // serialize-coverage catches the missing wire traffic AND
    // schema-drift catches the digest change against the committed
    // manifest.
    auto clean = input({{"src/sim/box.hh", boxSource},
                        {"src/snapshot/checkpoint.hh",
                         checkpointSource}},
                       "Box runtime\n");
    const std::string manifest = ablint::renderSchemaManifest(clean);

    std::string mutated = boxSource;
    mutated.insert(mutated.find("  private:") + 11,
                   "    int addedField = 0;\n");
    auto in = input({{"src/sim/box.hh", mutated},
                     {"src/snapshot/checkpoint.hh",
                      checkpointSource}},
                    "Box runtime\n", manifest);
    const auto findings = ablint::runSemaRules(in);
    const auto coverage = ofRule(findings, "serialize-coverage");
    const auto drift = ofRule(findings, "schema-drift");
    ASSERT_EQ(coverage.size(), 1u);
    EXPECT_NE(coverage[0].message.find("addedField"),
              std::string::npos);
    ASSERT_EQ(drift.size(), 1u);
    EXPECT_NE(drift[0].message.find("checkpointVersion bump"),
              std::string::npos);
}

TEST(AbsemaSchemaDrift, VersionBumpChangesTheStory)
{
    // Same mutation, but checkpointVersion was bumped: the only
    // schema-drift finding is "manifest stale, regenerate" at the
    // manifest's version line, and --write-schema is permitted.
    auto clean = input({{"src/sim/box.hh", boxSource},
                        {"src/snapshot/checkpoint.hh",
                         checkpointSource}},
                       "Box runtime\n");
    const std::string manifest = ablint::renderSchemaManifest(clean);

    std::string mutated = boxSource;
    mutated.insert(mutated.find("  private:") + 11,
                   "    int addedField = 0;\n");
    auto in = input({{"src/sim/box.hh", mutated},
                     {"src/snapshot/checkpoint.hh",
                      "constexpr int checkpointVersion = 3;\n"}},
                    "Box runtime\n", manifest);
    const auto drift =
        ofRule(ablint::runSemaRules(in), "schema-drift");
    ASSERT_EQ(drift.size(), 1u);
    EXPECT_EQ(drift[0].file, "tools/ablint/state_schema.txt");
    EXPECT_NE(drift[0].message.find("rerun `ablint --write-schema`"),
              std::string::npos);
    EXPECT_EQ(ablint::schemaRegenBlocked(in), "");
}

TEST(AbsemaSchemaDrift, RegenBlockedWithoutVersionBump)
{
    auto clean = input({{"src/sim/box.hh", boxSource},
                        {"src/snapshot/checkpoint.hh",
                         checkpointSource}},
                       "Box runtime\n");
    const std::string manifest = ablint::renderSchemaManifest(clean);

    // First generation (no manifest yet) is always permitted.
    EXPECT_EQ(ablint::schemaRegenBlocked(clean), "");

    std::string mutated = boxSource;
    mutated.insert(mutated.find("  private:") + 11,
                   "    int addedField = 0;\n");
    auto in = input({{"src/sim/box.hh", mutated},
                     {"src/snapshot/checkpoint.hh",
                      checkpointSource}},
                    "Box runtime\n", manifest);
    const std::string blocked = ablint::schemaRegenBlocked(in);
    EXPECT_NE(blocked.find("Box"), std::string::npos);
    EXPECT_NE(blocked.find("bump checkpointVersion"),
              std::string::npos);
}

TEST(AbsemaSchemaDrift, AllowedMemberLeavesTheDigest)
{
    // An inline serialize-coverage allow removes the member from the
    // wire contract, so the digest (and manifest) stay unchanged.
    auto clean = input({{"src/sim/box.hh", boxSource},
                        {"src/snapshot/checkpoint.hh",
                         checkpointSource}},
                       "Box runtime\n");
    const std::string manifest = ablint::renderSchemaManifest(clean);

    std::string mutated = boxSource;
    mutated.insert(
        mutated.find("  private:") + 11,
        "    // ablint:allow(serialize-coverage): diagnostic only\n"
        "    int probeCount = 0;\n");
    auto in = input({{"src/sim/box.hh", mutated},
                     {"src/snapshot/checkpoint.hh",
                      checkpointSource}},
                    "Box runtime\n", manifest);
    const auto findings = ablint::runSemaRules(in);
    EXPECT_TRUE(ofRule(findings, "serialize-coverage").empty());
    EXPECT_TRUE(ofRule(findings, "schema-drift").empty());
}

TEST(AbsemaSchemaDrift, StaleManifestEntryIsFlagged)
{
    auto in = input({{"src/sim/box.hh", boxSource},
                     {"src/snapshot/checkpoint.hh",
                      checkpointSource}},
                    "Box runtime\n");
    std::string manifest = ablint::renderSchemaManifest(in);
    manifest += "GhostClass 0123456789abcdef\n";
    in.schemaText = manifest;
    const auto drift =
        ofRule(ablint::runSemaRules(in), "schema-drift");
    ASSERT_EQ(drift.size(), 1u);
    EXPECT_NE(drift[0].message.find("GhostClass"),
              std::string::npos);
    EXPECT_NE(drift[0].message.find("stale"), std::string::npos);
}

/* ------------------------------------------------------------------ */
/* fatal-reach                                                         */
/* ------------------------------------------------------------------ */

TEST(AbsemaFatalReach, ReachableFatalIsFlaggedWithChain)
{
    const auto in = input(
        {{"src/core/experiment.cc",
          "void Experiment::runApp()\n"
          "{\n"
          "    stepAll();\n"
          "}\n"
          "void stepAll()\n"
          "{\n"
          "    applyConfig();\n"
          "}\n"
          "void applyConfig()\n"
          "{\n"
          "    fatal(\"bad config\");\n"
          "}\n"}});
    const auto hits =
        ofRule(ablint::runSemaRules(in), "fatal-reach");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 11);
    EXPECT_NE(
        hits[0].message.find(
            "Experiment::runApp -> stepAll -> applyConfig"),
        std::string::npos);
}

TEST(AbsemaFatalReach, UnreachableAndAllowlistedAreClean)
{
    const auto in = input(
        {{"src/core/experiment.cc",
          "void Experiment::runApp() { step(); }\n"
          "void step() { work(); }\n"
          "void work() { }\n"
          // fatal() only reachable from init, not from runApp:
          "void Experiment::init() { validate(); }\n"
          "void validate() { fatal(\"pre-run\"); }\n"},
         // Allowlisted module: fatal() is its documented contract.
         {"src/workload/apps.cc",
          "void Experiment::runApp() { lookup(); }\n"
          "void lookup() { fatal(\"unknown app\"); }\n"}});
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "fatal-reach").empty());
}

TEST(AbsemaFatalReach, PostInitFatalAllowCoversReachability)
{
    const auto in = input(
        {{"src/core/experiment.cc",
          "void Experiment::runApp() { go(); }\n"
          "void go()\n"
          "{\n"
          "    // ablint:allow(post-init-fatal): corrupted snapshot\n"
          "    fatal(\"unrecoverable\");\n"
          "}\n"}});
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "fatal-reach").empty());
}

/* ------------------------------------------------------------------ */
/* rng-stream                                                          */
/* ------------------------------------------------------------------ */

TEST(AbsemaRngStream, AdHocSeedIsFlagged)
{
    const auto in = input(
        {{"src/sim/a.cc", "Rng jitter(42);\n"},
         {"src/sim/b.cc", "auto r = Rng{userSeed};\n"}});
    const auto hits =
        ofRule(ablint::runSemaRules(in), "rng-stream");
    EXPECT_EQ(hits.size(), 2u);
}

TEST(AbsemaRngStream, BlessedDerivationsAreClean)
{
    const auto in = input(
        {{"src/sim/a.cc",
          "Rng a(deriveStreamSeed(master, \"sched\"));\n"
          "Rng b(parent.fork());\n"
          "Rng c = namedStream(master, \"gov\");\n"
          "auto seed = deriveStreamSeed(master, \"app\");\n"
          "Rng d(seed);\n"   // single-ident arg traces to blessed
          "Rng e;\n"         // default-constructed: no seed chosen
          "void take(Rng &r);\n"}});
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "rng-stream").empty());
}

TEST(AbsemaRngStream, TestFilesAndRngModuleAreExempt)
{
    const auto in = input(
        {{"tests/sim/test_a.cc", "Rng fixed(7);\n"},
         {"src/base/random.cc", "Rng seeded(0x9e3779b9);\n"}});
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "rng-stream").empty());
}

TEST(AbsemaRngStream, InlineAllowSuppresses)
{
    const auto in = input(
        {{"src/sim/a.cc",
          "// ablint:allow(rng-stream): fixed tie-break stream\n"
          "Rng tieRng{1};\n"}});
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "rng-stream").empty());
}

/* ------------------------------------------------------------------ */
/* layer-cycle                                                         */
/* ------------------------------------------------------------------ */

TEST(AbsemaLayerCycle, BackEdgeIsFlagged)
{
    const auto in = input(
        {{"src/base/util.hh", "#include \"sched/hmp.hh\"\n"}});
    const auto hits =
        ofRule(ablint::runSemaRules(in), "layer-cycle");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 1);
    EXPECT_NE(hits[0].message.find("back-edge"), std::string::npos);
}

TEST(AbsemaLayerCycle, DownwardIncludesAreClean)
{
    const auto in = input(
        {{"src/sched/hmp.hh",
          "#include \"base/logging.hh\"\n"
          "#include \"platform/core.hh\"\n"
          "#include \"sched/load.hh\"\n"},
         {"src/sched/load.hh", "#include \"sim/engine.hh\"\n"}});
    EXPECT_TRUE(
        ofRule(ablint::runSemaRules(in), "layer-cycle").empty());
}

TEST(AbsemaLayerCycle, SameLayerCycleIsFlagged)
{
    // Rank-legal (same directory) but still a file-level cycle.
    const auto in = input(
        {{"src/sched/a.hh", "#include \"sched/b.hh\"\n"},
         {"src/sched/b.hh", "#include \"sched/a.hh\"\n"}});
    const auto hits =
        ofRule(ablint::runSemaRules(in), "layer-cycle");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("include cycle"),
              std::string::npos);
    EXPECT_NE(hits[0].message.find("src/sched/a.hh"),
              std::string::npos);
    EXPECT_NE(hits[0].message.find("src/sched/b.hh"),
              std::string::npos);
}

/* ------------------------------------------------------------------ */
/* stale-allow                                                         */
/* ------------------------------------------------------------------ */

TEST(AbsemaStaleAllow, UnusedDirectiveIsFlagged)
{
    const auto in = input(
        {{"src/sim/a.cc",
          "// ablint:allow(wall-clock): leftover from a refactor\n"
          "int x = 0;\n"}});
    const auto hits =
        ofRule(ablint::runAllRules(in), "stale-allow");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 1);
    EXPECT_NE(hits[0].message.find("suppresses nothing"),
              std::string::npos);
}

TEST(AbsemaStaleAllow, UnknownRuleNameIsFlagged)
{
    const auto in = input(
        {{"src/sim/a.cc",
          "// ablint:allow(no-such-rule): typo\n"
          "int x = 0;\n"}});
    const auto hits =
        ofRule(ablint::runAllRules(in), "stale-allow");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_NE(hits[0].message.find("unknown rule"),
              std::string::npos);
}

TEST(AbsemaStaleAllow, UsedDirectivesAreClean)
{
    // One lexical suppression (wall-clock) and one semantic
    // suppression (rng-stream): both passes feed the same ledger.
    const auto in = input(
        {{"src/sim/a.cc",
          "// ablint:allow(wall-clock): entropy for the demo\n"
          "int t = rand();\n"
          "// ablint:allow(rng-stream): fixed tie-break stream\n"
          "Rng tieRng{1};\n"}});
    const auto findings = ablint::runAllRules(in);
    EXPECT_TRUE(ofRule(findings, "stale-allow").empty());
    EXPECT_TRUE(ofRule(findings, "wall-clock").empty());
    EXPECT_TRUE(ofRule(findings, "rng-stream").empty());
}

/* ------------------------------------------------------------------ */
/* output formats                                                      */
/* ------------------------------------------------------------------ */

TEST(AbsemaFormats, GithubAnnotationEscapes)
{
    const ablint::Finding f{"src/sim/a.cc", 7, "rng-stream",
                            "50% bad: a,b\nnext"};
    EXPECT_EQ(f.formatGithub(),
              "::error file=src/sim/a.cc,line=7,"
              "title=ablint rng-stream"
              "::50%25 bad: a,b%0Anext");
}

TEST(AbsemaFormats, JsonObjectEscapes)
{
    const ablint::Finding f{"src/sim/a.cc", 7, "rng-stream",
                            "say \"hi\"\\\n"};
    EXPECT_EQ(f.formatJson(),
              "{\"file\":\"src/sim/a.cc\",\"line\":7,"
              "\"rule\":\"rng-stream\","
              "\"message\":\"say \\\"hi\\\"\\\\\\n\"}");
}

} // namespace
