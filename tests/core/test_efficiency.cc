/**
 * @file
 * Tests for the Table V efficiency decomposition: category
 * boundaries, the "min" little-at-minimum rule, and the "full"
 * big-at-max rule.
 */

#include <gtest/gtest.h>

#include "core/efficiency.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class EfficiencyTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    EfficiencyAnalyzer analyzer{sim, plat, msToTicks(10)};

    /** Run @p windows windows with core busy @p util of each. */
    void
    runWindows(Core &core, double util, int windows)
    {
        const Tick busy = static_cast<Tick>(util * msToTicks(10));
        for (int i = 0; i < windows; ++i) {
            if (busy > 0) {
                core.setBusy(true);
                sim.runFor(busy);
                core.setBusy(false);
            }
            sim.runFor(msToTicks(10) - busy);
        }
    }
};

} // namespace

TEST_F(EfficiencyTest, NoExecutionMeansEmptyReport)
{
    analyzer.start();
    sim.runFor(msToTicks(200));
    const EfficiencyReport r = analyzer.report();
    EXPECT_EQ(r.executionWindows, 0u);
    EXPECT_DOUBLE_EQ(r.minPct, 0.0);
}

TEST_F(EfficiencyTest, LittleAtMinLowUtilIsMin)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    analyzer.start();
    runWindows(plat.littleCluster().core(0), 0.3, 10);
    const EfficiencyReport r = analyzer.report();
    EXPECT_EQ(r.executionWindows, 10u);
    EXPECT_DOUBLE_EQ(r.minPct, 100.0);
}

TEST_F(EfficiencyTest, LittleAboveMinLowUtilIsBelow50)
{
    plat.littleCluster().freqDomain().setFreqNow(800000);
    analyzer.start();
    runWindows(plat.littleCluster().core(0), 0.3, 10);
    const EfficiencyReport r = analyzer.report();
    EXPECT_DOUBLE_EQ(r.below50Pct, 100.0);
    EXPECT_DOUBLE_EQ(r.minPct, 0.0);
}

TEST_F(EfficiencyTest, BigLowUtilIsBelow50NotMin)
{
    plat.bigCluster().freqDomain().setFreqNow(800000);
    analyzer.start();
    runWindows(plat.bigCluster().core(0), 0.3, 10);
    const EfficiencyReport r = analyzer.report();
    EXPECT_DOUBLE_EQ(r.below50Pct, 100.0);
    EXPECT_DOUBLE_EQ(r.minPct, 0.0);
}

TEST_F(EfficiencyTest, MidUtilizationBuckets)
{
    plat.littleCluster().freqDomain().setFreqNow(800000);
    analyzer.start();
    runWindows(plat.littleCluster().core(0), 0.6, 5);
    runWindows(plat.littleCluster().core(0), 0.8, 5);
    const EfficiencyReport r = analyzer.report();
    EXPECT_DOUBLE_EQ(r.from50to70Pct, 50.0);
    EXPECT_DOUBLE_EQ(r.from70to95Pct, 50.0);
}

TEST_F(EfficiencyTest, FullRequiresBigAtMaxSaturated)
{
    plat.bigCluster().freqDomain().setFreqNow(1900000);
    analyzer.start();
    plat.bigCluster().core(0).setBusy(true);
    sim.runFor(msToTicks(100));
    plat.bigCluster().core(0).setBusy(false);
    const EfficiencyReport r = analyzer.report();
    EXPECT_DOUBLE_EQ(r.fullPct, 100.0);
}

TEST_F(EfficiencyTest, SaturatedBigBelowMaxIsAbove95)
{
    plat.bigCluster().freqDomain().setFreqNow(1300000);
    analyzer.start();
    plat.bigCluster().core(0).setBusy(true);
    sim.runFor(msToTicks(100));
    plat.bigCluster().core(0).setBusy(false);
    const EfficiencyReport r = analyzer.report();
    EXPECT_DOUBLE_EQ(r.above95Pct, 100.0);
    EXPECT_DOUBLE_EQ(r.fullPct, 0.0);
}

TEST_F(EfficiencyTest, SaturatedLittleAtMaxIsAbove95NotFull)
{
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    analyzer.start();
    plat.littleCluster().core(0).setBusy(true);
    sim.runFor(msToTicks(100));
    plat.littleCluster().core(0).setBusy(false);
    const EfficiencyReport r = analyzer.report();
    EXPECT_DOUBLE_EQ(r.above95Pct, 100.0);
    EXPECT_DOUBLE_EQ(r.fullPct, 0.0);
}

TEST_F(EfficiencyTest, CategoriesSumToHundred)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    analyzer.start();
    runWindows(plat.littleCluster().core(0), 0.2, 3);
    runWindows(plat.littleCluster().core(1), 0.6, 3);
    plat.bigCluster().freqDomain().setFreqNow(1900000);
    runWindows(plat.bigCluster().core(0), 1.0, 3);
    const EfficiencyReport r = analyzer.report();
    EXPECT_NEAR(r.minPct + r.below50Pct + r.from50to70Pct +
                    r.from70to95Pct + r.above95Pct + r.fullPct,
                100.0, 1e-9);
    EXPECT_EQ(r.executionWindows, 9u);
}

TEST_F(EfficiencyTest, PerCoreWindowsCountIndependently)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    plat.littleCluster().core(0).setBusy(true);
    plat.littleCluster().core(1).setBusy(true);
    analyzer.start();
    sim.runFor(msToTicks(50));
    const EfficiencyReport r = analyzer.report();
    EXPECT_EQ(r.executionWindows, 10u); // 2 cores x 5 windows
}
