/**
 * @file
 * Tests for the two-state cpuidle model: WFI-to-gated promotion,
 * span-exact accounting across syncs, and the power consequences.
 */

#include <gtest/gtest.h>

#include "platform/power.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class CpuIdleTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};

    Core &core() { return plat.littleCluster().core(0); }
};

} // namespace

TEST_F(CpuIdleTest, ShortIdleStaysInWfi)
{
    plat.littleCluster().freqDomain().setFreqNow(500000); // 0.9 V
    core().setBusy(true);
    sim.runFor(msToTicks(5));
    core().setBusy(false);
    sim.runFor(msToTicks(1)); // idle 1 ms < 2 ms gate delay
    core().setBusy(true);
    core().sync();
    EXPECT_NEAR(core().idleWfiWeight(), 0.001 * 0.9, 1e-12);
    EXPECT_DOUBLE_EQ(core().idleGatedWeight(), 0.0);
}

TEST_F(CpuIdleTest, LongIdleSplitsAtGateDelay)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    core().setBusy(true);
    sim.runFor(msToTicks(5));
    core().setBusy(false);
    sim.runFor(msToTicks(10)); // 2 ms WFI + 8 ms gated
    core().sync();
    EXPECT_NEAR(core().idleWfiWeight(), 0.002 * 0.9, 1e-12);
    EXPECT_NEAR(core().idleGatedWeight(), 0.008 * 0.9, 1e-12);
    EXPECT_NEAR(core().staticIdleWeight(), 0.010 * 0.9, 1e-12);
}

TEST_F(CpuIdleTest, SyncsMidSpanDoNotResetPromotion)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    core().setBusy(true);
    sim.runFor(oneMs);
    core().setBusy(false);
    // Sync every 0.5 ms across a 6 ms idle span; the split must be
    // identical to one uninterrupted accounting interval.
    for (int i = 0; i < 12; ++i) {
        sim.runFor(usToTicks(500));
        core().sync();
    }
    EXPECT_NEAR(core().idleWfiWeight(), 0.002 * 0.9, 1e-12);
    EXPECT_NEAR(core().idleGatedWeight(), 0.004 * 0.9, 1e-12);
}

TEST_F(CpuIdleTest, NewSpanRestartsInWfi)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    core().setBusy(false);
    sim.runFor(msToTicks(10)); // span 1: 2 WFI + 8 gated
    core().setBusy(true);
    sim.runFor(oneMs);
    core().setBusy(false);
    sim.runFor(oneMs); // span 2: 1 ms, all WFI again
    core().sync();
    EXPECT_NEAR(core().idleWfiWeight(), 0.003 * 0.9, 1e-12);
    EXPECT_NEAR(core().idleGatedWeight(), 0.008 * 0.9, 1e-12);
}

TEST_F(CpuIdleTest, CurrentIdleSpanTracksState)
{
    EXPECT_EQ(core().currentIdleSpan(), sim.now());
    sim.runFor(msToTicks(7));
    EXPECT_EQ(core().currentIdleSpan(), msToTicks(7));
    core().setBusy(true);
    EXPECT_EQ(core().currentIdleSpan(), 0u);
    sim.runFor(oneMs);
    core().setBusy(false);
    sim.runFor(oneMs);
    EXPECT_EQ(core().currentIdleSpan(), oneMs);
}

TEST_F(CpuIdleTest, GatedIdleIsCheaperThanWfi)
{
    PowerModel power(plat);
    const double fresh_idle = power.instantPowerMw();
    sim.runFor(msToTicks(50)); // all cores promote to gated
    const double gated_idle = power.instantPowerMw();
    EXPECT_LT(gated_idle, fresh_idle);
}

TEST_F(CpuIdleTest, FlatModelIgnoresSpanLength)
{
    Simulation sim2;
    PlatformParams params = exynos5422Params();
    params.cpuidleEnabled = false;
    AsymmetricPlatform flat(sim2, params);
    PowerModel power(flat);
    const double early = power.instantPowerMw();
    sim2.runFor(msToTicks(50));
    const double late = power.instantPowerMw();
    EXPECT_DOUBLE_EQ(early, late);
}

TEST_F(CpuIdleTest, MostlyIdlePlatformSavesPowerVsFlat)
{
    // 1 s fully idle: the cpuidle model's energy must be well below
    // the flat model's (gated leak 0.05 vs flat 0.12).
    PowerModel power(plat);
    const PowerSnapshot a = power.snapshot();
    sim.runFor(oneSec);
    const PowerSnapshot b = power.snapshot();
    const double cpuidle_mj =
        power.energyBetween(a, b).coreStaticMj;

    Simulation sim2;
    PlatformParams params = exynos5422Params();
    params.cpuidleEnabled = false;
    AsymmetricPlatform flat(sim2, params);
    PowerModel flat_power(flat);
    const PowerSnapshot c = flat_power.snapshot();
    sim2.runFor(oneSec);
    const PowerSnapshot d = flat_power.snapshot();
    const double flat_mj =
        flat_power.energyBetween(c, d).coreStaticMj;

    EXPECT_LT(cpuidle_mj, 0.6 * flat_mj);
}
