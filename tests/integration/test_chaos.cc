/**
 * @file
 * Chaos smoke test: full app runs under randomized (but seeded)
 * fault schedules.  Whatever the injector throws at the system -
 * hotplugged cores, denied DVFS transitions, thermal-sensor spikes,
 * stalled tasks - every simulation invariant must hold and no run
 * may abort.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "supervise/supervisor.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

AppSpec
shortApp(AppSpec app, Tick duration = msToTicks(2000))
{
    app.duration = duration;
    return app;
}

} // namespace

TEST(Chaos, TenSeedsZeroInvariantViolations)
{
    std::uint64_t injected = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ExperimentConfig cfg;
        cfg.fault = scaledFaultParams(2.0, seed);
        cfg.label = "chaos";
        const AppRunResult r =
            Experiment(cfg).runApp(shortApp(eternityWarrior2App()));
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.invariantViolations, 0u) << "seed " << seed;
        injected += r.faults.totalInjected();
    }
    // The sweep only means something if faults actually landed.
    EXPECT_GT(injected, 0u);
}

TEST(Chaos, LatencyAppSurvivesFaults)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ExperimentConfig cfg;
        cfg.fault = scaledFaultParams(1.0, seed);
        cfg.maxSimTime = msToTicks(60000);
        const AppRunResult r =
            Experiment(cfg).runApp(pdfReaderApp());
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.invariantViolations, 0u) << "seed " << seed;
        EXPECT_GT(r.latency, 0u);
    }
}

TEST(Chaos, HighFaultRateStillHoldsInvariants)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(8.0, 77);
    const AppRunResult r =
        Experiment(cfg).runApp(shortApp(videoPlayerApp()));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.invariantViolations, 0u);
    EXPECT_GT(r.faults.totalInjected(), 0u);
}

TEST(Chaos, FaultRunsAreDeterministic)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(2.0, 5);
    const AppRunResult a =
        Experiment(cfg).runApp(shortApp(angryBirdApp()));
    const AppRunResult b =
        Experiment(cfg).runApp(shortApp(angryBirdApp()));
    EXPECT_EQ(a.avgFps, b.avgFps);
    EXPECT_EQ(a.faults.hotplugOff, b.faults.hotplugOff);
    EXPECT_EQ(a.faults.dvfsDenied, b.faults.dvfsDenied);
    EXPECT_EQ(a.faults.thermalSpikes, b.faults.thermalSpikes);
    EXPECT_EQ(a.faults.taskStalls, b.faults.taskStalls);
    EXPECT_EQ(a.energy.totalMj(), b.energy.totalMj());
}

namespace
{

/**
 * A chaos config the plain run loop cannot survive: on top of the
 * recoverable classes, unrecoverable crashes and invariant breaks are
 * armed, so the run completes only if the supervisor recovers it.
 */
ExperimentConfig
supervisedChaosConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(2.0, seed);
    cfg.fault.crashRatePerSec = 0.4;
    cfg.fault.invariantBreakRatePerSec = 0.4;
    cfg.masterSeed = seed;
    cfg.label = "chaos_supervised";
    cfg.snapshot.checkpointEvery = msToTicks(200);
    cfg.snapshot.checkpointDir = ::testing::TempDir();
    return cfg;
}

} // namespace

TEST(SupervisedChaos, TenSeedsZeroAbortedRuns)
{
    // The ISSUE acceptance gate: a supervised sweep over ten seeds
    // with unrecoverable faults armed loses no run - every cell ends
    // clean, recovered, or degraded, never failed.
    std::uint32_t recoveries = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Supervisor supervisor(supervisedChaosConfig(seed));
        const SupervisedRunResult r =
            supervisor.run(shortApp(eternityWarrior2App()));
        EXPECT_NE(r.report.outcome, RecoveryOutcome::failed)
            << "seed " << seed << "\n" << r.report.toString();
        EXPECT_FALSE(r.run.failed) << "seed " << seed;
        EXPECT_TRUE(r.run.completed) << "seed " << seed;
        if (r.report.outcome != RecoveryOutcome::clean)
            ++recoveries;
    }
    // The gate only means something if the supervisor actually had
    // to step in somewhere in the sweep.
    EXPECT_GT(recoveries, 0u);
}

TEST(SupervisedChaos, RecoveryIsDeterministicPerSeed)
{
    // Two supervised runs of the same master seed must make
    // byte-identical recovery decisions and reach the same final
    // state digest.  Seed 3 exercises the full ladder (rollback,
    // exponential re-rollback, class disable) under this config.
    const auto run_once = [] {
        Supervisor supervisor(supervisedChaosConfig(3));
        return supervisor.run(shortApp(eternityWarrior2App()));
    };
    const SupervisedRunResult a = run_once();
    const SupervisedRunResult b = run_once();
    EXPECT_EQ(a.report.toString(), b.report.toString());
    EXPECT_EQ(a.report.digest(), b.report.digest());
    EXPECT_EQ(a.report.finalStateDigest, b.report.finalStateDigest);
    EXPECT_EQ(a.report.finalStateDigest, finalStateDigest(a.run));
}

TEST(Chaos, FaultFreeBaselineIsUnperturbed)
{
    // A disabled fault config must not change results at all.
    ExperimentConfig plain;
    ExperimentConfig with_knob;
    with_knob.fault = scaledFaultParams(0.0);
    const AppSpec app = shortApp(videoPlayerApp());
    const AppRunResult a = Experiment(plain).runApp(app);
    const AppRunResult b = Experiment(with_knob).runApp(app);
    EXPECT_EQ(a.avgFps, b.avgFps);
    EXPECT_EQ(a.energy.totalMj(), b.energy.totalMj());
    EXPECT_EQ(b.faults.totalInjected(), 0u);
    EXPECT_EQ(b.invariantViolations, 0u);
}
