/**
 * @file
 * TLP analysis: turns a StateSampler's joint distribution into the
 * Table III columns (idle %, little-only %, big-active %, TLP) and
 * the Table IV matrix.
 *
 * Following the paper: idle% is over all windows; the little and big
 * columns split the *active core-cycles* by core type (they sum to
 * 100, as the Table III rows do - big is the share of core-active
 * windows contributed by big cores); TLP is the average number of
 * active cores over active windows (the Blake et al. metric).
 */

#ifndef BIGLITTLE_CORE_TLP_HH
#define BIGLITTLE_CORE_TLP_HH

#include <vector>

#include "core/state_sampler.hh"

namespace biglittle
{

/** Table III row plus the Table IV matrix for one run. */
struct TlpReport
{
    double idlePct = 0.0; ///< windows with no active core, % of all
    double littleSharePct = 0.0; ///< share of core-cycles on little
    double bigSharePct = 0.0; ///< share of core-cycles on big
    double tlp = 0.0; ///< avg active cores over active windows

    /** % of active windows where only little cores are active. */
    double littleOnlyWindowPct = 0.0;

    /** % of active windows with at least one big core active. */
    double anyBigWindowPct = 0.0;

    /**
     * matrixPct[big][little]: percentage of all windows with that
     * active-core combination (Table IV layout).
     */
    std::vector<std::vector<double>> matrixPct;

    /** Average number of active little cores over active windows. */
    double littleTlp = 0.0;

    /** Average number of active big cores over active windows. */
    double bigTlp = 0.0;
};

/** Build a TlpReport from a sampler's accumulated windows. */
TlpReport makeTlpReport(const StateSampler &sampler);

} // namespace biglittle

#endif // BIGLITTLE_CORE_TLP_HH
