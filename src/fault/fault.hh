/**
 * @file
 * FaultInjector: deterministic, seeded perturbation of a running
 * platform, in the spirit of chaos testing for mobile SoCs.
 *
 * The injector drives four fault classes through the event queue:
 *
 *  - hotplug: a random non-boot core is evacuated and taken offline
 *    for a down time, then brought back (a thermally-parked or
 *    firmware-failed CPU);
 *  - DVFS: frequency-transition requests are probabilistically
 *    denied or delayed (a busy regulator / slow firmware mailbox);
 *  - thermal: a sensor spike is injected into a cluster's thermal
 *    throttle (a bad sample biasing the IPA loop);
 *  - task stall: a random thread receives a burst of extra work (a
 *    lock-contention or retry stall delaying its deadline).
 *
 * All draws come from one seeded Rng, so a fault schedule is exactly
 * reproducible, and every perturbation goes through the public
 * Status-returning degradation paths - a refused fault (e.g. the
 * hotplug rule protecting the last little core) is counted, never
 * forced.
 */

#ifndef BIGLITTLE_FAULT_FAULT_HH
#define BIGLITTLE_FAULT_FAULT_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "platform/freq_domain.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class AsymmetricPlatform;
class HmpScheduler;
class Serializer;
class Deserializer;
class ThermalThrottle;

/** Rates and magnitudes of the injected fault classes. */
struct FaultParams
{
    bool enabled = false;

    /** Seed of the injector's private random stream. */
    std::uint64_t seed = 1;

    /** Resolution at which fault arrivals are drawn. */
    Tick drawPeriod = msToTicks(10);

    // hotplug
    double hotplugRatePerSec = 0.0; ///< off events per second
    Tick hotplugDownTime = msToTicks(250); ///< offline duration

    // DVFS
    double dvfsDenyProb = 0.0; ///< per-request denial probability
    double dvfsDelayProb = 0.0; ///< per-request delay probability
    Tick dvfsExtraLatency = usToTicks(500); ///< added when delayed

    // thermal
    double thermalSpikeRatePerSec = 0.0;
    double thermalSpikeC = 20.0; ///< sensor spike magnitude

    // task stall
    double taskStallRatePerSec = 0.0;
    double taskStallInstructions = 3e6; ///< extra work per stall
};

/**
 * The baseline fault profile scaled by @p rate (0 disables all
 * classes): the knob the resilience bench sweeps.
 */
FaultParams scaledFaultParams(double rate, std::uint64_t seed = 1);

/** Counters of injected (and refused) perturbations. */
struct FaultStats
{
    std::uint64_t hotplugOff = 0;
    std::uint64_t hotplugOn = 0;
    std::uint64_t hotplugRejected = 0; ///< refused by platform/sched
    std::uint64_t dvfsDenied = 0;
    std::uint64_t dvfsDelayed = 0;
    std::uint64_t thermalSpikes = 0;
    std::uint64_t taskStalls = 0;

    /** All perturbations that actually landed. */
    std::uint64_t
    totalInjected() const
    {
        return hotplugOff + hotplugOn + dvfsDenied + dvfsDelayed +
               thermalSpikes + taskStalls;
    }
};

/** Schedules perturbations of a platform through the event queue. */
class FaultInjector
{
  public:
    FaultInjector(Simulation &sim, AsymmetricPlatform &platform,
                  HmpScheduler &sched, const FaultParams &params);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    ~FaultInjector();

    /** Register a thermal throttle as a sensor-spike target. */
    void addThermal(ThermalThrottle *throttle);

    /** Install the DVFS gates and begin drawing fault arrivals. */
    void start();

    /** Stop injecting (cores already offline still come back). */
    void stop();

    const FaultParams &params() const { return fp; }
    const FaultStats &stats() const { return faultStats; }

    /** Write the injector's random stream and counters. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    AsymmetricPlatform &plat;
    HmpScheduler &sched;
    FaultParams fp;
    Rng rng;

    PeriodicTask *drawTask = nullptr;
    std::vector<ThermalThrottle *> throttles;
    bool gatesInstalled = false;
    FaultStats faultStats;

    void draw(Tick now);
    void injectHotplug();
    void injectThermalSpike();
    void injectTaskStall();
    DvfsFaultAction gateDecision();
};

} // namespace biglittle

#endif // BIGLITTLE_FAULT_FAULT_HH
