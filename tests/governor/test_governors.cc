/**
 * @file
 * Tests for the DVFS governors: the interactive policy of Algorithm
 * 2 (target-load sizing, hispeed jump, sampling cadence), plus the
 * performance/powersave/userspace/ondemand references.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "governor/interactive.hh"
#include "governor/simple_governors.hh"
#include "platform/platform.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class GovernorTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};

    Cluster &little() { return plat.littleCluster(); }
    Cluster &big() { return plat.bigCluster(); }

    /** Hold core 0 of the little cluster at @p duty busy fraction. */
    void
    runDuty(double duty, Tick duration)
    {
        const Tick period = msToTicks(4);
        const Tick busy =
            static_cast<Tick>(duty * static_cast<double>(period));
        const Tick end = sim.now() + duration;
        while (sim.now() < end) {
            if (busy > 0) {
                little().core(0).setBusy(true);
                sim.runFor(busy);
                little().core(0).setBusy(false);
            }
            sim.runFor(period - busy);
        }
    }
};

} // namespace

TEST_F(GovernorTest, InteractiveStartsAtMinFreq)
{
    little().freqDomain().setFreqNow(1300000);
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
}

TEST_F(GovernorTest, IdleClusterStaysAtMin)
{
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    sim.runFor(msToTicks(500));
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
    EXPECT_GE(gov.samples(), 24u);
}

TEST_F(GovernorTest, FullLoadRampsToMax)
{
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(300));
    EXPECT_EQ(little().freqDomain().currentFreq(), 1300000u);
    EXPECT_GE(gov.hispeedJumps(), 1u);
}

TEST_F(GovernorTest, ModerateLoadSettlesNearTargetLoad)
{
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    // 45% duty at any frequency: the governor should hold a low
    // frequency where utilization sits near targetLoad.
    runDuty(0.45, msToTicks(2000));
    const FreqKHz f = little().freqDomain().currentFreq();
    // 45% of capacity at min freq needs ~0.45/0.7 * 500 = 321 MHz:
    // min frequency suffices.
    EXPECT_LE(f, 700000u);
}

TEST_F(GovernorTest, HispeedJumpGoesToIntermediateFreq)
{
    InteractiveParams ip = defaultInteractiveParams();
    InteractiveGovernor gov(sim, little(), ip);
    gov.start();
    // hispeed resolves to ~75% of max rounded up to an OPP.
    EXPECT_GE(gov.hispeedFreq(), 975000u);
    EXPECT_LT(gov.hispeedFreq(), 1300000u);
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(21)); // one sample: util 100% -> jump
    EXPECT_GE(little().freqDomain().currentFreq(), gov.hispeedFreq());
}

TEST_F(GovernorTest, LoadDropScalesFrequencyBackDown)
{
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(200));
    ASSERT_EQ(little().freqDomain().currentFreq(), 1300000u);
    little().core(0).setBusy(false);
    sim.runFor(msToTicks(100));
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
}

TEST_F(GovernorTest, UtilizationIsMaxAcrossCores)
{
    // One fully busy core must drive the domain up even if the
    // other three idle (cpufreq takes the busiest CPU of a policy).
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    little().core(3).setBusy(true);
    sim.runFor(msToTicks(300));
    EXPECT_EQ(little().freqDomain().currentFreq(), 1300000u);
}

TEST_F(GovernorTest, SamplingRateControlsReactionDelay)
{
    InteractiveGovernor slow(sim, little(), interval100Params());
    slow.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(60));
    // First sample has not happened yet at 60 ms with a 100 ms rate.
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
    sim.runFor(msToTicks(60));
    EXPECT_GT(little().freqDomain().currentFreq(), 500000u);
}

TEST_F(GovernorTest, InteractiveParamPresetsMatchPaper)
{
    EXPECT_EQ(defaultInteractiveParams().samplingRate, msToTicks(20));
    EXPECT_DOUBLE_EQ(defaultInteractiveParams().targetLoad, 70.0);
    EXPECT_EQ(interval60Params().samplingRate, msToTicks(60));
    EXPECT_EQ(interval100Params().samplingRate, msToTicks(100));
    EXPECT_DOUBLE_EQ(highTargetLoadParams().targetLoad, 80.0);
    EXPECT_DOUBLE_EQ(lowTargetLoadParams().targetLoad, 60.0);
}

TEST_F(GovernorTest, LowerTargetLoadPicksHigherFrequency)
{
    // Same duty cycle, two target loads: the 60% target must hold a
    // frequency at least as high as the 80% target.
    auto settle = [this](const InteractiveParams &ip) {
        Simulation sim2;
        AsymmetricPlatform plat2(sim2, exynos5422Params());
        InteractiveGovernor gov(sim2, plat2.littleCluster(), ip);
        gov.start();
        Core &core = plat2.littleCluster().core(0);
        for (int i = 0; i < 400; ++i) {
            core.setBusy(true);
            sim2.runFor(msToTicks(3));
            core.setBusy(false);
            sim2.runFor(oneMs);
        }
        return plat2.littleCluster().freqDomain().currentFreq();
    };
    const FreqKHz f_low = settle(lowTargetLoadParams());
    const FreqKHz f_high = settle(highTargetLoadParams());
    EXPECT_GE(f_low, f_high);
}

TEST_F(GovernorTest, PerformancePinsMax)
{
    PerformanceGovernor gov(sim, big());
    gov.start();
    EXPECT_EQ(big().freqDomain().currentFreq(), 1900000u);
    sim.runFor(msToTicks(500));
    EXPECT_EQ(big().freqDomain().currentFreq(), 1900000u);
}

TEST_F(GovernorTest, PowersavePinsMin)
{
    big().freqDomain().setFreqNow(1900000);
    PowersaveGovernor gov(sim, big());
    gov.start();
    EXPECT_EQ(big().freqDomain().currentFreq(), 800000u);
    big().core(0).setBusy(true);
    sim.runFor(msToTicks(500));
    EXPECT_EQ(big().freqDomain().currentFreq(), 800000u);
}

TEST_F(GovernorTest, UserspaceHoldsChosenFreq)
{
    UserspaceGovernor gov(sim, little(), 900000);
    gov.start();
    EXPECT_EQ(little().freqDomain().currentFreq(), 900000u);
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(500));
    EXPECT_EQ(little().freqDomain().currentFreq(), 900000u);
    gov.setFreq(1200000);
    EXPECT_EQ(little().freqDomain().currentFreq(), 1200000u);
    EXPECT_EQ(gov.freq(), 1200000u);
}

TEST_F(GovernorTest, OndemandJumpsToMaxAboveThreshold)
{
    OndemandGovernor gov(sim, little());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(50));
    EXPECT_EQ(little().freqDomain().currentFreq(), 1300000u);
}

TEST_F(GovernorTest, OndemandScalesDownWhenQuiet)
{
    OndemandGovernor gov(sim, little());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(50));
    little().core(0).setBusy(false);
    sim.runFor(msToTicks(100));
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
}

TEST_F(GovernorTest, StopFreezesSampling)
{
    InteractiveGovernor gov(sim, little(), defaultInteractiveParams());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(50));
    gov.stop();
    const auto samples = gov.samples();
    const FreqKHz f = little().freqDomain().currentFreq();
    sim.runFor(msToTicks(500));
    EXPECT_EQ(gov.samples(), samples);
    EXPECT_EQ(little().freqDomain().currentFreq(), f);
}

TEST_F(GovernorTest, ConservativeStepsUpGradually)
{
    ConservativeGovernor gov(sim, little());
    gov.start();
    little().core(0).setBusy(true);
    // One sample: at most one step (~5% of max) above minimum.
    sim.runFor(msToTicks(21));
    const FreqKHz after_one = little().freqDomain().currentFreq();
    EXPECT_GT(after_one, 500000u);
    EXPECT_LE(after_one, 600000u);
    // It does eventually reach max under sustained load.
    sim.runFor(msToTicks(500));
    EXPECT_EQ(little().freqDomain().currentFreq(), 1300000u);
}

TEST_F(GovernorTest, ConservativeStepsBackDownWhenQuiet)
{
    ConservativeGovernor gov(sim, little());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(500));
    ASSERT_EQ(little().freqDomain().currentFreq(), 1300000u);
    little().core(0).setBusy(false);
    sim.runFor(msToTicks(45));
    const FreqKHz partway = little().freqDomain().currentFreq();
    EXPECT_LT(partway, 1300000u);
    EXPECT_GT(partway, 500000u); // not yet at the bottom
    sim.runFor(msToTicks(1000));
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
}

TEST_F(GovernorTest, SchedutilSizesFreqFromCapacityUtil)
{
    SchedutilGovernor gov(sim, little());
    gov.start();
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(300));
    // Saturated: 1.25 * util pushes straight to max.
    EXPECT_EQ(little().freqDomain().currentFreq(), 1300000u);
    little().core(0).setBusy(false);
    sim.runFor(msToTicks(100));
    EXPECT_EQ(little().freqDomain().currentFreq(), 500000u);
}

TEST_F(GovernorTest, SchedutilHoldsMarginAboveSteadyLoad)
{
    // A ~38%-of-max-capacity load (0.5 GHz worth of work against a
    // 1.3 GHz max) should keep schedutil oscillating around
    // 1.25 * 0.38 * 1300 ~ 620 MHz - never at the top OPP, and with
    // a time-weighted mean between the 500 MHz floor and 900 MHz.
    SchedutilGovernor gov(sim, little());
    gov.start();
    double mean_acc = 0.0;
    FreqKHz max_seen = 0;
    const int steps = 500;
    for (int i = 0; i < steps; ++i) {
        const FreqKHz cur = little().freqDomain().currentFreq();
        mean_acc += static_cast<double>(cur);
        max_seen = std::max(max_seen, cur);
        const double duty = std::min(
            1.0, 0.38 * 1300000.0 / static_cast<double>(cur));
        runDuty(duty, msToTicks(4));
    }
    EXPECT_LE(max_seen, 900000u);
    const double mean = mean_acc / steps;
    EXPECT_GT(mean, 520000.0);
    EXPECT_LT(mean, 850000.0);
}

TEST_F(GovernorTest, GovernorsOnBothClustersAreIndependent)
{
    InteractiveGovernor lg(sim, little(), defaultInteractiveParams());
    InteractiveGovernor bg(sim, big(), defaultInteractiveParams());
    lg.start();
    bg.start();
    little().core(0).setBusy(true); // only little is loaded
    sim.runFor(msToTicks(300));
    EXPECT_EQ(little().freqDomain().currentFreq(), 1300000u);
    EXPECT_EQ(big().freqDomain().currentFreq(), 800000u);
}
