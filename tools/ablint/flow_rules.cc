/**
 * @file
 * The abflow rules: taint-bound (interprocedural decode-length
 * taint), unit-mix (the time/frequency unit-domain lattice), and
 * status-drop (dead Status/Result definitions).  All three ride the
 * engine in flow.cc and feed the same Finding / inline-allow
 * machinery as the lexical and semantic passes.
 */

#include "flow.hh"

#include "sink.hh"

#include <algorithm>
#include <functional>

namespace biglittle::ablint
{

namespace
{

using detail::Sink;
using detail::isIdent;
using detail::isPunct;
using detail::timeRule;

/* ------------------------------------------------------------------ */
/* taint-bound                                                         */
/* ------------------------------------------------------------------ */

void
taintBoundRule(const FlowModel &fm, Sink &sink)
{
    for (const FlowFunction &ff : fm.functions) {
        if (ff.def->file->isTest)
            continue;
        const LexedFile &f = *ff.def->file;
        const TaintEmitter emit = [&](int line,
                                      const std::string &msg) {
            sink.add(f, line, "taint-bound", msg);
        };
        analyzeTaint(ff, fm, &emit);
    }
}

/* ------------------------------------------------------------------ */
/* unit-mix                                                            */
/* ------------------------------------------------------------------ */

/**
 * The unit-domain lattice, seeded from src/base/types.hh: Tick and
 * TickDelta are integer nanoseconds, FreqKHz is integer kHz, and the
 * conversion helpers (msToTicks & co) move values between domains.
 * Names carry domains too: the codebase's convention is a _ms / Ms
 * (etc.) suffix on any count that is not in ticks.
 */
enum class Unit
{
    none, ///< dimensionless or unknown: never flagged
    tick, ///< Tick / TickDelta / ns
    ms,
    us,
    sec,
    khz,
    hz,
    ghz,
};

const char *
unitName(Unit u)
{
    switch (u) {
    case Unit::tick:
        return "Tick/ns";
    case Unit::ms:
        return "ms";
    case Unit::us:
        return "us";
    case Unit::sec:
        return "s";
    case Unit::khz:
        return "kHz";
    case Unit::hz:
        return "Hz";
    case Unit::ghz:
        return "GHz";
    case Unit::none:
        break;
    }
    return "?";
}

/** Result domain of a conversion/time call, none when unknown. */
Unit
callResultUnit(const std::string &name)
{
    if (name == "msToTicks" || name == "usToTicks" || name == "now")
        return Unit::tick;
    if (name == "ticksToMs")
        return Unit::ms;
    if (name == "ticksToSeconds")
        return Unit::sec;
    if (name == "kHzToHz")
        return Unit::hz;
    if (name == "kHzToGHz")
        return Unit::ghz;
    return Unit::none;
}

/** Expected domain of a conversion helper's single parameter. */
Unit
callParamUnit(const std::string &name)
{
    if (name == "msToTicks")
        return Unit::ms;
    if (name == "usToTicks")
        return Unit::us;
    if (name == "ticksToMs" || name == "ticksToSeconds")
        return Unit::tick;
    if (name == "kHzToHz" || name == "kHzToGHz")
        return Unit::khz;
    return Unit::none;
}

bool
isUnitTypeName(const std::string &name)
{
    return name == "Tick" || name == "TickDelta" ||
           name == "FreqKHz";
}

/** Camel-boundary suffix: "totalMs" yes, "RMS"/"params" no. */
bool
hasCamelSuffix(const std::string &name, const std::string &suffix)
{
    if (name.size() <= suffix.size())
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    const char before = name[name.size() - suffix.size() - 1];
    return (before >= 'a' && before <= 'z') ||
           (before >= '0' && before <= '9');
}

bool
hasSuffix(const std::string &name, const std::string &suffix)
{
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

/** Domain carried by an identifier's name alone. */
Unit
nameUnit(const std::string &name)
{
    if (isUnitTypeName(name))
        return Unit::none; // a type name is not a value
    if (name == "oneMs" || name == "oneUs" || name == "oneSec" ||
        name == "maxTick" || name == "now" || name == "ticks")
        return Unit::tick; // the types.hh Tick-valued constants
    if (name == "ms")
        return Unit::ms;
    if (name == "us")
        return Unit::us;
    if (name == "khz")
        return Unit::khz;
    if (name == "hz")
        return Unit::hz;
    // kHz before Hz: "freqKHz" must not read as an Hz suffix.
    if (hasSuffix(name, "_khz") || hasSuffix(name, "_KHZ") ||
        hasSuffix(name, "KHz") || hasCamelSuffix(name, "Khz"))
        return Unit::khz;
    if (hasSuffix(name, "_hz") || hasSuffix(name, "_HZ") ||
        hasCamelSuffix(name, "Hz"))
        return Unit::hz;
    if (hasSuffix(name, "_ms") || hasSuffix(name, "_MS") ||
        hasCamelSuffix(name, "Ms"))
        return Unit::ms;
    if (hasSuffix(name, "_us") || hasSuffix(name, "_US") ||
        hasCamelSuffix(name, "Us"))
        return Unit::us;
    if (hasSuffix(name, "_ns") || hasSuffix(name, "_NS") ||
        hasCamelSuffix(name, "Ns") || hasSuffix(name, "_ticks") ||
        hasCamelSuffix(name, "Ticks") || hasCamelSuffix(name, "Tick"))
        return Unit::tick;
    if (hasSuffix(name, "_sec") || hasSuffix(name, "_seconds") ||
        hasCamelSuffix(name, "Sec") || hasCamelSuffix(name, "Secs") ||
        hasCamelSuffix(name, "Seconds"))
        return Unit::sec;
    return Unit::none;
}

/** `Tick x` / `TickDelta x` / `FreqKHz x` declarations in @p f. */
std::map<std::string, Unit>
declaredUnits(const LexedFile &f)
{
    std::map<std::string, Unit> decls;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier ||
            !isUnitTypeName(toks[i].text))
            continue;
        if (toks[i + 1].kind != TokKind::identifier)
            continue;
        // `Tick nextEventAt()` declares a function, not a value.
        if (i + 2 < toks.size() && isPunct(toks[i + 2], '('))
            continue;
        decls[toks[i + 1].text] = toks[i].text == "FreqKHz"
                                      ? Unit::khz
                                      : Unit::tick;
    }
    return decls;
}

struct Operand
{
    Unit unit = Unit::none;
    std::string desc; ///< for messages: "frameMs" / "ticksToMs()"
};

class UnitScanner
{
  public:
    UnitScanner(const LexedFile &f, const FlowModel &fm, Sink &sink)
        : f(f), toks(f.tokens), n(f.tokens.size()), fm(fm),
          sink(sink), decls(declaredUnits(f))
    {
    }

    void
    run()
    {
        scanOperators();
        scanCallArgs();
    }

  private:
    const LexedFile &f;
    const std::vector<Token> &toks;
    const std::size_t n;
    const FlowModel &fm;
    Sink &sink;
    const std::map<std::string, Unit> decls;

    Unit
    identUnit(const std::string &name) const
    {
        const auto it = decls.find(name);
        if (it != decls.end())
            return it->second;
        return nameUnit(name);
    }

    /** Operand ending at @p at (the token before an operator). */
    Operand
    leftOperand(std::size_t at) const
    {
        Operand op;
        if (at >= n)
            return op;
        const Token &t = toks[at];
        if (t.kind == TokKind::identifier) {
            op.unit = identUnit(t.text);
            op.desc = t.text;
            return op;
        }
        if (isPunct(t, ')')) {
            // Call result: walk back to the '(' and the callee.
            int depth = 0;
            std::size_t j = at;
            while (true) {
                if (isPunct(toks[j], ')'))
                    ++depth;
                else if (isPunct(toks[j], '(') && --depth == 0)
                    break;
                if (j == 0)
                    return op;
                --j;
            }
            if (j > 0 && toks[j - 1].kind == TokKind::identifier) {
                op.unit = callResultUnit(toks[j - 1].text);
                op.desc = toks[j - 1].text + "()";
            }
        }
        return op;
    }

    /** Operand starting at @p at (the token after an operator). */
    Operand
    rightOperand(std::size_t at) const
    {
        Operand op;
        if (at >= n)
            return op;
        const Token &t = toks[at];
        if (t.kind != TokKind::identifier)
            return op;
        if (at + 1 < n && isPunct(toks[at + 1], '(')) {
            op.unit = callResultUnit(t.text);
            op.desc = t.text + "()";
            return op;
        }
        // Member access tail: `cfg.frameBudgetMs` names the field.
        std::size_t j = at;
        while (j + 2 < n && isPunct(toks[j + 1], '.') &&
               toks[j + 2].kind == TokKind::identifier)
            j += 2;
        if (j + 1 < n && isPunct(toks[j + 1], '('))
            return op; // member call with an unknown domain
        op.unit = identUnit(toks[j].text);
        op.desc = toks[j].text;
        return op;
    }

    void
    flagMix(int line, const Operand &a, const Operand &b,
            const std::string &what)
    {
        sink.add(f, line, "unit-mix",
                 "mixes unit domains: '" + a.desc + "' is " +
                     unitName(a.unit) + " but '" + b.desc + "' is " +
                     unitName(b.unit) + " (" + what +
                     "); convert explicitly with the "
                     "src/base/types.hh helpers (msToTicks, "
                     "ticksToMs, kHzToHz, ...) before combining "
                     "them");
    }

    void
    scanOperators()
    {
        for (std::size_t i = 1; i + 1 < n; ++i) {
            const Token &t = toks[i];
            if (t.kind != TokKind::punct || t.text.size() != 1)
                continue;
            const char c = t.text[0];
            std::size_t rhs = i + 1;
            std::string what;
            if (c == '+' || c == '-') {
                // Exclude '->', '++', '--', and unary signs.
                if (isPunct(toks[i + 1], '>') ||
                    isPunct(toks[i + 1], c) || isPunct(toks[i - 1], c))
                    continue;
                if (isPunct(toks[i + 1], '='))
                    rhs = i + 2; // compound += / -=
                what = "additive arithmetic";
            } else if (c == '<' || c == '>') {
                // Exclude streams ('<<' '>>') and arrow ('->').
                if (isPunct(toks[i - 1], c) || isPunct(toks[i + 1], c))
                    continue;
                if (c == '>' && isPunct(toks[i - 1], '-'))
                    continue;
                if (isPunct(toks[i + 1], '='))
                    rhs = i + 2; // <= / >=
                what = "comparison";
            } else if (c == '=' && isPunct(toks[i + 1], '=') &&
                       !isPunct(toks[i - 1], '=') &&
                       !isPunct(toks[i - 1], '!') &&
                       !isPunct(toks[i - 1], '<') &&
                       !isPunct(toks[i - 1], '>')) {
                rhs = i + 2; // ==
                what = "equality comparison";
            } else if (c == '!' && isPunct(toks[i + 1], '=')) {
                rhs = i + 2; // !=
                what = "equality comparison";
            } else {
                continue;
            }
            const Operand lo = leftOperand(i - 1);
            if (lo.unit == Unit::none)
                continue;
            const Operand ro = rightOperand(rhs);
            if (ro.unit == Unit::none || ro.unit == lo.unit)
                continue;
            flagMix(t.line, lo, ro, what);
        }
    }

    /** Single-atom argument domain: one identifier or one call. */
    Operand
    argOperand(std::size_t from, std::size_t to) const
    {
        Operand op;
        if (from >= to)
            return op;
        if (to - from == 1 &&
            toks[from].kind == TokKind::identifier) {
            op.unit = identUnit(toks[from].text);
            op.desc = toks[from].text;
            return op;
        }
        // `obj.member` chains and `fn(...)` single calls.
        return rightOperand(from);
    }

    void
    scanCallArgs()
    {
        for (std::size_t i = 0; i + 1 < n; ++i) {
            if (toks[i].kind != TokKind::identifier ||
                !isPunct(toks[i + 1], '('))
                continue;
            const std::string &callee = toks[i].text;
            // Matching close paren.
            int depth = 0;
            std::size_t close = i + 1;
            for (; close < n; ++close) {
                if (isPunct(toks[close], '('))
                    ++depth;
                else if (isPunct(toks[close], ')') && --depth == 0)
                    break;
            }
            if (close >= n)
                continue;
            // Top-level argument ranges.
            std::vector<std::pair<std::size_t, std::size_t>> args;
            {
                int paren = 0, bracket = 0, brace = 0, angle = 0;
                std::size_t start = i + 2;
                for (std::size_t j = i + 2; j < close; ++j) {
                    const Token &t = toks[j];
                    if (isPunct(t, '('))
                        ++paren;
                    else if (isPunct(t, ')'))
                        --paren;
                    else if (isPunct(t, '['))
                        ++bracket;
                    else if (isPunct(t, ']'))
                        --bracket;
                    else if (isPunct(t, '{'))
                        ++brace;
                    else if (isPunct(t, '}'))
                        --brace;
                    else if (isPunct(t, '<') && j > i + 2 &&
                             toks[j - 1].kind == TokKind::identifier)
                        ++angle;
                    else if (isPunct(t, '>') && angle > 0)
                        --angle;
                    else if (isPunct(t, ',') && paren == 0 &&
                             bracket == 0 && brace == 0 &&
                             angle == 0) {
                        args.push_back({start, j});
                        start = j + 1;
                    }
                }
                if (start < close)
                    args.push_back({start, close});
            }
            if (args.empty())
                continue;
            // Expected parameter domains: the types.hh conversion
            // helpers, else a modeled function's declared params.
            std::vector<Unit> expected;
            std::vector<std::string> pnames;
            const Unit conv = callParamUnit(callee);
            if (conv != Unit::none) {
                expected.push_back(conv);
                pnames.push_back(callee == "ticksToMs" ||
                                         callee == "ticksToSeconds"
                                     ? "t"
                                     : "its argument");
            } else if (callee == "cyclesIn") {
                expected = {Unit::tick, Unit::khz};
                pnames = {"t", "f"};
            } else {
                const auto it = fm.byName.find(callee);
                if (it == fm.byName.end())
                    continue;
                const FlowFunction &cand =
                    fm.functions[it->second.front()];
                for (const FlowParam &p : cand.params) {
                    Unit u = Unit::none;
                    if (p.type.find("FreqKHz") != std::string::npos)
                        u = Unit::khz;
                    else if (p.type.find("TickDelta") !=
                                 std::string::npos ||
                             p.type.find("Tick") !=
                                 std::string::npos)
                        u = Unit::tick;
                    else
                        u = nameUnit(p.name);
                    expected.push_back(u);
                    pnames.push_back(p.name);
                }
            }
            for (std::size_t ai = 0;
                 ai < args.size() && ai < expected.size(); ++ai) {
                if (expected[ai] == Unit::none)
                    continue;
                const Operand ao =
                    argOperand(args[ai].first, args[ai].second);
                if (ao.unit == Unit::none ||
                    ao.unit == expected[ai])
                    continue;
                sink.add(f, toks[i].line, "unit-mix",
                         "passes '" + ao.desc + "' (" +
                             unitName(ao.unit) + ") to parameter '" +
                             pnames[ai] + "' of " + callee +
                             "(), which expects " +
                             unitName(expected[ai]) +
                             "; convert explicitly with the "
                             "src/base/types.hh helpers first");
            }
        }
    }
};

void
unitMixRule(const ScanInput &in, const FlowModel &fm, Sink &sink)
{
    for (const LexedFile &f : in.files) {
        if (f.isTest)
            continue;
        UnitScanner(f, fm, sink).run();
    }
}

/* ------------------------------------------------------------------ */
/* status-drop                                                         */
/* ------------------------------------------------------------------ */

/**
 * A Status/Result local that is assigned and then overwritten (or
 * dies) without the value ever being read is a swallowed error -
 * the gap [[nodiscard]] and void-discard cannot see, because the
 * value *was* stored.  Neutral definitions (`= okStatus()`, default
 * construction) carry no information and are exempt; a definition
 * inside a loop whose variable is read anywhere in that loop is
 * loop-carried and fine.
 */
class StatusDropScanner
{
  public:
    StatusDropScanner(const FlowFunction &ff, Sink &sink)
        : ff(ff), f(*ff.def->file), toks(f.tokens),
          b(ff.def->bodyBegin), e(ff.def->bodyEnd), sink(sink)
    {
        findLoops();
    }

    void
    run()
    {
        for (std::size_t j = b; j < e; ++j) {
            if (toks[j].kind != TokKind::identifier)
                continue;
            if (toks[j].text == "Status")
                tryDecl(j + 1);
            else if (toks[j].text == "Result" && j + 1 < e &&
                     isPunct(toks[j + 1], '<'))
                tryDecl(afterAngles(j + 1));
        }
    }

  private:
    const FlowFunction &ff;
    const LexedFile &f;
    const std::vector<Token> &toks;
    const std::size_t b, e;
    Sink &sink;
    std::vector<std::pair<std::size_t, std::size_t>> loops;

    std::size_t
    afterAngles(std::size_t at) const
    {
        int depth = 0;
        for (std::size_t j = at; j < e; ++j) {
            if (isPunct(toks[j], '<'))
                ++depth;
            else if (isPunct(toks[j], '>') && --depth == 0)
                return j + 1;
            else if (isPunct(toks[j], ';'))
                return e;
        }
        return e;
    }

    std::size_t
    matchBrace(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t j = open; j < e; ++j) {
            if (isPunct(toks[j], '{'))
                ++depth;
            else if (isPunct(toks[j], '}') && --depth == 0)
                return j;
        }
        return e;
    }

    void
    findLoops()
    {
        // Each range runs from the loop keyword to the last token of
        // the construct, so a read in a for/while header condition
        // (or a do-while trailing condition) counts as loop-carried.
        for (std::size_t j = b; j + 1 < e; ++j) {
            if (toks[j].kind != TokKind::identifier)
                continue;
            if (toks[j].text == "do" && isPunct(toks[j + 1], '{')) {
                std::size_t close = matchBrace(j + 1);
                if (close + 2 < e &&
                    isIdent(toks[close + 1], "while") &&
                    isPunct(toks[close + 2], '(')) {
                    int depth = 0;
                    for (std::size_t k = close + 2; k < e; ++k) {
                        if (isPunct(toks[k], '('))
                            ++depth;
                        else if (isPunct(toks[k], ')') &&
                                 --depth == 0) {
                            close = k;
                            break;
                        }
                    }
                }
                loops.push_back({j, close});
                continue;
            }
            if ((toks[j].text != "for" && toks[j].text != "while") ||
                !isPunct(toks[j + 1], '('))
                continue;
            int depth = 0;
            std::size_t k = j + 1;
            for (; k < e; ++k) {
                if (isPunct(toks[k], '('))
                    ++depth;
                else if (isPunct(toks[k], ')') && --depth == 0)
                    break;
            }
            if (k + 1 < e && isPunct(toks[k + 1], '{'))
                loops.push_back({j, matchBrace(k + 1)});
        }
    }

    bool
    inSameLoopWithUse(std::size_t defIdx,
                      const std::vector<std::size_t> &uses) const
    {
        for (const auto &[lb, le] : loops) {
            if (defIdx < lb || defIdx > le)
                continue;
            for (const std::size_t u : uses)
                if (u >= lb && u <= le)
                    return true;
        }
        return false;
    }

    /** True when [from, to) is exactly `okStatus ( )`. */
    bool
    isNeutralInit(std::size_t from, std::size_t to) const
    {
        return to - from == 3 && isIdent(toks[from], "okStatus") &&
               isPunct(toks[from + 1], '(') &&
               isPunct(toks[from + 2], ')');
    }

    std::size_t
    stmtEnd(std::size_t from) const
    {
        int depth = 0;
        for (std::size_t j = from; j < e; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, '(') || isPunct(t, '[') ||
                isPunct(t, '{'))
                ++depth;
            else if (isPunct(t, ')') || isPunct(t, ']') ||
                     isPunct(t, '}')) {
                if (--depth < 0)
                    return j;
            } else if (isPunct(t, ';') && depth == 0)
                return j;
        }
        return e;
    }

    void
    tryDecl(std::size_t nameIdx)
    {
        if (nameIdx >= e || toks[nameIdx].kind != TokKind::identifier)
            return;
        // `Status foo(...)` inside a body is a call or declaration
        // of something else entirely; only track plain locals.
        if (nameIdx + 1 < e && isPunct(toks[nameIdx + 1], '('))
            return;
        const std::string var = toks[nameIdx].text;

        struct Def
        {
            std::size_t idx;
            int line;
            bool neutral;
        };
        std::vector<Def> defs;
        std::vector<std::size_t> uses;

        // The declaration's own initializer.
        if (nameIdx + 1 < e && isPunct(toks[nameIdx + 1], '=')) {
            const std::size_t end = stmtEnd(nameIdx + 2);
            defs.push_back({nameIdx, toks[nameIdx].line,
                            isNeutralInit(nameIdx + 2, end)});
        }

        // Every later mention of the variable in the body.
        for (std::size_t j = nameIdx + 1; j < e; ++j) {
            if (toks[j].kind != TokKind::identifier ||
                toks[j].text != var)
                continue;
            const bool member =
                j > b && (isPunct(toks[j - 1], '.') ||
                          isPunct(toks[j - 1], '>'));
            const bool assign =
                !member && j + 1 < e && isPunct(toks[j + 1], '=') &&
                !(j + 2 < e && isPunct(toks[j + 2], '=')) &&
                !(isPunct(toks[j - 1], '=') ||
                  isPunct(toks[j - 1], '!') ||
                  isPunct(toks[j - 1], '<') ||
                  isPunct(toks[j - 1], '>'));
            if (assign) {
                const std::size_t end = stmtEnd(j + 2);
                defs.push_back({j, toks[j].line,
                                isNeutralInit(j + 2, end)});
            } else {
                uses.push_back(j);
            }
        }

        for (std::size_t d = 0; d < defs.size(); ++d) {
            if (defs[d].neutral)
                continue;
            const std::size_t next =
                d + 1 < defs.size() ? defs[d + 1].idx : e;
            bool read = false;
            for (const std::size_t u : uses) {
                if (u > defs[d].idx && u < next) {
                    read = true;
                    break;
                }
            }
            if (read || inSameLoopWithUse(defs[d].idx, uses))
                continue;
            const bool overwritten = d + 1 < defs.size();
            sink.add(
                f, defs[d].line, "status-drop",
                "'" + var + "' is assigned here and then " +
                    (overwritten
                         ? "overwritten (line " +
                               std::to_string(defs[d + 1].line) + ")"
                         : "dies") +
                    " without ever being branched on, propagated, "
                    "or logged; check .ok(), return it, or log the "
                    "error instead of swallowing it");
        }
    }
};

void
statusDropRule(const FlowModel &fm, Sink &sink)
{
    for (const FlowFunction &ff : fm.functions) {
        if (ff.def->file->isTest)
            continue;
        StatusDropScanner(ff, sink).run();
    }
}

/* ------------------------------------------------------------------ */
/* pass entry point                                                    */
/* ------------------------------------------------------------------ */

} // namespace

std::vector<Finding>
runFlowRules(const ScanInput &in, AllowUse *uses,
             RuleProfile *profile)
{
    std::vector<Finding> out;
    Sink sink{out, uses};
    FlowModel fm;
    timeRule(profile, "flow-model-build",
             [&] { fm = buildFlowModel(in); });
    timeRule(profile, "taint-bound",
             [&] { taintBoundRule(fm, sink); });
    timeRule(profile, "unit-mix",
             [&] { unitMixRule(in, fm, sink); });
    timeRule(profile, "status-drop",
             [&] { statusDropRule(fm, sink); });
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule,
                                  a.message) <
                         std::tie(b.file, b.line, b.rule,
                                  b.message);
              });
    return out;
}

} // namespace biglittle::ablint
