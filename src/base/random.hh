/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the workbench (input-event arrival,
 * burst sizes, frame-cost jitter) draws from an explicitly seeded
 * Rng so that experiments are exactly reproducible.  The generator is
 * xoshiro256** seeded through SplitMix64, which gives high-quality
 * streams from arbitrary 64-bit seeds.
 */

#ifndef BIGLITTLE_BASE_RANDOM_HH
#define BIGLITTLE_BASE_RANDOM_HH

#include <cstdint>
#include <string>

namespace biglittle
{

class Serializer;
class Deserializer;

/**
 * A small, fast, deterministic random number generator
 * (xoshiro256**) with convenience distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any value (incl. 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Re-seed in place. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Normally distributed double (Box-Muller). */
    double normal(double mean, double stddev);

    /**
     * Log-normal value whose *median* is @p median and whose spread
     * is controlled by @p sigma (sigma of the underlying normal).
     * Handy for heavy-tailed burst costs.
     */
    double logNormal(double median, double sigma);

    /** Bernoulli trial. */
    bool chance(double p);

    /**
     * Derive an independent child generator.  Used to give each
     * simulated thread its own stream so that adding a thread does
     * not perturb the draws of existing threads.
     */
    Rng fork();

    /**
     * Write the full generator state (xoshiro words plus the cached
     * Box-Muller variate).  serialize -> deserialize -> serialize is
     * byte-identical, and a restored generator continues the exact
     * draw sequence of the original.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    std::uint64_t s[4];

    /** Cached second Box-Muller variate. */
    double cachedNormal = 0.0;
    bool hasCachedNormal = false;
};

/**
 * Seed of the named random stream of one subsystem, derived from the
 * experiment's master seed.  Every stochastic subsystem (fault
 * injector, each workload thread, future consumers) owns a stream
 * keyed by a stable name, so adding a consumer - or reordering
 * construction - never perturbs the draws of unrelated subsystems.
 * The derivation hashes the name and mixes it with the master seed,
 * so streams are independent for any (master, name) pair.
 */
std::uint64_t deriveStreamSeed(std::uint64_t master_seed,
                               const std::string &name);

/** Rng seeded by deriveStreamSeed(master_seed, name). */
Rng namedStream(std::uint64_t master_seed, const std::string &name);

} // namespace biglittle

#endif // BIGLITTLE_BASE_RANDOM_HH
