/**
 * @file
 * Tunable parameters of the HMP scheduler (Algorithm 1) and the named
 * parameter sets evaluated in Section VI-C: baseline (700/256, 32 ms
 * history half-life), conservative (850/400), aggressive (550/100),
 * and the doubled / halved history-weight variants.
 */

#ifndef BIGLITTLE_SCHED_SCHED_PARAMS_HH
#define BIGLITTLE_SCHED_SCHED_PARAMS_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace biglittle
{

/** HMP scheduler tunables. */
struct SchedParams
{
    /** Scheduling tick; loads update at this granularity. */
    Tick tickPeriod = oneMs;

    /**
     * Load (of 1024) above which a little-core task migrates to a
     * big core.
     */
    std::uint32_t upThreshold = 700;

    /**
     * Load (of 1024) below which a big-core task migrates back to a
     * little core.
     */
    std::uint32_t downThreshold = 256;

    /**
     * Half-life of the load history in milliseconds: a 1 ms load
     * sample contributed this long ago is weighted 50%.  The paper's
     * platform uses 32 ms; Section VI-C doubles and halves it.
     */
    double loadHalfLifeMs = 32.0;

    /** Round-robin timeslice for tasks sharing a core. */
    Tick timeslice = msToTicks(6);

    /**
     * Frequency requested on the big cluster when a task migrates
     * up, so the burst that triggered the migration is served fast
     * immediately instead of waiting out a governor sample (the
     * Linaro HMP frequency-boost mechanism).  The governor takes
     * over from its next sample.  0 disables the boost.
     */
    FreqKHz upMigrationBoostFreq = 1400000;

    std::string name = "baseline";
};

/** Default platform parameters (up 700 / down 256 / 32 ms). */
SchedParams baselineSchedParams();

/** Section VI-C "conservative (850,400)": prefers little cores. */
SchedParams conservativeSchedParams();

/** Section VI-C "aggressive (550,100)": prefers big cores. */
SchedParams aggressiveSchedParams();

/** Section VI-C "2x history weight": 64 ms half-life. */
SchedParams doubleHistorySchedParams();

/** Section VI-C "1/2 history weight": 16 ms half-life. */
SchedParams halfHistorySchedParams();

} // namespace biglittle

#endif // BIGLITTLE_SCHED_SCHED_PARAMS_HH
