/**
 * @file
 * Tests for the scripted and Poisson input-event sources.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "workload/input_events.hh"

using namespace biglittle;

namespace
{

class InputEventsTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    HmpScheduler sched{sim, plat, baselineSchedParams()};
    Task *task = nullptr;
    std::unique_ptr<BurstBehavior> behavior;

    void
    SetUp() override
    {
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        sched.start();
        task = &sched.createTask("ui", WorkClass{0.8, 0.0, 64.0});
        behavior =
            std::make_unique<BurstBehavior>(sim, *task, Rng(1));
    }
};

} // namespace

TEST_F(InputEventsTest, ScriptedFiresAtExactTimes)
{
    std::vector<Tick> drains;
    behavior->setDrainListener(
        [&](BurstBehavior &, Tick now) { drains.push_back(now); });
    ScriptedInputSource source(
        sim, *behavior,
        {{msToTicks(10), 1e5}, {msToTicks(30), 1e5},
         {msToTicks(60), 1e5}});
    source.start();
    EXPECT_EQ(source.total(), 3u);
    sim.runFor(msToTicks(100));
    EXPECT_EQ(source.fired(), 3u);
    ASSERT_EQ(drains.size(), 3u);
    // Each burst (~0.1 ms of work) drains right after its event.
    EXPECT_GE(drains[0], msToTicks(10));
    EXPECT_LT(drains[0], msToTicks(12));
    EXPECT_GE(drains[1], msToTicks(30));
    EXPECT_GE(drains[2], msToTicks(60));
}

TEST_F(InputEventsTest, ScriptedEmptyIsFine)
{
    ScriptedInputSource source(sim, *behavior, {});
    source.start();
    sim.runFor(msToTicks(10));
    EXPECT_EQ(source.fired(), 0u);
}

TEST_F(InputEventsTest, ScriptedRejectsUnsortedEvents)
{
    EXPECT_DEATH(ScriptedInputSource(
                     sim, *behavior,
                     {{msToTicks(30), 1e5}, {msToTicks(10), 1e5}}),
                 "assertion");
}

TEST_F(InputEventsTest, ScriptedPastEventIsClampedToNow)
{
    sim.runFor(msToTicks(50));
    std::vector<Tick> drains;
    behavior->setDrainListener(
        [&](BurstBehavior &, Tick now) { drains.push_back(now); });
    ScriptedInputSource source(
        sim, *behavior,
        {{msToTicks(10), 1e5}, {msToTicks(80), 1e5}});
    source.start();
    sim.runFor(msToTicks(100));
    // The late event fires immediately instead of killing the run;
    // the on-time one keeps its scheduled slot.
    EXPECT_EQ(source.fired(), 2u);
    EXPECT_EQ(source.clamped(), 1u);
    ASSERT_EQ(drains.size(), 2u);
    EXPECT_GE(drains[0], msToTicks(50));
    EXPECT_LT(drains[0], msToTicks(55));
    EXPECT_GE(drains[1], msToTicks(80));
}

TEST_F(InputEventsTest, PoissonRateConverges)
{
    PoissonInputParams params;
    params.meanInterArrival = msToTicks(50);
    params.medianBurst = 1e5;
    PoissonInputSource source(sim, *behavior, params, Rng(7));
    source.start();
    sim.runFor(msToTicks(20000));
    // Expect ~400 events over 20 s at one per 50 ms.
    EXPECT_NEAR(static_cast<double>(source.fired()), 400.0, 60.0);
    EXPECT_EQ(behavior->burstsDone(), source.fired());
}

TEST_F(InputEventsTest, PoissonStopHalts)
{
    PoissonInputParams params;
    params.meanInterArrival = msToTicks(20);
    params.medianBurst = 1e5;
    PoissonInputSource source(sim, *behavior, params, Rng(8));
    source.start();
    sim.runFor(msToTicks(500));
    source.stop();
    const auto count = source.fired();
    EXPECT_GT(count, 0u);
    sim.runFor(msToTicks(500));
    EXPECT_EQ(source.fired(), count);
}

TEST_F(InputEventsTest, PoissonIsDeterministicPerSeed)
{
    auto run_once = [this](std::uint64_t seed) {
        Task &t =
            sched.createTask("t" + std::to_string(seed),
                             WorkClass{0.8, 0.0, 64.0});
        BurstBehavior b(sim, t, Rng(seed));
        PoissonInputParams params;
        params.meanInterArrival = msToTicks(30);
        params.medianBurst = 1e5;
        PoissonInputSource source(sim, b, params, Rng(seed));
        source.start();
        sim.runFor(msToTicks(2000));
        source.stop();
        return source.fired();
    };
    const auto a = run_once(11);
    const auto b = run_once(11);
    EXPECT_EQ(a, b);
}

TEST_F(InputEventsTest, PoissonDrivesLoadAndMigration)
{
    // Heavy frequent bursts must eventually push the UI task onto a
    // big core - the end-to-end path the paper's latency apps take.
    plat.bigCluster().freqDomain().setFreqNow(1900000);
    PoissonInputParams params;
    params.meanInterArrival = msToTicks(40);
    params.medianBurst = 60e6;
    PoissonInputSource source(sim, *behavior, params, Rng(9));
    source.start();
    sim.runFor(msToTicks(3000));
    EXPECT_GT(task->runtimeOn(CoreType::big), 0u);
}
