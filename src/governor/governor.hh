/**
 * @file
 * Governor: base class for per-cluster DVFS policies.
 *
 * A governor samples its cluster's CPU utilization on a fixed period
 * and requests a new frequency from the cluster's domain.  Like the
 * Linux cpufreq core, the utilization of a multi-core policy is the
 * maximum of the per-core busy fractions over the elapsed window (the
 * busiest CPU must not be starved).
 */

#ifndef BIGLITTLE_GOVERNOR_GOVERNOR_HH
#define BIGLITTLE_GOVERNOR_GOVERNOR_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "platform/cluster.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class Serializer;
class Deserializer;

/** Base class for cluster frequency governors. */
class Governor
{
  public:
    Governor(Simulation &sim, Cluster &cluster, std::string name);

    virtual ~Governor() = default;

    Governor(const Governor &) = delete;
    Governor &operator=(const Governor &) = delete;

    const std::string &name() const { return governorName; }
    Cluster &cluster() { return clusterRef; }

    /** Sampling period of this policy. */
    virtual Tick samplingPeriod() const = 0;

    /** Apply the policy's initial frequency and begin sampling. */
    void start();

    /** Stop sampling (frequency stays where it is). */
    void stop();

    /** Number of samples taken. */
    std::uint64_t samples() const { return sampleCount; }

    /**
     * Requests the domain refused (fault injection).  The policy
     * simply holds its current - still valid - OPP and retries on
     * the next sample, the way cpufreq treats a -EBUSY regulator.
     */
    std::uint64_t deniedRequests() const { return deniedCount; }

    /**
     * Write the sampling bookkeeping plus any policy-specific state
     * (via the serializePolicy hook).
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  protected:
    /** Policy hook: append subclass state (default: nothing). */
    virtual void serializePolicy(Serializer &s) const;

    /** Policy hook: restore subclass state (default: nothing). */
    virtual void deserializePolicy(Deserializer &d);
    /** Frequency to apply when the governor starts. */
    virtual FreqKHz initialFreq() const;

    /** Policy hook: look at utilization, request a frequency. */
    virtual void sample(Tick now) = 0;

    /**
     * Max per-core busy fraction over the window since the last call
     * (first call measures from governor start).  In [0, 1].
     */
    double clusterUtilization();

    /**
     * Ask the domain for @p target, absorbing a fault-gate denial:
     * the governor stays at the current OPP, counts the refusal, and
     * retries naturally on its next sampling period.
     */
    void request(FreqKHz target);

    Simulation &sim;
    Cluster &clusterRef;

  private:
    // ablint:allow(serialize-coverage): fixed at construction from config
    std::string governorName;
    PeriodicTask *samplerTask = nullptr;
    std::uint64_t sampleCount = 0;
    std::uint64_t deniedCount = 0;

    Tick lastSampleTick = 0;
    std::vector<Tick> lastBusyTicks;

    void onSample(Tick now);
};

} // namespace biglittle

#endif // BIGLITTLE_GOVERNOR_GOVERNOR_HH
