/**
 * @file
 * FrameStats: per-frame completion records and the FPS summaries the
 * paper reports (average FPS over the run, and worst-case FPS over
 * one-second windows, which is what "minimum FPS" in Fig. 5 means -
 * occasional demand spikes hurt the worst window long before they
 * move the average).
 */

#ifndef BIGLITTLE_WORKLOAD_FRAME_STATS_HH
#define BIGLITTLE_WORKLOAD_FRAME_STATS_HH

#include <vector>

#include "base/stats.hh"
#include "base/types.hh"

namespace biglittle
{

class Serializer;
class Deserializer;

/** Collects frame-completion timestamps from a render thread. */
class FrameStats
{
  public:
    /** Record a frame completed at @p now. */
    void recordFrame(Tick now);

    /** Number of frames completed. */
    std::size_t frames() const { return completions.size(); }

    /**
     * Average FPS between the first and last completion (0 with
     * fewer than 2 frames).
     */
    double averageFps() const;

    /**
     * Minimum FPS over tumbling windows of @p window ticks
     * (default 1 s).  Counts frames per window between the first and
     * last completion; windows shorter than half the nominal window
     * at the tail are dropped.
     */
    double minFps(Tick window = oneSec) const;

    /** Frame-to-frame intervals in milliseconds. */
    SampleSeries frameIntervalsMs() const;

    /** Raw completion ticks. */
    const std::vector<Tick> &completionTicks() const
    {
        return completions;
    }

    /** Write the completion record. */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    std::vector<Tick> completions;
};

} // namespace biglittle

#endif // BIGLITTLE_WORKLOAD_FRAME_STATS_HH
