/**
 * @file
 * The event queue: a total order over pending events keyed by
 * (when, priority, sequence).  Supports schedule / reschedule /
 * deschedule, which the platform uses heavily (a task-completion
 * event moves whenever its core's frequency changes).
 */

#ifndef BIGLITTLE_SIM_EVENTQ_HH
#define BIGLITTLE_SIM_EVENTQ_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "base/types.hh"
#include "sim/event.hh"

namespace biglittle
{

class Serializer;

/** A serviced event as seen by hooks and the recent-event log. */
struct ServicedEvent
{
    Tick when = 0;
    std::int32_t priority = 0;
    std::uint64_t sequence = 0;
    std::string name;
};

/** Deterministic priority queue of events. */
class EventQueue
{
  public:
    /** Called for every serviced event, just before it processes. */
    using ServiceHook = std::function<void(const ServicedEvent &)>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Insert @p event to fire at absolute tick @p when.
     * @p when must not be in the past; the event must be idle.
     */
    void schedule(Event &event, Tick when);

    /** Remove a scheduled event (must currently be scheduled). */
    void deschedule(Event &event);

    /** Move a scheduled event to a new tick (deschedule+schedule). */
    void reschedule(Event &event, Tick when);

    /** True when no events are pending. */
    bool empty() const { return queue.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return queue.size(); }

    /** Tick of the next pending event (maxTick when empty). */
    Tick nextTick() const;

    /**
     * Service exactly one event (advances time to it first).
     * @return false if the queue was empty.
     */
    bool serviceOne();

    /**
     * Run events until the queue drains or the next event would fire
     * after @p until.  The clock is then parked exactly at @p until
     * so a subsequent runUntil continues from there.
     */
    void runUntil(Tick until);

    /** Total events serviced since construction. */
    std::uint64_t eventsServiced() const { return serviced; }

    /** Sequence number the next schedule() will hand out. */
    std::uint64_t nextSequenceValue() const { return nextSequence; }

    /**
     * Install (or clear, with nullptr) the single service hook used
     * by trace recording and replay comparison.  The hook fires for
     * every serviced event with its (when, priority, sequence, name)
     * identity, before process() runs.
     */
    void setServiceHook(ServiceHook hook);

    /**
     * Keep a ring buffer of the identities of the last @p n serviced
     * events (0 disables).  The watchdog dumps this ring when a run
     * stalls, so the report shows what the simulation was doing.
     */
    void enableRecentLog(std::size_t n);

    /** The recent-event ring, oldest first. */
    const std::deque<ServicedEvent> &recentLog() const { return recent; }

    /**
     * Serialize the queue's externally observable state: clock,
     * counters, and a digest of every pending event's (when,
     * priority, sequence, name-hash) in firing order.  Two runs with
     * identical behavior produce identical bytes; the digest form is
     * used because pending events (closures) cannot themselves be
     * reconstructed from bytes.  There is deliberately no
     * deserialize(): restore re-executes to the checkpoint tick and
     * byte-compares this digest instead (docs/DETERMINISM.md).
     */
    // ablint:allow(serialize-pair): digest-only, restore by replay
    void serialize(Serializer &s) const;

  private:
    struct Cmp
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when() != b->when())
                return a->when() < b->when();
            if (a->priority() != b->priority())
                return a->priority() < b->priority();
            return a->sequence < b->sequence;
        }
    };

    std::set<Event *, Cmp> queue;
    Tick curTick = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t serviced = 0;

    ServiceHook serviceHook;
    std::deque<ServicedEvent> recent;
    std::size_t recentCap = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_EVENTQ_HH
