/**
 * @file
 * The ablint rule scanners.  Each rule walks the token stream of the
 * lexed files; none of them try to be a real C++ front end — they
 * are tuned to this codebase's idiom and documented (with their
 * blind spots) in docs/STATIC_ANALYSIS.md.
 */

#include "ablint.hh"

#include "sink.hh"

#include <algorithm>
#include <sstream>

namespace biglittle::ablint
{

namespace
{

using detail::Sink;
using detail::isIdent;
using detail::isPunct;

// ---- wall-clock ----------------------------------------------------

/** Files allowed to read the host clock (the wall-clock module). */
bool
wallClockAllowlisted(const std::string &path)
{
    return path.find("snapshot/watchdog.") != std::string::npos;
}

void
wallClockRule(const LexedFile &f, Sink &sink)
{
    if (wallClockAllowlisted(f.path))
        return;
    static const std::set<std::string> bannedAlways = {
        "srand",       "random_device", "gettimeofday",
        "localtime",   "gmtime",        "mktime",
        "steady_clock", "system_clock", "high_resolution_clock",
    };
    // Short names that only count when used as a call.
    static const std::set<std::string> bannedCalls = {"rand", "time",
                                                      "clock"};
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier)
            continue;
        const std::string &name = toks[i].text;
        const bool call = i + 1 < toks.size() &&
                          isPunct(toks[i + 1], '(');
        if (bannedAlways.count(name) ||
            (call && bannedCalls.count(name))) {
            sink.add(f, toks[i].line, "wall-clock",
                     "'" + name +
                         "' reads host entropy/time; sim code must "
                         "stay deterministic (use seeded Rng / "
                         "sim.now(); wall-clock lives in "
                         "snapshot/watchdog)");
        }
    }
}

// ---- unordered-iter ------------------------------------------------

void
unorderedIterRule(const LexedFile &f, Sink &sink)
{
    if (f.isTest)
        return;
    const auto &toks = f.tokens;
    std::set<std::string> unorderedVars;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "unordered_map") &&
            !isIdent(toks[i], "unordered_set"))
            continue;
        // Declaration form: unordered_xxx < ... > varName
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], '<'))
            continue;
        int angle = 0;
        std::size_t j = i + 1;
        for (; j < toks.size() && j < i + 200; ++j) {
            if (isPunct(toks[j], '<'))
                ++angle;
            else if (isPunct(toks[j], '>') && --angle == 0)
                break;
            else if (isPunct(toks[j], ';'))
                break;
        }
        if (j >= toks.size() || !isPunct(toks[j], '>'))
            continue;
        if (j + 1 < toks.size() &&
            toks[j + 1].kind == TokKind::identifier) {
            unorderedVars.insert(toks[j + 1].text);
            sink.add(f, toks[i].line, "unordered-iter",
                     "'" + toks[j + 1].text + "' is an " +
                         toks[i].text +
                         ": hash-order iteration can leak into "
                         "event ordering; use std::map / sorted "
                         "iteration or justify with an inline "
                         "allow");
        }
    }
    if (unorderedVars.empty())
        return;
    // Iteration sites over those variables (range-for or .begin()).
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier ||
            unorderedVars.count(toks[i].text) == 0)
            continue;
        const bool begins = i + 2 < toks.size() &&
                            isPunct(toks[i + 1], '.') &&
                            (isIdent(toks[i + 2], "begin") ||
                             isIdent(toks[i + 2], "cbegin"));
        bool rangeFor = false;
        if (i >= 2) {
            // look back for `for ( ... :` preceding this use
            for (std::size_t k = i; k-- > 0 && i - k < 24;) {
                if (isPunct(toks[k], ';') || isPunct(toks[k], '{') ||
                    isPunct(toks[k], '}'))
                    break;
                if (isIdent(toks[k], "for")) {
                    for (std::size_t m = k + 1; m < i; ++m) {
                        if (isPunct(toks[m], ':') &&
                            !isPunct(toks[m - 1], ':') &&
                            (m + 1 >= toks.size() ||
                             !isPunct(toks[m + 1], ':'))) {
                            rangeFor = true;
                            break;
                        }
                    }
                    break;
                }
            }
        }
        if (begins || rangeFor) {
            sink.add(f, toks[i].line, "unordered-iter",
                     "iteration over unordered container '" +
                         toks[i].text +
                         "': order is hash-dependent and "
                         "nondeterministic across "
                         "implementations");
        }
    }
}

// ---- pointer-key ---------------------------------------------------

/**
 * File-local names that alias a pointer type: `using Key = T *;`
 * and `typedef T *Key;` (the alias may bury the '*' anywhere in the
 * aliased type, e.g. a pair with a pointer member - ordering on such
 * a key still compares addresses).  Closing the historical blind
 * spot where an aliased key escaped pointerKeyRule's '*' scan.
 */
std::set<std::string>
pointerAliases(const LexedFile &f)
{
    std::set<std::string> out;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isIdent(toks[i], "using") &&
            toks[i + 1].kind == TokKind::identifier &&
            isPunct(toks[i + 2], '=')) {
            for (std::size_t j = i + 3;
                 j < toks.size() && !isPunct(toks[j], ';'); ++j) {
                if (isPunct(toks[j], '*')) {
                    out.insert(toks[i + 1].text);
                    break;
                }
            }
        } else if (isIdent(toks[i], "typedef")) {
            bool ptr = false;
            std::size_t last = 0;
            for (std::size_t j = i + 1;
                 j < toks.size() && !isPunct(toks[j], ';'); ++j) {
                if (isPunct(toks[j], '*'))
                    ptr = true;
                else if (toks[j].kind == TokKind::identifier)
                    last = j;
            }
            if (ptr && last != 0)
                out.insert(toks[last].text);
        }
    }
    return out;
}

/**
 * Ordered containers keyed by raw pointers (`std::set<T *>`,
 * `std::map<T *, ...>`, their multi variants) iterate in *address*
 * order, which varies run to run with the allocator - the same
 * hidden-ordering hazard as unordered-iter, wearing a deterministic
 * costume.  A custom comparator over stable fields makes such a
 * container legitimate (the event queue's (when, priority, sequence)
 * set is the canonical example); those cases carry an inline allow
 * naming the comparator.  Keys spelled through a file-local pointer
 * alias (`using Key = T *;`) are caught via pointerAliases().
 */
void
pointerKeyRule(const LexedFile &f, Sink &sink)
{
    if (f.isTest)
        return;
    static const std::set<std::string> orderedContainers = {
        "set", "map", "multiset", "multimap"};
    const auto &toks = f.tokens;
    const std::set<std::string> aliases = pointerAliases(f);
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier ||
            orderedContainers.count(toks[i].text) == 0)
            continue;
        if (i + 1 >= toks.size() || !isPunct(toks[i + 1], '<'))
            continue;
        // Scan the first template argument (the key type): depth-1
        // tokens up to the first ',' or the closing '>'.
        int angle = 1;
        bool keyHasPointer = false;
        std::string viaAlias;
        bool closed = false;
        for (std::size_t j = i + 2;
             j < toks.size() && j < i + 200; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, '<')) {
                ++angle;
            } else if (isPunct(t, '>')) {
                if (--angle == 0) {
                    closed = true;
                    break;
                }
            } else if (isPunct(t, ';')) {
                break; // not a template-argument list after all
            } else if (angle == 1 && isPunct(t, ',')) {
                closed = true;
                break; // end of the key type
            } else if (isPunct(t, '*')) {
                keyHasPointer = true;
            } else if (angle == 1 &&
                       t.kind == TokKind::identifier &&
                       aliases.count(t.text) > 0) {
                keyHasPointer = true;
                viaAlias = t.text;
            }
        }
        if (closed && keyHasPointer) {
            sink.add(f, toks[i].line, "pointer-key",
                     "ordered '" + toks[i].text +
                         "' keyed by a raw pointer" +
                         (viaAlias.empty()
                              ? std::string()
                              : " (via the '" + viaAlias +
                                    "' alias)") +
                         " iterates in "
                         "address order, which varies run to run; "
                         "key by a stable id/value, or justify a "
                         "deterministic custom comparator with an "
                         "inline allow");
        }
    }
}

// ---- static-mutable ------------------------------------------------

/**
 * Decide whether the parens opening at @p open hold constructor
 * arguments (`static Histogram h(0.0, 1.0, 64);` - a mutable static
 * object, historically a blind spot) or a parameter list
 * (`static void helper(int);` - a function declaration).  Value-ish
 * arguments - literals and lowercase-initial identifier chains -
 * mean ctor; type-ish ones ('*'/'&', builtin type keywords, two
 * adjacent identifiers, a lone CamelCase identifier, template
 * angles, '=' defaults) or an empty list mean parameters.  The
 * whole declaration must end in ';' right after the ')'.
 */
bool
ctorInitArgs(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    std::size_t close = open;
    for (; close < toks.size(); ++close) {
        if (isPunct(toks[close], '('))
            ++depth;
        else if (isPunct(toks[close], ')') && --depth == 0)
            break;
    }
    if (close >= toks.size() || close == open + 1)
        return false; // unterminated, or `()`
    if (close + 1 >= toks.size() || !isPunct(toks[close + 1], ';'))
        return false; // `{` body, `const`, ... - not a plain decl
    static const std::set<std::string> typeWords = {
        "void",     "bool",     "char",     "short",   "int",
        "long",     "signed",   "unsigned", "float",   "double",
        "const",    "auto",     "std",      "size_t",  "int8_t",
        "int16_t",  "int32_t",  "int64_t",  "uint8_t", "uint16_t",
        "uint32_t", "uint64_t",
    };
    bool anyValue = false;
    for (std::size_t j = open + 1; j < close; ++j) {
        const Token &t = toks[j];
        if (isPunct(t, '*') || isPunct(t, '&') || isPunct(t, '=') ||
            isPunct(t, '<'))
            return false;
        if (t.kind != TokKind::identifier) {
            if (t.kind == TokKind::number ||
                t.kind == TokKind::str || t.kind == TokKind::chr)
                anyValue = true;
            continue;
        }
        if (typeWords.count(t.text) > 0)
            return false;
        if (j + 1 < toks.size() &&
            toks[j + 1].kind == TokKind::identifier)
            return false; // `Type name` pair
        if (t.text[0] >= 'A' && t.text[0] <= 'Z') {
            // A lone CamelCase identifier reads as an unnamed
            // parameter type unless it is being used in an
            // expression (a call or qualified name).
            if (j + 1 >= toks.size() ||
                (!isPunct(toks[j + 1], '(') &&
                 !isPunct(toks[j + 1], ':') &&
                 !isPunct(toks[j + 1], '.')))
                return false;
            continue;
        }
        anyValue = true;
    }
    return anyValue;
}

void
staticMutableRule(const LexedFile &f, Sink &sink)
{
    if (f.isTest)
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!isIdent(toks[i], "static"))
            continue;
        if (i + 1 >= toks.size())
            break;
        const Token &next = toks[i + 1];
        if (isIdent(next, "const") || isIdent(next, "constexpr") ||
            isIdent(next, "constinit") || isIdent(next, "assert"))
            continue;
        // Walk to the first structural token: '(' first means a
        // function declaration, '=' / ';' / '{' first means a
        // mutable static object.
        int angle = 0;
        bool flagged = false;
        for (std::size_t j = i + 1;
             j < toks.size() && j < i + 100; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, '<'))
                ++angle;
            else if (isPunct(t, '>'))
                angle = std::max(0, angle - 1);
            if (angle > 0)
                continue;
            if (isPunct(t, '(')) {
                // Parens are a function's parameter list unless
                // they hold constructor arguments: `static Foo
                // foo(seed);` is as mutable as `static Foo foo;`.
                flagged = ctorInitArgs(toks, j);
                break;
            }
            if (isPunct(t, '=') || isPunct(t, ';') ||
                isPunct(t, '{')) {
                flagged = true;
                break;
            }
        }
        if (flagged) {
            sink.add(f, toks[i].line, "static-mutable",
                     "mutable 'static' state in sim code breaks "
                         "run isolation and checkpoint coverage; "
                         "make it a member, const, or justify with "
                         "an inline allow");
        }
    }
}

// ---- void-discard --------------------------------------------------

void
voidDiscardRule(const LexedFile &f, Sink &sink)
{
    if (f.isTest)
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        // static_cast<void>(...)
        if (isIdent(toks[i], "static_cast") &&
            isPunct(toks[i + 1], '<') &&
            isIdent(toks[i + 2], "void")) {
            sink.add(f, toks[i].line, "void-discard",
                     "static_cast<void> launders a [[nodiscard]] "
                     "result; handle the Status/Result instead");
            continue;
        }
        // ( void ) <expr containing a call> ;
        if (!(isPunct(toks[i], '(') && isIdent(toks[i + 1], "void") &&
              isPunct(toks[i + 2], ')')))
            continue;
        if (i + 3 >= toks.size() ||
            toks[i + 3].kind != TokKind::identifier)
            continue; // parameter list `(void)` or cast of nothing
        bool hasCall = false;
        for (std::size_t j = i + 3;
             j < toks.size() && j < i + 300; ++j) {
            if (isPunct(toks[j], ';'))
                break;
            if (isPunct(toks[j], '(')) {
                hasCall = true;
                break;
            }
        }
        if (hasCall) {
            sink.add(f, toks[i].line, "void-discard",
                     "'(void)' cast discards a call's return "
                     "value; Status/Result are [[nodiscard]] so "
                     "handle the outcome (count it, log it, or "
                     "propagate it)");
        }
    }
}

// ---- deser-bound ---------------------------------------------------

/**
 * Flag container allocations sized by a raw Deserializer read.  A
 * count that came straight off the wire via getU64()/getU32()/
 * getI64()/getU8() must not size a reserve()/resize()/assign() or a
 * `new T[n]` without a bound check first: a hostile length field
 * turns the allocation into an OOM bomb.  Deserializer::getCount()
 * carries the check built in (a count can never exceed the bytes
 * left to decode it from), so values read through it are clean —
 * this rule exists to push every new decode site toward it.
 *
 * A tainted variable is considered checked if it ever appears next
 * to a `<` or `>` comparison or inside a min()/max() call before
 * use.  Token-level like every ablint rule: it sees one file at a
 * time and does not track taint across functions or calls.
 */
void
deserBoundRule(const LexedFile &f, Sink &sink)
{
    if (f.isTest)
        return;
    const auto &toks = f.tokens;

    static const std::set<std::string> taintingReads = {
        "getU64", "getU32", "getI64", "getU8"};

    // Pass 1: variables assigned from a raw deserializer read
    // (`name = d.getU64(` with no ';' in between), and variables
    // that are ever bound-checked.
    std::set<std::string> tainted;
    std::set<std::string> checked;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (!isPunct(toks[i], '.') ||
            toks[i + 1].kind != TokKind::identifier ||
            taintingReads.count(toks[i + 1].text) == 0 ||
            !isPunct(toks[i + 2], '('))
            continue;
        // Walk back to the `=` of the enclosing statement.
        std::size_t j = i;
        while (j > 0 && !isPunct(toks[j], ';') &&
               !isPunct(toks[j], '{') && !isPunct(toks[j], '='))
            --j;
        if (!isPunct(toks[j], '=') || j == 0 ||
            toks[j - 1].kind != TokKind::identifier)
            continue;
        tainted.insert(toks[j - 1].text);
    }
    if (tainted.empty())
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier ||
            tainted.count(toks[i].text) == 0)
            continue;
        const bool cmpBefore =
            i > 0 && (isPunct(toks[i - 1], '<') ||
                      isPunct(toks[i - 1], '>'));
        const bool cmpAfter = i + 1 < toks.size() &&
                              (isPunct(toks[i + 1], '<') ||
                               isPunct(toks[i + 1], '>'));
        if (cmpBefore || cmpAfter)
            checked.insert(toks[i].text);
    }
    // min()/max() clamps count as a check too.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier ||
            (toks[i].text != "min" && toks[i].text != "max"))
            continue;
        // Skip an explicit template argument list:
        // std::min<std::size_t>(n, cap).
        std::size_t open = i + 1;
        if (open < toks.size() && isPunct(toks[open], '<')) {
            int angle = 0;
            while (open < toks.size()) {
                if (isPunct(toks[open], '<'))
                    ++angle;
                else if (isPunct(toks[open], '>') && --angle == 0) {
                    ++open;
                    break;
                }
                ++open;
            }
        }
        if (open >= toks.size() || !isPunct(toks[open], '('))
            continue;
        int depth = 0;
        for (std::size_t j = open; j < toks.size(); ++j) {
            if (isPunct(toks[j], '('))
                ++depth;
            else if (isPunct(toks[j], ')') && --depth == 0)
                break;
            else if (toks[j].kind == TokKind::identifier &&
                     tainted.count(toks[j].text))
                checked.insert(toks[j].text);
        }
    }

    // Pass 2: tainted, unchecked variables inside the argument list
    // of an allocation-sizing call.
    const auto flagArgs = [&](std::size_t open, int line,
                              const std::string &what) {
        int depth = 0;
        for (std::size_t j = open; j < toks.size(); ++j) {
            if (isPunct(toks[j], '('))
                ++depth;
            else if (isPunct(toks[j], ')') && --depth == 0)
                return;
            else if (toks[j].kind == TokKind::identifier &&
                     tainted.count(toks[j].text) &&
                     checked.count(toks[j].text) == 0) {
                sink.add(f, line, "deser-bound",
                         "'" + toks[j].text + "' comes straight "
                             "from a Deserializer read and sizes " +
                             what +
                             " without a bound check; read it "
                             "with getCount() (or clamp it) so a "
                             "hostile length field cannot force a "
                             "huge allocation");
            }
        }
    };
    static const std::set<std::string> allocCalls = {
        "reserve", "resize", "assign"};
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isPunct(toks[i], '.') &&
            toks[i + 1].kind == TokKind::identifier &&
            allocCalls.count(toks[i + 1].text) > 0 &&
            isPunct(toks[i + 2], '(')) {
            flagArgs(i + 2, toks[i + 1].line,
                     "a " + toks[i + 1].text + "()");
        }
        // new T[n] / new T[n]{...}
        if (isIdent(toks[i], "new")) {
            std::size_t j = i + 1;
            while (j < toks.size() &&
                   (toks[j].kind == TokKind::identifier ||
                    isPunct(toks[j], ':') || isPunct(toks[j], '<') ||
                    isPunct(toks[j], '>')))
                ++j;
            if (j < toks.size() && isPunct(toks[j], '[')) {
                for (std::size_t k = j + 1;
                     k < toks.size() && !isPunct(toks[k], ']');
                     ++k) {
                    if (toks[k].kind == TokKind::identifier &&
                        tainted.count(toks[k].text) &&
                        checked.count(toks[k].text) == 0) {
                        sink.add(
                            f, toks[k].line, "deser-bound",
                            "'" + toks[k].text + "' comes "
                                "straight from a Deserializer "
                                "read and sizes a new[] without "
                                "a bound check; read it with "
                                "getCount() (or clamp it) so a "
                                "hostile length field cannot "
                                "force a huge allocation");
                    }
                }
            }
        }
    }
}

// ---- serialize-pair / serialize-registry ---------------------------

struct SerializerFlavor
{
    const char *ser;
    const char *deser;
};

constexpr SerializerFlavor serializerFlavors[] = {
    {"serialize", "deserialize"},
    {"serializePolicy", "deserializePolicy"},
    {"serializeState", "deserializeState"},
};

struct ClassRecord
{
    std::string name;
    const LexedFile *file = nullptr;
    int line = 0; ///< class declaration line
    std::map<std::string, int> serLines; ///< flavor.ser -> decl line
    std::set<std::string> desers;
};

/** Extract class records (with serializer methods) from one file. */
void
collectClasses(const LexedFile &f, std::vector<ClassRecord> &out)
{
    const auto &toks = f.tokens;
    struct Frame
    {
        ClassRecord rec;
        int openDepth = 0;
        bool isClass = false;
    };
    std::vector<Frame> stack;
    int depth = 0;
    bool enumPending = false;
    // Class frames awaiting their opening brace.
    std::vector<Frame> pending;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (isIdent(t, "enum")) {
            enumPending = true;
            continue;
        }
        if (isIdent(t, "class") || isIdent(t, "struct")) {
            if (enumPending) {
                enumPending = false;
                continue;
            }
            std::size_t j = i + 1;
            // skip [[attributes]] such as class [[nodiscard]] Foo
            if (j + 1 < toks.size() && isPunct(toks[j], '[') &&
                isPunct(toks[j + 1], '[')) {
                j += 2;
                while (j < toks.size() && !isPunct(toks[j], ']'))
                    ++j;
                while (j < toks.size() && isPunct(toks[j], ']'))
                    ++j;
            }
            if (j >= toks.size() ||
                toks[j].kind != TokKind::identifier)
                continue;
            Frame fr;
            fr.rec.name = toks[j].text;
            fr.rec.file = &f;
            fr.rec.line = toks[j].line;
            fr.isClass = true;
            // Find whether a body follows (skip base list).
            for (std::size_t k = j + 1;
                 k < toks.size() && k < j + 200; ++k) {
                if (isPunct(toks[k], ';'))
                    break; // forward declaration
                if (isPunct(toks[k], '{')) {
                    pending.push_back(fr);
                    break;
                }
            }
            continue;
        }
        if (t.kind == TokKind::punct && t.text == "{") {
            ++depth;
            if (!pending.empty()) {
                Frame fr = pending.back();
                pending.pop_back();
                fr.openDepth = depth;
                stack.push_back(std::move(fr));
            }
            continue;
        }
        if (t.kind == TokKind::punct && t.text == "}") {
            if (!stack.empty() && stack.back().openDepth == depth) {
                out.push_back(std::move(stack.back().rec));
                stack.pop_back();
            }
            --depth;
            continue;
        }
        if (t.kind == TokKind::identifier && !stack.empty() &&
            i + 1 < toks.size() && isPunct(toks[i + 1], '(')) {
            for (const auto &flavor : serializerFlavors) {
                if (t.text == flavor.ser)
                    stack.back().rec.serLines.emplace(flavor.ser,
                                                      t.line);
                if (t.text == flavor.deser)
                    stack.back().rec.desers.insert(flavor.deser);
            }
        }
    }
    while (!stack.empty()) {
        out.push_back(std::move(stack.back().rec));
        stack.pop_back();
    }
}

void
serializeRules(const ScanInput &in, Sink &sink,
               std::vector<Finding> &registryFindings)
{
    std::vector<ClassRecord> classes;
    std::set<std::string> srcLiterals;
    for (const auto &f : in.files) {
        if (f.isTest)
            continue;
        collectClasses(f, classes);
        for (const auto &t : f.tokens)
            if (t.kind == TokKind::str)
                srcLiterals.insert(t.text);
    }

    const auto entries = detail::parseRegistry(in.registryText);
    std::set<std::string> registered;
    for (const auto &e : entries)
        registered.insert(e.className);

    std::set<std::string> serializableNames;
    for (const auto &rec : classes) {
        if (rec.serLines.empty())
            continue;
        serializableNames.insert(rec.name);
        for (const auto &flavor : serializerFlavors) {
            const auto it = rec.serLines.find(flavor.ser);
            if (it == rec.serLines.end())
                continue;
            if (rec.desers.count(flavor.deser) == 0) {
                sink.add(*rec.file, it->second, "serialize-pair",
                         "class '" + rec.name + "' declares " +
                             flavor.ser + "() without " +
                             flavor.deser +
                             "(): state would be captured but not "
                             "restorable");
            }
        }
        if (registered.count(rec.name) == 0) {
            sink.add(*rec.file, rec.serLines.begin()->second,
                     "serialize-registry",
                     "serializable class '" + rec.name +
                         "' is not registered in "
                         "tools/ablint/serialized_state.txt; map "
                         "it to its checkpoint section (or the "
                         "registered component that serializes "
                         "it)");
        }
    }

    const std::string regPath = "tools/ablint/serialized_state.txt";
    for (const auto &e : entries) {
        if (serializableNames.count(e.className) == 0) {
            registryFindings.push_back(
                {regPath, e.line, "serialize-registry",
                 "registry entry '" + e.className +
                     "' matches no serializable class in src/ "
                     "(renamed or removed?)"});
        }
        if (registered.count(e.cover) == 0 &&
            srcLiterals.count(e.cover) == 0) {
            registryFindings.push_back(
                {regPath, e.line, "serialize-registry",
                 "cover '" + e.cover + "' of '" + e.className +
                     "' is neither a registered class nor a "
                     "checkpoint section string literal in src/"});
        }
    }
}

// ---- post-init-fatal -----------------------------------------------

/**
 * Flag fatal() calls in sim code.  Once a run is in flight, dying
 * takes every other seed in the sweep down with it; recoverable
 * conditions must surface as Status/Result so the supervisor can
 * roll back and retry (docs/ROBUSTNESS.md §8).  Construction-time
 * config validation is still legitimate - justified per site with an
 * inline allow naming the reason.
 */
void
postInitFatalRule(const LexedFile &f, Sink &sink)
{
    if (f.isTest || detail::fatalAllowlisted(f.path))
        return;
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "fatal") || !isPunct(toks[i + 1], '('))
            continue;
        // Skip declarations/definitions of fatal itself: a return
        // type or 'void' directly before the name.
        if (i > 0 && (isIdent(toks[i - 1], "void") ||
                      isPunct(toks[i - 1], ']')))
            continue;
        sink.add(f, toks[i].line, "post-init-fatal",
                 "fatal() kills the whole run (and every other seed "
                 "in a sweep); return a Status/Result the caller or "
                 "the supervisor can recover from, or justify "
                 "construction-time validation with an inline "
                 "allow");
    }
}

// ---- config-key ----------------------------------------------------

void
configKeyRule(const ScanInput &in, Sink &sink)
{
    for (const auto &f : in.files) {
        if (f.isTest)
            continue;
        const auto &toks = f.tokens;
        for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
            if (!isIdent(toks[i], "key") ||
                !isPunct(toks[i + 1], '=') ||
                !isPunct(toks[i + 2], '='))
                continue;
            if (toks[i + 3].kind != TokKind::str)
                continue;
            const std::string &lit = toks[i + 3].text;
            if (in.docsText.find(lit) == std::string::npos) {
                sink.add(f, toks[i + 3].line, "config-key",
                         "config key '" + lit +
                             "' is not documented in "
                             "EXPERIMENTS.md or docs/ (add it to "
                             "the config reference, docs/"
                             "CONFIG.md)");
            }
        }
    }
}

} // namespace

const std::vector<std::string> &
ruleNames()
{
    static const std::vector<std::string> names = {
        "wall-clock",     "unordered-iter",     "pointer-key",
        "static-mutable", "void-discard",       "deser-bound",
        "serialize-pair", "serialize-registry", "config-key",
        "post-init-fatal", "stale-baseline",
        // absema (semantic) rules, sema_rules.cc:
        "serialize-coverage", "schema-drift", "fatal-reach",
        "rng-stream", "layer-cycle", "stale-allow",
        // abflow (dataflow) rules, flow_rules.cc:
        "taint-bound", "unit-mix", "status-drop",
    };
    return names;
}

std::vector<Finding>
runRules(const ScanInput &in, AllowUse *uses, RuleProfile *profile)
{
    std::vector<Finding> findings;
    Sink sink{findings, uses};
    const struct
    {
        const char *name;
        void (*fn)(const LexedFile &, Sink &);
    } fileRules[] = {
        {"wall-clock", wallClockRule},
        {"unordered-iter", unorderedIterRule},
        {"pointer-key", pointerKeyRule},
        {"static-mutable", staticMutableRule},
        {"void-discard", voidDiscardRule},
        {"deser-bound", deserBoundRule},
        {"post-init-fatal", postInitFatalRule},
    };
    for (const auto &r : fileRules) {
        detail::timeRule(profile, r.name, [&] {
            for (const auto &f : in.files)
                r.fn(f, sink);
        });
    }
    std::vector<Finding> registryFindings;
    detail::timeRule(profile, "serialize-pair/registry", [&] {
        serializeRules(in, sink, registryFindings);
    });
    detail::timeRule(profile, "config-key",
                     [&] { configKeyRule(in, sink); });
    findings.insert(findings.end(), registryFindings.begin(),
                    registryFindings.end());
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

std::vector<Finding>
applyBaseline(const std::vector<Finding> &raw,
              const std::string &baselineText,
              const std::string &baselinePath, const ScanInput &in)
{
    struct Entry
    {
        std::string file;
        int line = 0;
        std::string rule;
        int srcLine = 0; ///< line in the baseline file
        bool matched = false;
    };
    std::vector<Entry> entries;
    {
        std::istringstream stream(baselineText);
        std::string line;
        int line_no = 0;
        while (std::getline(stream, line)) {
            ++line_no;
            const auto hash = line.find('#');
            if (hash != std::string::npos)
                line = line.substr(0, hash);
            while (!line.empty() &&
                   (line.back() == ' ' || line.back() == '\r' ||
                    line.back() == '\t'))
                line.pop_back();
            if (line.empty())
                continue;
            const auto c2 = line.rfind(':');
            const auto c1 =
                c2 == std::string::npos
                    ? std::string::npos
                    : line.rfind(':', c2 - 1);
            if (c1 == std::string::npos) {
                entries.push_back({line, 0, "", line_no, false});
                continue;
            }
            Entry e;
            e.file = line.substr(0, c1);
            e.line = std::atoi(line.substr(c1 + 1, c2 - c1 - 1).c_str());
            e.rule = line.substr(c2 + 1);
            e.srcLine = line_no;
            entries.push_back(std::move(e));
        }
    }

    std::vector<Finding> kept;
    for (const auto &f : raw) {
        bool suppressed = false;
        for (auto &e : entries) {
            if (e.file == f.file && e.line == f.line &&
                e.rule == f.rule) {
                e.matched = true;
                suppressed = true;
            }
        }
        if (!suppressed)
            kept.push_back(f);
    }

    for (const auto &e : entries) {
        if (e.matched)
            continue;
        std::string why = "matches no current finding";
        bool fileKnown = false;
        for (const auto &lf : in.files) {
            if (lf.path == e.file) {
                fileKnown = true;
                if (e.line > lf.lineCount)
                    why = "references line " +
                          std::to_string(e.line) + " past the end "
                          "of the file (" +
                          std::to_string(lf.lineCount) + " lines)";
                break;
            }
        }
        if (!fileKnown)
            why = "references a file that is no longer scanned";
        kept.push_back({baselinePath, e.srcLine, "stale-baseline",
                        "baseline entry '" + e.file + ":" +
                            std::to_string(e.line) + ":" + e.rule +
                            "' " + why +
                            "; delete it (the baseline only "
                            "shrinks)"});
    }
    return kept;
}

} // namespace biglittle::ablint
