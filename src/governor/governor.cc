#include "governor/governor.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

Governor::Governor(Simulation &sim_in, Cluster &cluster_in,
                   std::string name_in)
    : sim(sim_in), clusterRef(cluster_in),
      governorName(std::move(name_in))
{
}

FreqKHz
Governor::initialFreq() const
{
    return clusterRef.freqDomain().minFreq();
}

void
Governor::start()
{
    clusterRef.freqDomain().setFreqNow(initialFreq());
    lastSampleTick = sim.now();
    lastBusyTicks.assign(clusterRef.coreCount(), 0);
    clusterRef.sync();
    for (std::size_t i = 0; i < clusterRef.coreCount(); ++i)
        lastBusyTicks[i] = clusterRef.core(i).busyTicks();
    if (samplerTask == nullptr) {
        samplerTask = &sim.addPeriodic(
            samplingPeriod(), [this](Tick now) { onSample(now); },
            offsetPriority(EventPriority::governor,
                           clusterRef.core(0).id(), clusterSlots),
            clusterRef.name() + "." + governorName + ".sample");
    }
    samplerTask->setPeriod(samplingPeriod());
    samplerTask->start();
}

void
Governor::stop()
{
    if (samplerTask != nullptr)
        samplerTask->cancel();
}

void
Governor::onSample(Tick now)
{
    sim.noteRead(clusterRef.name(), "busy");
    sim.noteWrite(clusterRef.name() + "." + governorName, "policy");
    ++sampleCount;
    sample(now);
}

void
Governor::request(FreqKHz target)
{
    const Status st = clusterRef.freqDomain().requestFreq(target);
    if (!st.ok()) {
        ++deniedCount;
        debugLog("%s governor: %s; retrying next sample",
                 governorName.c_str(), st.message().c_str());
    }
}

double
Governor::clusterUtilization()
{
    const Tick now = sim.now();
    const Tick elapsed = now - lastSampleTick;
    lastSampleTick = now;
    if (elapsed == 0)
        return 0.0;
    clusterRef.sync();
    double max_util = 0.0;
    for (std::size_t i = 0; i < clusterRef.coreCount(); ++i) {
        const Core &core = clusterRef.core(i);
        const Tick busy = core.busyTicks();
        const Tick delta = busy - lastBusyTicks[i];
        lastBusyTicks[i] = busy;
        if (!core.online())
            continue;
        max_util = std::max(
            max_util, static_cast<double>(delta) /
                          static_cast<double>(elapsed));
    }
    return std::min(1.0, max_util);
}

void
Governor::serialize(Serializer &s) const
{
    s.putU64(sampleCount);
    s.putU64(deniedCount);
    s.putU64(lastSampleTick);
    s.putU64(lastBusyTicks.size());
    for (const Tick busy : lastBusyTicks)
        s.putU64(busy);
    serializePolicy(s);
}

void
Governor::deserialize(Deserializer &d)
{
    sampleCount = d.getU64();
    deniedCount = d.getU64();
    lastSampleTick = d.getU64();
    const std::uint64_t cores = d.getCount(sizeof(Tick));
    lastBusyTicks.assign(static_cast<std::size_t>(cores), 0);
    for (auto &busy : lastBusyTicks)
        busy = d.getU64();
    deserializePolicy(d);
}

void
Governor::serializePolicy(Serializer &) const
{
}

void
Governor::deserializePolicy(Deserializer &)
{
}

} // namespace biglittle
