/**
 * @file
 * Thread behaviors: the building blocks of synthetic applications.
 *
 * A Behavior owns the phase machine of one task.  Four archetypes
 * cover the mobile workloads the paper studies:
 *
 *  - ContinuousBehavior: back-to-back compute until a budget is
 *    retired (SPEC kernels, the encoder's hot thread).
 *  - PeriodicBehavior: a vsync-paced frame loop with log-normal
 *    per-frame cost (render/logic/audio threads of games and video).
 *  - BurstBehavior: runs bursts injected by a coordinator (UI and
 *    worker threads of the latency-oriented apps).
 *  - DutyCycleBehavior: holds an exact target utilization by
 *    adaptively pausing (the paper's microbenchmark).
 */

#ifndef BIGLITTLE_WORKLOAD_BEHAVIOR_HH
#define BIGLITTLE_WORKLOAD_BEHAVIOR_HH

#include <functional>
#include <string>

#include "base/random.hh"
#include "base/types.hh"
#include "sched/task.hh"
#include "sim/simulation.hh"
#include "workload/frame_stats.hh"

namespace biglittle
{

class Serializer;
class Deserializer;

/** Base class binding a task to its phase machine. */
class Behavior : public TaskClient
{
  public:
    Behavior(Simulation &sim, Task &task, Rng rng);

    ~Behavior() override;

    Behavior(const Behavior &) = delete;
    Behavior &operator=(const Behavior &) = delete;

    /** Begin generating work. */
    virtual void start() = 0;

    /**
     * Write the phase machine's mutable state (private rng plus the
     * subclass's progress fields).  Pending self-rescheduling events
     * are not written - restore is only valid via deterministic
     * re-execution, which recreates them (see docs/DETERMINISM.md).
     */
    virtual void serializeState(Serializer &s) const;

    /** Restore state written by serializeState(). */
    virtual void deserializeState(Deserializer &d);

    Task &task() { return taskRef; }
    const Task &task() const { return taskRef; }

    /**
     * Same-tick priority slot of this behavior's self-scheduled
     * events (.frame/.chunk/.duty).  AppInstance assigns each
     * behavior its own slot in the workSubmit band so same-tick
     * submissions from different threads never share a batch and
     * therefore settle in thread order, not schedule order
     * (docs/DETERMINISM.md).  Set before start().
     */
    void setWorkPriority(EventPriority prio) { workPrio = prio; }

    /** The slot assigned by setWorkPriority(). */
    EventPriority workPriority() const { return workPrio; }

  protected:
    Simulation &sim;
    Task &taskRef;
    Rng rng;
    // ablint:allow(serialize-coverage): construction-time event priority
    EventPriority workPrio = EventPriority::workSubmit;
};

/** Executes an instruction budget back to back. */
class ContinuousBehavior : public Behavior
{
  public:
    /**
     * @param total_instructions budget to retire (must be > 0)
     * @param on_complete invoked once when the budget drains
     */
    ContinuousBehavior(Simulation &sim, Task &task, Rng rng,
                       double total_instructions,
                       std::function<void(Tick)> on_complete = nullptr);

    void start() override;
    void onWorkDrained(Task &task) override;
    void serializeState(Serializer &s) const override;
    void deserializeState(Deserializer &d) override;

    bool complete() const { return completed; }
    Tick completionTick() const { return finishTick; }

  private:
    double budget;
    std::function<void(Tick)> onComplete;
    bool completed = false;
    Tick finishTick = 0;
};

/** Parameters for a frame-paced thread. */
struct PeriodicSpec
{
    Tick period = usToTicks(16667); ///< 60 Hz vsync
    double instPerPeriod = 2e6; ///< median per-frame cost
    double jitterSigma = 0.25; ///< log-normal cost spread
    Tick phase = 0; ///< offset of the first frame

    /**
     * Probability that a period actually does work; a skipped period
     * models a frame with nothing dirty to draw (UI threads of the
     * latency apps are quiet between user actions).  Skipped periods
     * are not counted as frames.
     */
    double activeProbability = 1.0;

    /**
     * Scene-pause modulation: when pauseCycle > 0, the thread idles
     * for pauseLength at the start of every pauseCycle of wall-clock
     * time (menus, replays, buffering stalls).  Threads of one app
     * share the wall clock, so their pauses align and produce the
     * fully idle windows the paper measures for games and video.
     */
    Tick pauseCycle = 0;
    Tick pauseLength = 0;
};

/** A vsync-paced frame loop. */
class PeriodicBehavior : public Behavior
{
  public:
    /**
     * @param stats optional frame-completion collector (the render
     *        thread of an FPS app feeds the paper's FPS metrics)
     */
    PeriodicBehavior(Simulation &sim, Task &task, Rng rng,
                     const PeriodicSpec &spec,
                     FrameStats *stats = nullptr);

    void start() override;
    void onWorkDrained(Task &task) override;
    void serializeState(Serializer &s) const override;
    void deserializeState(Deserializer &d) override;

    const PeriodicSpec &spec() const { return periodicSpec; }

    /** Frames completed so far. */
    std::uint64_t framesDone() const { return frames; }

  private:
    PeriodicSpec periodicSpec;
    FrameStats *stats;
    Tick nextRelease = 0;
    std::uint64_t frames = 0;

    void submitFrame();
};

/** Runs externally injected bursts; reports each drain. */
class BurstBehavior : public Behavior
{
  public:
    using DrainListener = std::function<void(BurstBehavior &, Tick)>;

    /**
     * @param chunk_instructions when > 0, bursts execute as chunks
     *        of this size separated by @p chunk_gap micro-stalls
     *        (page faults, locks, I/O waits), so a burst occupies
     *        its core at a realistic 60-85% duty instead of 100%
     * @param chunk_gap stall between chunks
     */
    BurstBehavior(Simulation &sim, Task &task, Rng rng,
                  double chunk_instructions = 0.0,
                  Tick chunk_gap = usToTicks(1200));

    void start() override;
    void onWorkDrained(Task &task) override;
    void serializeState(Serializer &s) const override;
    void deserializeState(Deserializer &d) override;

    /** Add @p instructions of burst work now. */
    void injectBurst(double instructions);

    /** Install the coordinator's drain callback. */
    void setDrainListener(DrainListener listener);

    /** Bursts completed so far. */
    std::uint64_t burstsDone() const { return bursts; }

  private:
    // ablint:allow(serialize-coverage): drain callback re-registered by the driver at construction
    DrainListener drainListener;
    double chunkInstructions; // ablint:allow(serialize-coverage): construction-time config from the burst spec (covers chunkGap)
    Tick chunkGap;
    double backlog = 0.0; ///< burst remainder awaiting chunks
    std::uint64_t bursts = 0;

    void submitNextChunk();
};

/** Holds a target CPU utilization by adaptive pausing. */
class DutyCycleBehavior : public Behavior
{
  public:
    /**
     * @param target_utilization busy fraction to hold, in (0, 1]
     * @param chunk_instructions work per busy burst
     */
    DutyCycleBehavior(Simulation &sim, Task &task, Rng rng,
                      double target_utilization,
                      double chunk_instructions = 2e6);

    void start() override;
    void onWorkDrained(Task &task) override;
    void serializeState(Serializer &s) const override;
    void deserializeState(Deserializer &d) override;

    double targetUtilization() const { return target; }

  private:
    double target; // ablint:allow(serialize-coverage): construction-time config from the duty-cycle spec (covers chunk)
    double chunk;
    Tick chunkStart = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_WORKLOAD_BEHAVIOR_HH
