#include "sched/task.hh"

#include "base/logging.hh"
#include "base/serialize.hh"
#include "platform/core.hh"
#include "sched/hmp.hh"

namespace biglittle
{

Task::Task(HmpScheduler &sched_in, TaskId id, std::string name,
           const WorkClass &work_class, double load_half_life_ms,
           std::optional<CoreId> pinned_in)
    : sched(sched_in), taskId(id), taskName(std::move(name)),
      wc(work_class), pinned(pinned_in), load(load_half_life_ms)
{
}

void
Task::submitWork(double instructions)
{
    BL_ASSERT(instructions > 0.0);
    if (taskState == TaskState::finished)
        return;
    pending += instructions;
    if (taskState == TaskState::sleeping)
        sched.wakeup(*this);
}

void
Task::finish()
{
    if (taskState != TaskState::sleeping)
        panic("task '%s' finished while not sleeping",
              taskName.c_str());
    taskState = TaskState::finished;
}

void
Task::consume(double instructions)
{
    BL_ASSERT(instructions >= 0.0);
    const double done = instructions < pending ? instructions : pending;
    pending -= done;
    retired += done;
}

void
Task::consumeAll()
{
    retired += pending;
    pending = 0.0;
}

void
Task::noteQueued(Core &core, Tick now)
{
    if (taskState == TaskState::sleeping) {
        runnableStart = now;
        loadStamp = now;
    }
    taskState = TaskState::queued;
    curCore = &core;
    lastCore = core.id();
}

void
Task::accrueLoad(Tick now, double freq_scale)
{
    if (now <= loadStamp)
        return;
    const double periods = static_cast<double>(now - loadStamp) /
                           static_cast<double>(oneMs);
    load.accrue(periods, 1.0, freq_scale);
    loadStamp = now;
}

void
Task::noteRunning()
{
    BL_ASSERT(taskState == TaskState::queued);
    taskState = TaskState::running;
}

void
Task::notePreempted()
{
    BL_ASSERT(taskState == TaskState::running);
    taskState = TaskState::queued;
}

void
Task::noteSleeping(Tick now)
{
    taskState = TaskState::sleeping;
    curCore = nullptr;
    sleepStart = now;
}

void
Task::serialize(Serializer &s) const
{
    s.putString(taskName);
    s.putU8(static_cast<std::uint8_t>(taskState));
    s.putU32(curCore != nullptr ? curCore->id() : invalidCoreId);
    s.putDouble(pending);
    s.putDouble(retired);
    s.putU64(migrations);
    s.putU64(runnableStart);
    s.putU64(sleepStart);
    s.putU64(loadStamp);
    s.putU64(littleRuntime);
    s.putU64(bigRuntime);
    s.putU32(lastCore);
    load.serialize(s);
}

void
Task::deserialize(Deserializer &d)
{
    const std::string name = d.getString();
    const auto state = static_cast<TaskState>(d.getU8());
    const CoreId core_id = d.getU32();
    const double pending_in = d.getDouble();
    const double retired_in = d.getDouble();
    const std::uint64_t migrations_in = d.getU64();
    const Tick runnable_start = d.getU64();
    const Tick sleep_start = d.getU64();
    const Tick load_stamp = d.getU64();
    const Tick little_rt = d.getU64();
    const Tick big_rt = d.getU64();
    const CoreId last_core = d.getU32();
    load.deserialize(d);
    if (!d.ok())
        return;
    BL_ASSERT(name == taskName);
    taskState = state;
    curCore = core_id == invalidCoreId
        ? nullptr : &sched.platform().core(core_id);
    pending = pending_in;
    retired = retired_in;
    migrations = migrations_in;
    runnableStart = runnable_start;
    sleepStart = sleep_start;
    loadStamp = load_stamp;
    littleRuntime = little_rt;
    bigRuntime = big_rt;
    lastCore = last_core;
}

} // namespace biglittle
