/**
 * @file
 * Tests for the frequency-residency analyzer (Figs. 9/10 data).
 */

#include <gtest/gtest.h>

#include "core/freq_residency.hh"
#include "platform/platform.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class ResidencyTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};

    Cluster &little() { return plat.littleCluster(); }
};

} // namespace

TEST_F(ResidencyTest, IdleClusterHasNoActiveTime)
{
    sim.runFor(oneSec);
    const FreqResidency res = makeFreqResidency(little());
    EXPECT_DOUBLE_EQ(res.totalActiveSeconds, 0.0);
    EXPECT_EQ(res.entries.size(),
              little().freqDomain().opps().size());
    for (const auto &e : res.entries)
        EXPECT_DOUBLE_EQ(e.fraction, 0.0);
}

TEST_F(ResidencyTest, SingleFreqGetsAllTheTime)
{
    little().freqDomain().setFreqNow(900000);
    little().core(0).setBusy(true);
    sim.runFor(msToTicks(250));
    little().core(0).setBusy(false);
    const FreqResidency res = makeFreqResidency(little());
    EXPECT_NEAR(res.totalActiveSeconds, 0.25, 1e-9);
    for (const auto &e : res.entries) {
        if (e.freq == 900000)
            EXPECT_DOUBLE_EQ(e.fraction, 1.0);
        else
            EXPECT_DOUBLE_EQ(e.fraction, 0.0);
    }
}

TEST_F(ResidencyTest, SplitsAcrossFrequencies)
{
    little().core(0).setBusy(true);
    little().freqDomain().setFreqNow(500000);
    sim.runFor(msToTicks(300));
    little().freqDomain().setFreqNow(1300000);
    sim.runFor(msToTicks(100));
    little().core(0).setBusy(false);
    const FreqResidency res = makeFreqResidency(little());
    EXPECT_NEAR(res.totalActiveSeconds, 0.4, 1e-9);
    for (const auto &e : res.entries) {
        if (e.freq == 500000) {
            EXPECT_NEAR(e.fraction, 0.75, 1e-9);
        } else if (e.freq == 1300000) {
            EXPECT_NEAR(e.fraction, 0.25, 1e-9);
        }
    }
}

TEST_F(ResidencyTest, AggregatesAcrossCores)
{
    little().freqDomain().setFreqNow(700000);
    little().core(0).setBusy(true);
    little().core(1).setBusy(true);
    sim.runFor(msToTicks(100));
    little().core(0).setBusy(false);
    little().core(1).setBusy(false);
    const FreqResidency res = makeFreqResidency(little());
    // Two cores x 100 ms = 0.2 core-seconds.
    EXPECT_NEAR(res.totalActiveSeconds, 0.2, 1e-9);
}

TEST_F(ResidencyTest, IdleTimeIsExcluded)
{
    little().freqDomain().setFreqNow(500000);
    sim.runFor(msToTicks(500)); // idle at 500 MHz
    little().core(2).setBusy(true);
    sim.runFor(msToTicks(100));
    little().core(2).setBusy(false);
    const FreqResidency res = makeFreqResidency(little());
    EXPECT_NEAR(res.totalActiveSeconds, 0.1, 1e-9);
    EXPECT_DOUBLE_EQ(res.entries.front().fraction, 1.0);
}

TEST_F(ResidencyTest, FractionsSumToOneWhenActive)
{
    little().core(0).setBusy(true);
    for (const Opp &opp : little().freqDomain().opps()) {
        little().freqDomain().setFreqNow(opp.freq);
        sim.runFor(msToTicks(37));
    }
    little().core(0).setBusy(false);
    const FreqResidency res = makeFreqResidency(little());
    double sum = 0.0;
    for (const auto &e : res.entries)
        sum += e.fraction;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    // Uniform time per OPP -> uniform fractions.
    for (const auto &e : res.entries)
        EXPECT_NEAR(e.fraction,
                    1.0 / static_cast<double>(res.entries.size()),
                    1e-9);
}
