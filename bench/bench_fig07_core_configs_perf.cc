/**
 * @file
 * Fig. 7: performance (latency or FPS) of the seven restricted core
 * configurations, relative to the L4+B4 baseline, for all apps.
 *
 * Expected shape (Section V-C): little-only configurations degrade
 * some apps severely; adding a single big core recovers most of the
 * interactivity; angry_bird and video_player barely care.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig07_core_configs_perf",
                   "Fig. 7: performance with core combinations");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "config", "perf_value",
                     "perf_change_pct", "metric"});
    }

    const auto configs = standardCoreConfigs();
    const auto apps = allApps();

    // Baseline first (last entry of standardCoreConfigs is L4+B4).
    std::vector<std::vector<AppRunResult>> by_config;
    for (const CoreConfig &cc : configs) {
        ExperimentConfig cfg;
        cfg.coreConfig = cc;
        cfg.label = cc.label;
        by_config.push_back(runApps(cfg, apps));
    }
    const auto &baseline = by_config.back();

    std::string header = padRight("app", 18);
    for (const CoreConfig &cc : configs)
        header += padLeft(cc.label, 9);
    std::printf("%s\n", header.c_str());
    std::puts("  (performance change vs L4+B4, %; latency apps: "
              "negative = slower)");

    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::string line = padRight(apps[a].name, 18);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            const AppRunResult &r = by_config[c][a];
            const AppRunResult &b = baseline[a];
            // For latency, lower is better: report change in
            // "goodness" so the sign is comparable across metrics.
            double change;
            if (apps[a].metric == AppMetric::latency) {
                change = -pctChange(
                    static_cast<double>(r.latency),
                    static_cast<double>(b.latency));
            } else {
                change = pctChange(r.avgFps, b.avgFps);
            }
            line += padLeft(format("%.1f", change), 9);
            if (csv) {
                csv->beginRow();
                csv->cell(apps[a].name);
                csv->cell(configs[c].label);
                csv->cell(r.performanceValue());
                csv->cell(change);
                csv->cell(std::string(appMetricName(apps[a].metric)));
                csv->endRow();
            }
        }
        std::printf("%s\n", line.c_str());
    }
    return 0;
}
