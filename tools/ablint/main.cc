/**
 * @file
 * ablint CLI.
 *
 *   ablint --repo <root> [--baseline F] [--registry F] [--schema F]
 *          [--write-baseline F] [--write-schema] [--format=FMT]
 *          [--profile] [--list-rules] [extra paths...]
 *
 * --format is text (default), github (::error workflow commands for
 * inline PR annotations) or json (one array of finding objects).
 * --profile prints per-rule wall time (ms, slowest first) to stderr
 * after the findings - CI budgets the lint step with it.
 * --write-schema regenerates tools/ablint/state_schema.txt from the
 * current sources - refused when field digests changed without a
 * checkpointVersion bump (the drift the manifest exists to catch).
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include "ablint.hh"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

int
main(int argc, char **argv)
{
    using namespace biglittle::ablint;

    std::string repo = ".";
    std::string baseline;
    std::string registry;
    std::string schema;
    std::string writeBaseline;
    std::string format = "text";
    bool writeSchema = false;
    bool profile = false;
    std::vector<std::string> extras;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ablint: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--repo") {
            repo = value();
        } else if (arg == "--baseline") {
            baseline = value();
        } else if (arg == "--registry") {
            registry = value();
        } else if (arg == "--schema") {
            schema = value();
        } else if (arg == "--write-baseline") {
            writeBaseline = value();
        } else if (arg == "--write-schema") {
            writeSchema = true;
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--format") {
            format = value();
        } else if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
        } else if (arg == "--list-rules") {
            for (const auto &name : ruleNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: ablint [--repo ROOT] [--baseline FILE]\n"
                "              [--registry FILE] [--schema FILE]\n"
                "              [--write-baseline FILE] "
                "[--write-schema]\n"
                "              [--format=text|github|json] "
                "[--profile]\n"
                "              [--list-rules] [extra paths...]\n"
                "\n"
                "Determinism & error-discipline lint over src/ and\n"
                "tests/ - lexical rules plus the absema semantic\n"
                "pass.  See docs/STATIC_ANALYSIS.md.\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ablint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            extras.push_back(arg);
        }
    }
    if (format != "text" && format != "github" && format != "json") {
        std::fprintf(stderr,
                     "ablint: unknown format '%s' (text, github, "
                     "json)\n",
                     format.c_str());
        return 2;
    }

    if (writeSchema) {
        const std::string schemaPath =
            schema.empty() ? repo + "/tools/ablint/state_schema.txt"
                           : schema;
        try {
            const ScanInput in =
                loadRepo(repo, registry, schemaPath, extras);
            const std::string blocked = schemaRegenBlocked(in);
            if (!blocked.empty()) {
                std::fprintf(stderr, "ablint: %s\n",
                             blocked.c_str());
                return 2;
            }
            std::ofstream out(schemaPath);
            if (!out) {
                std::fprintf(stderr,
                             "ablint: cannot write schema '%s'\n",
                             schemaPath.c_str());
                return 2;
            }
            out << renderSchemaManifest(in);
            std::printf("ablint: wrote %s\n", schemaPath.c_str());
            return 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    std::vector<Finding> findings;
    RuleProfile ruleProfile;
    try {
        findings = runOnRepo(repo, baseline, registry, schema,
                             extras,
                             profile ? &ruleProfile : nullptr);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (profile) {
        std::vector<std::pair<std::string, double>> timings(
            ruleProfile.begin(), ruleProfile.end());
        std::sort(timings.begin(), timings.end(),
                  [](const auto &a, const auto &b) {
                      return a.second > b.second;
                  });
        double total = 0.0;
        for (const auto &[name, ms] : timings)
            total += ms;
        std::fprintf(stderr, "ablint: rule timings (ms)\n");
        for (const auto &[name, ms] : timings)
            std::fprintf(stderr, "  %10.3f  %s\n", ms,
                         name.c_str());
        std::fprintf(stderr, "  %10.3f  total\n", total);
    }

    if (!writeBaseline.empty()) {
        std::ofstream out(writeBaseline);
        if (!out) {
            std::fprintf(stderr,
                         "ablint: cannot write baseline '%s'\n",
                         writeBaseline.c_str());
            return 2;
        }
        out << "# ablint suppression baseline: path:line:rule\n"
            << "# regenerate with: ablint --repo . "
               "--write-baseline tools/ablint/baseline.txt\n";
        for (const auto &f : findings) {
            if (f.rule == "stale-baseline")
                continue;
            out << f.file << ":" << f.line << ":" << f.rule << "\n";
        }
        std::printf("ablint: wrote %zu baseline entr%s to %s\n",
                    findings.size(),
                    findings.size() == 1 ? "y" : "ies",
                    writeBaseline.c_str());
        return 0;
    }

    if (format == "json") {
        std::printf("[");
        for (std::size_t i = 0; i < findings.size(); ++i)
            std::printf("%s%s", i == 0 ? "" : ",",
                        findings[i].formatJson().c_str());
        std::printf("]\n");
        return findings.empty() ? 0 : 1;
    }
    for (const auto &f : findings)
        std::printf("%s\n",
                    format == "github" ? f.formatGithub().c_str()
                                       : f.format().c_str());
    if (findings.empty()) {
        if (format == "text")
            std::printf("ablint: clean\n");
        return 0;
    }
    if (format == "text")
        std::printf("ablint: %zu finding(s)\n", findings.size());
    return 1;
}
