/**
 * @file
 * Status / Result<T>: lightweight recoverable-error values.
 *
 * fatal() and panic() remain the right answer for unusable user
 * configuration and internal bugs, but paths that a running
 * simulation can survive (a denied DVFS transition, a refused
 * hotplug, a failed evacuation) return a Status instead so the
 * caller can degrade gracefully.  The vocabulary follows the usual
 * canonical codes, trimmed to what the workbench needs.
 */

#ifndef BIGLITTLE_BASE_STATUS_HH
#define BIGLITTLE_BASE_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "base/logging.hh"

namespace biglittle
{

/** Canonical error categories for recoverable failures. */
enum class StatusCode
{
    ok,
    invalidArgument, ///< the request itself is malformed
    failedPrecondition, ///< valid request, wrong system state
    notFound, ///< named entity does not exist
    outOfRange, ///< value outside the representable/legal range
    unavailable, ///< transient refusal; retrying later may succeed
    internal, ///< invariant violated but survivable
};

/** Stable lower-case name of a status code ("failed-precondition"). */
const char *statusCodeName(StatusCode code);

/** The outcome of a recoverable operation: a code plus a message. */
class [[nodiscard]] Status
{
  public:
    /** Default construction is success. */
    Status() = default;

    Status(StatusCode code, std::string message)
        : statusCode(code), msg(std::move(message))
    {
    }

    [[nodiscard]] bool ok() const
    {
        return statusCode == StatusCode::ok;
    }
    [[nodiscard]] StatusCode code() const { return statusCode; }
    [[nodiscard]] const std::string &message() const { return msg; }

    /** "ok" or "<code-name>: <message>". */
    std::string toString() const;

    bool
    operator==(const Status &other) const
    {
        return statusCode == other.statusCode && msg == other.msg;
    }

  private:
    StatusCode statusCode = StatusCode::ok;
    std::string msg;
};

/** Success. */
inline Status
okStatus()
{
    return Status{};
}

inline Status
invalidArgument(std::string msg)
{
    return Status{StatusCode::invalidArgument, std::move(msg)};
}

inline Status
failedPrecondition(std::string msg)
{
    return Status{StatusCode::failedPrecondition, std::move(msg)};
}

inline Status
notFound(std::string msg)
{
    return Status{StatusCode::notFound, std::move(msg)};
}

inline Status
outOfRange(std::string msg)
{
    return Status{StatusCode::outOfRange, std::move(msg)};
}

inline Status
unavailable(std::string msg)
{
    return Status{StatusCode::unavailable, std::move(msg)};
}

inline Status
internalError(std::string msg)
{
    return Status{StatusCode::internal, std::move(msg)};
}

/**
 * Either a value or the Status explaining why there is none.
 * Constructing from a value yields ok(); constructing from a Status
 * requires a non-ok code.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : val(std::move(value)) {}

    Result(Status status) : st(std::move(status))
    {
        BL_ASSERT(!st.ok());
    }

    [[nodiscard]] bool ok() const { return st.ok(); }
    [[nodiscard]] const Status &status() const { return st; }

    T &
    value()
    {
        BL_ASSERT(val.has_value());
        return *val;
    }

    const T &
    value() const
    {
        BL_ASSERT(val.has_value());
        return *val;
    }

    /** The value, or @p fallback when this Result holds an error. */
    [[nodiscard]] T
    valueOr(T fallback) const
    {
        return val.has_value() ? *val : std::move(fallback);
    }

  private:
    Status st;
    std::optional<T> val;
};

} // namespace biglittle

#endif // BIGLITTLE_BASE_STATUS_HH
