/**
 * @file
 * AppSpec / AppInstance: declarative descriptions of the mobile
 * interactive applications of Table II and the machinery that
 * instantiates them as tasks + behaviors on a scheduler.
 *
 * An app is a set of threads.  FPS-oriented apps (games, video) are
 * built from frame-paced periodic threads, one of which is the
 * render thread whose completions define the FPS metrics.  Latency-
 * oriented apps add a UI thread and worker threads driven by a
 * scripted WorkflowDriver whose end-to-end time is the latency
 * metric.  Both kinds may carry background periodic threads
 * (compositor, audio, binder) that shape idle% and TLP.
 */

#ifndef BIGLITTLE_WORKLOAD_APP_MODEL_HH
#define BIGLITTLE_WORKLOAD_APP_MODEL_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "platform/work_class.hh"
#include "sched/hmp.hh"
#include "workload/behavior.hh"
#include "workload/workflow.hh"

namespace biglittle
{

/** How an app's performance is judged (Table II). */
enum class AppMetric
{
    latency,
    fps,
};

/** Human-readable metric name. */
const char *appMetricName(AppMetric metric);

/** A frame-paced thread of an app. */
struct PeriodicThreadSpec
{
    std::string name;
    WorkClass workClass;
    PeriodicSpec periodic;
    bool isRender = false; ///< feeds the app's FrameStats
};

/** A burst-driven worker thread of a latency app. */
struct BurstThreadSpec
{
    std::string name;
    WorkClass workClass;
};

/** Declarative description of one application. */
struct AppSpec
{
    std::string name;
    AppMetric metric = AppMetric::fps;

    /** FPS apps: run length.  Latency apps: safety cap. */
    Tick duration = msToTicks(30000);

    /** Frame-paced threads (render/logic/audio/compositor). */
    std::vector<PeriodicThreadSpec> periodicThreads;

    /** Latency apps: the UI thread's work character. */
    WorkClass uiWorkClass = ::biglittle::uiWorkClass();

    /** Latency apps: worker threads addressed by action indices. */
    std::vector<BurstThreadSpec> workers;

    /** Latency apps: the scripted user-action sequence. */
    std::vector<ActionSpec> actions;

    /** Log-normal sigma applied to action burst sizes. */
    double burstJitterSigma = 0.15;

    /**
     * Worker bursts execute in chunks of this many instructions
     * separated by burstChunkGap micro-stalls; 0 disables chunking
     * (tight loops like the encoder hot thread).
     */
    double burstChunkInstructions = 0.0;
    Tick burstChunkGap = usToTicks(1200);

    /** Per-app RNG seed (runs are reproducible). */
    std::uint64_t seed = 1;
};

/** A running instance of an AppSpec. */
class AppInstance
{
  public:
    AppInstance(Simulation &sim, HmpScheduler &sched,
                const AppSpec &spec);

    AppInstance(const AppInstance &) = delete;
    AppInstance &operator=(const AppInstance &) = delete;

    ~AppInstance();

    const AppSpec &spec() const { return appSpec; }

    /** Start all threads (and the workflow for latency apps). */
    void start();

    /** Latency apps: true once the action script has completed. */
    bool done() const;

    /** Latency apps: end-to-end script latency (valid once done()). */
    Tick latency() const;

    /** FPS apps: frame statistics of the render thread. */
    const FrameStats &frameStats() const { return renderStats; }

    /** Actions completed (latency apps; 0 otherwise). */
    std::size_t actionsCompleted() const;

    /**
     * Write all behaviors' phase machines, the render FrameStats,
     * and the workflow driver (latency apps), in creation order.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    HmpScheduler &sched;
    AppSpec appSpec;

    std::vector<std::unique_ptr<Behavior>> behaviors;
    BurstBehavior *uiBehavior = nullptr;
    std::vector<BurstBehavior *> workerBehaviors;
    std::unique_ptr<WorkflowDriver> driver;
    FrameStats renderStats;
};

} // namespace biglittle

#endif // BIGLITTLE_WORKLOAD_APP_MODEL_HH
