/**
 * @file
 * Library microbenchmarks (google-benchmark): throughput of the
 * event queue, the load tracker, the analytic performance model, and
 * end-to-end simulation speed (simulated milliseconds per wall
 * second for a full app run).
 */

#include <benchmark/benchmark.h>

#include "core/experiment.hh"
#include "platform/perf_model.hh"
#include "sched/load.hh"
#include "sim/simulation.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

void
BM_EventQueueScheduleService(benchmark::State &state)
{
    EventQueue queue;
    const int n = static_cast<int>(state.range(0));
    std::vector<std::unique_ptr<CallbackEvent>> events;
    events.reserve(n);
    for (int i = 0; i < n; ++i) {
        events.push_back(std::make_unique<CallbackEvent>([] {}));
    }
    for (auto _ : state) {
        for (int i = 0; i < n; ++i)
            queue.schedule(*events[i],
                           queue.now() + 1 + (i * 7919) % 1000);
        while (queue.serviceOne()) {
        }
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleService)->Arg(64)->Arg(1024);

void
BM_LoadTrackerUpdate(benchmark::State &state)
{
    LoadTracker tracker(32.0);
    double f = 0.3;
    for (auto _ : state) {
        tracker.update(0.8, f);
        f = f < 0.9 ? f + 1e-4 : 0.3;
        benchmark::DoNotOptimize(tracker.value());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LoadTrackerUpdate);

void
BM_PerfModelNsPerInst(benchmark::State &state)
{
    const PlatformParams params = exynos5422Params();
    const CacheModel l2(params.clusters[0].l2);
    WorkClass wc{0.6, 0.02, 900.0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(perf_model::nsPerInst(
            params.clusters[0].perf, l2, 1300000, wc));
        wc.footprintKB = wc.footprintKB < 4096 ? wc.footprintKB + 1
                                               : 128.0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PerfModelNsPerInst);

void
BM_FullAppSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        Experiment experiment;
        AppSpec app = angryBirdApp();
        app.duration = msToTicks(2000);
        const AppRunResult result = experiment.runApp(app);
        benchmark::DoNotOptimize(result.avgFps);
    }
    state.SetLabel("2000 simulated ms per iteration");
}
BENCHMARK(BM_FullAppSimulation)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
