/**
 * @file
 * Tests for the analytic performance model, including the Fig. 2
 * calibration properties: big always wins at iso-frequency, cache-
 * sensitive speedups reach ~4x, low-ILP kernels lose on big@0.8 GHz,
 * and memory-bound work is DVFS-insensitive.
 */

#include <gtest/gtest.h>

#include "platform/perf_model.hh"
#include "platform/platform.hh"
#include "sim/simulation.hh"
#include "workload/spec.hh"

using namespace biglittle;

namespace
{

const PlatformParams params = exynos5422Params();
const ClusterParams &littleP = params.clusters[0];
const ClusterParams &bigP = params.clusters[1];

} // namespace

TEST(PerfModel, CoreCpiDecreasesWithIlp)
{
    const WorkClass serial{0.0, 0.0, 64.0};
    const WorkClass parallel{1.0, 0.0, 64.0};
    EXPECT_GT(perf_model::coreCpi(bigP.perf, serial),
              perf_model::coreCpi(bigP.perf, parallel));
    EXPECT_GT(perf_model::coreCpi(littleP.perf, serial),
              perf_model::coreCpi(littleP.perf, parallel));
}

TEST(PerfModel, BigCoreHasLowerCpi)
{
    for (double ilp : {0.0, 0.3, 0.6, 1.0}) {
        const WorkClass wc{ilp, 0.01, 128.0};
        EXPECT_LT(perf_model::coreCpi(bigP.perf, wc),
                  perf_model::coreCpi(littleP.perf, wc))
            << "ilp " << ilp;
    }
}

TEST(PerfModel, TimeScalesInverselyWithFreqForComputeBound)
{
    const WorkClass wc{0.8, 0.0, 64.0};
    const CacheModel l2(littleP.l2);
    const double t1 = perf_model::nsPerInst(littleP.perf, l2, 650000, wc);
    const double t2 =
        perf_model::nsPerInst(littleP.perf, l2, 1300000, wc);
    EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

TEST(PerfModel, MemoryBoundWorkIsFreqInsensitive)
{
    // Giant streaming footprint: the DRAM term dominates and does
    // not scale with the core clock.
    const WorkClass wc{0.5, 0.05, 1 << 20};
    const CacheModel l2(littleP.l2);
    const double t_slow =
        perf_model::nsPerInst(littleP.perf, l2, 500000, wc);
    const double t_fast =
        perf_model::nsPerInst(littleP.perf, l2, 1300000, wc);
    EXPECT_LT(t_slow / t_fast, 1.5); // far below the 2.6x clock ratio
}

TEST(PerfModel, BigAlwaysFasterAtIsoFrequency)
{
    // Section III-A: with the L2 size difference, a big core always
    // outperforms a little core at the same frequency.
    for (const SpecKernel &k : specSuite()) {
        const double s = perf_model::speedup(bigP, 1300000, littleP,
                                             1300000, k.workClass);
        EXPECT_GT(s, 1.0) << k.name;
    }
}

TEST(PerfModel, CacheSensitiveSpeedupReachesFourX)
{
    double best = 0.0;
    for (const SpecKernel &k : specSuite()) {
        best = std::max(best,
                        perf_model::speedup(bigP, 1300000, littleP,
                                            1300000, k.workClass));
    }
    // The paper reports up to ~4.5x at the shared 1.3 GHz point.
    EXPECT_GT(best, 3.5);
    EXPECT_LT(best, 5.0);
}

TEST(PerfModel, SomeKernelsLoseOnBigAtMinFreq)
{
    // Fig. 2: three low-ILP kernels run slower on big@0.8 GHz than
    // on little@1.3 GHz.
    int losers = 0;
    for (const SpecKernel &k : specSuite()) {
        if (perf_model::speedup(bigP, 800000, littleP, 1300000,
                                k.workClass) < 1.0)
            ++losers;
    }
    EXPECT_GE(losers, 2);
    EXPECT_LE(losers, 4);
}

TEST(PerfModel, SpeedupGrowsWithBigFrequency)
{
    for (const SpecKernel &k : specSuite()) {
        const double s08 = perf_model::speedup(bigP, 800000, littleP,
                                               1300000, k.workClass);
        const double s13 = perf_model::speedup(bigP, 1300000, littleP,
                                               1300000, k.workClass);
        const double s19 = perf_model::speedup(bigP, 1900000, littleP,
                                               1300000, k.workClass);
        EXPECT_LT(s08, s13) << k.name;
        EXPECT_LT(s13, s19) << k.name;
    }
}

TEST(PerfModel, InstRateUsesCurrentDomainFreq)
{
    Simulation sim;
    AsymmetricPlatform plat(sim, params);
    Core &core = plat.littleCluster().core(0);
    const WorkClass wc{0.8, 0.0, 64.0};
    plat.littleCluster().freqDomain().setFreqNow(500000);
    const double slow = perf_model::instRate(core, wc);
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    const double fast = perf_model::instRate(core, wc);
    EXPECT_NEAR(fast / slow, 2.6, 1e-9);
}

TEST(PerfModel, InstRateAtIgnoresCurrentFreq)
{
    Simulation sim;
    AsymmetricPlatform plat(sim, params);
    Core &core = plat.littleCluster().core(0);
    const WorkClass wc{0.8, 0.01, 64.0};
    plat.littleCluster().freqDomain().setFreqNow(500000);
    const double r1 = perf_model::instRateAt(core, 1300000, wc);
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    const double r2 = perf_model::instRate(core, wc);
    EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(PerfModel, RatesAreInPlausibleRange)
{
    Simulation sim;
    AsymmetricPlatform plat(sim, params);
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    plat.bigCluster().freqDomain().setFreqNow(1900000);
    const WorkClass wc = uiWorkClass();
    const double little =
        perf_model::instRate(plat.littleCluster().core(0), wc);
    const double big =
        perf_model::instRate(plat.bigCluster().core(0), wc);
    // GIPS-scale rates for mobile cores.
    EXPECT_GT(little, 3e8);
    EXPECT_LT(little, 3e9);
    EXPECT_GT(big, 1e9);
    EXPECT_LT(big, 6e9);
}

/** Property: ns/inst is monotone decreasing in frequency. */
class FreqMonotonicity : public ::testing::TestWithParam<int>
{
};

TEST_P(FreqMonotonicity, MonotoneInFrequency)
{
    const SpecKernel &k = specSuite()[GetParam()];
    const CacheModel l2(littleP.l2);
    double prev = 1e99;
    for (FreqKHz f = 200000; f <= 2000000; f += 100000) {
        const double t =
            perf_model::nsPerInst(littleP.perf, l2, f, k.workClass);
        ASSERT_LT(t, prev) << "freq " << f;
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, FreqMonotonicity,
                         ::testing::Range(0, 12));
