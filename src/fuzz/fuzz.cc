#include "fuzz/fuzz.hh"

#include <chrono>
#include <exception>

#include "base/strutil.hh"

namespace biglittle
{

const char *
fuzzFailureKindName(FuzzFailureKind kind)
{
    switch (kind) {
      case FuzzFailureKind::exception:
        return "exception";
      case FuzzFailureKind::hang:
        return "hang";
      case FuzzFailureKind::allocation:
        return "allocation";
    }
    return "unknown";
}

void
mutateBytes(Rng &rng, std::vector<std::uint8_t> &input)
{
    // An empty input can only grow; everything else picks among the
    // seven strategies.  The strategy draw comes first so a given
    // (seed, iteration) always applies the same transformation even
    // if strategies are added at the end of the list later.
    const std::uint64_t strategy = rng.uniformInt(0, 6);
    if (input.empty() || strategy == 5) {
        // Insert 1-16 random bytes at a random offset.
        const std::size_t n =
            static_cast<std::size_t>(rng.uniformInt(1, 16));
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(0, input.size()));
        std::vector<std::uint8_t> bytes(n);
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        input.insert(input.begin() +
                         static_cast<std::ptrdiff_t>(at),
                     bytes.begin(), bytes.end());
        return;
    }
    switch (strategy) {
      case 0: { // single bit flip
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(0, input.size() - 1));
        input[at] ^= static_cast<std::uint8_t>(
            1u << rng.uniformInt(0, 7));
        break;
      }
      case 1: { // byte overwrite
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(0, input.size() - 1));
        input[at] =
            static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        break;
      }
      case 2: { // truncate at a random byte
        input.resize(static_cast<std::size_t>(
            rng.uniformInt(0, input.size() - 1)));
        break;
      }
      case 3: { // truncate at an 8-byte boundary (field edges)
        const std::size_t fields = input.size() / 8;
        input.resize(8 * static_cast<std::size_t>(
                             rng.uniformInt(0, fields)));
        break;
      }
      case 4: { // inflate an aligned 8-byte LE field (length bombs)
        if (input.size() < 8)
            break;
        const std::size_t slot = static_cast<std::size_t>(
            rng.uniformInt(0, input.size() / 8 - 1));
        // Huge but structured values: all-ones, 2^63, a large
        // round count — the shapes length-check bugs miss.
        static const std::uint64_t bombs[] = {
            ~0ull, 1ull << 63, 1ull << 32, 0x00FFFFFFFFFFFFFFull};
        const std::uint64_t v =
            bombs[rng.uniformInt(0, 3)];
        for (std::size_t i = 0; i < 8; ++i)
            input[slot * 8 + i] =
                static_cast<std::uint8_t>(v >> (8 * i));
        break;
      }
      case 6: { // duplicate a random slice (repeated sections)
        const std::size_t from = static_cast<std::size_t>(
            rng.uniformInt(0, input.size() - 1));
        const std::size_t len = static_cast<std::size_t>(
            rng.uniformInt(1, input.size() - from));
        std::vector<std::uint8_t> slice(
            input.begin() + static_cast<std::ptrdiff_t>(from),
            input.begin() +
                static_cast<std::ptrdiff_t>(from + len));
        const std::size_t at = static_cast<std::size_t>(
            rng.uniformInt(0, input.size()));
        input.insert(input.begin() +
                         static_cast<std::ptrdiff_t>(at),
                     slice.begin(), slice.end());
        break;
      }
    }
}

std::vector<std::uint8_t>
Fuzzer::inputFor(const FuzzTarget &target,
                 std::uint64_t iteration) const
{
    const std::vector<std::vector<std::uint8_t>> seeds =
        target.seedInputs();
    // First, the corpus itself: a decoder that chokes on its own
    // encoder's output is the cheapest bug to find.
    if (iteration < seeds.size())
        return seeds[iteration];

    Rng rng(deriveStreamSeed(
        opts.seed,
        target.name() + "#" + std::to_string(iteration)));
    std::vector<std::uint8_t> input =
        seeds.empty()
            ? std::vector<std::uint8_t>{}
            : seeds[rng.uniformInt(0, seeds.size() - 1)];
    const std::uint64_t rounds = rng.uniformInt(1, 4);
    for (std::uint64_t i = 0; i < rounds; ++i) {
        if (!target.mutate(rng, input))
            mutateBytes(rng, input);
    }
    return input;
}

FuzzStats
Fuzzer::run(const FuzzTarget &target) const
{
    FuzzStats stats;
    const std::uint64_t first =
        opts.onlyIteration >= 0
            ? static_cast<std::uint64_t>(opts.onlyIteration)
            : 0;
    const std::uint64_t last =
        opts.onlyIteration >= 0
            ? static_cast<std::uint64_t>(opts.onlyIteration) + 1
            : opts.iterations;
    for (std::uint64_t iter = first; iter < last; ++iter) {
        const std::vector<std::uint8_t> input =
            inputFor(target, iter);
        ++stats.iterations;

        FuzzFailure failure;
        failure.target = target.name();
        failure.iteration = iter;
        failure.input = input;
        bool failed = false;

        const std::uint64_t heapBefore =
            opts.allocProbe ? opts.allocProbe() : 0;
        // Hang detection needs real time; inputs stay
        // deterministic, only the budget check reads the clock.
        // ablint:allow(wall-clock): fuzz per-input hang budget
        const auto start = std::chrono::steady_clock::now();
        try {
            target.run(input);
        } catch (const std::exception &e) {
            failure.kind = FuzzFailureKind::exception;
            failure.detail = e.what();
            failed = true;
        } catch (...) {
            failure.kind = FuzzFailureKind::exception;
            failure.detail = "non-std exception";
            failed = true;
        }

        // ablint:allow(wall-clock): see above.
        const auto elapsed = std::chrono::steady_clock::now() - start;
        const std::uint64_t ms = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                elapsed)
                .count());
        if (!failed && opts.budgetMsPerInput > 0 &&
            ms > opts.budgetMsPerInput) {
            failure.kind = FuzzFailureKind::hang;
            failure.detail = format("took %llu ms (budget %llu ms)",
                                    static_cast<unsigned long long>(ms),
                                    static_cast<unsigned long long>(
                                        opts.budgetMsPerInput));
            failed = true;
        }

        if (!failed && opts.allocProbe) {
            const std::uint64_t allocated =
                opts.allocProbe() - heapBefore;
            const std::uint64_t cap =
                static_cast<std::uint64_t>(opts.allocMultiple) *
                    input.size() +
                opts.allocSlack;
            if (allocated > cap) {
                failure.kind = FuzzFailureKind::allocation;
                failure.detail = format(
                    "allocated %llu bytes for a %zu-byte input "
                    "(cap %llu)",
                    static_cast<unsigned long long>(allocated),
                    input.size(),
                    static_cast<unsigned long long>(cap));
                failed = true;
            }
        }

        if (failed)
            stats.failures.push_back(std::move(failure));
    }
    return stats;
}

} // namespace biglittle
