/**
 * @file
 * Table III: thread-level parallelism with all 8 cores - idle %,
 * little-only % and big-active % of active windows, and the Blake
 * TLP metric, for the twelve Table II apps under the default system.
 *
 * Expected shape (Section V-A): TLP below 3 for everything except
 * bbench (~4); big-core involvement is low for most apps but high
 * (tens of percent) for bbench, encoder, virus_scanner and
 * eternity_warrior2.
 */

#include "base/argparse.hh"
#include "base/csv.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_table3_tlp",
                   "Table III: TLP of the app suite, 8 cores");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);

    const auto results = runApps(baselineConfig(), allApps());
    printTlpTable(results, csv.get());
    return 0;
}
