#include "platform/platform.hh"

#include "base/logging.hh"
#include "base/status.hh"
#include "base/strutil.hh"

namespace biglittle
{

std::vector<CoreConfig>
standardCoreConfigs()
{
    // The seven restricted configurations of Figs. 7/8 plus the
    // all-cores baseline the paper normalizes against.
    return {
        {2, 0, "L2"},
        {4, 0, "L4"},
        {2, 1, "L2+B1"},
        {4, 1, "L4+B1"},
        {2, 2, "L2+B2"},
        {4, 2, "L4+B2"},
        {4, 4, "L4+B4"},
    };
}

AsymmetricPlatform::AsymmetricPlatform(Simulation &sim_in,
                                       const PlatformParams &params)
    : sim(sim_in), platformParams(params)
{
    if (params.clusters.empty()) {
        // Construction-time config validation; no run yet.
        // ablint:allow(post-init-fatal): pre-run validation
        fatal("platform '%s' has no clusters", params.name.c_str());
    }
    CoreId next_id = 0;
    for (const auto &cp : params.clusters) {
        clusterList.push_back(std::make_unique<Cluster>(
            sim, cp, next_id, params.dvfsTransitionLatency,
            params.cpuidleEnabled));
        next_id += cp.coreCount;
    }
    for (auto &cl : clusterList) {
        for (std::size_t i = 0; i < cl->coreCount(); ++i)
            coreIndex.push_back(&cl->core(i));
    }
    if (params.bootCluster >= clusterList.size() ||
        params.bootCore >= clusterList[params.bootCluster]->coreCount()) {
        // Construction-time config validation; no run yet.
        // ablint:allow(post-init-fatal): pre-run validation
        fatal("platform '%s': boot core (%u,%u) does not exist",
              params.name.c_str(), params.bootCluster, params.bootCore);
    }
    bootCoreId =
        clusterList[params.bootCluster]->core(params.bootCore).id();
}

Cluster &
AsymmetricPlatform::clusterOf(CoreType type)
{
    for (auto &cl : clusterList) {
        if (cl->type() == type)
            return *cl;
    }
    panic("platform '%s' has no %s cluster", platformParams.name.c_str(),
          coreTypeName(type));
}

const Cluster &
AsymmetricPlatform::clusterOf(CoreType type) const
{
    return const_cast<AsymmetricPlatform *>(this)->clusterOf(type);
}

Core &
AsymmetricPlatform::core(CoreId id)
{
    BL_ASSERT(id < coreIndex.size());
    return *coreIndex[id];
}

const Core &
AsymmetricPlatform::core(CoreId id) const
{
    BL_ASSERT(id < coreIndex.size());
    return *coreIndex[id];
}

Status
AsymmetricPlatform::hotplugAllowed(CoreId id, bool online) const
{
    if (id >= coreIndex.size())
        return invalidArgument(format("core %u does not exist", id));
    const Core &target = *coreIndex[id];
    if (online && target.quarantined()) {
        return failedPrecondition(format(
            "core %u is quarantined and cannot come back online",
            id));
    }
    if (online || !target.online())
        return okStatus();
    if (platformParams.enforceBootCore) {
        if (id == bootCoreId) {
            return failedPrecondition(format(
                "core %u is the boot core and cannot be "
                "hotplugged off", id));
        }
        if (target.type() == CoreType::little &&
            onlineCount(CoreType::little) <= 1) {
            return failedPrecondition(format(
                "core %u is the last online little core; one "
                "little core must always stay alive", id));
        }
    }
    if (target.busy()) {
        return failedPrecondition(format(
            "core %u is busy; evacuate its tasks before "
            "hotplugging it off", id));
    }
    return okStatus();
}

Status
AsymmetricPlatform::setCoreOnline(CoreId id, bool online)
{
    Status allowed = hotplugAllowed(id, online);
    if (!allowed.ok())
        return allowed;
    core(id).setOnline(online);
    return okStatus();
}

void
AsymmetricPlatform::applyCoreConfig(const CoreConfig &config)
{
    if (config.littleCores == 0 && platformParams.enforceBootCore) {
        // Core configs are applied before a run starts.
        // ablint:allow(post-init-fatal): pre-run validation
        fatal("core config '%s' has no little cores; the boot core "
              "must stay online", config.label.c_str());
    }
    for (auto &cl : clusterList) {
        const std::uint32_t want = cl->type() == CoreType::little
            ? config.littleCores : config.bigCores;
        if (want > cl->coreCount()) {
            // An impossible core count is a bad pre-run request.
            // ablint:allow(post-init-fatal): pre-run validation
            fatal("core config '%s' wants %u %s cores, cluster has %zu",
                  config.label.c_str(), want, coreTypeName(cl->type()),
                  cl->coreCount());
        }
        for (std::size_t i = 0; i < cl->coreCount(); ++i)
            cl->core(i).setOnline(i < want);
    }
}

std::size_t
AsymmetricPlatform::onlineCount(CoreType type) const
{
    std::size_t n = 0;
    for (const auto &cl : clusterList) {
        if (cl->type() == type)
            n += cl->onlineCount();
    }
    return n;
}

void
AsymmetricPlatform::sync()
{
    for (auto &cl : clusterList)
        cl->sync();
}

} // namespace biglittle
