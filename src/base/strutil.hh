/**
 * @file
 * Small string helpers used across the workbench: printf-style
 * formatting into std::string, padding for table output, and
 * human-readable unit rendering.
 */

#ifndef BIGLITTLE_BASE_STRUTIL_HH
#define BIGLITTLE_BASE_STRUTIL_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace biglittle
{

/** printf into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Left-justify @p s to @p width (no truncation). */
std::string padRight(const std::string &s, std::size_t width);

/** Right-justify @p s to @p width (no truncation). */
std::string padLeft(const std::string &s, std::size_t width);

/** Render a frequency as e.g. "1.30GHz" or "500MHz". */
std::string freqToString(FreqKHz f);

/** Render a tick count as e.g. "12.34ms" / "1.20s". */
std::string ticksToString(Tick t);

/** Render a fraction as a fixed-width percentage, e.g. "47.83". */
std::string percentToString(double fraction, int decimals = 2);

/** Split @p s on @p sep (no empty-segment suppression). */
std::vector<std::string> split(const std::string &s, char sep);

/** True if @p s equals @p prefix at position 0. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case copy (ASCII). */
std::string toLower(const std::string &s);

} // namespace biglittle

#endif // BIGLITTLE_BASE_STRUTIL_HH
