#include "platform/perf_model.hh"

#include "base/logging.hh"
#include "platform/cluster.hh"

namespace biglittle
{

namespace perf_model
{

double
coreCpi(const CorePerfParams &perf, const WorkClass &work)
{
    BL_ASSERT(work.ilp >= 0.0 && work.ilp <= 1.0);
    const double eff_issue =
        1.0 + (perf.issueWidth - 1.0) * perf.ilpExtraction * work.ilp;
    return 1.0 / eff_issue + perf.pipelinePenaltyCpi;
}

double
nsPerInst(const CorePerfParams &perf, const CacheModel &l2, FreqKHz freq,
          const WorkClass &work)
{
    BL_ASSERT(freq > 0);
    const double f_ghz = kHzToGHz(freq);
    const double cycles =
        coreCpi(perf, work) + work.l1MissPerInst * perf.l2HitCycles;
    const double dram_ns = work.l1MissPerInst *
        l2.missRatio(work.footprintKB) * perf.memLatencyNs;
    return cycles / f_ghz + dram_ns;
}

double
instRate(const Core &core, const WorkClass &work)
{
    return instRateAt(core, core.freqDomain().currentFreq(), work);
}

double
instRateAt(const Core &core, FreqKHz freq, const WorkClass &work)
{
    const double ns =
        nsPerInst(core.perfParams(), core.cluster().l2(), freq, work);
    return 1e9 / ns;
}

double
speedup(const ClusterParams &big, FreqKHz big_freq,
        const ClusterParams &little, FreqKHz little_freq,
        const WorkClass &work)
{
    const CacheModel big_l2(big.l2);
    const CacheModel little_l2(little.l2);
    const double t_big = nsPerInst(big.perf, big_l2, big_freq, work);
    const double t_little =
        nsPerInst(little.perf, little_l2, little_freq, work);
    return t_little / t_big;
}

} // namespace perf_model

} // namespace biglittle
