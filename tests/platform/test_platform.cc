/**
 * @file
 * Tests for AsymmetricPlatform: construction, lookup, hotplug rules
 * and the Fig. 7/8 core configurations.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class PlatformTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
};

} // namespace

TEST_F(PlatformTest, EightCoresInIdOrder)
{
    EXPECT_EQ(plat.coreCount(), 8u);
    for (CoreId id = 0; id < 8; ++id)
        EXPECT_EQ(plat.core(id).id(), id);
    for (CoreId id = 0; id < 4; ++id)
        EXPECT_EQ(plat.core(id).type(), CoreType::little);
    for (CoreId id = 4; id < 8; ++id)
        EXPECT_EQ(plat.core(id).type(), CoreType::big);
}

TEST_F(PlatformTest, ClusterLookupByType)
{
    EXPECT_EQ(plat.littleCluster().type(), CoreType::little);
    EXPECT_EQ(plat.bigCluster().type(), CoreType::big);
    EXPECT_EQ(&plat.clusterOf(CoreType::big), &plat.bigCluster());
}

TEST_F(PlatformTest, SeparateFreqDomains)
{
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    plat.bigCluster().freqDomain().setFreqNow(800000);
    EXPECT_EQ(plat.littleCluster().freqDomain().currentFreq(),
              1300000u);
    EXPECT_EQ(plat.bigCluster().freqDomain().currentFreq(), 800000u);
}

TEST_F(PlatformTest, HotplugCountsByType)
{
    EXPECT_EQ(plat.onlineCount(CoreType::little), 4u);
    EXPECT_EQ(plat.onlineCount(CoreType::big), 4u);
    EXPECT_TRUE(plat.setCoreOnline(5, false).ok());
    EXPECT_TRUE(plat.setCoreOnline(6, false).ok());
    EXPECT_EQ(plat.onlineCount(CoreType::big), 2u);
}

TEST_F(PlatformTest, BootCoreCannotGoOffline)
{
    const Status st = plat.setCoreOnline(0, false);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::failedPrecondition);
    EXPECT_NE(st.message().find("boot core"), std::string::npos);
    // The refusal left the platform untouched.
    EXPECT_TRUE(plat.core(0).online());
    EXPECT_EQ(plat.onlineCount(CoreType::little), 4u);
}

TEST_F(PlatformTest, NonexistentCoreIsInvalidArgument)
{
    const Status st = plat.setCoreOnline(42, false);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::invalidArgument);
}

TEST_F(PlatformTest, BusyCoreMustBeEvacuatedFirst)
{
    plat.core(1).setBusy(true);
    const Status st = plat.setCoreOnline(1, false);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::failedPrecondition);
    EXPECT_NE(st.message().find("busy"), std::string::npos);
    EXPECT_TRUE(plat.core(1).online());
    plat.core(1).setBusy(false);
    EXPECT_TRUE(plat.setCoreOnline(1, false).ok());
}

TEST(PlatformHotplug, LastLittleCoreCannotGoOffline)
{
    // Boot from the big cluster so the last-little rule triggers on
    // its own, independent of the boot-core rule.
    Simulation sim;
    PlatformParams p = exynos5422Params();
    p.bootCluster = 1;
    p.bootCore = 0;
    AsymmetricPlatform plat(sim, p);

    EXPECT_TRUE(plat.setCoreOnline(1, false).ok());
    EXPECT_TRUE(plat.setCoreOnline(2, false).ok());
    EXPECT_TRUE(plat.setCoreOnline(3, false).ok());
    ASSERT_EQ(plat.onlineCount(CoreType::little), 1u);

    const Status st = plat.setCoreOnline(0, false);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::failedPrecondition);
    EXPECT_NE(st.message().find("little"), std::string::npos);
    EXPECT_EQ(plat.onlineCount(CoreType::little), 1u);

    // With a second little core back, the first may leave.
    EXPECT_TRUE(plat.setCoreOnline(1, true).ok());
    EXPECT_TRUE(plat.setCoreOnline(0, false).ok());
}

TEST_F(PlatformTest, HotplugAllowedPredictsSetCoreOnline)
{
    EXPECT_TRUE(plat.hotplugAllowed(7, false).ok());
    EXPECT_FALSE(plat.hotplugAllowed(0, false).ok());
    // Bringing any existing core online is always legal.
    EXPECT_TRUE(plat.hotplugAllowed(0, true).ok());
    EXPECT_TRUE(plat.hotplugAllowed(7, true).ok());
}

TEST_F(PlatformTest, ApplyStandardCoreConfigs)
{
    for (const CoreConfig &cc : standardCoreConfigs()) {
        plat.applyCoreConfig(cc);
        EXPECT_EQ(plat.onlineCount(CoreType::little), cc.littleCores)
            << cc.label;
        EXPECT_EQ(plat.onlineCount(CoreType::big), cc.bigCores)
            << cc.label;
    }
}

TEST_F(PlatformTest, StandardConfigsMatchFig7)
{
    const auto configs = standardCoreConfigs();
    ASSERT_EQ(configs.size(), 7u);
    EXPECT_EQ(configs.front().label, "L2");
    EXPECT_EQ(configs.back().label, "L4+B4");
    // Every config keeps at least one little core (boot rule).
    for (const auto &cc : configs)
        EXPECT_GE(cc.littleCores, 1u);
}

TEST_F(PlatformTest, ConfigWithoutLittleCoresIsFatal)
{
    const CoreConfig bad{0, 4, "B4-only"};
    EXPECT_EXIT(plat.applyCoreConfig(bad),
                ::testing::ExitedWithCode(1), "boot core");
}

TEST_F(PlatformTest, ConfigRequestingTooManyCoresIsFatal)
{
    const CoreConfig bad{5, 0, "L5"};
    EXPECT_EXIT(plat.applyCoreConfig(bad),
                ::testing::ExitedWithCode(1), "wants 5");
}

TEST_F(PlatformTest, ReapplyingBaselineRestoresAllCores)
{
    plat.applyCoreConfig({2, 1, "L2+B1"});
    plat.applyCoreConfig({4, 4, "L4+B4"});
    EXPECT_EQ(plat.onlineCount(CoreType::little), 4u);
    EXPECT_EQ(plat.onlineCount(CoreType::big), 4u);
}

TEST(PlatformConstruction, EmptyClusterListIsFatal)
{
    Simulation sim;
    PlatformParams p;
    p.name = "empty";
    EXPECT_EXIT(AsymmetricPlatform(sim, p),
                ::testing::ExitedWithCode(1), "no clusters");
}

TEST(PlatformConstruction, SingleClusterPlatformWorks)
{
    Simulation sim;
    PlatformParams p = exynos5422Params();
    p.clusters.resize(1); // little only
    AsymmetricPlatform plat(sim, p);
    EXPECT_EQ(plat.coreCount(), 4u);
    EXPECT_DEATH(plat.clusterOf(CoreType::big), "no big cluster");
}
