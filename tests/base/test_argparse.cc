/**
 * @file
 * Tests for the declarative CLI parser.
 */

#include <gtest/gtest.h>

#include "base/argparse.hh"

using namespace biglittle;

namespace
{

ArgParser
makeParser()
{
    ArgParser p("prog", "test program");
    p.addString("name", "default-name", "a string");
    p.addInt("count", 10, "an int");
    p.addDouble("ratio", 0.5, "a double");
    p.addFlag("verbose", "a flag");
    return p;
}

std::vector<std::string>
parse(ArgParser &p, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return p.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(ArgParser, DefaultsApplyWhenUnset)
{
    ArgParser p = makeParser();
    parse(p, {});
    EXPECT_EQ(p.getString("name"), "default-name");
    EXPECT_EQ(p.getInt("count"), 10);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 0.5);
    EXPECT_FALSE(p.getFlag("verbose"));
    EXPECT_FALSE(p.wasSet("name"));
}

TEST(ArgParser, SpaceSeparatedValues)
{
    ArgParser p = makeParser();
    parse(p, {"--name", "abc", "--count", "42", "--ratio", "2.25"});
    EXPECT_EQ(p.getString("name"), "abc");
    EXPECT_EQ(p.getInt("count"), 42);
    EXPECT_DOUBLE_EQ(p.getDouble("ratio"), 2.25);
    EXPECT_TRUE(p.wasSet("count"));
}

TEST(ArgParser, EqualsSeparatedValues)
{
    ArgParser p = makeParser();
    parse(p, {"--name=xyz", "--count=-3"});
    EXPECT_EQ(p.getString("name"), "xyz");
    EXPECT_EQ(p.getInt("count"), -3);
}

TEST(ArgParser, FlagPresenceSetsTrue)
{
    ArgParser p = makeParser();
    parse(p, {"--verbose"});
    EXPECT_TRUE(p.getFlag("verbose"));
}

TEST(ArgParser, PositionalArgumentsReturned)
{
    ArgParser p = makeParser();
    const auto rest = parse(p, {"one", "--count", "5", "two"});
    EXPECT_EQ(rest, (std::vector<std::string>{"one", "two"}));
}

TEST(ArgParser, HelpTextMentionsEveryOption)
{
    ArgParser p = makeParser();
    const std::string help = p.helpText();
    for (const char *needle :
         {"--name", "--count", "--ratio", "--verbose", "--help",
          "default-name"}) {
        EXPECT_NE(help.find(needle), std::string::npos) << needle;
    }
}

TEST(ArgParser, TryParseRejectsUnknownOption)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--bogus", "1"};
    const auto parsed = p.tryParse(3, argv.data());
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::invalidArgument);
    EXPECT_NE(parsed.status().message().find("unknown option"),
              std::string::npos);
}

TEST(ArgParser, TryParseRejectsMissingValue)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--count"};
    const auto parsed = p.tryParse(2, argv.data());
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("requires a value"),
              std::string::npos);
}

TEST(ArgParser, TryGetIntRejectsNonNumeric)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--count", "abc"};
    ASSERT_TRUE(p.tryParse(3, argv.data()).ok());
    const auto v = p.tryGetInt("count");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.status().message().find("not an integer"),
              std::string::npos);
}

TEST(ArgParser, TryGetDoubleRejectsNonNumeric)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--ratio", "wide"};
    ASSERT_TRUE(p.tryParse(3, argv.data()).ok());
    const auto v = p.tryGetDouble("ratio");
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.status().message().find("not a number"),
              std::string::npos);
}

TEST(ArgParser, TryParseRejectsFlagWithValue)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--verbose=yes"};
    const auto parsed = p.tryParse(2, argv.data());
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("does not take a value"),
              std::string::npos);
}

TEST(ArgParser, TryParseRecordsHelpWithoutExiting)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--help"};
    const auto parsed = p.tryParse(2, argv.data());
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(p.helpRequested());
}

TEST(ArgParserDeathTest, UnknownOptionExitsUsage)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--bogus", "1"};
    EXPECT_EXIT(p.parse(3, argv.data()),
                ::testing::ExitedWithCode(2), "unknown option");
}

TEST(ArgParserDeathTest, NonNumericIntExitsUsage)
{
    ArgParser p = makeParser();
    std::vector<const char *> argv = {"prog", "--count", "abc"};
    p.parse(3, argv.data());
    EXPECT_EXIT(p.getInt("count"), ::testing::ExitedWithCode(2),
                "not an integer");
}

TEST(ArgParserDeathTest, UndeclaredAccessPanics)
{
    ArgParser p = makeParser();
    EXPECT_DEATH((void)p.getString("nope"), "never declared");
}

TEST(ArgParserDeathTest, WrongTypeAccessPanics)
{
    ArgParser p = makeParser();
    EXPECT_DEATH((void)p.getInt("name"), "wrong type");
}
