#include "sched/runqueue.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "platform/perf_model.hh"
#include "sched/hmp.hh"

namespace biglittle
{

CoreRunner::CoreRunner(Simulation &sim_in, Core &core_in,
                       HmpScheduler &sched_in, const SchedParams &params_in)
    : sim(sim_in), coreRef(core_in), sched(sched_in), params(params_in),
      sliceEvent([this] { onSliceEvent(); },
                 offsetPriority(EventPriority::sliceEnd, core_in.id(),
                                sliceSlots),
                 core_in.name() + ".slice")
{
    coreRef.freqDomain().addListener(
        [this](const Opp &, const Opp &next) {
            onFreqChange(next.freq);
        });
}

std::size_t
CoreRunner::depth() const
{
    return waitQ.size() + (cur != nullptr ? 1 : 0);
}

double
CoreRunner::loadSum() const
{
    double sum = cur != nullptr ? cur->loadTracker().value() : 0.0;
    for (const Task *t : waitQ)
        sum += t->loadTracker().value();
    return sum;
}

void
CoreRunner::enqueue(Task &task)
{
    sim.noteWrite(coreRef.name(), "rq");
    sim.noteWrite(task.name(), "state");
    BL_ASSERT(coreRef.online());
    BL_ASSERT(!task.drained());
    task.noteQueued(coreRef, sim.now());
    waitQ.push_back(&task);
    if (cur == nullptr)
        startNext();
    // A running slice's quantum already expires within one timeslice
    // of now (quantumEnd is always set from the current tick), so a
    // newcomer waits at most one quantum - no clipping needed.
    updateBusy();
}

void
CoreRunner::remove(Task &task)
{
    sim.noteWrite(coreRef.name(), "rq");
    sim.noteWrite(task.name(), "state");
    if (cur == &task) {
        chargeRunning();
        task.accrueLoad(sim.now(), sched.freqScale(coreRef));
        if (sliceEvent.scheduled())
            sim.eventQueue().deschedule(sliceEvent);
        cur->notePreempted();
        cur = nullptr;
        startNext();
    } else {
        task.accrueLoad(sim.now(), sched.freqScale(coreRef));
        const auto it = std::find(waitQ.begin(), waitQ.end(), &task);
        BL_ASSERT(it != waitQ.end());
        waitQ.erase(it);
    }
    updateBusy();
}

void
CoreRunner::chargeRunning()
{
    if (cur == nullptr)
        return;
    const Tick now = sim.now();
    BL_ASSERT(now >= sliceStart);
    const Tick elapsed = now - sliceStart;
    cur->consume(ticksToSeconds(elapsed) * rate);
    cur->addRuntime(coreRef.type(), elapsed);
    sliceStart = now;
}

void
CoreRunner::startNext()
{
    BL_ASSERT(cur == nullptr);
    if (waitQ.empty()) {
        updateBusy();
        return;
    }
    cur = waitQ.front();
    waitQ.pop_front();
    cur->noteRunning();
    ++slices;
    sliceStart = sim.now();
    quantumEnd = sim.now() + params.timeslice;
    rate = perf_model::instRate(coreRef, cur->workClass());
    BL_ASSERT(rate > 0.0);
    armSliceEvent();
    updateBusy();
}

void
CoreRunner::armSliceEvent()
{
    BL_ASSERT(cur != nullptr);
    const double remaining_sec = cur->pendingInstructions() / rate;
    const Tick finish = sliceStart +
        static_cast<Tick>(std::ceil(remaining_sec * 1e9));
    Tick when;
    if (finish <= quantumEnd) {
        completionPlanned = true;
        when = finish;
    } else {
        completionPlanned = false;
        when = quantumEnd;
    }
    when = std::max(when, sim.now() + 1);
    sim.eventQueue().reschedule(sliceEvent, when);
}

void
CoreRunner::onSliceEvent()
{
    BL_ASSERT(cur != nullptr);
    sim.noteWrite(coreRef.name(), "rq");
    sim.noteWrite(cur->name(), "state");
    // Charge elapsed progress (and runtime attribution) first; at a
    // planned completion point, clear any floating-point residue so
    // the task actually drains.
    chargeRunning();
    if (completionPlanned)
        cur->consumeAll();
    if (cur->drained()) {
        Task *done = cur;
        cur = nullptr;
        done->accrueLoad(sim.now(), sched.freqScale(coreRef));
        done->noteSleeping(sim.now());
        updateBusy();
        startNext();
        sched.taskDrained(*done);
        return;
    }
    // Quantum expiry: rotate if anyone is waiting.
    chargeRunning();
    if (waitQ.empty()) {
        quantumEnd = sim.now() + params.timeslice;
        armSliceEvent();
        return;
    }
    Task *preempted = cur;
    cur = nullptr;
    preempted->notePreempted();
    waitQ.push_back(preempted);
    startNext();
}

void
CoreRunner::onFreqChange(FreqKHz new_freq)
{
    if (cur == nullptr)
        return;
    // Fired from the domain's dvfs-apply handler: the running slice
    // is re-planned at the new speed, which contends with this
    // core's own slice event when both land on one tick.
    sim.noteWrite(coreRef.name(), "rq");
    chargeRunning();
    if (cur->drained()) {
        // Rounding placed completion a hair after the change; let the
        // pending slice event observe the drain.
        rate = perf_model::instRateAt(coreRef, new_freq,
                                      cur->workClass());
        return;
    }
    rate = perf_model::instRateAt(coreRef, new_freq, cur->workClass());
    armSliceEvent();
}

void
CoreRunner::updateBusy()
{
    coreRef.setBusy(cur != nullptr || !waitQ.empty());
}

} // namespace biglittle
