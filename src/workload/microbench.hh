/**
 * @file
 * The utilization-controlled microbenchmark of Section III-B: a
 * single pinned task that holds an exact CPU utilization by pausing
 * between work chunks, used to map the power/utilization/frequency
 * surface of Fig. 6.
 */

#ifndef BIGLITTLE_WORKLOAD_MICROBENCH_HH
#define BIGLITTLE_WORKLOAD_MICROBENCH_HH

#include <memory>

#include "base/types.hh"
#include "sched/hmp.hh"
#include "workload/behavior.hh"

namespace biglittle
{

/** A pinned constant-utilization load generator. */
class UtilizationMicrobench
{
  public:
    /**
     * @param target_utilization busy fraction to hold, in (0, 1]
     * @param core core to pin the task to
     */
    UtilizationMicrobench(Simulation &sim, HmpScheduler &sched,
                          CoreId core, double target_utilization,
                          std::uint64_t seed = 42);

    UtilizationMicrobench(const UtilizationMicrobench &) = delete;
    UtilizationMicrobench &
    operator=(const UtilizationMicrobench &) = delete;

    /** Begin generating load. */
    void start();

    Task &task() { return *loadTask; }

    double targetUtilization() const;

  private:
    Task *loadTask;
    std::unique_ptr<DutyCycleBehavior> behavior;
};

} // namespace biglittle

#endif // BIGLITTLE_WORKLOAD_MICROBENCH_HH
