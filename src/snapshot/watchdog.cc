#include "snapshot/watchdog.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "sim/eventq.hh"

namespace biglittle
{

namespace
{

double
nowSec()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace

Watchdog::Watchdog(const WatchdogParams &params) : wp(params)
{
    BL_ASSERT(wp.stallLimitSec > 0.0);
    BL_ASSERT(wp.runawayLimitSec >= 0.0);
}

Watchdog::~Watchdog()
{
    stop();
}

void
Watchdog::start(EventQueue &queue)
{
    if (!wp.enabled || running.load())
        return;
    queuePtr = &queue;
    queue.enableRecentLog(wp.ringDepth);
    servicedSeen.store(queue.eventsServiced());
    lastTick.store(queue.now());
    running.store(true);
    monitor = std::thread([this] { run(); });
}

void
Watchdog::stop()
{
    // A non-exiting trip already cleared `running`; the thread still
    // needs joining, so key idempotence off joinable(), not the flag.
    running.store(false);
    if (monitor.joinable())
        monitor.join();
    queuePtr = nullptr;
}

void
Watchdog::heartbeat()
{
    if (!running.load() || queuePtr == nullptr)
        return;
    servicedSeen.store(queuePtr->eventsServiced());
    lastTick.store(queuePtr->now());

    // Snapshot the ring buffer as text while it is safe to read it
    // (we are on the simulation thread); the watchdog thread only
    // ever sees this string.
    std::string dump;
    for (const ServicedEvent &ev : queuePtr->recentLog()) {
        dump += format("  t=%llu seq=%llu prio=%d '%s'\n",
                       static_cast<unsigned long long>(ev.when),
                       static_cast<unsigned long long>(ev.sequence),
                       static_cast<int>(ev.priority), ev.name.c_str());
    }
    std::lock_guard<std::mutex> lock(snapMutex);
    ringDump = std::move(dump);
}

void
Watchdog::noteCheckpoint(std::vector<std::uint8_t> bytes)
{
    std::lock_guard<std::mutex> lock(snapMutex);
    checkpointBytes = std::move(bytes);
}

void
Watchdog::run()
{
    const double started = nowSec();
    double lastProgressAt = started;
    std::uint64_t lastServiced = servicedSeen.load();

    while (running.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (!running.load())
            return;
        const double now = nowSec();
        const std::uint64_t serviced = servicedSeen.load();
        if (serviced != lastServiced) {
            lastServiced = serviced;
            lastProgressAt = now;
        }
        if (now - lastProgressAt > wp.stallLimitSec) {
            trip(format("no event progress for %.1f wall seconds "
                        "(stall limit %.1f s)",
                        now - lastProgressAt, wp.stallLimitSec));
            return;
        }
        if (wp.runawayLimitSec > 0.0 &&
            now - started > wp.runawayLimitSec) {
            trip(format("run exceeded %.1f wall seconds "
                        "(runaway limit)",
                        wp.runawayLimitSec));
            return;
        }
    }
}

void
Watchdog::trip(const std::string &reason)
{
    std::string ring;
    std::vector<std::uint8_t> ckpt;
    {
        std::lock_guard<std::mutex> lock(snapMutex);
        ring = ringDump;
        ckpt = checkpointBytes;
    }

    std::string report = "watchdog trip: " + reason + "\n";
    report += format(
        "last simulated tick: %llu\nevents serviced: %llu\n",
        static_cast<unsigned long long>(lastTick.load()),
        static_cast<unsigned long long>(servicedSeen.load()));
    if (!ckpt.empty() && !wp.reportPath.empty()) {
        report += "last checkpoint: " + wp.reportPath + ".ckpt\n";
    }
    report += ring.empty()
        ? "no recent events captured\n"
        : "last events before the stall (oldest first):\n" + ring;

    std::fprintf(stderr, "%s", report.c_str());
    if (!wp.reportPath.empty()) {
        std::ofstream out(wp.reportPath, std::ios::trunc);
        if (out)
            out << report;
        if (!ckpt.empty()) {
            std::ofstream cout_file(wp.reportPath + ".ckpt",
                                    std::ios::binary | std::ios::trunc);
            if (cout_file) {
                cout_file.write(
                    reinterpret_cast<const char *>(ckpt.data()),
                    static_cast<std::streamsize>(ckpt.size()));
            }
        }
    }

    tripCount.fetch_add(1);
    if (exitOnTrip) {
        // The simulation thread is wedged; a clean shutdown would
        // block on it forever.  Flush what we wrote and die with a
        // recognizable code.
        std::fflush(nullptr);
        std::_Exit(watchdogExitCode);
    }
    running.store(false);
}

} // namespace biglittle
