/**
 * @file
 * Fundamental scalar types shared by every biglittle module.
 *
 * Simulated time is kept as an integer count of nanoseconds (Tick) so
 * that event ordering is exact and runs are bit-reproducible.  CPU
 * frequencies follow the Linux cpufreq convention of integer kHz.
 */

#ifndef BIGLITTLE_BASE_TYPES_HH
#define BIGLITTLE_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace biglittle
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** A time delta in nanoseconds (signed for arithmetic safety). */
using TickDelta = std::int64_t;

/** CPU frequency in kHz, following the Linux cpufreq convention. */
using FreqKHz = std::uint32_t;

/** Supply voltage in millivolts. */
using MilliVolt = std::uint32_t;

/** Identifier of a logical CPU (0-based, platform-wide). */
using CoreId = std::uint32_t;

/** Identifier of a schedulable task. */
using TaskId = std::uint64_t;

/** Sentinel for "no core". */
constexpr CoreId invalidCoreId = std::numeric_limits<CoreId>::max();

/** Sentinel for "never" / unscheduled. */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** One microsecond expressed in ticks. */
constexpr Tick oneUs = 1000ull;

/** One millisecond expressed in ticks. */
constexpr Tick oneMs = 1000ull * oneUs;

/** One second expressed in ticks. */
constexpr Tick oneSec = 1000ull * oneMs;

/** Convert integral milliseconds to ticks. */
constexpr Tick
msToTicks(std::uint64_t ms)
{
    return ms * oneMs;
}

/** Convert integral microseconds to ticks. */
constexpr Tick
usToTicks(std::uint64_t us)
{
    return us * oneUs;
}

/** Convert ticks to (truncated) whole milliseconds. */
constexpr std::uint64_t
ticksToMs(Tick t)
{
    return t / oneMs;
}

/** Convert ticks to seconds as a double (for reporting only). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(oneSec);
}

/** Convert a frequency in kHz to Hz as a double. */
constexpr double
kHzToHz(FreqKHz f)
{
    return static_cast<double>(f) * 1e3;
}

/** Convert a frequency in kHz to GHz as a double (for reporting). */
constexpr double
kHzToGHz(FreqKHz f)
{
    return static_cast<double>(f) * 1e-6;
}

/**
 * Cycles executed during an interval of @p t ticks at frequency @p f.
 *
 * Computed in double precision: the performance model works with
 * fractional "work units" throughout, so exact integer cycle counts
 * are not required.
 */
constexpr double
cyclesIn(Tick t, FreqKHz f)
{
    return ticksToSeconds(t) * kHzToHz(f);
}

} // namespace biglittle

#endif // BIGLITTLE_BASE_TYPES_HH
