/**
 * @file
 * ablint: the repo's determinism & error-discipline linter.
 *
 * A deliberately small static-analysis pass over src/ and tests/
 * that moves the guarantees PR 2 established at runtime (bit-exact
 * replay, attributable snapshots) to lint time:
 *
 *  - wall-clock      no rand()/random_device/time()/argless chrono
 *                    clocks outside the allowlisted wall-clock
 *                    module (snapshot/watchdog) and inline-justified
 *                    sites;
 *  - unordered-iter  no unordered_map/unordered_set in stateful sim
 *                    code (src/), where iteration order can leak
 *                    into event ordering;
 *  - static-mutable  no mutable `static` state in sim code;
 *  - void-discard    no `(void)` / static_cast<void> laundering of
 *                    a call's return value in src/ (Status/Result
 *                    are [[nodiscard]]; handle them for real);
 *  - serialize-pair  every class declaring serialize()/
 *                    serializePolicy()/serializeState() declares the
 *                    matching deserialize flavor;
 *  - serialize-registry  every serializable class is registered in
 *                    tools/ablint/serialized_state.txt against the
 *                    checkpoint section (or covering parent) that
 *                    captures it, so new state cannot silently
 *                    escape snapshots;
 *  - config-key      every config key string compared against `key`
 *                    in src/ is documented in EXPERIMENTS.md or a
 *                    markdown file under docs/.
 *
 * Suppression: `// ablint:allow(rule[,rule]): why` on the violating
 * line or the line directly above it, or a checked-in baseline file
 * (tools/ablint/baseline.txt) of `path:line:rule` entries.  Baseline
 * entries that no longer match anything (moved line, fixed code,
 * deleted file) are themselves reported as `stale-baseline`, so the
 * baseline can only shrink.
 *
 * The tool is standalone (no dependency on the simulation libraries)
 * so it can never be broken by the code it checks.
 */

#ifndef BIGLITTLE_TOOLS_ABLINT_HH
#define BIGLITTLE_TOOLS_ABLINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace biglittle::ablint
{

/** Lexical class of one token. */
enum class TokKind
{
    identifier,
    number,
    str, ///< string literal, text is the (unescaped) raw body
    chr, ///< character literal
    punct, ///< single punctuation character
};

/** One token with its 1-based source line. */
struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
};

/** A lexed translation unit plus its suppression directives. */
struct LexedFile
{
    /** Repo-relative path with forward slashes. */
    std::string path;

    std::vector<Token> tokens;

    /**
     * Rules allowed per line: an `ablint:allow(r1,r2)` comment on
     * line N grants {r1,r2} on lines N and N+1 (so the directive
     * can sit above the violating statement).
     */
    std::map<int, std::set<std::string>> allows;

    /** Total number of source lines (for baseline staleness). */
    int lineCount = 0;

    /** True for files under tests/ (some rules are src-only). */
    bool isTest = false;
};

/** Lex @p text as file @p path (no filesystem access). */
LexedFile lexString(const std::string &path, const std::string &text);

/** One rule violation. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    /** "file:line: error: [rule] message" */
    std::string format() const;
};

/** Everything the rule pass needs, filesystem-free for testing. */
struct ScanInput
{
    std::vector<LexedFile> files;

    /** Concatenated EXPERIMENTS.md + docs markdown (config-key). */
    std::string docsText;

    /** tools/ablint/serialized_state.txt contents. */
    std::string registryText;
};

/** Run every rule; findings already filtered by inline allows. */
std::vector<Finding> runRules(const ScanInput &in);

/**
 * Apply the baseline: drop findings matched by a `path:line:rule`
 * entry; append a `stale-baseline` finding for every entry that
 * matched nothing or references a line past the end of its file.
 */
std::vector<Finding> applyBaseline(const std::vector<Finding> &raw,
                                   const std::string &baselineText,
                                   const std::string &baselinePath,
                                   const ScanInput &in);

/** Names of all rules, for --list-rules and directive validation. */
const std::vector<std::string> &ruleNames();

/**
 * Scan a repo checkout: lexes src/ and tests/ (plus @p extraPaths),
 * loads docs and the registry, runs rules and baseline.  Returns the
 * final findings; I/O failures throw std::runtime_error.
 */
std::vector<Finding> runOnRepo(const std::string &repoRoot,
                               const std::string &baselinePath,
                               const std::string &registryPath,
                               const std::vector<std::string> &extraPaths);

} // namespace biglittle::ablint

#endif // BIGLITTLE_TOOLS_ABLINT_HH
