/**
 * @file
 * abflow's test suite: golden tests for the engine itself
 * (parameter parsing, per-function summaries across branches,
 * loops, multi-hop call chains and constructor init lists), the
 * known-bad / suppressed / sanitized-clean triple for each of the
 * three flow rules, the taint-bound vs deser-bound dedupe, and a
 * meta-test that re-lints the real checkout with the flow rules on.
 *
 * Trigger constructs live inside string literals so linting this
 * file never trips the rules it tests.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ablint/ablint.hh"
#include "ablint/flow.hh"

namespace ablint = biglittle::ablint;

namespace
{

ablint::ScanInput
makeInput(const std::vector<std::pair<std::string, std::string>> &files)
{
    ablint::ScanInput in;
    for (const auto &[path, text] : files)
        in.files.push_back(ablint::lexString(path, text));
    return in;
}

/** Findings of the flow pass alone over in-memory files. */
std::vector<ablint::Finding>
lintFlow(const std::vector<std::pair<std::string, std::string>> &files)
{
    const ablint::ScanInput in = makeInput(files);
    return ablint::runFlowRules(in);
}

std::size_t
countRule(const std::vector<ablint::Finding> &findings,
          const std::string &rule)
{
    std::size_t n = 0;
    for (const auto &f : findings)
        if (f.rule == rule)
            ++n;
    return n;
}

std::string
firstMessage(const std::vector<ablint::Finding> &findings,
             const std::string &rule)
{
    for (const auto &f : findings)
        if (f.rule == rule)
            return f.message;
    return "";
}

/** The FlowFunction named @p name, which must exist. */
const ablint::FlowFunction &
fnByName(const ablint::FlowModel &fm, const std::string &name)
{
    const auto it = fm.byName.find(name);
    EXPECT_NE(it, fm.byName.end()) << "no function '" << name << "'";
    return fm.functions[it->second.front()];
}

// ---- engine: parameter parsing -------------------------------------

TEST(AbflowParams, ParsesNamesAndTypes)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "void f(const Config &cfg, std::uint64_t n, int) {}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    const auto &f = fnByName(fm, "f");
    ASSERT_EQ(f.params.size(), 3u);
    EXPECT_EQ(f.params[0].name, "cfg");
    EXPECT_NE(f.params[0].type.find("Config"), std::string::npos);
    EXPECT_EQ(f.params[1].name, "n");
    // The unnamed `int` parameter still occupies a slot.
    EXPECT_EQ(f.params[2].name, "");
}

TEST(AbflowParams, EmptyAndVoidAndDefaults)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "void f() {}\n"
          "void g(void) {}\n"
          "void h(int depth = 3, bool strict = true) {}\n"
          "void t(std::map<int, int> m, int k) {}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    EXPECT_EQ(fnByName(fm, "f").params.size(), 0u);
    EXPECT_EQ(fnByName(fm, "g").params.size(), 0u);
    const auto &h = fnByName(fm, "h");
    ASSERT_EQ(h.params.size(), 2u);
    EXPECT_EQ(h.params[0].name, "depth");
    EXPECT_EQ(h.params[1].name, "strict");
    // The template comma must not split the first parameter.
    const auto &t = fnByName(fm, "t");
    ASSERT_EQ(t.params.size(), 2u);
    EXPECT_EQ(t.params[0].name, "m");
    EXPECT_EQ(t.params[1].name, "k");
}

// ---- engine: summaries ---------------------------------------------

TEST(AbflowSummary, ReturnOfRawReadIsTainted)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "std::uint64_t readLen(Deserializer &d) {\n"
          "    return d.getU64();\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    const auto &f = fnByName(fm, "readLen");
    EXPECT_TRUE(f.summary.returnsTaint);
    EXPECT_NE(f.summary.returnTaintWhy.find("getU64"),
              std::string::npos);
}

TEST(AbflowSummary, GetCountIsCleanBecauseItChecks)
{
    // getCount's body compares the raw read against a bound before
    // returning it, so its summary must come out clean.
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "std::uint64_t getCount(Deserializer &d,\n"
          "                       std::uint64_t maxCount) {\n"
          "    std::uint64_t count = d.getU64();\n"
          "    if (count > maxCount) { return 0; }\n"
          "    return count;\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    EXPECT_FALSE(fnByName(fm, "getCount").summary.returnsTaint);
}

TEST(AbflowSummary, ParamPassthroughAndParamToSink)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "std::uint64_t ident(std::uint64_t n) { return n; }\n"
          "void grow(std::vector<int> &v, std::uint64_t n) {\n"
          "    v.resize(n);\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    const auto &id = fnByName(fm, "ident");
    ASSERT_EQ(id.summary.paramToReturn.size(), 1u);
    EXPECT_TRUE(id.summary.paramToReturn[0]);
    const auto &grow = fnByName(fm, "grow");
    ASSERT_EQ(grow.summary.paramToSink.size(), 2u);
    EXPECT_FALSE(grow.summary.paramToSink[0]);
    EXPECT_TRUE(grow.summary.paramToSink[1]);
}

TEST(AbflowSummary, TaintSurvivesBranches)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "std::uint64_t f(Deserializer &d, bool alt) {\n"
          "    std::uint64_t n = 0;\n"
          "    if (alt) { n = d.getU64(); } else { n = 1; }\n"
          "    return n;\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    // One branch taints: the merged state must stay tainted.
    EXPECT_TRUE(fnByName(fm, "f").summary.returnsTaint);
}

TEST(AbflowSummary, LoopCarriedTaintConverges)
{
    // x picks up y's taint only on the second pass over the loop.
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "std::uint64_t f(Deserializer &d) {\n"
          "    std::uint64_t x = 0;\n"
          "    std::uint64_t y = 0;\n"
          "    while (d.ok()) {\n"
          "        x = y;\n"
          "        y = d.getU64();\n"
          "    }\n"
          "    return x;\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    EXPECT_TRUE(fnByName(fm, "f").summary.returnsTaint);
}

TEST(AbflowSummary, MultiHopChainComposesAcrossThreeFunctions)
{
    // C returns a raw read, B passes it through, A sinks it: the
    // fixpoint must propagate the taint across both hops.
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "std::uint64_t readRaw(Deserializer &d) {\n"
          "    return d.getU64();\n"
          "}\n"
          "std::uint64_t relay(Deserializer &d) {\n"
          "    std::uint64_t n = readRaw(d);\n"
          "    return n;\n"
          "}\n"
          "void decode(Deserializer &d, std::vector<int> &v) {\n"
          "    v.resize(relay(d));\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    EXPECT_TRUE(fnByName(fm, "relay").summary.returnsTaint);
    const auto findings = lintFlow(
        {{"src/a.cc",
          "std::uint64_t readRaw(Deserializer &d) {\n"
          "    return d.getU64();\n"
          "}\n"
          "std::uint64_t relay(Deserializer &d) {\n"
          "    std::uint64_t n = readRaw(d);\n"
          "    return n;\n"
          "}\n"
          "void decode(Deserializer &d, std::vector<int> &v) {\n"
          "    v.resize(relay(d));\n"
          "}\n"}});
    ASSERT_EQ(countRule(findings, "taint-bound"), 1u);
    EXPECT_EQ(findings[0].line, 9);
}

TEST(AbflowSummary, CtorInitListBodyIsStillAnalyzed)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "Frame::Frame(std::uint64_t n)\n"
          "    : size(n), used(0)\n"
          "{\n"
          "    pixels.resize(n);\n"
          "}\n"}});
    const ablint::FlowModel fm = ablint::buildFlowModel(in);
    const auto &ctor = fnByName(fm, "Frame");
    ASSERT_EQ(ctor.summary.paramToSink.size(), 1u);
    EXPECT_TRUE(ctor.summary.paramToSink[0]);
}

// ---- taint-bound: known-bad / suppressed / sanitized -----------------

TEST(AbflowTaintBound, TwoFunctionChainIsFlaggedAtTheSink)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "std::uint64_t readLen(Deserializer &d) {\n"
          "    return d.getU64();\n"
          "}\n"
          "void decode(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n = readLen(d);\n"
          "    v.resize(n);\n"
          "}\n"}});
    ASSERT_EQ(countRule(findings, "taint-bound"), 1u);
    EXPECT_EQ(findings[0].line, 6);
    // The message names the source, the hop and the sink.
    EXPECT_NE(findings[0].message.find("getU64"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("readLen"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("resize"),
              std::string::npos);
}

TEST(AbflowTaintBound, LoopBoundIndexAndNewAreSinks)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void f(Deserializer &d, int *table) {\n"
          "    const std::uint64_t n = d.getU64();\n"
          "    for (std::uint64_t i = 0; i < n; ++i) { use(i); }\n"
          "    int x = table[n];\n"
          "    int *buf = new int[n];\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "taint-bound"), 3u);
}

TEST(AbflowTaintBound, ParseCallsAreSourcesToo)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void f(const std::string &s, std::vector<int> &v) {\n"
          "    const std::size_t n = std::stoull(s);\n"
          "    v.reserve(n);\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "taint-bound"), 1u);
}

TEST(AbflowTaintBound, InlineAllowSuppresses)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void decode(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n = d.getU64();\n"
          "    // ablint:allow(taint-bound): capped upstream\n"
          "    v.resize(n);\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "taint-bound"), 0u);
}

TEST(AbflowTaintBound, SanitizersMakeItClean)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void viaGetCount(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n = d.getCount(4);\n"
          "    v.resize(n);\n"
          "}\n"
          "void viaCompare(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n = d.getU64();\n"
          "    if (n > kMaxCells) { return; }\n"
          "    v.resize(n);\n"
          "}\n"
          "void viaClamp(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n =\n"
          "        std::min(d.getU64(), kMaxCells);\n"
          "    v.resize(n);\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "taint-bound"), 0u);
}

TEST(AbflowTaintBound, SanitizedInCallerOfTaintedHelper)
{
    // The helper's return is tainted, but the caller checks it
    // before the sink: flow-sensitivity must see the kill.
    const auto findings = lintFlow(
        {{"src/a.cc",
          "std::uint64_t readLen(Deserializer &d) {\n"
          "    return d.getU64();\n"
          "}\n"
          "void decode(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n = readLen(d);\n"
          "    if (n > kMax) { return; }\n"
          "    v.resize(n);\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "taint-bound"), 0u);
}

// ---- unit-mix: known-bad / suppressed / clean ------------------------

TEST(AbflowUnitMix, MsComparedAgainstTickIsFlagged)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "bool late(Tick deadline, std::uint64_t frameMs) {\n"
          "    return deadline < frameMs;\n"
          "}\n"}});
    ASSERT_EQ(countRule(findings, "unit-mix"), 1u);
    EXPECT_NE(firstMessage(findings, "unit-mix").find("Tick"),
              std::string::npos);
    EXPECT_NE(firstMessage(findings, "unit-mix").find("ms"),
              std::string::npos);
}

TEST(AbflowUnitMix, AdditionAndCallArgsAreChecked)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "Tick f(Tick now, std::uint64_t budgetMs,\n"
          "       std::uint64_t periodUs) {\n"
          "    Tick t = now + budgetMs;\n"
          "    Tick u = msToTicks(periodUs);\n"
          "    return t + u;\n"
          "}\n"}});
    // now + budgetMs mixes tick/ms; msToTicks(periodUs) passes us
    // where ms is expected.
    EXPECT_EQ(countRule(findings, "unit-mix"), 2u);
}

TEST(AbflowUnitMix, KhzSuffixWinsOverHz)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "bool f(FreqKHz cur, std::uint64_t targetKHz) {\n"
          "    return cur < targetKHz;\n"
          "}\n"}});
    // Both sides are kHz: no mix.
    EXPECT_EQ(countRule(findings, "unit-mix"), 0u);
}

TEST(AbflowUnitMix, InlineAllowSuppresses)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "bool late(Tick deadline, std::uint64_t frameMs) {\n"
          "    // ablint:allow(unit-mix): frameMs is pre-converted\n"
          "    return deadline < frameMs;\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "unit-mix"), 0u);
}

TEST(AbflowUnitMix, ConvertedOperandsAreClean)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "bool late(Tick deadline, std::uint64_t frameMs) {\n"
          "    return deadline < msToTicks(frameMs);\n"
          "}\n"
          "int plain(int a, int b) { return a + b; }\n"}});
    EXPECT_EQ(countRule(findings, "unit-mix"), 0u);
}

// ---- status-drop: known-bad / suppressed / clean ---------------------

TEST(AbflowStatusDrop, OverwrittenAndDyingStatusesAreFlagged)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void f(Writer &w) {\n"
          "    Status st = w.writeHeader();\n"
          "    st = w.writeBody();\n"
          "}\n"}});
    // writeHeader's status is overwritten unread; writeBody's dies.
    ASSERT_EQ(countRule(findings, "status-drop"), 2u);
    EXPECT_EQ(findings[0].line, 2);
    EXPECT_NE(findings[0].message.find("overwritten"),
              std::string::npos);
    EXPECT_EQ(findings[1].line, 3);
    EXPECT_NE(findings[1].message.find("dies"), std::string::npos);
}

TEST(AbflowStatusDrop, ResultLocalsAreTrackedToo)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void f(Parser &p) {\n"
          "    Result<std::int64_t> r = p.parseInt();\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "status-drop"), 1u);
}

TEST(AbflowStatusDrop, InlineAllowSuppresses)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void f(Writer &w) {\n"
          "    // ablint:allow(status-drop): best-effort flush\n"
          "    Status st = w.flush();\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "status-drop"), 0u);
}

TEST(AbflowStatusDrop, BranchedPropagatedAndNeutralAreClean)
{
    const auto findings = lintFlow(
        {{"src/a.cc",
          "Status f(Writer &w) {\n"
          "    Status st = w.writeHeader();\n"
          "    if (!st.ok()) { return st; }\n"
          "    st = w.writeBody();\n"
          "    return st;\n"
          "}\n"
          "void g(Writer &w) {\n"
          "    Status st = okStatus();\n"
          "    if (bad()) { st = w.abort(); }\n"
          "    log(st);\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "status-drop"), 0u);
}

TEST(AbflowStatusDrop, LoopCarriedUseIsClean)
{
    // The def at the loop tail is read at the head of the next
    // iteration: a use in the same loop keeps it alive.
    const auto findings = lintFlow(
        {{"src/a.cc",
          "void f(Stepper &s) {\n"
          "    Status st = okStatus();\n"
          "    while (st.ok()) {\n"
          "        st = s.step();\n"
          "    }\n"
          "}\n"}});
    EXPECT_EQ(countRule(findings, "status-drop"), 0u);
}

// ---- dedupe: taint-bound supersedes deser-bound ----------------------

TEST(AbflowDedupe, TaintBoundSupersedesDeserBoundOnSameLine)
{
    // A one-function chain trips both the lexical deser-bound and
    // the interprocedural taint-bound on the same sink line; the
    // combined pass must keep only the flow finding.
    ablint::ScanInput in = makeInput(
        {{"src/a.cc",
          "void decode(Deserializer &d, std::vector<int> &v) {\n"
          "    const std::uint64_t n = d.getU64();\n"
          "    v.resize(n);\n"
          "}\n"}});
    const auto all = ablint::runAllRules(in);
    EXPECT_EQ(countRule(all, "taint-bound"), 1u);
    EXPECT_EQ(countRule(all, "deser-bound"), 0u);
    // The lexical rule alone still fires - the dedupe, not the
    // rule, removed it.
    const auto lexical = ablint::runRules(in);
    EXPECT_EQ(countRule(lexical, "deser-bound"), 1u);
}

// ---- profile plumbing ------------------------------------------------

TEST(AbflowProfile, PerRuleTimingsAreRecorded)
{
    const ablint::ScanInput in = makeInput(
        {{"src/a.cc", "int x = 0;\n"}});
    ablint::RuleProfile profile;
    ablint::runAllRules(in, &profile);
    EXPECT_EQ(profile.count("taint-bound"), 1u);
    EXPECT_EQ(profile.count("unit-mix"), 1u);
    EXPECT_EQ(profile.count("status-drop"), 1u);
    EXPECT_EQ(profile.count("flow-model-build"), 1u);
    for (const auto &[name, ms] : profile)
        EXPECT_GE(ms, 0.0) << name;
}

// ---- meta: the real checkout is clean with the flow rules on ---------

#ifdef ABLINT_REPO_ROOT
TEST(AbflowMeta, RepoIsFlowClean)
{
    const auto findings =
        ablint::runOnRepo(ABLINT_REPO_ROOT, "", "", "", {});
    std::size_t flowFindings = 0;
    for (const auto &f : findings) {
        if (f.rule == "taint-bound" || f.rule == "unit-mix" ||
            f.rule == "status-drop")
            ++flowFindings;
    }
    EXPECT_EQ(flowFindings, 0u)
        << "flow findings in the checkout: fix them or justify "
           "each with an inline allow";
}
#endif

} // namespace
