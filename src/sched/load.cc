#include "sched/load.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

LoadTracker::LoadTracker(double half_life_ms)
    : halfLifeMs(half_life_ms), decayFactor(decayFor(half_life_ms))
{
}

double
LoadTracker::decayFor(double half_life_ms)
{
    BL_ASSERT(half_life_ms > 0.0);
    return std::exp2(-1.0 / half_life_ms);
}

void
LoadTracker::update(double runnable_fraction, double freq_scale,
                    std::uint32_t periods)
{
    accrue(static_cast<double>(periods), runnable_fraction,
           freq_scale);
}

void
LoadTracker::accrue(double periods, double contribution,
                    double freq_scale)
{
    BL_ASSERT(periods >= 0.0);
    BL_ASSERT(contribution >= 0.0 && contribution <= 1.0);
    BL_ASSERT(freq_scale > 0.0 && freq_scale <= 1.0);
    const double target = fullScale * contribution * freq_scale;
    const double keep = std::pow(decayFactor, periods);
    load = load * keep + target * (1.0 - keep);
}

void
LoadTracker::decay(double periods)
{
    BL_ASSERT(periods >= 0.0);
    load *= std::pow(decayFactor, periods);
}

void
LoadTracker::setHalfLife(double half_life_ms)
{
    halfLifeMs = half_life_ms;
    decayFactor = decayFor(half_life_ms);
}

void
LoadTracker::reset()
{
    load = 0.0;
}

void
LoadTracker::serialize(Serializer &s) const
{
    s.putDouble(halfLifeMs);
    s.putDouble(load);
}

void
LoadTracker::deserialize(Deserializer &d)
{
    setHalfLife(d.getDouble());
    load = d.getDouble();
}

} // namespace biglittle
