/**
 * @file
 * Tests for the CSV writer: quoting, row assembly, file contents.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/csv.hh"

using namespace biglittle;

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path;

    void
    SetUp() override
    {
        path = ::testing::TempDir() + "biglittle_csv_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path.c_str());
    }
};

} // namespace

TEST_F(CsvTest, HeaderAndRows)
{
    {
        CsvWriter w;
        ASSERT_TRUE(w.open(path).ok());
        w.header({"a", "b", "c"});
        w.beginRow();
        w.cell(std::string("x"));
        w.cell(1.5);
        w.cell(static_cast<std::uint64_t>(7));
        w.endRow();
        EXPECT_EQ(w.rowsWritten(), 1u);
    }
    EXPECT_EQ(slurp(path), "a,b,c\nx,1.5,7\n");
}

TEST_F(CsvTest, QuotesCommasAndQuotes)
{
    {
        CsvWriter w;
        ASSERT_TRUE(w.open(path).ok());
        w.row({"plain", "with,comma", "with\"quote", "multi\nline"});
    }
    EXPECT_EQ(slurp(path),
              "plain,\"with,comma\",\"with\"\"quote\",\"multi\nline\"\n");
}

TEST_F(CsvTest, NumericFormatting)
{
    {
        CsvWriter w;
        ASSERT_TRUE(w.open(path).ok());
        w.beginRow();
        w.cell(0.1);
        w.cell(1234567.0);
        w.cell(1e-9);
        w.endRow();
    }
    EXPECT_EQ(slurp(path), "0.1,1.23457e+06,1e-09\n");
}

TEST_F(CsvTest, MultipleRowsCounted)
{
    {
        CsvWriter w;
        ASSERT_TRUE(w.open(path).ok());
        for (int i = 0; i < 5; ++i)
            w.row({"r" + std::to_string(i)});
        EXPECT_EQ(w.rowsWritten(), 5u);
    }
    std::string content = slurp(path);
    EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 5);
}

TEST(CsvTest2, UnopenableFileReturnsStatus)
{
    CsvWriter w;
    const Status st = w.open("/nonexistent_dir_xyz/file.csv");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::unavailable);
    EXPECT_NE(st.message().find("cannot open CSV"), std::string::npos);
}
