/**
 * @file
 * WorkClass: the architecture-visible description of a unit of work.
 *
 * Workloads describe their compute in terms of instruction count plus
 * a WorkClass; the platform's performance model turns that into time
 * for a given core type and frequency.  Three axes are enough to span
 * the behaviors the paper relies on: instruction-level parallelism
 * (how much a wide out-of-order core helps), L1-miss rate (how much
 * traffic reaches the L2), and footprint (whether the working set
 * fits the 2 MB big-cluster L2 but not the 512 KB little-cluster L2,
 * which is what stretches SPEC speedups toward 4.5x in Fig. 2).
 */

#ifndef BIGLITTLE_PLATFORM_WORK_CLASS_HH
#define BIGLITTLE_PLATFORM_WORK_CLASS_HH

namespace biglittle
{

/** Architecture-visible character of a stream of instructions. */
struct WorkClass
{
    /**
     * Exploitable instruction-level parallelism in [0, 1]; 1 keeps a
     * wide machine full, 0 is a serial dependence chain.
     */
    double ilp = 0.7;

    /** Fraction of instructions that miss the L1 and query the L2. */
    double l1MissPerInst = 0.01;

    /** Working-set size competing for L2 capacity, in KB. */
    double footprintKB = 128.0;
};

/** A WorkClass for bursty UI/framework code (modest ILP, small WS). */
inline WorkClass
uiWorkClass()
{
    return WorkClass{0.6, 0.012, 192.0};
}

/** A WorkClass for media/codec kernels (high ILP, streaming-ish). */
inline WorkClass
mediaWorkClass()
{
    return WorkClass{0.85, 0.02, 768.0};
}

/** A WorkClass for game/physics engines (mixed ILP, mid footprint). */
inline WorkClass
gameWorkClass()
{
    return WorkClass{0.7, 0.018, 512.0};
}

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_WORK_CLASS_HH
