/**
 * @file
 * Tests for the Exynos 5422 parameter factory: the configuration
 * must match Table I and Section II of the paper.
 */

#include <gtest/gtest.h>

#include "platform/params.hh"

using namespace biglittle;

TEST(Exynos5422Params, HasLittleAndBigClusters)
{
    const PlatformParams p = exynos5422Params();
    ASSERT_EQ(p.clusters.size(), 2u);
    EXPECT_EQ(p.clusters[0].type, CoreType::little);
    EXPECT_EQ(p.clusters[1].type, CoreType::big);
    EXPECT_EQ(p.clusters[0].coreCount, 4u);
    EXPECT_EQ(p.clusters[1].coreCount, 4u);
}

TEST(Exynos5422Params, FrequencyRangesMatchPaper)
{
    const PlatformParams p = exynos5422Params();
    // little: 0.5 - 1.3 GHz, big: 0.8 - 1.9 GHz (Section II).
    EXPECT_EQ(p.clusters[0].opps.front().freq, 500000u);
    EXPECT_EQ(p.clusters[0].opps.back().freq, 1300000u);
    EXPECT_EQ(p.clusters[1].opps.front().freq, 800000u);
    EXPECT_EQ(p.clusters[1].opps.back().freq, 1900000u);
}

TEST(Exynos5422Params, OppTablesAscendInFreqAndVoltage)
{
    const PlatformParams p = exynos5422Params();
    for (const auto &cluster : p.clusters) {
        for (std::size_t i = 1; i < cluster.opps.size(); ++i) {
            EXPECT_GT(cluster.opps[i].freq, cluster.opps[i - 1].freq);
            EXPECT_GE(cluster.opps[i].voltage,
                      cluster.opps[i - 1].voltage);
        }
    }
}

TEST(Exynos5422Params, CacheSizesMatchTableI)
{
    const PlatformParams p = exynos5422Params();
    EXPECT_EQ(p.clusters[0].l2.sizeKB, 512u); // little: 512 KB
    EXPECT_EQ(p.clusters[1].l2.sizeKB, 2048u); // big: 2 MB
}

TEST(Exynos5422Params, BigCoreIsWiderAndExtractsMoreIlp)
{
    const PlatformParams p = exynos5422Params();
    EXPECT_GT(p.clusters[1].perf.issueWidth,
              p.clusters[0].perf.issueWidth);
    EXPECT_GT(p.clusters[1].perf.ilpExtraction,
              p.clusters[0].perf.ilpExtraction);
}

TEST(Exynos5422Params, BigCoreBurnsMorePower)
{
    const PlatformParams p = exynos5422Params();
    EXPECT_GT(p.clusters[1].power.dynCoeffMw,
              2.0 * p.clusters[0].power.dynCoeffMw);
    EXPECT_GT(p.clusters[1].power.staticCoeffMw,
              p.clusters[0].power.staticCoeffMw);
}

TEST(Exynos5422Params, BootCoreIsALittleCore)
{
    const PlatformParams p = exynos5422Params();
    EXPECT_EQ(p.bootCluster, 0u);
    EXPECT_EQ(p.clusters[p.bootCluster].type, CoreType::little);
}

TEST(Exynos5422Params, CoreTypeNames)
{
    EXPECT_STREQ(coreTypeName(CoreType::little), "little");
    EXPECT_STREQ(coreTypeName(CoreType::big), "big");
}
