#include "workload/behavior.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

Behavior::Behavior(Simulation &sim_in, Task &task_in, Rng rng_in)
    : sim(sim_in), taskRef(task_in), rng(rng_in)
{
    taskRef.setClient(this);
}

Behavior::~Behavior()
{
    if (taskRef.client() == this)
        taskRef.setClient(nullptr);
}

void
Behavior::serializeState(Serializer &s) const
{
    rng.serialize(s);
}

void
Behavior::deserializeState(Deserializer &d)
{
    rng.deserialize(d);
}

ContinuousBehavior::ContinuousBehavior(
    Simulation &sim_in, Task &task_in, Rng rng_in,
    double total_instructions, std::function<void(Tick)> on_complete)
    : Behavior(sim_in, task_in, rng_in), budget(total_instructions),
      onComplete(std::move(on_complete))
{
    BL_ASSERT(budget > 0.0);
}

void
ContinuousBehavior::start()
{
    taskRef.submitWork(budget);
}

void
ContinuousBehavior::onWorkDrained(Task &)
{
    BL_ASSERT(!completed);
    completed = true;
    finishTick = sim.now();
    if (onComplete)
        onComplete(finishTick);
}

void
ContinuousBehavior::serializeState(Serializer &s) const
{
    Behavior::serializeState(s);
    s.putDouble(budget);
    s.putBool(completed);
    s.putU64(finishTick);
}

void
ContinuousBehavior::deserializeState(Deserializer &d)
{
    Behavior::deserializeState(d);
    budget = d.getDouble();
    completed = d.getBool();
    finishTick = d.getU64();
}

PeriodicBehavior::PeriodicBehavior(Simulation &sim_in, Task &task_in,
                                   Rng rng_in, const PeriodicSpec &spec,
                                   FrameStats *stats_in)
    : Behavior(sim_in, task_in, rng_in), periodicSpec(spec),
      stats(stats_in)
{
    BL_ASSERT(periodicSpec.period > 0);
    BL_ASSERT(periodicSpec.instPerPeriod > 0.0);
}

void
PeriodicBehavior::start()
{
    nextRelease = sim.now() + periodicSpec.phase;
    if (nextRelease <= sim.now()) {
        submitFrame();
    } else {
        sim.at(nextRelease, [this] { submitFrame(); },
               workPrio, taskRef.name() + ".frame");
    }
}

void
PeriodicBehavior::submitFrame()
{
    sim.noteWrite(taskRef.name(), "work");
    if (periodicSpec.pauseCycle > 0) {
        const Tick phase = sim.now() % periodicSpec.pauseCycle;
        if (phase < periodicSpec.pauseLength) {
            // Scene pause: resume at the end of the pause window.
            sim.at(sim.now() + (periodicSpec.pauseLength - phase),
                   [this] { submitFrame(); }, workPrio,
                   taskRef.name() + ".frame");
            return;
        }
    }
    nextRelease = sim.now() + periodicSpec.period;
    if (periodicSpec.activeProbability < 1.0 &&
        !rng.chance(periodicSpec.activeProbability)) {
        // Nothing dirty this period; wake again at the next vsync.
        sim.at(nextRelease, [this] { submitFrame(); },
               workPrio, taskRef.name() + ".frame");
        return;
    }
    const double cost = rng.logNormal(periodicSpec.instPerPeriod,
                                      periodicSpec.jitterSigma);
    taskRef.submitWork(std::max(1.0, cost));
}

void
PeriodicBehavior::onWorkDrained(Task &)
{
    sim.noteWrite(taskRef.name(), "work");
    ++frames;
    if (stats != nullptr)
        stats->recordFrame(sim.now());
    // Vsync pacing: the next frame starts one period after this one
    // was released, or immediately if we already missed that slot.
    if (nextRelease <= sim.now()) {
        submitFrame();
    } else {
        sim.at(nextRelease, [this] { submitFrame(); },
               workPrio, taskRef.name() + ".frame");
    }
}

void
PeriodicBehavior::serializeState(Serializer &s) const
{
    Behavior::serializeState(s);
    s.putU64(nextRelease);
    s.putU64(frames);
}

void
PeriodicBehavior::deserializeState(Deserializer &d)
{
    Behavior::deserializeState(d);
    nextRelease = d.getU64();
    frames = d.getU64();
}

BurstBehavior::BurstBehavior(Simulation &sim_in, Task &task_in,
                             Rng rng_in, double chunk_instructions,
                             Tick chunk_gap)
    : Behavior(sim_in, task_in, rng_in),
      chunkInstructions(chunk_instructions), chunkGap(chunk_gap)
{
    BL_ASSERT(chunk_instructions >= 0.0);
}

void
BurstBehavior::start()
{
}

void
BurstBehavior::injectBurst(double instructions)
{
    sim.noteWrite(taskRef.name(), "work");
    BL_ASSERT(instructions > 0.0);
    if (chunkInstructions <= 0.0) {
        taskRef.submitWork(instructions);
        return;
    }
    backlog += instructions;
    submitNextChunk();
}

void
BurstBehavior::submitNextChunk()
{
    sim.noteWrite(taskRef.name(), "work");
    BL_ASSERT(backlog > 0.0);
    const double chunk = std::min(backlog, chunkInstructions);
    backlog -= chunk;
    taskRef.submitWork(chunk);
}

void
BurstBehavior::setDrainListener(DrainListener listener)
{
    drainListener = std::move(listener);
}

void
BurstBehavior::onWorkDrained(Task &)
{
    if (backlog > 0.0) {
        // Micro-stall, then the next chunk of the same burst.
        sim.after(chunkGap, [this] { submitNextChunk(); }, workPrio,
                  taskRef.name() + ".chunk");
        return;
    }
    ++bursts;
    if (drainListener)
        drainListener(*this, sim.now());
}

void
BurstBehavior::serializeState(Serializer &s) const
{
    Behavior::serializeState(s);
    s.putDouble(backlog);
    s.putU64(bursts);
}

void
BurstBehavior::deserializeState(Deserializer &d)
{
    Behavior::deserializeState(d);
    backlog = d.getDouble();
    bursts = d.getU64();
}

DutyCycleBehavior::DutyCycleBehavior(Simulation &sim_in, Task &task_in,
                                     Rng rng_in,
                                     double target_utilization,
                                     double chunk_instructions)
    : Behavior(sim_in, task_in, rng_in), target(target_utilization),
      chunk(chunk_instructions)
{
    BL_ASSERT(target > 0.0 && target <= 1.0);
    BL_ASSERT(chunk > 0.0);
}

void
DutyCycleBehavior::start()
{
    chunkStart = sim.now();
    taskRef.submitWork(chunk);
}

void
DutyCycleBehavior::onWorkDrained(Task &)
{
    sim.noteWrite(taskRef.name(), "work");
    const Tick busy = sim.now() - chunkStart;
    // Pause long enough that busy/(busy+pause) == target, exactly as
    // the paper's microbenchmark throttles itself.
    const double pause_sec =
        ticksToSeconds(busy) * (1.0 - target) / target;
    const Tick pause = static_cast<Tick>(std::llround(pause_sec * 1e9));
    if (pause == 0) {
        chunkStart = sim.now();
        taskRef.submitWork(chunk);
        return;
    }
    sim.after(pause,
              [this] {
                  sim.noteWrite(taskRef.name(), "work");
                  chunkStart = sim.now();
                  taskRef.submitWork(chunk);
              },
              workPrio, taskRef.name() + ".duty");
}

void
DutyCycleBehavior::serializeState(Serializer &s) const
{
    Behavior::serializeState(s);
    s.putU64(chunkStart);
}

void
DutyCycleBehavior::deserializeState(Deserializer &d)
{
    Behavior::deserializeState(d);
    chunkStart = d.getU64();
}

} // namespace biglittle
