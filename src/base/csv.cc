#include "base/csv.hh"

#include <cstdio>

#include "base/logging.hh"

namespace biglittle
{

Status
CsvWriter::open(const std::string &path)
{
    BL_ASSERT(!out.is_open());
    out.open(path);
    if (!out)
        return unavailable("cannot open CSV output file '" + path + "'");
    return okStatus();
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    BL_ASSERT(!headerWritten && !rowOpen);
    beginRow();
    for (const auto &c : columns)
        rawCell(escape(c));
    // header does not count as a data row
    out << '\n';
    rowOpen = false;
    headerWritten = true;
}

void
CsvWriter::beginRow()
{
    BL_ASSERT(!rowOpen);
    rowOpen = true;
    firstCell = true;
}

void
CsvWriter::rawCell(const std::string &value)
{
    BL_ASSERT(rowOpen);
    if (!firstCell)
        out << ',';
    out << value;
    firstCell = false;
}

void
CsvWriter::cell(const std::string &value)
{
    rawCell(escape(value));
}

void
CsvWriter::cell(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    rawCell(buf);
}

void
CsvWriter::cell(std::uint64_t value)
{
    rawCell(std::to_string(value));
}

void
CsvWriter::endRow()
{
    BL_ASSERT(rowOpen);
    out << '\n';
    rowOpen = false;
    ++rows;
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    beginRow();
    for (const auto &c : cells)
        cell(c);
    endRow();
}

std::string
CsvWriter::escape(const std::string &value)
{
    const bool needs_quote =
        value.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quote)
        return value;
    std::string quoted = "\"";
    for (const char ch : value) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

} // namespace biglittle
