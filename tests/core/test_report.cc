/**
 * @file
 * Tests for the report printers: table rendering does not crash,
 * respects shapes, and the CSV mirrors carry exactly the printed
 * rows.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/csv.hh"
#include "core/experiment.hh"
#include "core/report.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

/** One short app run shared by all report tests. */
const AppRunResult &
sharedRun()
{
    static const AppRunResult result = [] {
        Experiment experiment;
        AppSpec app = angryBirdApp();
        app.duration = msToTicks(2000);
        return experiment.runApp(app);
    }();
    return result;
}

std::vector<std::string>
csvLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

class ReportTest : public ::testing::Test
{
  protected:
    std::string path;

    void
    SetUp() override
    {
        // One file per test case: ctest runs the cases of this
        // fixture concurrently, and a shared name would let one
        // case truncate the file another is reading.
        path = ::testing::TempDir() + "biglittle_report_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name() +
               ".csv";
    }

    void
    TearDown() override
    {
        std::remove(path.c_str());
    }
};

} // namespace

TEST_F(ReportTest, TlpTableCsvHasOneRowPerApp)
{
    const std::vector<AppRunResult> results = {sharedRun(),
                                               sharedRun()};
    {
        CsvWriter csv;
        ASSERT_TRUE(csv.open(path).ok());
        printTlpTable(results, &csv);
    }
    const auto lines = csvLines(path);
    ASSERT_EQ(lines.size(), 3u); // header + 2 rows
    EXPECT_EQ(lines[0], "app,idle_pct,little_pct,big_pct,tlp");
    EXPECT_EQ(lines[1].rfind("angry_bird,", 0), 0u);
}

TEST_F(ReportTest, TlpMatrixCsvHasFiveRows)
{
    {
        CsvWriter csv;
        ASSERT_TRUE(csv.open(path).ok());
        printTlpMatrix(sharedRun(), &csv);
    }
    const auto lines = csvLines(path);
    // 5 big-count rows, no header written by the matrix printer.
    ASSERT_EQ(lines.size(), 5u);
    for (const auto &line : lines)
        EXPECT_EQ(line.rfind("angry_bird,", 0), 0u);
}

TEST_F(ReportTest, EfficiencyCsvRowSumsToHundred)
{
    {
        CsvWriter csv;
        ASSERT_TRUE(csv.open(path).ok());
        printEfficiencyTable({sharedRun()}, &csv);
    }
    const auto lines = csvLines(path);
    ASSERT_EQ(lines.size(), 2u);
    std::stringstream ss(lines[1]);
    std::string cell;
    std::getline(ss, cell, ','); // app name
    double sum = 0.0;
    while (std::getline(ss, cell, ','))
        sum += std::stod(cell);
    EXPECT_NEAR(sum, 100.0, 0.01);
}

TEST_F(ReportTest, ResidencyCsvHasColumnPerOpp)
{
    {
        CsvWriter csv;
        ASSERT_TRUE(csv.open(path).ok());
        printFreqResidencyTable({sharedRun()}, /*big=*/false, &csv);
    }
    const auto lines = csvLines(path);
    ASSERT_EQ(lines.size(), 2u);
    // app + 9 little OPPs
    EXPECT_EQ(std::count(lines[0].begin(), lines[0].end(), ','), 9);
    EXPECT_EQ(std::count(lines[1].begin(), lines[1].end(), ','), 9);
}

TEST_F(ReportTest, TaskTableCsvHasOneRowPerThread)
{
    {
        CsvWriter csv;
        ASSERT_TRUE(csv.open(path).ok());
        printTaskTable(sharedRun(), &csv);
    }
    const auto lines = csvLines(path);
    // header + one row per angry_bird thread (render/physics/audio)
    ASSERT_EQ(lines.size(), 1u + sharedRun().tasks.size());
    EXPECT_EQ(lines[0],
              "task,minst,little_ms,big_ms,big_share_pct,migrations");
    EXPECT_NE(lines[1].find("angry_bird."), std::string::npos);
}

TEST_F(ReportTest, PrintersWithoutCsvDoNotCrash)
{
    printTlpTable({sharedRun()});
    printTlpMatrix(sharedRun());
    printEfficiencyTable({sharedRun()});
    printFreqResidencyTable({sharedRun()}, true);
    printFreqResidencyTable({sharedRun()}, false);
    printRunSummary(sharedRun());
    printTaskTable(sharedRun());
    SUCCEED();
}

TEST_F(ReportTest, TaskSummariesMatchSchedulerTotals)
{
    const AppRunResult &r = sharedRun();
    ASSERT_FALSE(r.tasks.empty());
    double total_minst = 0.0;
    for (const TaskSummary &t : r.tasks) {
        total_minst += t.instructionsRetired;
        EXPECT_GE(t.bigSharePct(), 0.0);
        EXPECT_LE(t.bigSharePct(), 100.0);
    }
    EXPECT_GT(total_minst, 0.0);
}
