#include "workload/workflow.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

WorkflowDriver::WorkflowDriver(Simulation &sim_in, BurstBehavior &ui_in,
                               std::vector<BurstBehavior *> workers_in,
                               std::vector<ActionSpec> actions_in,
                               Rng rng_in, double jitter_sigma,
                               std::function<void(Tick)> on_done)
    : sim(sim_in), ui(ui_in), workers(std::move(workers_in)),
      actions(std::move(actions_in)), rng(rng_in),
      jitterSigma(jitter_sigma), onDone(std::move(on_done))
{
    BL_ASSERT(!actions.empty());
    for (const ActionSpec &a : actions) {
        BL_ASSERT(a.uiInstructions > 0.0);
        BL_ASSERT(a.workerInstructions.size() <= workers.size());
    }
    auto listener = [this](BurstBehavior &, Tick now) {
        threadDrained(now);
    };
    ui.setDrainListener(listener);
    for (BurstBehavior *w : workers)
        w->setDrainListener(listener);
}

double
WorkflowDriver::jittered(double instructions)
{
    if (jitterSigma <= 0.0)
        return instructions;
    return std::max(1.0, rng.logNormal(instructions, jitterSigma));
}

void
WorkflowDriver::start()
{
    startTick = sim.now();
    issueNext();
}

void
WorkflowDriver::issueNext()
{
    BL_ASSERT(nextAction < actions.size());
    BL_ASSERT(outstanding == 0);
    const ActionSpec &action = actions[nextAction];
    ++nextAction;

    // Count involved threads before submitting: drains are
    // synchronous once the work completes, and submissions must not
    // race the countdown.
    outstanding = 1;
    for (const double insts : action.workerInstructions)
        outstanding += insts > 0.0 ? 1 : 0;

    ui.injectBurst(jittered(action.uiInstructions));
    for (std::size_t i = 0; i < action.workerInstructions.size(); ++i) {
        const double insts = action.workerInstructions[i];
        if (insts > 0.0)
            workers[i]->injectBurst(jittered(insts));
    }
}

void
WorkflowDriver::threadDrained(Tick now)
{
    BL_ASSERT(outstanding > 0);
    if (--outstanding > 0)
        return;
    ++completedActions;
    if (nextAction >= actions.size()) {
        finished = true;
        endTick = now;
        if (onDone)
            onDone(now);
        return;
    }
    const Tick think = actions[nextAction - 1].thinkTime;
    if (think == 0) {
        issueNext();
    } else {
        sim.after(think, [this] { issueNext(); },
                  EventPriority::workflowStep, "workflow.think");
    }
}

Tick
WorkflowDriver::latency() const
{
    BL_ASSERT(finished);
    return endTick - startTick;
}

void
WorkflowDriver::serialize(Serializer &s) const
{
    rng.serialize(s);
    s.putU64(startTick);
    s.putU64(endTick);
    s.putU64(nextAction);
    s.putU64(completedActions);
    s.putU32(outstanding);
    s.putBool(finished);
}

void
WorkflowDriver::deserialize(Deserializer &d)
{
    rng.deserialize(d);
    startTick = d.getU64();
    endTick = d.getU64();
    nextAction = d.getU64();
    completedActions = d.getU64();
    outstanding = d.getU32();
    finished = d.getBool();
}

} // namespace biglittle
