/**
 * @file
 * Internals shared by the lexical rule pass (rules.cc) and the
 * semantic pass (sema_rules.cc): token predicates, the inline-allow
 * aware finding sink, the serialized_state.txt parser, and the
 * fatal() allowlist.  Not part of the public ablint API.
 */

#ifndef BIGLITTLE_TOOLS_ABLINT_SINK_HH
#define BIGLITTLE_TOOLS_ABLINT_SINK_HH

#include "ablint.hh"

#include <chrono>
#include <sstream>
#include <utility>

namespace biglittle::ablint::detail
{

inline bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::identifier && t.text == text;
}

inline bool
isPunct(const Token &t, char c)
{
    return t.kind == TokKind::punct && t.text.size() == 1 &&
           t.text[0] == c;
}

inline bool
lineAllows(const LexedFile &f, int line, const std::string &rule)
{
    const auto it = f.allows.find(line);
    return it != f.allows.end() && it->second.count(rule) > 0;
}

/**
 * Run @p fn, accumulating its wall time under @p name in @p profile
 * (in milliseconds) when a profile is requested.  Backs ablint's
 * --profile flag across all three passes.
 */
template <typename Fn>
void
timeRule(RuleProfile *profile, const char *name, Fn &&fn)
{
    if (profile == nullptr) {
        fn();
        return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    (*profile)[name] +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/**
 * Collects findings, dropping (and recording, when @p uses is set)
 * the ones suppressed by an inline allow on their line.
 */
struct Sink
{
    std::vector<Finding> &out;
    AllowUse *uses = nullptr;

    void
    add(const LexedFile &f, int line, std::string rule,
        std::string message)
    {
        if (lineAllows(f, line, rule)) {
            if (uses != nullptr)
                (*uses)[{f.path, line}].insert(rule);
            return;
        }
        out.push_back(
            {f.path, line, std::move(rule), std::move(message)});
    }
};

/** One parsed line of serialized_state.txt. */
struct RegistryEntry
{
    std::string className;
    std::string cover;
    int line = 0;
};

inline std::vector<RegistryEntry>
parseRegistry(const std::string &text)
{
    std::vector<RegistryEntry> entries;
    std::istringstream in(text);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream fields(line);
        RegistryEntry e;
        e.line = line_no;
        if (fields >> e.className >> e.cover)
            entries.push_back(std::move(e));
    }
    return entries;
}

/**
 * Files whose fatal() calls are their documented contract: the
 * logging module defines it, and the by-name lookup helpers
 * (apps/spec/app_model) promise fatal() on an unknown name in their
 * headers - all pre-run, user-asked-for-the-impossible paths.
 * Shared by post-init-fatal (direct calls) and fatal-reach
 * (transitive reachability).
 */
inline bool
fatalAllowlisted(const std::string &path)
{
    static const char *const prefixes[] = {
        "base/logging.",
        "workload/apps.",
        "workload/spec.",
        "workload/app_model.",
    };
    for (const char *p : prefixes) {
        if (path.find(p) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace biglittle::ablint::detail

#endif // BIGLITTLE_TOOLS_ABLINT_SINK_HH
