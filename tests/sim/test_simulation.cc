/**
 * @file
 * Tests for Simulation: one-shot callbacks, periodic tasks, period
 * changes, cancellation, and run control.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hh"

using namespace biglittle;

TEST(Simulation, OneShotAtAbsoluteTime)
{
    Simulation sim;
    std::vector<Tick> fired;
    sim.at(100, [&] { fired.push_back(sim.now()); });
    sim.runUntil(200);
    EXPECT_EQ(fired, (std::vector<Tick>{100}));
}

TEST(Simulation, OneShotAfterDelay)
{
    Simulation sim;
    sim.runUntil(50);
    std::vector<Tick> fired;
    sim.after(25, [&] { fired.push_back(sim.now()); });
    sim.runFor(100);
    EXPECT_EQ(fired, (std::vector<Tick>{75}));
    EXPECT_EQ(sim.now(), 150u);
}

TEST(Simulation, PeriodicFiresEveryPeriod)
{
    Simulation sim;
    std::vector<Tick> fired;
    PeriodicTask &task = sim.addPeriodic(
        10, [&](Tick now) { fired.push_back(now); },
        EventPriority::stats, "tick");
    task.start();
    sim.runUntil(45);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20, 30, 40}));
}

TEST(Simulation, PeriodicWithPhaseOffset)
{
    Simulation sim;
    std::vector<Tick> fired;
    PeriodicTask &task = sim.addPeriodic(
        10, [&](Tick now) { fired.push_back(now); },
        EventPriority::stats, "tick");
    task.start(/*phase=*/3);
    sim.runUntil(35);
    EXPECT_EQ(fired, (std::vector<Tick>{13, 23, 33}));
}

TEST(Simulation, PeriodicCancelStopsFiring)
{
    Simulation sim;
    int count = 0;
    PeriodicTask &task = sim.addPeriodic(
        10, [&](Tick) { ++count; }, EventPriority::stats, "tick");
    task.start();
    sim.runUntil(25);
    task.cancel();
    sim.runUntil(100);
    EXPECT_EQ(count, 2);
    task.cancel(); // idempotent
}

TEST(Simulation, PeriodicRestartAfterCancel)
{
    Simulation sim;
    std::vector<Tick> fired;
    PeriodicTask &task = sim.addPeriodic(
        10, [&](Tick now) { fired.push_back(now); },
        EventPriority::stats, "tick");
    task.start();
    sim.runUntil(15);
    task.cancel();
    sim.runUntil(50);
    task.start();
    sim.runUntil(75);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 60, 70}));
}

TEST(Simulation, PeriodicSetPeriodTakesEffectNextFire)
{
    Simulation sim;
    std::vector<Tick> fired;
    PeriodicTask &task = sim.addPeriodic(
        10, [&](Tick now) { fired.push_back(now); },
        EventPriority::stats, "tick");
    task.start();
    sim.runUntil(10);
    task.setPeriod(30);
    sim.runUntil(100);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 40, 70, 100}));
    EXPECT_EQ(task.period(), 30u);
}

TEST(Simulation, PeriodicCallbackMayRestartItself)
{
    Simulation sim;
    std::vector<Tick> fired;
    PeriodicTask *taskp = nullptr;
    PeriodicTask &task = sim.addPeriodic(
        10,
        [&](Tick now) {
            fired.push_back(now);
            if (fired.size() == 1) {
                taskp->cancel();
                taskp->start(5); // next at now + 10 + 5
            }
        },
        EventPriority::stats, "tick");
    taskp = &task;
    task.start();
    sim.runUntil(40);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 25, 35}));
}

TEST(Simulation, RunForAdvancesRelative)
{
    Simulation sim;
    sim.runFor(100);
    EXPECT_EQ(sim.now(), 100u);
    sim.runFor(50);
    EXPECT_EQ(sim.now(), 150u);
}

TEST(Simulation, NestedOneShots)
{
    Simulation sim;
    std::vector<int> log;
    sim.at(10, [&] {
        log.push_back(1);
        sim.after(5, [&] { log.push_back(2); });
    });
    sim.runUntil(20);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(Simulation, ManyPeriodicsInterleaveDeterministically)
{
    Simulation sim;
    std::vector<std::pair<Tick, int>> log;
    for (int i = 0; i < 3; ++i) {
        sim.addPeriodic(
               10, [&log, i](Tick now) { log.emplace_back(now, i); },
               EventPriority::stats, "t" + std::to_string(i))
            .start();
    }
    sim.runUntil(20);
    // Same tick: creation order is preserved via sequence numbers.
    ASSERT_EQ(log.size(), 6u);
    EXPECT_EQ(log[0], (std::pair<Tick, int>{10, 0}));
    EXPECT_EQ(log[1], (std::pair<Tick, int>{10, 1}));
    EXPECT_EQ(log[2], (std::pair<Tick, int>{10, 2}));
}
