#include "workload/input_events.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace biglittle
{

ScriptedInputSource::ScriptedInputSource(Simulation &sim_in,
                                         BurstBehavior &target_in,
                                         std::vector<InputEvent> events_in)
    : sim(sim_in), target(target_in), events(std::move(events_in)),
      fireEvent([this] { fireDue(); }, EventPriority::inputPump,
                "input-event")
{
    for (std::size_t i = 1; i < events.size(); ++i)
        BL_ASSERT(events[i].when >= events[i - 1].when);
    for (const InputEvent &e : events)
        BL_ASSERT(e.instructions > 0.0);
}

void
ScriptedInputSource::start()
{
    if (events.empty())
        return;
    scheduleAt(events.front().when);
}

void
ScriptedInputSource::fireDue()
{
    BL_ASSERT(firedCount < events.size());
    target.injectBurst(events[firedCount].instructions);
    ++firedCount;
    if (firedCount < events.size())
        scheduleAt(events[firedCount].when);
}

void
ScriptedInputSource::scheduleAt(Tick when)
{
    // An event timestamped in the past (a script started late, or
    // resumed mid-run) is user data, not a program bug: deliver it
    // now instead of killing the run, and say so once.
    if (when < sim.now()) {
        ++clampedCount;
        warn("input event at %llu is already in the past; firing "
             "at %llu instead",
             static_cast<unsigned long long>(when),
             static_cast<unsigned long long>(sim.now()));
        when = sim.now();
    }
    sim.eventQueue().reschedule(fireEvent, when);
}

PoissonInputSource::PoissonInputSource(Simulation &sim_in,
                                       BurstBehavior &target_in,
                                       const PoissonInputParams &params,
                                       Rng rng_in)
    : sim(sim_in), target(target_in), inputParams(params), rng(rng_in),
      fireEvent([this] { fire(); }, EventPriority::inputPump,
                "poisson-input")
{
    BL_ASSERT(inputParams.meanInterArrival > 0);
    BL_ASSERT(inputParams.medianBurst > 0.0);
}

void
PoissonInputSource::start()
{
    if (running)
        return;
    running = true;
    scheduleNext();
}

void
PoissonInputSource::stop()
{
    running = false;
    if (fireEvent.scheduled())
        sim.eventQueue().deschedule(fireEvent);
}

void
PoissonInputSource::fire()
{
    if (!running)
        return;
    ++firedCount;
    target.injectBurst(
        std::max(1.0, rng.logNormal(inputParams.medianBurst,
                                    inputParams.burstSigma)));
    scheduleNext();
}

void
PoissonInputSource::scheduleNext()
{
    const double gap_sec = rng.exponential(
        ticksToSeconds(inputParams.meanInterArrival));
    const Tick gap = std::max<Tick>(
        1, static_cast<Tick>(std::llround(gap_sec * 1e9)));
    sim.eventQueue().reschedule(fireEvent, sim.now() + gap);
}

} // namespace biglittle
