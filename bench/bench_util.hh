/**
 * @file
 * Shared helpers for the figure/table regeneration benches: the
 * standard experimental conditions of the paper (4-big vs 4-little,
 * the Figs. 7/8 core combinations, the Section VI-C parameter sweep)
 * and small run-all helpers with progress output.
 */

#ifndef BIGLITTLE_BENCH_BENCH_UTIL_HH
#define BIGLITTLE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/exit_codes.hh"
#include "base/logging.hh"
#include "core/experiment.hh"
#include "snapshot/checkpoint.hh"
#include "workload/apps.hh"

namespace biglittle
{

/** Default system: all 8 cores, HMP + interactive, Table II setup. */
inline ExperimentConfig
baselineConfig()
{
    ExperimentConfig cfg;
    cfg.label = "baseline";
    return cfg;
}

/** Fig. 4/5 "4 little cores" condition. */
inline ExperimentConfig
littleOnlyConfig()
{
    ExperimentConfig cfg;
    cfg.coreConfig = {4, 0, "L4"};
    cfg.label = "4-little";
    return cfg;
}

/**
 * Fig. 4/5 "4 big cores" condition.  The boot little core must stay
 * online, so the scheduler is biased to lift every runnable task to
 * the big cluster immediately (up-threshold 1, down-threshold 0).
 */
inline ExperimentConfig
bigOnlyConfig()
{
    ExperimentConfig cfg;
    cfg.coreConfig = {1, 4, "B4"};
    cfg.sched.upThreshold = 1;
    cfg.sched.downThreshold = 0;
    // Placement is static here, so the migration boost would only
    // spam hispeed requests; let the governor pick frequencies as
    // it does on the real platform.
    cfg.sched.upMigrationBoostFreq = 0;
    cfg.sched.name = "force-big";
    cfg.label = "4-big";
    return cfg;
}

/** One Section VI-C sweep point. */
struct SweepPoint
{
    std::string label;
    ExperimentConfig config;
};

/** The 8 governor/HMP configurations of Figs. 11-13 (no baseline). */
inline std::vector<SweepPoint>
parameterSweep()
{
    std::vector<SweepPoint> sweep;
    auto add = [&sweep](const std::string &label,
                        const ExperimentConfig &cfg) {
        sweep.push_back({label, cfg});
        sweep.back().config.label = label;
    };

    ExperimentConfig cfg;
    cfg.interactive = interval60Params();
    add("interval-60ms", cfg);

    cfg = ExperimentConfig{};
    cfg.interactive = interval100Params();
    add("interval-100ms", cfg);

    cfg = ExperimentConfig{};
    cfg.interactive = highTargetLoadParams();
    add("target-load-80", cfg);

    cfg = ExperimentConfig{};
    cfg.interactive = lowTargetLoadParams();
    add("target-load-60", cfg);

    cfg = ExperimentConfig{};
    cfg.sched = conservativeSchedParams();
    add("hmp-conservative", cfg);

    cfg = ExperimentConfig{};
    cfg.sched = aggressiveSchedParams();
    add("hmp-aggressive", cfg);

    cfg = ExperimentConfig{};
    cfg.sched = doubleHistorySchedParams();
    add("hmp-2x-history", cfg);

    cfg = ExperimentConfig{};
    cfg.sched = halfHistorySchedParams();
    add("hmp-half-history", cfg);

    return sweep;
}

/** Declare the shared determinism/recovery options on @p args. */
inline void
addSnapshotOptions(ArgParser &args)
{
    args.addInt("checkpoint-every", 0,
                "write a checkpoint every N simulated ms (0 = off)");
    args.addString("checkpoint-dir", ".",
                   "directory for periodic checkpoints");
    args.addString("resume", "",
                   "resume (with state verification) from this "
                   "checkpoint file");
    args.addInt("seed", 0,
                "master seed for named random streams (0 = the "
                "legacy per-spec seeds)");
}

/** Apply the addSnapshotOptions() values onto @p cfg. */
inline void
applySnapshotOptions(const ArgParser &args, ExperimentConfig &cfg)
{
    cfg.snapshot.checkpointEvery = msToTicks(
        static_cast<std::uint64_t>(args.getInt("checkpoint-every")));
    cfg.snapshot.checkpointDir = args.getString("checkpoint-dir");
    cfg.snapshot.resumePath = args.getString("resume");
    cfg.masterSeed =
        static_cast<std::uint64_t>(args.getInt("seed"));
}

/** Declare the abrace determinism options on @p args. */
inline void
addRaceOptions(ArgParser &args)
{
    args.addFlag("race-detect",
                 "attach the abrace same-tick race detector; "
                 "conflicts print TSan-style and fail the bench");
    args.addFlag("permute-ties",
                 "rerun every condition under lifo and seeded-shuffle "
                 "tie-breaks and byte-compare end-state digests "
                 "(implies --race-detect)");
    args.addString("race-baseline", "",
                   "abrace suppression baseline, e.g. "
                   "tools/abrace/baseline.txt");
}

/** Apply the addRaceOptions() values onto @p cfg. */
inline void
applyRaceOptions(const ArgParser &args, ExperimentConfig &cfg)
{
    cfg.race.detect =
        args.getFlag("race-detect") || args.getFlag("permute-ties");
    cfg.race.baselinePath = args.getString("race-baseline");
}

/**
 * Per-bench --race-detect / --permute-ties verdict.  After each
 * runApps() batch, check() reports abrace conflicts and (under
 * --permute-ties) reruns every app with lifo and seeded-shuffle
 * tie-breaks, byte-comparing end-state digests against the fifo run.
 * exitCode() turns any failure into a nonzero bench exit.
 */
class RaceGate
{
  public:
    explicit RaceGate(const ArgParser &args)
        : detect(args.getFlag("race-detect") ||
                 args.getFlag("permute-ties")),
          permute(args.getFlag("permute-ties"))
    {
    }

    void
    check(const ExperimentConfig &cfg,
          const std::vector<AppSpec> &apps,
          const std::vector<AppRunResult> &results)
    {
        if (!detect)
            return;
        BL_ASSERT(apps.size() == results.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            const AppRunResult &r = results[i];
            if (r.raceConflicts > 0) {
                ++failures;
                std::fprintf(stderr, "%s", r.raceReport.c_str());
            }
            if (permute)
                checkPermuted(cfg, apps[i], r);
        }
    }

    int exitCode() const { return failures == 0 ? 0 : 1; }

  private:
    void
    checkPermuted(const ExperimentConfig &cfg, const AppSpec &app,
                  const AppRunResult &fifo)
    {
        for (const TieBreak mode :
             {TieBreak::lifo, TieBreak::shuffle}) {
            ExperimentConfig rerun_cfg = cfg;
            rerun_cfg.race.tieBreak = mode;
            Experiment experiment(rerun_cfg);
            const AppRunResult rerun = experiment.runApp(app);
            const Status st = compareStateDigests(fifo, rerun);
            const char *name =
                mode == TieBreak::lifo ? "lifo" : "shuffle";
            if (!st.ok()) {
                ++failures;
                std::fprintf(stderr,
                             "  [%s] %s: %s tie-break DIVERGED: %s\n",
                             cfg.label.c_str(), app.name.c_str(),
                             name, st.message().c_str());
            } else {
                std::fprintf(stderr,
                             "  [%s] %s: %s tie-break digests match\n",
                             cfg.label.c_str(), app.name.c_str(),
                             name);
            }
        }
    }

    bool detect;
    bool permute;
    std::size_t failures = 0;
};

/**
 * Open the --csv output when requested.  Returns nullptr when the
 * option is unset; prints the open error and exits with exitBadFile
 * (3) when the path cannot be created - the documented bench exit
 * code for file problems, distinct from usage errors (2).
 */
inline std::unique_ptr<CsvWriter>
openCsvOrExit(const ArgParser &args)
{
    if (args.getString("csv").empty())
        return nullptr;
    auto csv = std::make_unique<CsvWriter>();
    const Status opened = csv->open(args.getString("csv"));
    if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.message().c_str());
        std::exit(exitBadFile);
    }
    return csv;
}

/**
 * Exit through the taxonomy when an unsupervised run failed.  The
 * only failure Experiment reports (rather than dies on) for
 * unsupervised runs is resume divergence; a bench that ignored it
 * would print partial metrics for a run that is not the one the
 * checkpoint belongs to.  Supervised callers (the Supervisor, abrun)
 * consume `failed` themselves and never go through here.
 */
inline void
exitIfRunFailed(const AppRunResult &r)
{
    if (!r.failed)
        return;
    std::fprintf(stderr,
                 "[%s] %s: run failed (%s): %s\n",
                 r.configLabel.c_str(), r.app.c_str(),
                 recoveryTriggerName(r.failureTrigger),
                 r.failureDetail.c_str());
    std::exit(exitFatal);
}

/** One stderr line of checkpoint overhead, when any were written. */
inline void
reportCheckpointOverhead(const AppRunResult &r)
{
    if (r.checkpoints.count == 0)
        return;
    std::fprintf(stderr,
                 "  [%s] %s: %llu checkpoints, %llu bytes, %.2f ms "
                 "write time (last: %s)\n",
                 r.configLabel.c_str(), r.app.c_str(),
                 static_cast<unsigned long long>(r.checkpoints.count),
                 static_cast<unsigned long long>(r.checkpoints.bytes),
                 r.checkpoints.writeMs,
                 r.checkpoints.lastPath.c_str());
}

/** Run @p apps under @p cfg, with progress lines on stderr. */
inline std::vector<AppRunResult>
runApps(const ExperimentConfig &cfg, const std::vector<AppSpec> &apps)
{
    // A checkpoint belongs to exactly one (app, config) run; on a
    // multi-app bench, resume only the run it matches instead of
    // dying on the identity check of the first unrelated app.
    std::optional<Checkpoint> resume;
    if (!cfg.snapshot.resumePath.empty()) {
        Result<Checkpoint> loaded =
            loadCheckpointWithFallback(cfg.snapshot.resumePath);
        if (!loaded.ok()) {
            warn("--resume: %s; running every app from scratch",
                 loaded.status().message().c_str());
        } else {
            resume = std::move(loaded.value());
        }
    }

    std::vector<AppRunResult> results;
    for (const AppSpec &app : apps) {
        ExperimentConfig run_cfg = cfg;
        if (!resume || resume->app != app.name ||
            resume->label != cfg.label) {
            run_cfg.snapshot.resumePath.clear();
        }
        std::fprintf(stderr, "  [%s] running %s...\n",
                     cfg.label.c_str(), app.name.c_str());
        Experiment experiment(run_cfg);
        results.push_back(experiment.runApp(app));
        exitIfRunFailed(results.back());
        reportCheckpointOverhead(results.back());
    }
    return results;
}

/** Percentage change of @p now vs @p base (positive = increase). */
inline double
pctChange(double now, double base)
{
    return base != 0.0 ? 100.0 * (now - base) / base : 0.0;
}

} // namespace biglittle

#endif // BIGLITTLE_BENCH_BENCH_UTIL_HH
