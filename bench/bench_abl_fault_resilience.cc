/**
 * @file
 * Ablation: graceful degradation under injected faults.
 *
 * Sweeps the fault-rate knob (scaledFaultParams) from a clean system
 * to a heavily perturbed one - cores hotplugging away, DVFS
 * transitions denied or delayed, thermal-sensor spikes, task stalls -
 * and reports how frame rate (an FPS app) and response latency (a
 * latency app) degrade.  The interesting property is the shape of
 * the curve: performance should bend, not break.  Every run also
 * carries the InvariantChecker; a non-zero violation count means the
 * degradation machinery itself is broken.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_abl_fault_resilience",
                   "ablation: frame rate and latency vs fault rate");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.addInt("seed", 1, "fault-schedule seed");
    args.addInt("duration_ms", 4000, "FPS-app run length");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"fault_rate", "avg_fps", "min_fps", "latency_ms",
                     "injected", "hotplug_off", "dvfs_denied",
                     "thermal_spikes", "task_stalls", "violations"});
    }

    const std::vector<double> rates = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
    AppSpec fps_app = eternityWarrior2App();
    fps_app.duration =
        msToTicks(static_cast<std::uint64_t>(
            args.getInt("duration_ms")));
    const AppSpec latency_app = pdfReaderApp();
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed"));

    std::printf("%s\n",
                (padRight("fault rate", 12) + padLeft("avg fps", 10) +
                 padLeft("min fps", 10) + padLeft("latency", 11) +
                 padLeft("injected", 10) + padLeft("violations", 12))
                    .c_str());
    for (const double rate : rates) {
        ExperimentConfig cfg;
        cfg.fault = scaledFaultParams(rate, seed);
        cfg.label = format("fault-x%g", rate);

        const AppRunResult fps = Experiment(cfg).runApp(fps_app);
        const AppRunResult lat = Experiment(cfg).runApp(latency_app);
        const std::uint64_t injected =
            fps.faults.totalInjected() + lat.faults.totalInjected();
        const std::uint64_t violations =
            fps.invariantViolations + lat.invariantViolations;
        const double latency_ms = lat.performanceValue();

        std::printf("%s%10.1f%10.1f%9.0fms%10llu%12llu\n",
                    padRight(format("x%g", rate), 12).c_str(),
                    fps.avgFps, fps.minFps, latency_ms,
                    static_cast<unsigned long long>(injected),
                    static_cast<unsigned long long>(violations));
        if (csv) {
            csv->beginRow();
            csv->cell(rate);
            csv->cell(fps.avgFps);
            csv->cell(fps.minFps);
            csv->cell(latency_ms);
            csv->cell(static_cast<double>(injected));
            csv->cell(static_cast<double>(fps.faults.hotplugOff +
                                          lat.faults.hotplugOff));
            csv->cell(static_cast<double>(fps.faults.dvfsDenied +
                                          lat.faults.dvfsDenied));
            csv->cell(static_cast<double>(fps.faults.thermalSpikes +
                                          lat.faults.thermalSpikes));
            csv->cell(static_cast<double>(fps.faults.taskStalls +
                                          lat.faults.taskStalls));
            csv->cell(static_cast<double>(violations));
            csv->endRow();
        }
    }
    std::puts("\n(higher fault rates should cost FPS and add "
              "latency without ever tripping an invariant)");
    return 0;
}
