/**
 * @file
 * core_config_explorer: for one application, evaluate every
 * little/big core combination (including asymmetric ones the paper
 * could not hotplug, like L1+B1) and print the performance/power
 * frontier - the Section V-C question "is 4+4 over-designed?" as a
 * tool.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/strutil.hh"
#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("core_config_explorer",
                   "evaluate all core combinations for one app");
    args.addString("app", "eternity_warrior2",
                   "app name from Table II");
    args.addFlag("full-grid",
                 "sweep the full 4x5 grid instead of the paper's 7 "
                 "configurations");
    args.parse(argc, argv);

    const AppSpec app = appByName(args.getString("app"));

    std::vector<CoreConfig> configs;
    if (args.getFlag("full-grid")) {
        for (std::uint32_t little = 1; little <= 4; ++little) {
            for (std::uint32_t big = 0; big <= 4; ++big) {
                configs.push_back(
                    {little, big,
                     format("L%u+B%u", little, big)});
            }
        }
    } else {
        configs = standardCoreConfigs();
    }

    // Baseline: everything online.
    ExperimentConfig base_cfg;
    std::fprintf(stderr, "  running baseline L4+B4...\n");
    const AppRunResult base = Experiment(base_cfg).runApp(app);

    const char *perf_label =
        app.metric == AppMetric::latency ? "latency(ms)" : "avg FPS";
    std::printf("%s on core combinations (baseline L4+B4: %s %.1f, "
                "%.0f mW)\n\n",
                app.name.c_str(), perf_label, base.performanceValue(),
                base.avgPowerMw);
    std::printf("%s%14s%12s%14s%14s\n",
                padRight("config", 10).c_str(), perf_label,
                "power(mW)", "perf vs base", "power saved");

    for (const CoreConfig &cc : configs) {
        ExperimentConfig cfg;
        cfg.coreConfig = cc;
        cfg.label = cc.label;
        std::fprintf(stderr, "  running %s...\n", cc.label.c_str());
        const AppRunResult r = Experiment(cfg).runApp(app);

        double perf_change;
        if (app.metric == AppMetric::latency) {
            perf_change = -100.0 *
                (r.performanceValue() - base.performanceValue()) /
                base.performanceValue();
        } else {
            perf_change = 100.0 *
                (r.performanceValue() - base.performanceValue()) /
                base.performanceValue();
        }
        const double saved = 100.0 *
            (base.avgPowerMw - r.avgPowerMw) / base.avgPowerMw;
        std::printf("%s%14.1f%12.0f%13.1f%%%13.1f%%\n",
                    padRight(cc.label, 10).c_str(),
                    r.performanceValue(), r.avgPowerMw, perf_change,
                    saved);
    }
    std::puts("\n(positive 'perf vs base' means faster/smoother; "
              "Section V-C finds L2+B1 and L4+B1 are the sweet "
              "spots)");
    return 0;
}
