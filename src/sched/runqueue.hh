/**
 * @file
 * CoreRunner: the per-core dispatch and execution engine.
 *
 * Each online core runs at most one task at a time, round-robin with
 * a fixed timeslice among its queued tasks.  Execution is event
 * driven and analytic: when a task starts a slice the runner asks the
 * performance model for its instruction rate at the core's current
 * frequency and schedules the earlier of work-completion and quantum
 * expiry; a frequency change mid-slice charges the work done so far
 * at the old rate and re-arms the event at the new rate.
 */

#ifndef BIGLITTLE_SCHED_RUNQUEUE_HH
#define BIGLITTLE_SCHED_RUNQUEUE_HH

#include <cstdint>
#include <deque>

#include "base/types.hh"
#include "platform/core.hh"
#include "sched/sched_params.hh"
#include "sched/task.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class HmpScheduler;

/** Run queue + execution engine for one core. */
class CoreRunner
{
  public:
    CoreRunner(Simulation &sim, Core &core, HmpScheduler &sched,
               const SchedParams &params);

    CoreRunner(const CoreRunner &) = delete;
    CoreRunner &operator=(const CoreRunner &) = delete;

    Core &core() { return coreRef; }
    const Core &core() const { return coreRef; }

    /** Task currently executing (null when idle). */
    Task *running() { return cur; }
    const Task *running() const { return cur; }

    /** Tasks waiting behind the running one, FIFO. */
    const std::deque<Task *> &waiting() const { return waitQ; }

    /** Queued tasks including the running one. */
    std::size_t depth() const;

    /** Make @p task runnable on this core. */
    void enqueue(Task &task);

    /**
     * Remove @p task from this core (for migration or balancing);
     * charges partial work if it was running.  The task is left in
     * the queued state with no core.
     */
    void remove(Task &task);

    /**
     * Charge the running task's progress up to now (so that external
     * observers see exact pending-work values).
     */
    void chargeRunning();

    /** Sum of HMP loads of all queued tasks. */
    double loadSum() const;

    /** Lifetime count of slices dispatched. */
    std::uint64_t slicesDispatched() const { return slices; }

  private:
    Simulation &sim;
    Core &coreRef;
    HmpScheduler &sched;
    const SchedParams &params;

    std::deque<Task *> waitQ;
    Task *cur = nullptr;
    Tick sliceStart = 0;
    Tick quantumEnd = 0;
    double rate = 0.0; ///< instructions per second of current slice
    bool completionPlanned = false;
    CallbackEvent sliceEvent;
    std::uint64_t slices = 0;

    void startNext();
    void armSliceEvent();
    void onSliceEvent();
    void onFreqChange(FreqKHz new_freq);
    void updateBusy();
};

} // namespace biglittle

#endif // BIGLITTLE_SCHED_RUNQUEUE_HH
