/**
 * @file
 * schedule_trace: run one application with the trace recorder
 * attached and print the scheduling/DVFS timeline - wakeups,
 * migrations between clusters, frequency transitions - plus a
 * summary of event counts.  Optionally dumps the full trace as CSV.
 *
 * Example:
 *   schedule_trace --app encoder --window-ms 600 --csv trace.csv
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/exit_codes.hh"
#include "core/experiment.hh"
#include "governor/interactive.hh"
#include "platform/platform.hh"
#include "platform/thermal.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "trace/trace.hh"
#include "workload/apps.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("schedule_trace",
                   "trace the scheduler/governor for one app");
    args.addString("app", "encoder", "app name from Table II");
    args.addInt("window-ms", 500, "trace window length");
    args.addInt("lines", 60, "timeline lines to print");
    args.addString("csv", "", "write the full trace to this file");
    args.parse(argc, argv);

    const AppSpec spec = appByName(args.getString("app"));

    Simulation sim;
    AsymmetricPlatform platform(sim, exynos5422Params());
    HmpScheduler sched(sim, platform, baselineSchedParams());
    InteractiveGovernor little_gov(sim, platform.littleCluster(),
                                   defaultInteractiveParams());
    InteractiveGovernor big_gov(sim, platform.bigCluster(),
                                defaultInteractiveParams());
    ThermalThrottle little_thermal(sim, platform.littleCluster());
    ThermalThrottle big_thermal(sim, platform.bigCluster());

    TraceRecorder trace(sim);
    trace.attachScheduler(sched);
    trace.attachCluster(platform.littleCluster());
    trace.attachCluster(platform.bigCluster());

    AppInstance app(sim, sched, spec);
    little_gov.start();
    big_gov.start();
    little_thermal.start();
    big_thermal.start();
    sched.start();
    app.start();

    sim.runFor(msToTicks(
        static_cast<std::uint64_t>(args.getInt("window-ms"))));

    std::printf("trace of %s over %lld ms: %llu events (%llu "
                "dropped)\n",
                spec.name.c_str(),
                static_cast<long long>(args.getInt("window-ms")),
                static_cast<unsigned long long>(trace.observed()),
                static_cast<unsigned long long>(trace.dropped()));
    std::printf("  wakeups %zu, sleeps %zu, up %zu, down %zu, "
                "balance %zu, freq changes %zu\n\n",
                trace.countOf(TraceKind::wakeup),
                trace.countOf(TraceKind::sleep),
                trace.countOf(TraceKind::migrateUp),
                trace.countOf(TraceKind::migrateDown),
                trace.countOf(TraceKind::balance),
                trace.countOf(TraceKind::freqChange));

    std::fputs(trace.timeline(static_cast<std::size_t>(
                   args.getInt("lines"))).c_str(),
               stdout);

    if (!args.getString("csv").empty()) {
        const Status written = trace.writeCsv(args.getString("csv"));
        if (!written.ok()) {
            std::fprintf(stderr, "%s\n", written.message().c_str());
            return exitBadFile;
        }
        std::printf("\nfull trace written to %s\n",
                    args.getString("csv").c_str());
    }
    return 0;
}
