#include "sim/eventq.hh"

#include <iterator>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "sim/abrace.hh"

namespace biglittle
{

EventQueue::~EventQueue()
{
    // Detach any events still pending so their destructors do not
    // dereference a dead queue, then let self-owning events free
    // themselves (orphaned() may `delete this`, so iterate a copy).
    std::vector<Event *> pending(queue.begin(), queue.end());
    queue.clear();
    for (Event *e : pending)
        e->queue = nullptr;
    for (Event *e : pending)
        e->orphaned();
}

void
EventQueue::schedule(Event &event, Tick when)
{
    BL_ASSERT(event.queue == nullptr);
    if (when < curTick)
        panic("scheduling event '%s' at %llu, before current tick %llu",
              event.name().c_str(),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    event.whenTick = when;
    event.sequence = nextSequence++;
    event.queue = this;
    const bool inserted = queue.insert(&event).second;
    BL_ASSERT(inserted);
    if (race)
        race->onScheduled(event, curTick);
}

void
EventQueue::deschedule(Event &event)
{
    BL_ASSERT(event.queue == this);
    const std::size_t erased = queue.erase(&event);
    BL_ASSERT(erased == 1);
    event.queue = nullptr;
    if (race)
        race->onDescheduled(event);
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event.queue != nullptr)
        deschedule(event);
    schedule(event, when);
}

Tick
EventQueue::nextTick() const
{
    return queue.empty() ? maxTick : (*queue.begin())->when();
}

bool
EventQueue::serviceOne()
{
    if (queue.empty())
        return false;
    auto head = queue.begin();
    Event *event = *head;
    if (tieMode != TieBreak::fifo) {
        // Permuted tie-break: pick a different member of the head's
        // same-(when, priority) batch.  Any pick is causally valid -
        // an event scheduled during this batch still fires after its
        // parent because it can only be picked on a later service.
        auto it = head;
        auto last = head;
        std::size_t n = 0;
        while (it != queue.end() && (*it)->whenTick == event->whenTick
               && (*it)->prio == event->prio) {
            last = it;
            ++it;
            ++n;
        }
        if (n > 1) {
            if (tieMode == TieBreak::lifo) {
                head = last;
            } else {
                head = queue.begin();
                std::advance(head, tieRng.uniformInt(0, n - 1));
            }
            event = *head;
        }
    }
    queue.erase(head);
    event->queue = nullptr;
    BL_ASSERT(event->whenTick >= curTick);
    curTick = event->whenTick;
    ++serviced;
    if (serviceHook || recentCap > 0 || race) {
        ServicedEvent info{event->whenTick,
                           static_cast<std::int32_t>(event->prio),
                           event->sequence, event->name()};
        if (recentCap > 0) {
            if (recent.size() >= recentCap)
                recent.pop_front();
            recent.push_back(info);
        }
        if (serviceHook)
            serviceHook(info);
        if (race) {
            race->beginEvent(info);
            event->process();
            race->endEvent();
            return true;
        }
    }
    event->process();
    return true;
}

void
EventQueue::setTieBreak(TieBreak mode, std::uint64_t seed)
{
    tieMode = mode;
    tieRng.seed(seed);
}

void
EventQueue::setServiceHook(ServiceHook hook)
{
    serviceHook = std::move(hook);
}

void
EventQueue::enableRecentLog(std::size_t n)
{
    recentCap = n;
    while (recent.size() > recentCap)
        recent.pop_front();
}

void
EventQueue::serialize(Serializer &s) const
{
    s.putU64(curTick);
    s.putU64(nextSequence);
    s.putU64(serviced);
    s.putU64(queue.size());
    // Pending events in firing order, folded into one digest: the
    // identity of what remains to run is part of the state contract
    // even though the closures behind it cannot be serialized.
    Serializer pending;
    for (const Event *e : queue) {
        pending.putU64(e->when());
        pending.putU64(static_cast<std::uint64_t>(
            static_cast<std::int32_t>(e->priority())));
        pending.putU64(e->sequenceNumber());
        pending.putU64(fnv1a64(e->name()));
    }
    s.putU64(pending.digest());
}

void
EventQueue::runUntil(Tick until)
{
    while (!queue.empty() && (*queue.begin())->when() <= until)
        serviceOne();
    if (curTick < until)
        curTick = until;
}

} // namespace biglittle
