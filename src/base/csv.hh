/**
 * @file
 * Minimal CSV emission for experiment results.
 *
 * Every bench binary can optionally mirror its console tables into a
 * CSV file so results can be post-processed (plotted) outside the
 * workbench.  Quoting follows RFC 4180.
 */

#ifndef BIGLITTLE_BASE_CSV_HH
#define BIGLITTLE_BASE_CSV_HH

#include <fstream>
#include <string>
#include <vector>

#include "base/status.hh"

namespace biglittle
{

/** Row-at-a-time CSV writer. */
class CsvWriter
{
  public:
    /** Construct closed; call open() before writing. */
    CsvWriter() = default;

    /**
     * Open @p path for writing, truncating any existing file.
     * Returns unavailable when the file cannot be created (bad
     * directory, permissions); bench front-ends print the message
     * and exit(exitBadFile).
     */
    [[nodiscard]] Status open(const std::string &path);

    /** Write a header row (same quoting rules as data rows). */
    void header(const std::vector<std::string> &columns);

    /** Start a new row. */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);

    /** Append a numeric cell (printed with up to 6 significant dp). */
    void cell(double value);

    /** Append an integer cell. */
    void cell(std::uint64_t value);

    /** Terminate the current row. */
    void endRow();

    /** Convenience: write an entire row of strings. */
    void row(const std::vector<std::string> &cells);

    /** Number of data rows written so far (excluding header). */
    std::size_t rowsWritten() const { return rows; }

  private:
    std::ofstream out;
    bool rowOpen = false;
    bool firstCell = true;
    bool headerWritten = false;
    std::size_t rows = 0;

    void rawCell(const std::string &value);
    static std::string escape(const std::string &value);
};

} // namespace biglittle

#endif // BIGLITTLE_BASE_CSV_HH
