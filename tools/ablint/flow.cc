/**
 * @file
 * The abflow engine: parameter-list parsing, the intraprocedural
 * def-use taint walk, and the bottom-up summary fixpoint over the
 * call graph.  See flow.hh for the model and docs/STATIC_ANALYSIS.md
 * for design and blind spots.  The taint-bound rule (flow_rules.cc)
 * is a thin emission layer over analyzeTaint() below.
 */

#include "flow.hh"

#include "sink.hh"

#include <algorithm>
#include <functional>

namespace biglittle::ablint
{

namespace flowdetail
{

using detail::isIdent;
using detail::isPunct;

/** Raw Deserializer reads: the wire-facing untrusted surface. */
const std::set<std::string> &
taintingReads()
{
    static const std::set<std::string> s = {"getU64", "getU32",
                                            "getI64", "getU8"};
    return s;
}

/** Library numeric parses of external text (config/argv). */
const std::set<std::string> &
parseCalls()
{
    static const std::set<std::string> s = {
        "stoull", "stoll",   "stoul",   "stol",    "stoi",
        "atoi",   "atol",    "atoll",   "strtol",  "strtoul",
        "strtoll", "strtoull",
    };
    return s;
}

/** Calls whose result is clean by construction (clamps/bounds). */
const std::set<std::string> &
cleanCalls()
{
    static const std::set<std::string> s = {"getCount", "min", "max",
                                            "clamp"};
    return s;
}

} // namespace flowdetail

namespace
{

using detail::isIdent;
using detail::isPunct;

/** Taint carried by one expression or variable. */
struct VarTaint
{
    bool fromSource = false;

    /** Origin chain for messages, set when fromSource. */
    std::string why;

    /** Parameter indices whose value flows here. */
    std::set<int> fromParams;

    bool
    any() const
    {
        return fromSource || !fromParams.empty();
    }

    void
    merge(const VarTaint &o)
    {
        if (o.fromSource && !fromSource) {
            fromSource = true;
            why = o.why;
        }
        fromParams.insert(o.fromParams.begin(), o.fromParams.end());
    }
};

/**
 * One function body's taint walk.  Token-level and flow-ordered:
 * assignments gen/kill per variable, comparisons sanitize, sinks
 * check the environment at their position.  Assignments inside a
 * nested block are weak updates (the branch may not run, so taint
 * merges instead of overwriting); an RHS wrapped in a clamp call
 * stays a strong kill even there.  Each braced loop body is walked
 * twice back to back so loop-carried taint (x picks up y, y picks
 * up a read on the previous iteration) converges.
 */
class BodyAnalyzer
{
  public:
    BodyAnalyzer(const FlowFunction &ff, const FlowModel &fm,
                 const TaintEmitter *emit)
        : ff(ff), fm(fm), toks(ff.def->file->tokens),
          b(ff.def->bodyBegin), e(ff.def->bodyEnd), emit(emit)
    {
        sum.paramToReturn.assign(ff.params.size(), false);
        sum.paramToSink.assign(ff.params.size(), false);
        sum.paramSink.assign(ff.params.size(), SinkNote{});
        for (std::size_t p = 0; p < ff.params.size(); ++p) {
            if (ff.params[p].name.empty())
                continue;
            VarTaint t;
            t.fromParams.insert(static_cast<int>(p));
            env[ff.params[p].name] = t;
        }
        findLoopConds();
        findLoopBodies();
    }

    FlowSummary
    run()
    {
        pass(emit != nullptr);
        return sum;
    }

  private:
    const FlowFunction &ff;
    const FlowModel &fm;
    const std::vector<Token> &toks;
    const std::size_t b, e;
    const TaintEmitter *emit;
    std::map<std::string, VarTaint> env;
    FlowSummary sum;
    std::set<std::pair<int, std::string>> emitted;

    /** One for/while header: its keyword token and condition range. */
    struct LoopCond
    {
        std::size_t head;
        std::size_t cb, ce;
    };

    std::vector<LoopCond> loopConds;

    /** One braced loop body, for the within-pass replay. */
    struct LoopBody
    {
        std::size_t head; ///< the for/while/do keyword token
        std::size_t close; ///< its body's closing '}'
        bool replayed = false;
    };

    std::vector<LoopBody> loopBodies;

    std::size_t
    matchParen(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t j = open; j < e; ++j) {
            if (isPunct(toks[j], '('))
                ++depth;
            else if (isPunct(toks[j], ')') && --depth == 0)
                return j;
        }
        return e;
    }

    std::size_t
    matchBracket(std::size_t open) const
    {
        int depth = 0;
        for (std::size_t j = open; j < e; ++j) {
            if (isPunct(toks[j], '['))
                ++depth;
            else if (isPunct(toks[j], ']') && --depth == 0)
                return j;
        }
        return e;
    }

    void
    findLoopConds()
    {
        for (std::size_t j = b; j + 1 < e; ++j) {
            if (toks[j].kind != TokKind::identifier ||
                !isPunct(toks[j + 1], '('))
                continue;
            const std::size_t close = matchParen(j + 1);
            if (toks[j].text == "while") {
                loopConds.push_back({j, j + 2, close});
            } else if (toks[j].text == "for") {
                // Classic for: the range between the first and
                // second depth-1 ';'.  Range-for has none: skip.
                std::size_t s1 = e, s2 = e;
                int depth = 0;
                for (std::size_t k = j + 1; k < close; ++k) {
                    if (isPunct(toks[k], '('))
                        ++depth;
                    else if (isPunct(toks[k], ')'))
                        --depth;
                    else if (isPunct(toks[k], ';') && depth == 1) {
                        if (s1 == e)
                            s1 = k;
                        else if (s2 == e) {
                            s2 = k;
                            break;
                        }
                    }
                }
                if (s1 != e && s2 != e)
                    loopConds.push_back({j, s1 + 1, s2});
            }
        }
    }

    void
    findLoopBodies()
    {
        for (std::size_t j = b; j + 1 < e; ++j) {
            if (toks[j].kind != TokKind::identifier)
                continue;
            std::size_t open = e;
            if (toks[j].text == "do" && isPunct(toks[j + 1], '{')) {
                open = j + 1;
            } else if ((toks[j].text == "for" ||
                        toks[j].text == "while") &&
                       isPunct(toks[j + 1], '(')) {
                const std::size_t close = matchParen(j + 1);
                if (close + 1 < e && isPunct(toks[close + 1], '{'))
                    open = close + 1;
            }
            if (open == e)
                continue; // braceless body: no replay
            int depth = 0;
            for (std::size_t k = open; k < e; ++k) {
                if (isPunct(toks[k], '{'))
                    ++depth;
                else if (isPunct(toks[k], '}') && --depth == 0) {
                    loopBodies.push_back({j, k, false});
                    break;
                }
            }
        }
    }

    bool
    inLoopCond(std::size_t j) const
    {
        for (const LoopCond &lc : loopConds)
            if (j >= lc.cb && j < lc.ce)
                return true;
        return false;
    }

    /** Top-level argument ranges of a call's (open..close) parens. */
    std::vector<std::pair<std::size_t, std::size_t>>
    splitArgs(std::size_t open, std::size_t close) const
    {
        std::vector<std::pair<std::size_t, std::size_t>> args;
        if (open + 1 >= close)
            return args;
        int paren = 0, bracket = 0, brace = 0, angle = 0;
        std::size_t start = open + 1;
        for (std::size_t j = open + 1; j < close; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, '('))
                ++paren;
            else if (isPunct(t, ')'))
                --paren;
            else if (isPunct(t, '['))
                ++bracket;
            else if (isPunct(t, ']'))
                --bracket;
            else if (isPunct(t, '{'))
                ++brace;
            else if (isPunct(t, '}'))
                --brace;
            else if (isPunct(t, '<') && j > open + 1 &&
                     toks[j - 1].kind == TokKind::identifier)
                ++angle;
            else if (isPunct(t, '>') && angle > 0)
                --angle;
            else if (isPunct(t, ',') && paren == 0 && bracket == 0 &&
                     brace == 0 && angle == 0) {
                args.push_back({start, j});
                start = j + 1;
            }
        }
        args.push_back({start, close});
        return args;
    }

    /** Merged summary view over every same-named candidate. */
    struct CalleeView
    {
        bool known = false;
        bool returnsTaint = false;
        std::string returnWhy;
        std::vector<bool> paramToReturn;
        std::vector<bool> paramToSink;
        std::vector<SinkNote> paramSink;
        std::vector<std::string> paramNames;
    };

    CalleeView
    lookupCallee(const std::string &name) const
    {
        CalleeView v;
        const auto it = fm.byName.find(name);
        if (it == fm.byName.end())
            return v;
        v.known = true;
        for (const std::size_t idx : it->second) {
            const FlowFunction &cand = fm.functions[idx];
            const FlowSummary &s = cand.summary;
            if (s.returnsTaint && !v.returnsTaint) {
                v.returnsTaint = true;
                v.returnWhy = s.returnTaintWhy;
            }
            const auto grow = [&](std::size_t sz) {
                if (v.paramToReturn.size() < sz) {
                    v.paramToReturn.resize(sz, false);
                    v.paramToSink.resize(sz, false);
                    v.paramSink.resize(sz, SinkNote{});
                    v.paramNames.resize(sz);
                }
            };
            grow(s.paramToReturn.size());
            for (std::size_t p = 0; p < s.paramToReturn.size();
                 ++p) {
                if (s.paramToReturn[p])
                    v.paramToReturn[p] = true;
                if (s.paramToSink[p] && !v.paramToSink[p]) {
                    v.paramToSink[p] = true;
                    v.paramSink[p] = s.paramSink[p];
                }
                if (v.paramNames[p].empty() &&
                    p < cand.params.size())
                    v.paramNames[p] = cand.params[p].name;
            }
        }
        return v;
    }

    std::string
    sourceAt(const std::string &call, std::size_t j) const
    {
        return "a raw Deserializer::" + call + "() read (" +
               ff.def->file->path + ":" +
               std::to_string(toks[j].line) + ")";
    }

    /**
     * Taint of the expression in [from, to).  Call-aware: known
     * callees contribute their summary (and only their
     * taint-propagating arguments), clamp wrappers contribute
     * nothing, unknown calls pass their arguments through.
     */
    VarTaint
    evalExpr(std::size_t from, std::size_t to, int depth) const
    {
        VarTaint t;
        for (std::size_t j = from; j < to && j < e; ++j) {
            const Token &tk = toks[j];
            if (tk.kind != TokKind::identifier)
                continue;
            const bool isCall =
                j + 1 < to && isPunct(toks[j + 1], '(');
            if (isCall) {
                const std::size_t close = matchParen(j + 1);
                if (flowdetail::cleanCalls().count(tk.text)) {
                    j = close; // clamped/bounded: clean
                    continue;
                }
                if (flowdetail::taintingReads().count(tk.text)) {
                    VarTaint s;
                    s.fromSource = true;
                    s.why = sourceAt(tk.text, j);
                    t.merge(s);
                    j = close;
                    continue;
                }
                if (flowdetail::parseCalls().count(tk.text)) {
                    VarTaint s;
                    s.fromSource = true;
                    s.why = "a " + tk.text +
                            "() parse of external text (" +
                            ff.def->file->path + ":" +
                            std::to_string(tk.line) + ")";
                    t.merge(s);
                    j = close;
                    continue;
                }
                if (depth < 8) {
                    const CalleeView v = lookupCallee(tk.text);
                    if (v.known) {
                        if (v.returnsTaint) {
                            VarTaint s;
                            s.fromSource = true;
                            s.why = (v.returnWhy.empty()
                                         ? "an unchecked decode"
                                         : v.returnWhy) +
                                    ", returned by " + tk.text +
                                    "()";
                            t.merge(s);
                        }
                        const auto args = splitArgs(j + 1, close);
                        for (std::size_t ai = 0;
                             ai < args.size() &&
                             ai < v.paramToReturn.size();
                             ++ai) {
                            if (!v.paramToReturn[ai])
                                continue;
                            t.merge(evalExpr(args[ai].first,
                                             args[ai].second,
                                             depth + 1));
                        }
                        j = close;
                        continue;
                    }
                }
                // Unknown (library) call: arguments pass through.
                continue;
            }
            // The base of a member chain (`d.ok()`) contributes
            // nothing itself; the member decides the taint.
            if (j + 1 < e && isPunct(toks[j + 1], '.'))
                continue;
            const auto vt = env.find(tk.text);
            if (vt != env.end())
                t.merge(vt->second);
        }
        return t;
    }

    /** First tainted identifier in [from, to), for messages. */
    std::string
    taintedName(std::size_t from, std::size_t to) const
    {
        for (std::size_t j = from; j < to && j < e; ++j) {
            if (toks[j].kind != TokKind::identifier)
                continue;
            const auto vt = env.find(toks[j].text);
            if (vt != env.end() && vt->second.any())
                return toks[j].text;
        }
        return "the value";
    }

    void
    reportOrRecord(const VarTaint &t, int line,
                   const std::string &what, std::size_t nameFrom,
                   std::size_t nameTo, bool emitting,
                   const std::string &viaCall = std::string())
    {
        if (t.fromSource && emitting && emit != nullptr) {
            std::string msg = "'" + taintedName(nameFrom, nameTo) +
                              "' derives from " + t.why;
            if (viaCall.empty())
                msg += " and " + what;
            else
                msg += " and " + viaCall;
            msg += " without a bound check; read the count with "
                   "getCount() (or clamp it) so a hostile length "
                   "cannot force a huge allocation or an unbounded "
                   "loop";
            if (emitted.insert({line, msg}).second)
                (*emit)(line, msg);
        }
        for (const int p : t.fromParams) {
            if (p < 0 ||
                static_cast<std::size_t>(p) >= sum.paramToSink.size())
                continue;
            if (!sum.paramToSink[p]) {
                sum.paramToSink[p] = true;
                sum.paramSink[p] = {line, ff.def->file->path, what};
            }
        }
    }

    /** Up to the next ';' at depth 0 from @p from (exclusive). */
    std::size_t
    stmtEnd(std::size_t from) const
    {
        int depth = 0;
        for (std::size_t j = from; j < e; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, '(') || isPunct(t, '[') ||
                isPunct(t, '{'))
                ++depth;
            else if (isPunct(t, ')') || isPunct(t, ']') ||
                     isPunct(t, '}')) {
                if (--depth < 0)
                    return j;
            } else if (isPunct(t, ';') && depth == 0)
                return j;
        }
        return e;
    }

    void
    pass(bool emitting)
    {
        static const std::set<std::string> allocCalls = {
            "reserve", "resize", "assign"};
        for (LoopBody &lb : loopBodies)
            lb.replayed = false;
        int braceDepth = 0;
        for (std::size_t j = b; j < e; ++j) {
            const Token &tk = toks[j];
            if (tk.kind == TokKind::punct) {
                if (isPunct(tk, '{')) {
                    ++braceDepth;
                } else if (isPunct(tk, '}')) {
                    --braceDepth;
                    // Walk each loop body a second time so taint
                    // carried around the back edge converges.
                    for (LoopBody &lb : loopBodies) {
                        if (lb.close == j && !lb.replayed) {
                            lb.replayed = true;
                            j = lb.head - 1; // ++j lands on head
                            break;
                        }
                    }
                }
                continue;
            }
            if (tk.kind != TokKind::identifier)
                continue;

            // Loop-bound sink: the condition of a for/while header,
            // evaluated against the environment at the loop head.
            if ((tk.text == "for" || tk.text == "while") &&
                j + 1 < e && isPunct(toks[j + 1], '(')) {
                for (const LoopCond &lc : loopConds) {
                    if (lc.head != j)
                        continue;
                    const VarTaint ct = evalExpr(lc.cb, lc.ce, 0);
                    if (ct.any())
                        reportOrRecord(ct, tk.line,
                                       "bounds a loop", lc.cb,
                                       lc.ce, emitting);
                    break;
                }
                continue;
            }

            // Return statement: feeds the summary.
            if (tk.text == "return") {
                const std::size_t end = stmtEnd(j + 1);
                const VarTaint rt = evalExpr(j + 1, end, 0);
                if (rt.fromSource && !sum.returnsTaint) {
                    sum.returnsTaint = true;
                    sum.returnTaintWhy = rt.why;
                }
                for (const int p : rt.fromParams)
                    if (p >= 0 && static_cast<std::size_t>(p) <
                                      sum.paramToReturn.size())
                        sum.paramToReturn[p] = true;
                continue;
            }

            // Sanitizing comparison: `n < cap` / `cap > n` outside
            // a loop header kills the variable's taint ('<<'/'>>'
            // streams and '->' accesses excluded).
            if (!inLoopCond(j)) {
                const bool cmpBefore =
                    j > b &&
                    ((isPunct(toks[j - 1], '<') &&
                      !(j >= 2 && isPunct(toks[j - 2], '<'))) ||
                     (isPunct(toks[j - 1], '>') &&
                      !(j >= 2 && (isPunct(toks[j - 2], '>') ||
                                   isPunct(toks[j - 2], '-')))));
                const bool cmpAfter =
                    j + 1 < e &&
                    ((isPunct(toks[j + 1], '<') &&
                      !(j + 2 < e && isPunct(toks[j + 2], '<'))) ||
                     (isPunct(toks[j + 1], '>') &&
                      !(j + 2 < e && isPunct(toks[j + 2], '>'))));
                if ((cmpBefore || cmpAfter) && env.count(tk.text))
                    env.erase(tk.text);
            }

            // Assignment: gen/kill for a plain local or parameter.
            // Inside a nested block the write is a weak update
            // (the branch/iteration may not run, so taint merges);
            // a clean RHS wrapped in a clamp call is an explicit
            // sanitization and stays a strong kill even there.
            if (j + 1 < e && isPunct(toks[j + 1], '=') &&
                !(j + 2 < e && isPunct(toks[j + 2], '=')) &&
                !(j > b &&
                  (isPunct(toks[j - 1], '.') ||
                   isPunct(toks[j - 1], '>') ||
                   isPunct(toks[j - 1], '=') ||
                   isPunct(toks[j - 1], '!') ||
                   isPunct(toks[j - 1], '<')))) {
                const std::size_t end = stmtEnd(j + 2);
                VarTaint nv = evalExpr(j + 2, end, 0);
                bool sanitizing = !nv.any();
                if (sanitizing && braceDepth > 0) {
                    sanitizing = false;
                    for (std::size_t k = j + 2; k < end; ++k) {
                        if (toks[k].kind == TokKind::identifier &&
                            flowdetail::cleanCalls().count(
                                toks[k].text) > 0 &&
                            k + 1 < e && isPunct(toks[k + 1], '(')) {
                            sanitizing = true;
                            break;
                        }
                    }
                }
                if (braceDepth == 0 || sanitizing)
                    env[tk.text] = std::move(nv);
                else
                    env[tk.text].merge(nv);
                continue;
            }

            // Allocation-size sink: .reserve/.resize/.assign(...).
            if (j > b && isPunct(toks[j - 1], '.') &&
                allocCalls.count(tk.text) && j + 1 < e &&
                isPunct(toks[j + 1], '(')) {
                const std::size_t close = matchParen(j + 1);
                const VarTaint at = evalExpr(j + 2, close, 0);
                if (at.any())
                    reportOrRecord(at, tk.line,
                                   "sizes a " + tk.text + "()",
                                   j + 2, close, emitting);
                continue;
            }

            // Allocation-size sink: new T[n].
            if (tk.text == "new") {
                std::size_t k = j + 1;
                while (k < e &&
                       (toks[k].kind == TokKind::identifier ||
                        isPunct(toks[k], ':') ||
                        isPunct(toks[k], '<') ||
                        isPunct(toks[k], '>')))
                    ++k;
                if (k < e && isPunct(toks[k], '[')) {
                    const std::size_t close = matchBracket(k);
                    const VarTaint at =
                        evalExpr(k + 1, close, 0);
                    if (at.any())
                        reportOrRecord(at, toks[k].line,
                                       "sizes a new[]", k + 1,
                                       close, emitting);
                    j = close;
                }
                continue;
            }

            // Index sink: ident[expr] with a tainted index.
            if (j + 1 < e && isPunct(toks[j + 1], '[') &&
                !(j + 2 < e && isPunct(toks[j + 2], '['))) {
                const std::size_t close = matchBracket(j + 1);
                const VarTaint at = evalExpr(j + 2, close, 0);
                if (at.any())
                    reportOrRecord(at, tk.line, "indexes an array",
                                   j + 2, close, emitting);
                // fall through: the same token may also be a call
            }

            // Call-argument sink: an argument that a callee's
            // summary says reaches an allocation/loop/index sink.
            if (j + 1 < e && isPunct(toks[j + 1], '(') &&
                !flowdetail::cleanCalls().count(tk.text) &&
                !flowdetail::taintingReads().count(tk.text)) {
                const CalleeView v = lookupCallee(tk.text);
                if (!v.known || v.paramToSink.empty())
                    continue;
                const std::size_t close = matchParen(j + 1);
                const auto args = splitArgs(j + 1, close);
                for (std::size_t ai = 0;
                     ai < args.size() && ai < v.paramToSink.size();
                     ++ai) {
                    if (!v.paramToSink[ai])
                        continue;
                    const VarTaint at = evalExpr(
                        args[ai].first, args[ai].second, 0);
                    if (!at.any())
                        continue;
                    const SinkNote &note = v.paramSink[ai];
                    const std::string pname =
                        v.paramNames[ai].empty()
                            ? "#" + std::to_string(ai + 1)
                            : "'" + v.paramNames[ai] + "'";
                    reportOrRecord(
                        at, tk.line, note.what, args[ai].first,
                        args[ai].second, emitting,
                        "flows into parameter " + pname + " of " +
                            tk.text + "(), which " + note.what +
                            " (" + note.file + ":" +
                            std::to_string(note.line) + ")");
                }
            }
        }
    }
};

bool
summariesEqual(const FlowSummary &a, const FlowSummary &b)
{
    return a.returnsTaint == b.returnsTaint &&
           a.paramToReturn == b.paramToReturn &&
           a.paramToSink == b.paramToSink;
}

} // namespace

std::vector<FlowParam>
parseParams(const std::vector<Token> &toks, std::size_t begin,
            std::size_t end)
{
    std::vector<FlowParam> params;
    if (begin >= end)
        return params;
    if (end - begin == 1 && isIdent(toks[begin], "void"))
        return params;
    // Split at top-level commas (angle/paren/bracket/brace aware).
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    {
        int paren = 0, bracket = 0, brace = 0, angle = 0;
        std::size_t start = begin;
        for (std::size_t j = begin; j < end; ++j) {
            const Token &t = toks[j];
            if (isPunct(t, '('))
                ++paren;
            else if (isPunct(t, ')'))
                --paren;
            else if (isPunct(t, '['))
                ++bracket;
            else if (isPunct(t, ']'))
                --bracket;
            else if (isPunct(t, '{'))
                ++brace;
            else if (isPunct(t, '<') && j > begin &&
                     toks[j - 1].kind == TokKind::identifier)
                ++angle;
            else if (isPunct(t, '>') && angle > 0)
                --angle;
            else if (isPunct(t, '}'))
                --brace;
            else if (isPunct(t, ',') && paren == 0 && bracket == 0 &&
                     brace == 0 && angle == 0) {
                chunks.push_back({start, j});
                start = j + 1;
            }
        }
        chunks.push_back({start, end});
    }
    for (const auto &[cb, ceFull] : chunks) {
        // Cut a default argument at the top-level '='.
        std::size_t ce = ceFull;
        {
            int paren = 0, bracket = 0;
            for (std::size_t j = cb; j < ceFull; ++j) {
                if (isPunct(toks[j], '('))
                    ++paren;
                else if (isPunct(toks[j], ')'))
                    --paren;
                else if (isPunct(toks[j], '['))
                    ++bracket;
                else if (isPunct(toks[j], ']'))
                    --bracket;
                else if (isPunct(toks[j], '=') && paren == 0 &&
                         bracket == 0) {
                    ce = j;
                    break;
                }
            }
        }
        // Name: the last identifier; type: everything else.  A
        // trailing builtin keyword means the parameter is unnamed
        // (`int`, `unsigned long`): the whole chunk is the type.
        static const std::set<std::string> builtinTypes = {
            "void",     "bool",     "char",    "wchar_t", "short",
            "int",      "long",     "signed",  "unsigned", "float",
            "double",   "auto",     "size_t",  "int8_t",  "int16_t",
            "int32_t",  "int64_t",  "uint8_t", "uint16_t",
            "uint32_t", "uint64_t"};
        std::size_t nameIdx = static_cast<std::size_t>(-1);
        for (std::size_t j = cb; j < ce; ++j)
            if (toks[j].kind == TokKind::identifier &&
                toks[j].text != "const")
                nameIdx = j;
        if (nameIdx == static_cast<std::size_t>(-1))
            continue;
        FlowParam p;
        if (builtinTypes.count(toks[nameIdx].text) == 0)
            p.name = toks[nameIdx].text;
        std::string type;
        for (std::size_t j = cb; j < ce; ++j) {
            if (j == nameIdx && !p.name.empty())
                continue;
            if (!type.empty())
                type += ' ';
            type += toks[j].text;
        }
        p.type = std::move(type);
        params.push_back(std::move(p));
    }
    return params;
}

FlowSummary
analyzeTaint(const FlowFunction &fn, const FlowModel &fm,
             const TaintEmitter *emit)
{
    return BodyAnalyzer(fn, fm, emit).run();
}

FlowModel
buildFlowModel(const ScanInput &in)
{
    FlowModel fm;
    fm.model = buildModel(in.files);
    fm.functions.reserve(fm.model.functions.size());
    for (std::size_t i = 0; i < fm.model.functions.size(); ++i) {
        const FunctionDef &def = fm.model.functions[i];
        FlowFunction ff;
        ff.def = &def;
        ff.params = parseParams(def.file->tokens, def.paramBegin,
                                def.paramEnd);
        ff.summary.paramToReturn.assign(ff.params.size(), false);
        ff.summary.paramToSink.assign(ff.params.size(), false);
        ff.summary.paramSink.assign(ff.params.size(), SinkNote{});
        fm.byName[def.name].push_back(fm.functions.size());
        fm.functions.push_back(std::move(ff));
    }
    // Bottom-up summary fixpoint.  Six rounds bound even adversarial
    // call chains; real code converges in two or three.
    for (int round = 0; round < 6; ++round) {
        bool changed = false;
        for (FlowFunction &ff : fm.functions) {
            FlowSummary next = BodyAnalyzer(ff, fm, nullptr).run();
            // getCount() is the blessed bounded read: its return is
            // clean by contract whatever the token walk concludes.
            if (ff.def->name == "getCount") {
                next.returnsTaint = false;
                next.returnTaintWhy.clear();
            }
            if (!summariesEqual(next, ff.summary)) {
                ff.summary = std::move(next);
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return fm;
}

} // namespace biglittle::ablint
