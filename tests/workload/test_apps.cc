/**
 * @file
 * Tests for the Table II application suite definitions and the
 * AppInstance wiring.
 */

#include <gtest/gtest.h>

#include <set>

#include "platform/platform.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "workload/apps.hh"

using namespace biglittle;

TEST(AppSuite, TwelveAppsInTableOrder)
{
    const auto apps = allApps();
    ASSERT_EQ(apps.size(), 12u);
    EXPECT_EQ(apps[0].name, "pdf_reader");
    EXPECT_EQ(apps[3].name, "bbench");
    EXPECT_EQ(apps[11].name, "youtube");
}

TEST(AppSuite, MetricSplitMatchesTableII)
{
    // 7 latency-oriented and 5 FPS-oriented applications.
    EXPECT_EQ(latencyApps().size(), 7u);
    EXPECT_EQ(fpsApps().size(), 5u);
    for (const AppSpec &app : latencyApps())
        EXPECT_EQ(app.metric, AppMetric::latency) << app.name;
    for (const AppSpec &app : fpsApps())
        EXPECT_EQ(app.metric, AppMetric::fps) << app.name;
}

TEST(AppSuite, NamesAreUniqueAndSeedsDiffer)
{
    std::set<std::string> names;
    std::set<std::uint64_t> seeds;
    for (const AppSpec &app : allApps()) {
        EXPECT_TRUE(names.insert(app.name).second) << app.name;
        EXPECT_TRUE(seeds.insert(app.seed).second) << app.name;
    }
}

TEST(AppSuite, LatencyAppsHaveScriptsAndWorkers)
{
    for (const AppSpec &app : latencyApps()) {
        EXPECT_FALSE(app.actions.empty()) << app.name;
        for (const ActionSpec &a : app.actions) {
            EXPECT_GT(a.uiInstructions, 0.0) << app.name;
            EXPECT_LE(a.workerInstructions.size(),
                      app.workers.size())
                << app.name;
        }
    }
}

TEST(AppSuite, FpsAppsHaveExactlyOneRenderThread)
{
    for (const AppSpec &app : fpsApps()) {
        int renders = 0;
        for (const auto &pt : app.periodicThreads)
            renders += pt.isRender ? 1 : 0;
        EXPECT_EQ(renders, 1) << app.name;
    }
}

TEST(AppSuite, PeriodicThreadsAreWellFormed)
{
    for (const AppSpec &app : allApps()) {
        for (const auto &pt : app.periodicThreads) {
            EXPECT_GT(pt.periodic.period, 0u) << app.name;
            EXPECT_GT(pt.periodic.instPerPeriod, 0.0) << app.name;
            EXPECT_GE(pt.periodic.activeProbability, 0.0);
            EXPECT_LE(pt.periodic.activeProbability, 1.0);
        }
    }
}

TEST(AppSuite, LookupByName)
{
    EXPECT_EQ(appByName("encoder").name, "encoder");
    EXPECT_EQ(appByName("fifa15").metric, AppMetric::fps);
    EXPECT_EXIT(appByName("not_an_app"),
                ::testing::ExitedWithCode(1), "unknown app");
}

TEST(AppSuite, MetricNames)
{
    EXPECT_STREQ(appMetricName(AppMetric::latency), "latency");
    EXPECT_STREQ(appMetricName(AppMetric::fps), "fps");
}

namespace
{

class AppInstanceTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    HmpScheduler sched{sim, plat, baselineSchedParams()};

    void
    SetUp() override
    {
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        plat.bigCluster().freqDomain().setFreqNow(1900000);
        sched.start();
    }
};

} // namespace

TEST_F(AppInstanceTest, FpsAppCreatesPeriodicTasks)
{
    const AppSpec spec = angryBirdApp();
    AppInstance app(sim, sched, spec);
    EXPECT_EQ(sched.tasks().size(), spec.periodicThreads.size());
    app.start();
    sim.runFor(msToTicks(3000));
    EXPECT_GT(app.frameStats().frames(), 100u);
    EXPECT_FALSE(app.done()); // FPS apps are externally timed
}

TEST_F(AppInstanceTest, LatencyAppCreatesUiAndWorkers)
{
    const AppSpec spec = photoEditorApp();
    AppInstance app(sim, sched, spec);
    EXPECT_EQ(sched.tasks().size(),
              spec.periodicThreads.size() + 1 + spec.workers.size());
    app.start();
    Tick guard = 0;
    while (!app.done() && guard < spec.duration) {
        sim.runFor(msToTicks(10));
        guard += msToTicks(10);
    }
    EXPECT_TRUE(app.done());
    EXPECT_EQ(app.actionsCompleted(), spec.actions.size());
    EXPECT_GT(app.latency(), 0u);
}

TEST_F(AppInstanceTest, TaskNamesCarryAppPrefix)
{
    AppInstance app(sim, sched, videoPlayerApp());
    for (const auto &task : sched.tasks())
        EXPECT_EQ(task->name().rfind("video_player.", 0), 0u)
            << task->name();
}

TEST_F(AppInstanceTest, LatencyAppWithoutActionsIsFatal)
{
    AppSpec bad = browserApp();
    bad.actions.clear();
    EXPECT_EXIT(AppInstance(sim, sched, bad),
                ::testing::ExitedWithCode(1), "no action script");
}
