/**
 * @file
 * Experiment: the one-stop harness that assembles a platform, the
 * HMP scheduler, per-cluster governors and the measurement
 * instruments, runs a workload, and returns every metric the paper's
 * tables and figures need.  All bench binaries and examples are thin
 * wrappers over this class.
 */

#ifndef BIGLITTLE_CORE_EXPERIMENT_HH
#define BIGLITTLE_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "base/recovery.hh"
#include "base/types.hh"
#include "core/efficiency.hh"
#include "core/freq_residency.hh"
#include "core/state_sampler.hh"
#include "core/tlp.hh"
#include "fault/fault.hh"
#include "fault/invariants.hh"
#include "governor/interactive.hh"
#include "platform/params.hh"
#include "platform/power.hh"
#include "platform/thermal.hh"
#include "sched/sched_params.hh"
#include "sim/eventq.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/watchdog.hh"
#include "workload/app_model.hh"
#include "workload/spec.hh"

namespace biglittle
{

/** Which frequency policy each cluster runs. */
enum class GovernorKind
{
    interactive, ///< Algorithm 2, the platform default
    performance,
    powersave,
    ondemand,
    conservative, ///< stepwise ondemand variant
    schedutil, ///< modern capacity-driven policy
    userspace, ///< fixed frequency (Figs. 2/3/6)
};

/** Human-readable governor name. */
const char *governorKindName(GovernorKind kind);

/** Checkpoint / trace / resume controls of one run. */
struct SnapshotParams
{
    /** Simulated ticks between automatic checkpoints (0 = off). */
    Tick checkpointEvery = 0;

    /** Directory the periodic checkpoints are written to. */
    std::string checkpointDir = ".";

    /**
     * Resume from this checkpoint: the run deterministically
     * re-executes up to the checkpoint's tick, byte-compares every
     * state section against the file (any mismatch is a hard,
     * attributed error), and then continues.  Requires the same
     * config, app, and seeds that produced the checkpoint.
     */
    std::string resumePath;

    /** Record the serviced-event trace to this file. */
    std::string recordTracePath;

    /**
     * Compare this run's serviced events against a recorded trace
     * and report the first diverging event.  Mutually exclusive
     * with recordTracePath (both use the queue's one service hook).
     */
    std::string replayTracePath;
};

/**
 * abrace race detection and permuted tie-break controls of one run
 * (sim/abrace.hh, docs/DETERMINISM.md).
 */
struct RaceParams
{
    /**
     * Attach a RaceDetector to the run's event queue: every
     * instrumented handler's noteRead/noteWrite calls are recorded
     * and same-(tick, priority) access conflicts between unordered
     * events are reported in AppRunResult::raceReport.
     */
    bool detect = false;

    /**
     * Service order within each same-(tick, priority) batch.  `fifo`
     * is the production order; `lifo`/`shuffle` rerun the simulation
     * under a different-but-valid order so end-state digests can be
     * compared (compareStateDigests) to prove order independence.
     */
    TieBreak tieBreak = TieBreak::fifo;

    /** Seed of the `shuffle` tie-break's private generator. */
    std::uint64_t shuffleSeed = 1;

    /**
     * abrace suppression baseline to load (empty = none).  The
     * checked-in tools/abrace/baseline.txt is empty and stays so.
     */
    std::string baselinePath;
};

/** Checkpoint overhead of one run. */
struct CheckpointStats
{
    std::uint64_t count = 0; ///< checkpoints written
    std::uint64_t bytes = 0; ///< total bytes written
    double writeMs = 0.0; ///< wall time spent serializing + writing
    std::string lastPath; ///< most recent checkpoint file

    /** Every checkpoint written, oldest first: rollback targets. */
    std::vector<std::string> paths;
};

/**
 * Supervised-execution controls of one run (docs/ROBUSTNESS.md §8).
 * The Supervisor (src/supervise) populates these; plain runs leave
 * them defaulted and keep the historical die-on-failure behavior.
 */
struct RecoveryParams
{
    /**
     * Intercept failures (unrecoverable faults, invariant-sweep
     * failures, watchdog trips, resume divergence) instead of dying:
     * the run loop stops at the next chunk boundary and reports the
     * failure in AppRunResult so a supervisor can roll back and
     * retry.
     */
    bool supervised = false;

    /**
     * Treat a failed periodic invariant sweep as a run failure (only
     * meaningful when supervised; the unsupervised contract is that
     * invariant violations are recorded, never fatal).
     */
    bool failOnInvariantViolation = false;

    /**
     * Timed recovery actions, in append order.  Each action is
     * applied at the first chunk boundary at or after its atTick —
     * after resume verification and the boundary's checkpoint write,
     * so a checkpoint at tick T never bakes in same-tick actions and
     * every attempt replaying the same script reconstructs
     * byte-identical state (docs/ROBUSTNESS.md §8).
     */
    std::vector<RecoveryAction> script;
};

/** Everything that defines one experimental condition. */
struct ExperimentConfig
{
    PlatformParams platform = exynos5422Params();
    SchedParams sched = baselineSchedParams();
    GovernorKind governor = GovernorKind::interactive;
    InteractiveParams interactive = defaultInteractiveParams();

    /** Fixed frequencies for GovernorKind::userspace (0 = min). */
    FreqKHz userspaceLittleFreq = 0;
    FreqKHz userspaceBigFreq = 0;

    /** Online core combination (Figs. 7/8). */
    CoreConfig coreConfig = {4, 4, "L4+B4"};

    /**
     * Thermal throttling of each cluster (a single big core can
     * sustain max frequency; parallel big-cluster bursts settle near
     * 1.0-1.4 GHz, as real phones do).
     */
    bool thermalEnabled = true;
    ThermalParams thermal;

    /**
     * Fault injection (disabled by default).  When enabled the run
     * also carries an InvariantChecker wired as the scheduler
     * observer, and the result reports injected-fault counts plus
     * any invariant violations.
     */
    FaultParams fault;

    /** Characterization sampling window (the paper's 10 ms). */
    Tick sampleWindow = msToTicks(10);

    /** Cap for latency apps that never finish (safety net). */
    Tick maxSimTime = msToTicks(300000);

    /**
     * Master seed for the run's named random streams.  0 (the
     * default) keeps the legacy behavior - each subsystem uses the
     * seed its own spec carries - which preserves the calibrated
     * reference results.  Nonzero derives every stream (app
     * behaviors, fault injector, kernels) independently from this
     * one value via deriveStreamSeed(), so one number reproduces a
     * whole run and no two subsystems share a stream.
     */
    std::uint64_t masterSeed = 0;

    /** Checkpoint / trace / resume controls. */
    SnapshotParams snapshot;

    /** Wall-clock stall/runaway monitor. */
    WatchdogParams watchdog;

    /** abrace race detection / permuted tie-break controls. */
    RaceParams race;

    /** Supervised-execution controls (src/supervise). */
    RecoveryParams recovery;

    std::string label = "default";
};

/** Per-task summary captured at the end of a run. */
struct TaskSummary
{
    std::string name;
    double instructionsRetired = 0.0;
    Tick littleRuntime = 0;
    Tick bigRuntime = 0;
    std::uint64_t typeMigrations = 0;

    /** Share of execution time spent on big cores, in percent. */
    double
    bigSharePct() const
    {
        const Tick total = littleRuntime + bigRuntime;
        return total == 0 ? 0.0
                          : 100.0 * static_cast<double>(bigRuntime) /
                                static_cast<double>(total);
    }
};

/** All metrics of one application run. */
struct AppRunResult
{
    std::string app;
    std::string configLabel;
    AppMetric metric = AppMetric::fps;

    Tick simulatedTime = 0;
    bool completed = false; ///< latency apps: script finished in time

    // performance
    Tick latency = 0; ///< latency apps
    double avgFps = 0.0; ///< fps apps
    double minFps = 0.0; ///< fps apps: worst 1-second window
    std::uint64_t frames = 0;

    // power/energy
    EnergyBreakdown energy;
    double avgPowerMw = 0.0;

    // characterization
    TlpReport tlp;
    EfficiencyReport efficiency;
    FreqResidency littleResidency;
    FreqResidency bigResidency;
    SchedStats sched;
    std::vector<TaskSummary> tasks; ///< per-thread breakdown

    // robustness (populated when cfg.fault.enabled)
    FaultStats faults;
    std::uint64_t invariantViolations = 0;
    /** Final invariant sweep's summary; empty when the run is
     *  invariant-clean. */
    std::string invariantSummary;

    // determinism / recovery (populated when cfg.snapshot used)
    CheckpointStats checkpoints;
    Tick resumedFrom = 0; ///< checkpoint tick the run resumed at
    bool traceDiverged = false;
    std::string divergenceReport; ///< first-diverging-event details

    // supervision (populated when cfg.recovery.supervised, plus
    // resume-divergence reporting on plain runs)
    bool failed = false; ///< the run loop intercepted a failure
    RecoveryTrigger failureTrigger = RecoveryTrigger::none;
    std::string failureIncident; ///< stable signature ("fatal-fault:cpu5")
    CoreId failureCore = invalidCoreId; ///< implicated core, if any
    Tick failedAt = 0; ///< tick the failure was intercepted at
    std::string failureDetail; ///< human-readable diagnosis
    std::uint64_t scriptApplied = 0; ///< recovery actions applied

    // abrace (populated when cfg.race.detect)
    std::uint64_t raceConflicts = 0; ///< distinct unsuppressed conflicts
    std::uint64_t raceSuppressed = 0; ///< occurrences suppressed
    std::string raceReport; ///< TSan-style details, empty when clean

    /**
     * Per-section fnv1a64 digest of the final full-state checkpoint,
     * in section order ("eventq", "cluster.N", ..., "app").  Always
     * populated; the permuted tie-break replay byte-compares these
     * between a fifo run and a lifo/shuffle rerun via
     * compareStateDigests().
     */
    std::vector<std::pair<std::string, std::uint64_t>> stateDigests;

    /** Headline performance number: ms latency or average FPS. */
    double performanceValue() const;
};

/**
 * Compare the end-state digests of two runs of the same config.
 * Matches section by section but skips "eventq": its digest folds in
 * per-event sequence numbers, which legitimately differ under a
 * permuted tie-break even when the runs are otherwise bit-identical
 * (docs/DETERMINISM.md lists this as a known blind spot).  Returns
 * ok on match, otherwise names the first differing section.
 */
[[nodiscard]] Status compareStateDigests(const AppRunResult &a,
                                         const AppRunResult &b);

/** Metrics of one single-core fixed-frequency kernel run. */
struct KernelRunResult
{
    std::string kernel;
    CoreType coreType = CoreType::little;
    FreqKHz freq = 0;

    /** False when the kernel hit the simulation cap unfinished. */
    bool completed = true;

    Tick runtime = 0;
    double avgPowerMw = 0.0;
    EnergyBreakdown energy;
};

/** Metrics of one microbenchmark utilization point. */
struct MicrobenchResult
{
    CoreType coreType = CoreType::little;
    FreqKHz freq = 0;
    double targetUtilization = 0.0;
    double achievedUtilization = 0.0;
    double avgPowerMw = 0.0;
};

/** Assembles and runs experimental conditions. */
class Experiment
{
  public:
    explicit Experiment(ExperimentConfig config = ExperimentConfig{});

    const ExperimentConfig &config() const { return cfg; }

    /** Run one application under the configured system. */
    AppRunResult runApp(const AppSpec &app);

    /**
     * Run a single-threaded kernel pinned to one core of @p type
     * clocked at @p freq (Figs. 2/3); the other cluster idles at its
     * minimum frequency.
     */
    KernelRunResult runKernel(const SpecKernel &kernel, CoreType type,
                              FreqKHz freq);

    /**
     * Hold @p utilization on one core of @p type at @p freq for
     * @p duration and report average power (Fig. 6).
     */
    MicrobenchResult runMicrobench(CoreType type, FreqKHz freq,
                                   double utilization, Tick duration);

  private:
    ExperimentConfig cfg;
};

} // namespace biglittle

#endif // BIGLITTLE_CORE_EXPERIMENT_HH
