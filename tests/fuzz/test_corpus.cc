/**
 * @file
 * Regression corpus: every file under tests/fuzz/corpus/ is fed to
 * its surface's decoder and must come back as a clean Status —
 * accepted for the `valid*` artifacts, rejected for everything
 * else, crashing for none.  The corpus pins down historically
 * interesting shapes (truncation, broken checksums, length-field
 * inflation with a re-fixed checksum) so they stay covered even if
 * the mutator's distribution drifts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/config_io.hh"
#include "fuzz/targets.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/event_trace.hh"

using namespace biglittle;

namespace
{

const std::string corpusDir = FUZZ_CORPUS_DIR;

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

/** Sorted corpus file paths under @p sub. */
std::vector<std::string>
corpusFiles(const std::string &sub)
{
    std::vector<std::string> paths;
    for (const auto &entry : std::filesystem::directory_iterator(
             corpusDir + "/" + sub))
        paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    EXPECT_FALSE(paths.empty())
        << "empty corpus directory " << sub;
    return paths;
}

bool
isValidArtifact(const std::string &path)
{
    return std::filesystem::path(path).filename().string().rfind(
               "valid", 0) == 0;
}

} // namespace

TEST(FuzzCorpus, EveryFileRunsThroughItsTarget)
{
    // The target's run() contract: total on any input.  Crashes
    // here are caught by the test runner (and sanitizers in CI).
    const auto targets = allFuzzTargets();
    const std::vector<std::pair<std::string, std::size_t>> surfaces =
        {{"config", 0}, {"checkpoint", 1}, {"trace", 2}, {"argv", 3}};
    for (const auto &[sub, index] : surfaces) {
        for (const std::string &path : corpusFiles(sub))
            targets[index]->run(readFile(path));
    }
}

TEST(FuzzCorpus, CheckpointVerdictsMatchFilenames)
{
    for (const std::string &path : corpusFiles("checkpoint")) {
        const Result<Checkpoint> result =
            Checkpoint::decode(readFile(path));
        EXPECT_EQ(result.ok(), isValidArtifact(path)) << path;
    }
}

TEST(FuzzCorpus, TraceVerdictsMatchFilenames)
{
    for (const std::string &path : corpusFiles("trace")) {
        const Result<EventTrace> result =
            EventTrace::decode(readFile(path));
        EXPECT_EQ(result.ok(), isValidArtifact(path)) << path;
    }
}

TEST(FuzzCorpus, InflatedCountsFailTheBoundNotTheChecksum)
{
    // The count-inflated artifacts carry a *valid* checksum: they
    // must be rejected by getCount()'s bound check, proving the
    // defense sits deeper than the integrity gate.
    const Result<Checkpoint> ckpt = Checkpoint::decode(
        readFile(corpusDir + "/checkpoint/count-inflated.ckpt"));
    ASSERT_FALSE(ckpt.ok());
    EXPECT_EQ(ckpt.status().message().find("checksum"),
              std::string::npos)
        << ckpt.status().message();

    const Result<EventTrace> trace = EventTrace::decode(
        readFile(corpusDir + "/trace/count-inflated.trace"));
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.status().message().find("checksum"),
              std::string::npos)
        << trace.status().message();
}

TEST(FuzzCorpus, ConfigVerdictsMatchFilenames)
{
    for (const std::string &path : corpusFiles("config")) {
        const std::vector<std::uint8_t> bytes = readFile(path);
        const Result<ExperimentConfig> result =
            parseExperimentConfig(
                std::string(bytes.begin(), bytes.end()));
        EXPECT_EQ(result.ok(), isValidArtifact(path)) << path;
    }
}
