/**
 * @file
 * Tests for Status/Result: the recoverable-error values used by the
 * graceful-degradation paths (hotplug, DVFS, evacuation).
 */

#include <gtest/gtest.h>

#include <memory>

#include "base/status.hh"

using namespace biglittle;

TEST(Status, DefaultIsOk)
{
    const Status st;
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::ok);
    EXPECT_TRUE(st.message().empty());
    EXPECT_EQ(st.toString(), "ok");
}

TEST(Status, FactoriesCarryCodeAndMessage)
{
    const Status st = invalidArgument("core 42 does not exist");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::invalidArgument);
    EXPECT_EQ(st.message(), "core 42 does not exist");
    EXPECT_EQ(st.toString(),
              "invalid-argument: core 42 does not exist");
}

TEST(Status, AllCodesHaveNames)
{
    EXPECT_STREQ(statusCodeName(StatusCode::ok), "ok");
    EXPECT_STREQ(statusCodeName(StatusCode::invalidArgument),
                 "invalid-argument");
    EXPECT_STREQ(statusCodeName(StatusCode::failedPrecondition),
                 "failed-precondition");
    EXPECT_STREQ(statusCodeName(StatusCode::notFound), "not-found");
    EXPECT_STREQ(statusCodeName(StatusCode::outOfRange),
                 "out-of-range");
    EXPECT_STREQ(statusCodeName(StatusCode::unavailable),
                 "unavailable");
    EXPECT_STREQ(statusCodeName(StatusCode::internal), "internal");
}

TEST(Status, EqualityComparesCodeAndMessage)
{
    EXPECT_EQ(okStatus(), Status());
    EXPECT_EQ(unavailable("x"), unavailable("x"));
    EXPECT_NE(unavailable("x"), unavailable("y"));
    EXPECT_NE(unavailable("x"), notFound("x"));
}

TEST(Result, HoldsValue)
{
    const Result<int> r(7);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 7);
    EXPECT_EQ(r.valueOr(-1), 7);
    EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError)
{
    const Result<int> r(failedPrecondition("core is busy"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::failedPrecondition);
    EXPECT_EQ(r.status().message(), "core is busy");
    EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(Result, MoveOnlyValueWorks)
{
    Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
    ASSERT_TRUE(r.ok());
    std::unique_ptr<int> v = std::move(r.value());
    EXPECT_EQ(*v, 3);
}

TEST(ResultDeathTest, ValueOnErrorAsserts)
{
    const Result<int> r(unavailable("no"));
    EXPECT_DEATH((void)r.value(), "assertion");
}

TEST(ResultDeathTest, OkStatusIntoResultAsserts)
{
    EXPECT_DEATH((void)Result<int>(okStatus()), "assertion");
}
