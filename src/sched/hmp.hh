/**
 * @file
 * HmpScheduler: the utilization-based asymmetric scheduler the paper
 * studies (Algorithm 1, the Linaro HMP design).
 *
 * Every scheduling tick the per-task time-weighted loads are updated
 * (frequency-normalized, frozen during sleep); a task on a little
 * core whose load exceeds the up-threshold migrates to a big core, a
 * task on a big core whose load falls below the down-threshold
 * migrates back, and classic load balancing evens out run-queue
 * depths within each cluster.  Wakeup placement uses the same
 * thresholds on the task's (frozen) load.
 */

#ifndef BIGLITTLE_SCHED_HMP_HH
#define BIGLITTLE_SCHED_HMP_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"
#include "platform/platform.hh"
#include "sched/runqueue.hh"
#include "sched/sched_observer.hh"
#include "sched/sched_params.hh"
#include "sched/task.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class Serializer;
class Deserializer;

/** Counters describing scheduler activity over a run. */
struct SchedStats
{
    std::uint64_t migrationsUp = 0; ///< little -> big
    std::uint64_t migrationsDown = 0; ///< big -> little
    std::uint64_t balanceMoves = 0; ///< intra-cluster spreads
    std::uint64_t wakeups = 0;
    std::uint64_t ticks = 0;

    /**
     * Wakeups where a pinned task's core was offline and the task
     * was placed elsewhere instead (graceful degradation under
     * hotplug faults; 0 in a healthy run).
     */
    std::uint64_t affinityBreaks = 0;

    /**
     * Up-migration frequency boosts the frequency domain refused
     * (DVFS-deny faults, thermal ceiling).  The boost is
     * opportunistic, so a denial is survivable — the governor
     * re-raises on its next sample — but a large count explains a
     * sluggish post-migration ramp.
     */
    std::uint64_t boostsDenied = 0;
};

/** The utilization-based asymmetric scheduler. */
class HmpScheduler
{
  public:
    HmpScheduler(Simulation &sim, AsymmetricPlatform &platform,
                 const SchedParams &params);

    HmpScheduler(const HmpScheduler &) = delete;
    HmpScheduler &operator=(const HmpScheduler &) = delete;

    const SchedParams &params() const { return schedParams; }
    AsymmetricPlatform &platform() { return plat; }

    /**
     * Create a task owned by this scheduler.
     * @param pinned optional hard affinity (disables HMP migration
     *        and balancing for the task; used by the Fig. 2/3
     *        single-core experiments)
     */
    Task &createTask(const std::string &name,
                     const WorkClass &work_class,
                     std::optional<CoreId> pinned = std::nullopt);

    /** Begin the periodic scheduling tick. */
    void start();

    /** Stop the periodic tick (tasks keep executing). */
    void stop();

    /** Runner of core @p id. */
    CoreRunner &runner(CoreId id);
    const CoreRunner &runner(CoreId id) const;

    /** All tasks created so far. */
    const std::vector<std::unique_ptr<Task>> &tasks() const
    {
        return taskList;
    }

    const SchedStats &stats() const { return schedStats; }

    /** Install an observer of placement decisions (may be null). */
    void setObserver(SchedObserver *observer) { schedObserver = observer; }
    SchedObserver *observer() const { return schedObserver; }

    // ---- called by Task / CoreRunner ----

    /** A sleeping task received work: place it on a core. */
    void wakeup(Task &task);

    /** A task drained its backlog and went to sleep. */
    void taskDrained(Task &task);

    /** Frequency-invariance scale of @p core (current/max). */
    double freqScale(const Core &core) const;

    /**
     * Move every task off core @p id onto other online cores (least
     * loaded first), so the core can be hotplugged.  Fails with
     * failedPrecondition() on a pinned task and unavailable() when
     * no other online core exists; tasks already moved stay on
     * their (valid) new cores either way.
     * @return number of tasks moved
     */
    [[nodiscard]] Result<std::size_t> evacuateCore(CoreId id);

    /**
     * Write scheduler counters plus every task's state, in creation
     * order.  Restore requires an identical task population (same
     * count, same names), which holds when the same workload was
     * instantiated against the same config.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    AsymmetricPlatform &plat;
    SchedParams schedParams;

    // ablint:allow(serialize-coverage): per-core runner objects rebuilt at construction
    std::vector<std::unique_ptr<CoreRunner>> runners;
    std::vector<std::unique_ptr<Task>> taskList;
    PeriodicTask *tickTask = nullptr;
    TaskId nextTaskId = 1;
    std::size_t rrCursor = 0;
    SchedStats schedStats;
    SchedObserver *schedObserver = nullptr;

    void tick(Tick now);
    void updateLoads(Tick now);
    void migrationPass();
    void balanceCluster(Cluster &cluster);

    /** Least-loaded online core of @p type; null if none online. */
    Core *pickTargetCore(CoreType type, const Task &task);

    void migrate(Task &task, Core &target, bool type_change);

    /** Apply the up-migration frequency boost (Linaro HMP boost). */
    void boostBigCluster(Core &target);
};

} // namespace biglittle

#endif // BIGLITTLE_SCHED_HMP_HH
