#include "platform/cluster.hh"

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/strutil.hh"

namespace biglittle
{

Cluster::Cluster(Simulation &sim_in, const ClusterParams &params,
                 CoreId first_id, Tick dvfs_latency,
                 bool cpuidle_enabled)
    : sim(sim_in), clusterParams(params), l2Model(params.l2),
      domain(sim_in, params.name, params.opps, dvfs_latency),
      lastUpdate(sim_in.now()), cpuidle(cpuidle_enabled)
{
    BL_ASSERT(clusterParams.coreCount > 0);
    for (std::uint32_t i = 0; i < clusterParams.coreCount; ++i) {
        coreList.push_back(std::make_unique<Core>(
            sim, first_id + i, clusterParams.type, clusterParams.perf,
            domain, *this,
            format("%s.cpu%u", clusterParams.name.c_str(),
                   first_id + i)));
    }
    domain.addListener([this](const Opp &, const Opp &) {
        // Close every accounting interval at the old OPP before the
        // new one becomes visible.
        accountTo(sim.now());
        for (auto &c : coreList)
            c->preFreqChange();
    });
}

std::size_t
Cluster::onlineCount() const
{
    std::size_t n = 0;
    for (const auto &c : coreList)
        n += c->online() ? 1 : 0;
    return n;
}

std::size_t
Cluster::busyCount() const
{
    std::size_t n = 0;
    for (const auto &c : coreList)
        n += c->busy() ? 1 : 0;
    return n;
}

void
Cluster::accountTo(Tick now)
{
    BL_ASSERT(now >= lastUpdate);
    const Tick dt = now - lastUpdate;
    lastUpdate = now;
    if (dt == 0)
        return;
    if (onlineCount() == 0)
        return; // fully power-gated cluster
    const double dt_sec = ticksToSeconds(dt);
    const double volts = domain.currentVolts();
    if (busyCount() > 0)
        activeW += dt_sec * volts;
    else
        idleW += dt_sec * volts;
}

void
Cluster::sync()
{
    accountTo(sim.now());
    for (auto &c : coreList)
        c->sync();
}

void
Cluster::preCoreStateChange()
{
    accountTo(sim.now());
}

void
Cluster::serialize(Serializer &s) const
{
    s.putU64(lastUpdate);
    s.putDouble(activeW);
    s.putDouble(idleW);
    for (const auto &c : coreList)
        c->serialize(s);
    domain.serialize(s);
}

void
Cluster::deserialize(Deserializer &d)
{
    lastUpdate = d.getU64();
    activeW = d.getDouble();
    idleW = d.getDouble();
    for (auto &c : coreList)
        c->deserialize(d);
    domain.deserialize(d);
}

} // namespace biglittle
