#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace biglittle
{

void
RunningStats::add(double x)
{
    if (n == 0) {
        minV = maxV = x;
    } else {
        minV = std::min(minV, x);
        maxV = std::max(maxV, x);
    }
    ++n;
    total += x;
    const double delta = x - meanAcc;
    meanAcc += delta / static_cast<double>(n);
    m2 += delta * (x - meanAcc);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.meanAcc - meanAcc;
    const double combined = na + nb;
    meanAcc += delta * nb / combined;
    m2 += other.m2 + delta * delta * na * nb / combined;
    n += other.n;
    total += other.total;
    minV = std::min(minV, other.minV);
    maxV = std::max(maxV, other.maxV);
}

void
RunningStats::reset()
{
    *this = RunningStats();
}

double
RunningStats::mean() const
{
    return n ? meanAcc : 0.0;
}

double
RunningStats::variance() const
{
    return n >= 2 ? m2 / static_cast<double>(n) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return n ? minV : 0.0;
}

double
RunningStats::max() const
{
    return n ? maxV : 0.0;
}

void
SampleSeries::add(double x)
{
    samples.push_back(x);
    summary.add(x);
    sortedValid = false;
}

void
SampleSeries::reset()
{
    samples.clear();
    sorted.clear();
    sortedValid = false;
    summary.reset();
}

double
SampleSeries::percentile(double p) const
{
    BL_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples.empty())
        return 0.0;
    if (!sortedValid) {
        sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        sortedValid = true;
    }
    if (sorted.size() == 1)
        return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

} // namespace biglittle
