/**
 * @file
 * Tests for the thermal throttle: temperature dynamics, trip-point
 * hysteresis, and the platform behavior it is calibrated for (a
 * single big core sustains max frequency; a fully busy big cluster
 * is forced down).
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "platform/power.hh"
#include "platform/thermal.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class ThermalTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};

    Cluster &big() { return plat.bigCluster(); }
};

} // namespace

TEST_F(ThermalTest, StartsAtAmbientWithNoCeiling)
{
    ThermalThrottle throttle(sim, big());
    EXPECT_DOUBLE_EQ(throttle.temperatureC(),
                     throttle.params().ambientC);
    EXPECT_EQ(throttle.ceiling(), big().freqDomain().maxFreq());
}

TEST_F(ThermalTest, IdleClusterStaysCool)
{
    ThermalThrottle throttle(sim, big());
    throttle.start();
    sim.runFor(msToTicks(5000));
    EXPECT_LT(throttle.temperatureC(), throttle.params().hotTripC);
    EXPECT_EQ(throttle.throttleEvents(), 0u);
    EXPECT_EQ(big().freqDomain().currentFreq(),
              big().freqDomain().minFreq());
}

TEST_F(ThermalTest, SingleBusyBigCoreSustainsMaxFreq)
{
    big().freqDomain().setFreqNow(1900000);
    big().core(0).setBusy(true);
    ThermalThrottle throttle(sim, big());
    throttle.start();
    sim.runFor(msToTicks(20000));
    // One core at 1.9 GHz: steady state just under the hot trip.
    EXPECT_EQ(big().freqDomain().currentFreq(), 1900000u);
    EXPECT_EQ(throttle.throttleEvents(), 0u);
}

TEST_F(ThermalTest, FullyBusyBigClusterThrottles)
{
    big().freqDomain().setFreqNow(1900000);
    for (std::size_t i = 0; i < 4; ++i)
        big().core(i).setBusy(true);
    ThermalThrottle throttle(sim, big());
    throttle.start();
    sim.runFor(msToTicks(20000));
    EXPECT_GT(throttle.throttleEvents(), 0u);
    // Four busy big cores settle well below max, near ~1.0-1.4 GHz.
    EXPECT_LE(big().freqDomain().currentFreq(), 1400000u);
    EXPECT_GE(big().freqDomain().currentFreq(), 800000u);
}

TEST_F(ThermalTest, TemperatureRisesUnderLoad)
{
    big().freqDomain().setFreqNow(1900000);
    for (std::size_t i = 0; i < 4; ++i)
        big().core(i).setBusy(true);
    ThermalThrottle throttle(sim, big());
    throttle.start();
    sim.runFor(msToTicks(500));
    EXPECT_GT(throttle.temperatureC(), throttle.params().ambientC + 5);
}

TEST_F(ThermalTest, CeilingRecoversAfterLoadDrops)
{
    big().freqDomain().setFreqNow(1900000);
    for (std::size_t i = 0; i < 4; ++i)
        big().core(i).setBusy(true);
    ThermalThrottle throttle(sim, big());
    throttle.start();
    sim.runFor(msToTicks(20000));
    ASSERT_LT(throttle.ceiling(), 1900000u);
    for (std::size_t i = 0; i < 4; ++i)
        big().core(i).setBusy(false);
    sim.runFor(msToTicks(30000));
    EXPECT_EQ(throttle.ceiling(), 1900000u);
}

TEST_F(ThermalTest, LittleClusterNeverThrottles)
{
    Cluster &little = plat.littleCluster();
    little.freqDomain().setFreqNow(1300000);
    for (std::size_t i = 0; i < 4; ++i)
        little.core(i).setBusy(true);
    ThermalThrottle throttle(sim, little);
    throttle.start();
    sim.runFor(msToTicks(30000));
    EXPECT_EQ(throttle.throttleEvents(), 0u);
    EXPECT_EQ(little.freqDomain().currentFreq(), 1300000u);
}

TEST_F(ThermalTest, StopFreezesEvaluation)
{
    big().freqDomain().setFreqNow(1900000);
    for (std::size_t i = 0; i < 4; ++i)
        big().core(i).setBusy(true);
    ThermalThrottle throttle(sim, big());
    throttle.start();
    sim.runFor(msToTicks(200));
    throttle.stop();
    const double temp = throttle.temperatureC();
    sim.runFor(msToTicks(5000));
    EXPECT_DOUBLE_EQ(throttle.temperatureC(), temp);
}

TEST_F(ThermalTest, SteadyStateTemperatureMatchesClosedForm)
{
    // With constant power P, steady T = ambient + P/G.
    Cluster &little = plat.littleCluster();
    little.freqDomain().setFreqNow(1300000);
    little.core(0).setBusy(true);
    ThermalParams tp;
    tp.hotTripC = 1000.0; // never throttle; observe pure dynamics
    tp.coolTripC = 999.0;
    ThermalThrottle throttle(sim, little, tp);
    throttle.start();
    sim.runFor(msToTicks(60000));
    const double p_w = clusterInstantPowerMw(little) / 1000.0;
    const double expected = tp.ambientC + p_w / tp.conductanceWPerC;
    EXPECT_NEAR(throttle.temperatureC(), expected, 1.0);
}
