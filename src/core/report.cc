#include "core/report.hh"

#include <cstdio>

#include "base/csv.hh"
#include "base/strutil.hh"

namespace biglittle
{

namespace
{
void
printRule(std::size_t width)
{
    std::puts(std::string(width, '-').c_str());
}
} // namespace

void
printTlpTable(const std::vector<AppRunResult> &results, CsvWriter *csv)
{
    std::printf("%s\n",
                (padRight("App", 20) + padLeft("Idle%", 9) +
                 padLeft("Little%", 9) + padLeft("Big%", 9) +
                 padLeft("TLP", 7))
                    .c_str());
    printRule(54);
    if (csv)
        csv->header({"app", "idle_pct", "little_pct", "big_pct",
                     "tlp"});
    for (const AppRunResult &r : results) {
        std::printf("%s%9.2f%9.2f%9.2f%7.2f\n",
                    padRight(r.app, 20).c_str(), r.tlp.idlePct,
                    r.tlp.littleSharePct, r.tlp.bigSharePct, r.tlp.tlp);
        if (csv) {
            csv->beginRow();
            csv->cell(r.app);
            csv->cell(r.tlp.idlePct);
            csv->cell(r.tlp.littleSharePct);
            csv->cell(r.tlp.bigSharePct);
            csv->cell(r.tlp.tlp);
            csv->endRow();
        }
    }
}

void
printTlpMatrix(const AppRunResult &result, CsvWriter *csv)
{
    const auto &m = result.tlp.matrixPct;
    if (m.empty())
        return;
    const std::size_t rows = m.size();
    const std::size_t cols = m.front().size();

    std::printf("%s (big rows x little cols, %% of windows)\n",
                result.app.c_str());
    std::string header = padRight("", 6);
    for (std::size_t l = 0; l < cols; ++l)
        header += padLeft(format("C%zu", l), 8);
    std::printf("%s\n", header.c_str());
    for (std::size_t b = 0; b < rows; ++b) {
        std::string line = padRight(format("C%zu", b), 6);
        for (std::size_t l = 0; l < cols; ++l)
            line += padLeft(format("%.2f", m[b][l]), 8);
        std::printf("%s\n", line.c_str());
        if (csv) {
            csv->beginRow();
            csv->cell(result.app);
            csv->cell(static_cast<std::uint64_t>(b));
            for (std::size_t l = 0; l < cols; ++l)
                csv->cell(m[b][l]);
            csv->endRow();
        }
    }
}

void
printEfficiencyTable(const std::vector<AppRunResult> &results,
                     CsvWriter *csv)
{
    std::printf("%s\n",
                (padRight("App", 20) + padLeft("Min", 8) +
                 padLeft("<50%", 8) + padLeft("50-70%", 8) +
                 padLeft("70-95%", 8) + padLeft(">95%", 8) +
                 padLeft("Full", 8))
                    .c_str());
    printRule(68);
    if (csv)
        csv->header({"app", "min", "below50", "from50to70",
                     "from70to95", "above95", "full"});
    for (const AppRunResult &r : results) {
        const EfficiencyReport &e = r.efficiency;
        std::printf("%s%8.2f%8.2f%8.2f%8.2f%8.2f%8.2f\n",
                    padRight(r.app, 20).c_str(), e.minPct,
                    e.below50Pct, e.from50to70Pct, e.from70to95Pct,
                    e.above95Pct, e.fullPct);
        if (csv) {
            csv->beginRow();
            csv->cell(r.app);
            csv->cell(e.minPct);
            csv->cell(e.below50Pct);
            csv->cell(e.from50to70Pct);
            csv->cell(e.from70to95Pct);
            csv->cell(e.above95Pct);
            csv->cell(e.fullPct);
            csv->endRow();
        }
    }
}

void
printFreqResidencyTable(const std::vector<AppRunResult> &results,
                        bool big, CsvWriter *csv)
{
    if (results.empty())
        return;
    const FreqResidency &first =
        big ? results.front().bigResidency
            : results.front().littleResidency;

    std::string header = padRight("App", 20);
    for (const auto &entry : first.entries)
        header += padLeft(freqToString(entry.freq), 9);
    std::printf("%s\n", header.c_str());
    printRule(header.size());
    if (csv) {
        std::vector<std::string> cols = {"app"};
        for (const auto &entry : first.entries)
            cols.push_back(format("f_%u", entry.freq));
        csv->header(cols);
    }
    for (const AppRunResult &r : results) {
        const FreqResidency &res =
            big ? r.bigResidency : r.littleResidency;
        std::string line = padRight(r.app, 20);
        for (const auto &entry : res.entries)
            line += padLeft(format("%.1f", entry.fraction * 100.0), 9);
        std::printf("%s\n", line.c_str());
        if (csv) {
            csv->beginRow();
            csv->cell(r.app);
            for (const auto &entry : res.entries)
                csv->cell(entry.fraction * 100.0);
            csv->endRow();
        }
    }
}

void
printRunSummary(const AppRunResult &result)
{
    if (result.metric == AppMetric::latency) {
        std::printf("%s [%s]: latency %.1f ms, avg power %.0f mW, "
                    "TLP %.2f\n",
                    result.app.c_str(), result.configLabel.c_str(),
                    static_cast<double>(result.latency) /
                        static_cast<double>(oneMs),
                    result.avgPowerMw, result.tlp.tlp);
    } else {
        std::printf("%s [%s]: avg %.1f FPS (min %.1f), avg power "
                    "%.0f mW, TLP %.2f\n",
                    result.app.c_str(), result.configLabel.c_str(),
                    result.avgFps, result.minFps, result.avgPowerMw,
                    result.tlp.tlp);
    }
}

namespace
{

void
printTaskRows(const std::vector<TaskSummary> &tasks, CsvWriter *csv)
{
    std::printf("%s\n",
                (padRight("task", 26) + padLeft("Minst", 9) +
                 padLeft("little ms", 11) + padLeft("big ms", 9) +
                 padLeft("big %", 8) + padLeft("migr", 6))
                    .c_str());
    printRule(69);
    if (csv)
        csv->header({"task", "minst", "little_ms", "big_ms",
                     "big_share_pct", "migrations"});
    for (const TaskSummary &t : tasks) {
        const double little_ms = static_cast<double>(t.littleRuntime) /
                                 static_cast<double>(oneMs);
        const double big_ms = static_cast<double>(t.bigRuntime) /
                              static_cast<double>(oneMs);
        std::printf("%s%9.1f%11.1f%9.1f%8.1f%6llu\n",
                    padRight(t.name, 26).c_str(),
                    t.instructionsRetired / 1e6, little_ms, big_ms,
                    t.bigSharePct(),
                    static_cast<unsigned long long>(
                        t.typeMigrations));
        if (csv) {
            csv->beginRow();
            csv->cell(t.name);
            csv->cell(t.instructionsRetired / 1e6);
            csv->cell(little_ms);
            csv->cell(big_ms);
            csv->cell(t.bigSharePct());
            csv->cell(static_cast<std::uint64_t>(t.typeMigrations));
            csv->endRow();
        }
    }
}

} // namespace

void
printTaskTable(const AppRunResult &result, CsvWriter *csv)
{
    printTaskRows(result.tasks, csv);
}

void
printTaskTable(const HmpScheduler &sched, CsvWriter *csv)
{
    std::vector<TaskSummary> tasks;
    for (const auto &task : sched.tasks()) {
        TaskSummary t;
        t.name = task->name();
        t.instructionsRetired = task->instructionsRetired();
        t.littleRuntime = task->runtimeOn(CoreType::little);
        t.bigRuntime = task->runtimeOn(CoreType::big);
        t.typeMigrations = task->typeMigrations();
        tasks.push_back(std::move(t));
    }
    printTaskRows(tasks, csv);
}

} // namespace biglittle
