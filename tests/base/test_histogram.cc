/**
 * @file
 * Tests for the weighted binned and discrete histograms.
 */

#include <gtest/gtest.h>

#include "base/histogram.hh"

using namespace biglittle;

TEST(BinnedHistogram, BasicBinning)
{
    BinnedHistogram h({0.0, 10.0, 20.0, 30.0});
    EXPECT_EQ(h.bins(), 3u);
    h.add(5.0);
    h.add(15.0, 2.0);
    h.add(29.999);
    EXPECT_DOUBLE_EQ(h.binWeight(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binWeight(1), 2.0);
    EXPECT_DOUBLE_EQ(h.binWeight(2), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 4.0);
}

TEST(BinnedHistogram, HalfOpenBoundaries)
{
    BinnedHistogram h({0.0, 10.0, 20.0});
    h.add(10.0); // belongs to [10, 20)
    EXPECT_DOUBLE_EQ(h.binWeight(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binWeight(1), 1.0);
    h.add(20.0); // at the top edge: overflow
    EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
}

TEST(BinnedHistogram, UnderAndOverflow)
{
    BinnedHistogram h({0.0, 1.0});
    h.add(-0.5, 3.0);
    h.add(2.0, 4.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 3.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 4.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 7.0);
    EXPECT_DOUBLE_EQ(h.binWeight(0), 0.0);
}

TEST(BinnedHistogram, FractionsSumToOne)
{
    BinnedHistogram h({0.0, 1.0, 2.0, 3.0});
    for (double x = 0.25; x < 3.0; x += 0.5)
        h.add(x, x);
    double total = 0;
    for (std::size_t i = 0; i < h.bins(); ++i)
        total += h.binFraction(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BinnedHistogram, BinEdgesAccessors)
{
    BinnedHistogram h({1.0, 2.5, 7.0});
    EXPECT_DOUBLE_EQ(h.binLow(0), 1.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 2.5);
    EXPECT_DOUBLE_EQ(h.binLow(1), 2.5);
    EXPECT_DOUBLE_EQ(h.binHigh(1), 7.0);
}

TEST(BinnedHistogram, ResetClearsEverything)
{
    BinnedHistogram h({0.0, 1.0});
    h.add(0.5);
    h.add(-1.0);
    h.add(5.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
    EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
    EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
    EXPECT_DOUBLE_EQ(h.binWeight(0), 0.0);
}

TEST(BinnedHistogramDeathTest, RejectsUnsortedEdges)
{
    EXPECT_DEATH(BinnedHistogram({2.0, 1.0}), "assertion");
}

TEST(BinnedHistogramDeathTest, RejectsDuplicateEdges)
{
    EXPECT_DEATH(BinnedHistogram({1.0, 1.0}), "assertion");
}

TEST(DiscreteHistogram, AccumulatesByKey)
{
    DiscreteHistogram h;
    h.add(500000, 2.0);
    h.add(1300000, 1.0);
    h.add(500000, 3.0);
    EXPECT_DOUBLE_EQ(h.weightAt(500000), 5.0);
    EXPECT_DOUBLE_EQ(h.weightAt(1300000), 1.0);
    EXPECT_DOUBLE_EQ(h.weightAt(999), 0.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 6.0);
}

TEST(DiscreteHistogram, Fractions)
{
    DiscreteHistogram h;
    h.add(1, 1.0);
    h.add(2, 3.0);
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.25);
    EXPECT_DOUBLE_EQ(h.fractionAt(2), 0.75);
    EXPECT_DOUBLE_EQ(h.fractionAt(3), 0.0);
}

TEST(DiscreteHistogram, EmptyFractionIsZero)
{
    DiscreteHistogram h;
    EXPECT_DOUBLE_EQ(h.fractionAt(1), 0.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
}

TEST(DiscreteHistogram, CellsAreSortedByKey)
{
    DiscreteHistogram h;
    h.add(30);
    h.add(10);
    h.add(20);
    std::vector<std::uint64_t> keys;
    for (const auto &[k, w] : h.cells())
        keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(DiscreteHistogram, ResetClears)
{
    DiscreteHistogram h;
    h.add(1, 5.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.totalWeight(), 0.0);
    EXPECT_TRUE(h.cells().empty());
}
