#include "fault/fault.hh"

#include "base/logging.hh"
#include "base/serialize.hh"
#include "platform/platform.hh"
#include "platform/thermal.hh"
#include "sched/hmp.hh"

namespace biglittle
{

FaultParams
scaledFaultParams(double rate, std::uint64_t seed)
{
    BL_ASSERT(rate >= 0.0);
    FaultParams p;
    p.enabled = rate > 0.0;
    p.seed = seed;
    p.hotplugRatePerSec = 2.0 * rate;
    p.dvfsDenyProb = std::min(0.9, 0.10 * rate);
    p.dvfsDelayProb = std::min(0.9, 0.10 * rate);
    p.thermalSpikeRatePerSec = 1.0 * rate;
    p.taskStallRatePerSec = 4.0 * rate;
    return p;
}

FaultInjector::FaultInjector(Simulation &sim_in,
                             AsymmetricPlatform &platform,
                             HmpScheduler &sched_in,
                             const FaultParams &params)
    : sim(sim_in), plat(platform), sched(sched_in), fp(params),
      rng(params.seed)
{
    BL_ASSERT(fp.drawPeriod > 0);
    BL_ASSERT(fp.dvfsDenyProb >= 0.0 && fp.dvfsDenyProb <= 1.0);
    BL_ASSERT(fp.dvfsDelayProb >= 0.0 && fp.dvfsDelayProb <= 1.0);
}

FaultInjector::~FaultInjector()
{
    // The DVFS gates capture `this`; make sure a domain outliving the
    // injector (not the usual Rig lifetime, but possible in tests)
    // never calls into a dead object.
    if (gatesInstalled) {
        for (std::size_t i = 0; i < plat.clusterCount(); ++i)
            plat.cluster(i).freqDomain().setFaultGate(nullptr);
    }
}

void
FaultInjector::addThermal(ThermalThrottle *throttle)
{
    BL_ASSERT(throttle != nullptr);
    throttles.push_back(throttle);
}

DvfsFaultAction
FaultInjector::gateDecision()
{
    // Called from inside whatever event requested the frequency: the
    // draw advances the injector's shared rng, so two same-batch
    // requesters would consume each other's numbers.  This is how
    // abrace caught the per-cluster governor samplers sharing a slot
    // (docs/DETERMINISM.md).
    sim.noteWrite("fault", "rng");
    const double u = rng.uniform();
    if (u < fp.dvfsDenyProb) {
        ++faultStats.dvfsDenied;
        return DvfsFaultAction::deny;
    }
    if (u < fp.dvfsDenyProb + fp.dvfsDelayProb) {
        ++faultStats.dvfsDelayed;
        return DvfsFaultAction::delay;
    }
    return DvfsFaultAction::allow;
}

void
FaultInjector::start()
{
    if (!fp.enabled)
        return;
    if (!gatesInstalled &&
        (fp.dvfsDenyProb > 0.0 || fp.dvfsDelayProb > 0.0)) {
        for (std::size_t i = 0; i < plat.clusterCount(); ++i) {
            plat.cluster(i).freqDomain().setFaultGate(
                [this](FreqKHz) { return gateDecision(); },
                fp.dvfsExtraLatency);
        }
        gatesInstalled = true;
    }
    if (drawTask == nullptr) {
        drawTask = &sim.addPeriodic(
            fp.drawPeriod, [this](Tick now) { draw(now); },
            EventPriority::deferred, "fault.draw");
    }
    drawTask->start();
}

void
FaultInjector::stop()
{
    if (drawTask != nullptr)
        drawTask->cancel();
    if (gatesInstalled) {
        for (std::size_t i = 0; i < plat.clusterCount(); ++i)
            plat.cluster(i).freqDomain().setFaultGate(nullptr);
        gatesInstalled = false;
    }
}

void
FaultInjector::draw(Tick)
{
    // The draw consumes the injector's rng and may mutate topology,
    // thermal state, or task backlogs; any same-priority peer event
    // touching those cells would race with it.
    sim.noteWrite("fault", "rng");
    const double dt = ticksToSeconds(fp.drawPeriod);
    if (rng.chance(fp.hotplugRatePerSec * dt))
        injectHotplug();
    if (rng.chance(fp.thermalSpikeRatePerSec * dt))
        injectThermalSpike();
    if (rng.chance(fp.taskStallRatePerSec * dt))
        injectTaskStall();
}

void
FaultInjector::injectHotplug()
{
    // Pick a random online core; the platform's hotplug rules (boot
    // core, last little core) and a failed evacuation turn the fault
    // into a counted rejection rather than a crash.
    std::vector<CoreId> online;
    for (const Core *core : plat.cores()) {
        if (core->online())
            online.push_back(core->id());
    }
    if (online.empty())
        return;
    const CoreId id =
        online[rng.uniformInt(0, online.size() - 1)];
    // Evacuate first (a busy core is legal to unplug once drained);
    // if the platform then refuses - boot core, last little core -
    // the displaced tasks simply rebalance back.
    const Result<std::size_t> moved = sched.evacuateCore(id);
    if (!moved.ok()) {
        ++faultStats.hotplugRejected;
        return;
    }
    sim.noteWrite(plat.core(id).name(), "online");
    const Status off = plat.setCoreOnline(id, false);
    if (!off.ok()) {
        ++faultStats.hotplugRejected;
        return;
    }
    ++faultStats.hotplugOff;
    debugLog("fault: core %u offline for %llu ms", id,
             static_cast<unsigned long long>(
                 ticksToMs(fp.hotplugDownTime)));
    sim.after(fp.hotplugDownTime, [this, id] {
        sim.noteWrite(plat.core(id).name(), "online");
        if (plat.setCoreOnline(id, true).ok())
            ++faultStats.hotplugOn;
    }, EventPriority::faultReplug, "fault.replug");
}

void
FaultInjector::injectThermalSpike()
{
    if (throttles.empty())
        return;
    ThermalThrottle *throttle =
        throttles[rng.uniformInt(0, throttles.size() - 1)];
    throttle->injectTemperature(fp.thermalSpikeC);
    ++faultStats.thermalSpikes;
}

void
FaultInjector::injectTaskStall()
{
    // A stalled thread re-executes work (lock contention, a retried
    // frame): model it as a burst of extra instructions on a random
    // unpinned task that already has work in flight.  Sleeping tasks
    // are skipped - waking one from outside its workload would fire
    // its drain listener a second time and corrupt the workload's
    // outstanding-burst bookkeeping.
    const auto &tasks = sched.tasks();
    if (tasks.empty())
        return;
    const std::size_t start = rng.uniformInt(0, tasks.size() - 1);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        Task &task = *tasks[(start + i) % tasks.size()];
        if (task.state() == TaskState::sleeping ||
            task.state() == TaskState::finished || task.pinnedCore())
            continue;
        task.submitWork(fp.taskStallInstructions);
        ++faultStats.taskStalls;
        return;
    }
}

void
FaultInjector::serialize(Serializer &s) const
{
    rng.serialize(s);
    s.putU64(faultStats.hotplugOff);
    s.putU64(faultStats.hotplugOn);
    s.putU64(faultStats.hotplugRejected);
    s.putU64(faultStats.dvfsDenied);
    s.putU64(faultStats.dvfsDelayed);
    s.putU64(faultStats.thermalSpikes);
    s.putU64(faultStats.taskStalls);
}

void
FaultInjector::deserialize(Deserializer &d)
{
    rng.deserialize(d);
    faultStats.hotplugOff = d.getU64();
    faultStats.hotplugOn = d.getU64();
    faultStats.hotplugRejected = d.getU64();
    faultStats.dvfsDenied = d.getU64();
    faultStats.dvfsDelayed = d.getU64();
    faultStats.thermalSpikes = d.getU64();
    faultStats.taskStalls = d.getU64();
}

} // namespace biglittle
