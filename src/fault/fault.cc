#include "fault/fault.hh"

#include "base/logging.hh"
#include "base/serialize.hh"
#include "platform/platform.hh"
#include "platform/thermal.hh"
#include "sched/hmp.hh"

namespace biglittle
{

const char *
faultClassName(FaultClass cls)
{
    switch (cls) {
      case FaultClass::hotplug:
        return "hotplug";
      case FaultClass::dvfs:
        return "dvfs";
      case FaultClass::thermal:
        return "thermal";
      case FaultClass::taskStall:
        return "task-stall";
      case FaultClass::crash:
        return "crash";
      case FaultClass::invariantBreak:
        return "invariant-break";
    }
    return "unknown";
}

QuarantineKind
quarantineFor(FaultClass cls)
{
    switch (cls) {
      case FaultClass::crash:
      case FaultClass::hotplug:
        // A core that oopses or flaps is removed from the topology.
        return QuarantineKind::core;
      case FaultClass::dvfs:
        // A misbehaving regulator is isolated by pinning its domain.
        return QuarantineKind::freqDomain;
      case FaultClass::thermal:
      case FaultClass::taskStall:
      case FaultClass::invariantBreak:
        // No single component to blame: stop the behavior itself.
        return QuarantineKind::faultClass;
    }
    return QuarantineKind::faultClass;
}

FaultParams
scaledFaultParams(double rate, std::uint64_t seed)
{
    BL_ASSERT(rate >= 0.0);
    FaultParams p;
    p.enabled = rate > 0.0;
    p.seed = seed;
    p.hotplugRatePerSec = 2.0 * rate;
    p.dvfsDenyProb = std::min(0.9, 0.10 * rate);
    p.dvfsDelayProb = std::min(0.9, 0.10 * rate);
    p.thermalSpikeRatePerSec = 1.0 * rate;
    p.taskStallRatePerSec = 4.0 * rate;
    return p;
}

FaultInjector::FaultInjector(Simulation &sim_in,
                             AsymmetricPlatform &platform,
                             HmpScheduler &sched_in,
                             const FaultParams &params)
    : sim(sim_in), plat(platform), sched(sched_in), fp(params),
      rng(params.seed)
{
    BL_ASSERT(fp.drawPeriod > 0);
    BL_ASSERT(fp.dvfsDenyProb >= 0.0 && fp.dvfsDenyProb <= 1.0);
    BL_ASSERT(fp.dvfsDelayProb >= 0.0 && fp.dvfsDelayProb <= 1.0);
}

FaultInjector::~FaultInjector()
{
    // The DVFS gates capture `this`; make sure a domain outliving the
    // injector (not the usual Rig lifetime, but possible in tests)
    // never calls into a dead object.
    if (gatesInstalled) {
        for (std::size_t i = 0; i < plat.clusterCount(); ++i)
            plat.cluster(i).freqDomain().setFaultGate(nullptr);
    }
}

void
FaultInjector::addThermal(ThermalThrottle *throttle)
{
    BL_ASSERT(throttle != nullptr);
    throttles.push_back(throttle);
}

DvfsFaultAction
FaultInjector::gateDecision()
{
    // Called from inside whatever event requested the frequency: the
    // draw advances the injector's shared rng, so two same-batch
    // requesters would consume each other's numbers.  This is how
    // abrace caught the per-cluster governor samplers sharing a slot
    // (docs/DETERMINISM.md).
    sim.noteWrite("fault", "rng");
    const double u = rng.uniform();
    if (classDisabled(FaultClass::dvfs)) {
        ++faultStats.suppressed;
        return DvfsFaultAction::allow;
    }
    if (u < fp.dvfsDenyProb) {
        ++faultStats.dvfsDenied;
        return DvfsFaultAction::deny;
    }
    if (u < fp.dvfsDenyProb + fp.dvfsDelayProb) {
        ++faultStats.dvfsDelayed;
        return DvfsFaultAction::delay;
    }
    return DvfsFaultAction::allow;
}

void
FaultInjector::start()
{
    if (!fp.enabled)
        return;
    if (!gatesInstalled &&
        (fp.dvfsDenyProb > 0.0 || fp.dvfsDelayProb > 0.0)) {
        for (std::size_t i = 0; i < plat.clusterCount(); ++i) {
            plat.cluster(i).freqDomain().setFaultGate(
                [this](FreqKHz) { return gateDecision(); },
                fp.dvfsExtraLatency);
        }
        gatesInstalled = true;
    }
    if (drawTask == nullptr) {
        drawTask = &sim.addPeriodic(
            fp.drawPeriod, [this](Tick now) { draw(now); },
            EventPriority::deferred, "fault.draw");
    }
    drawTask->start();
}

void
FaultInjector::stop()
{
    if (drawTask != nullptr)
        drawTask->cancel();
    if (gatesInstalled) {
        for (std::size_t i = 0; i < plat.clusterCount(); ++i)
            plat.cluster(i).freqDomain().setFaultGate(nullptr);
        gatesInstalled = false;
    }
}

void
FaultInjector::disableClass(FaultClass cls)
{
    disabledMask |= (1u << static_cast<std::uint32_t>(cls));
    warn("fault: class %s disabled", faultClassName(cls));
}

void
FaultInjector::reseed(std::uint64_t seed)
{
    // Applied at a chunk boundary (a serialization point, no event in
    // flight), so no abrace note is needed here.
    rng.seed(seed);
}

void
FaultInjector::draw(Tick now)
{
    // The draw consumes the injector's rng and may mutate topology,
    // thermal state, or task backlogs; any same-priority peer event
    // touching those cells would race with it.
    sim.noteWrite("fault", "rng");
    const double dt = ticksToSeconds(fp.drawPeriod);
    if (rng.chance(fp.hotplugRatePerSec * dt))
        injectHotplug();
    if (rng.chance(fp.thermalSpikeRatePerSec * dt))
        injectThermalSpike();
    if (rng.chance(fp.taskStallRatePerSec * dt))
        injectTaskStall();
    // New classes guard on rate > 0 before drawing so zero-rate
    // profiles (every pre-crash config) keep their exact historical
    // draw sequence.
    if (fp.crashRatePerSec > 0.0 && rng.chance(fp.crashRatePerSec * dt))
        injectCrash(now);
    if (fp.invariantBreakRatePerSec > 0.0 &&
        rng.chance(fp.invariantBreakRatePerSec * dt))
        injectInvariantBreak(now);
    checkPersistentCrash(now);
}

void
FaultInjector::injectHotplug()
{
    // Pick a random online core; the platform's hotplug rules (boot
    // core, last little core) and a failed evacuation turn the fault
    // into a counted rejection rather than a crash.
    std::vector<CoreId> online;
    for (const Core *core : plat.cores()) {
        if (core->online())
            online.push_back(core->id());
    }
    if (online.empty())
        return;
    const CoreId id =
        online[rng.uniformInt(0, online.size() - 1)];
    // Disabled classes consume the same draws (above) and then bail,
    // so quarantining one class never reshuffles the others.
    if (classDisabled(FaultClass::hotplug)) {
        ++faultStats.suppressed;
        return;
    }
    // Evacuate first (a busy core is legal to unplug once drained);
    // if the platform then refuses - boot core, last little core -
    // the displaced tasks simply rebalance back.
    const Result<std::size_t> moved = sched.evacuateCore(id);
    if (!moved.ok()) {
        ++faultStats.hotplugRejected;
        return;
    }
    sim.noteWrite(plat.core(id).name(), "online");
    const Status off = plat.setCoreOnline(id, false);
    if (!off.ok()) {
        ++faultStats.hotplugRejected;
        return;
    }
    ++faultStats.hotplugOff;
    debugLog("fault: core %u offline for %llu ms", id,
             static_cast<unsigned long long>(
                 ticksToMs(fp.hotplugDownTime)));
    sim.after(fp.hotplugDownTime, [this, id] {
        sim.noteWrite(plat.core(id).name(), "online");
        if (plat.setCoreOnline(id, true).ok())
            ++faultStats.hotplugOn;
    }, EventPriority::faultReplug, "fault.replug");
}

void
FaultInjector::injectThermalSpike()
{
    if (throttles.empty())
        return;
    ThermalThrottle *throttle =
        throttles[rng.uniformInt(0, throttles.size() - 1)];
    if (classDisabled(FaultClass::thermal)) {
        ++faultStats.suppressed;
        return;
    }
    throttle->injectTemperature(fp.thermalSpikeC);
    ++faultStats.thermalSpikes;
}

void
FaultInjector::injectTaskStall()
{
    // A stalled thread re-executes work (lock contention, a retried
    // frame): model it as a burst of extra instructions on a random
    // unpinned task that already has work in flight.  Sleeping tasks
    // are skipped - waking one from outside its workload would fire
    // its drain listener a second time and corrupt the workload's
    // outstanding-burst bookkeeping.
    const auto &tasks = sched.tasks();
    if (tasks.empty())
        return;
    const std::size_t start = rng.uniformInt(0, tasks.size() - 1);
    if (classDisabled(FaultClass::taskStall)) {
        ++faultStats.suppressed;
        return;
    }
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        Task &task = *tasks[(start + i) % tasks.size()];
        if (task.state() == TaskState::sleeping ||
            task.state() == TaskState::finished || task.pinnedCore())
            continue;
        task.submitWork(fp.taskStallInstructions);
        ++faultStats.taskStalls;
        return;
    }
}

void
FaultInjector::injectCrash(Tick now)
{
    // A transient unrecoverable fault on a random online core: a
    // retry with a reseeded stream usually dodges it, so this is the
    // class the supervisor's rollback-retry rung exists for.
    std::vector<CoreId> online;
    for (const Core *core : plat.cores()) {
        if (core->online())
            online.push_back(core->id());
    }
    if (online.empty())
        return;
    const CoreId id = online[rng.uniformInt(0, online.size() - 1)];
    if (classDisabled(FaultClass::crash)) {
        ++faultStats.suppressed;
        return;
    }
    if (pendingCrash.armed)
        return;
    pendingCrash.armed = true;
    pendingCrash.at = now;
    pendingCrash.core = id;
    pendingCrash.persistent = false;
    ++faultStats.crashes;
    warn("fault: unrecoverable fault on core %u at tick %llu", id,
         static_cast<unsigned long long>(now));
}

void
FaultInjector::checkPersistentCrash(Tick now)
{
    // The deterministically failing core: every draw past the onset
    // tick re-raises the fault while the core is online, whatever the
    // rng stream says — only quarantining the core (or disabling the
    // class) silences it.
    if (fp.persistentCrashAt == 0 || now < fp.persistentCrashAt)
        return;
    if (classDisabled(FaultClass::crash))
        return;
    if (pendingCrash.armed)
        return;
    const CoreId id = fp.persistentCrashCore;
    if (id == invalidCoreId || id >= plat.cores().size())
        return;
    if (!plat.core(id).online())
        return;
    pendingCrash.armed = true;
    pendingCrash.at = now;
    pendingCrash.core = id;
    pendingCrash.persistent = true;
    ++faultStats.crashes;
    warn("fault: persistent fault on core %u at tick %llu", id,
         static_cast<unsigned long long>(now));
}

void
FaultInjector::injectInvariantBreak(Tick now)
{
    if (classDisabled(FaultClass::invariantBreak)) {
        ++faultStats.suppressed;
        return;
    }
    if (!violationSink)
        return;
    ++faultStats.invariantBreaks;
    violationSink("injected invariant break at tick " +
                  std::to_string(now));
}

void
FaultInjector::serialize(Serializer &s) const
{
    rng.serialize(s);
    s.putU64(faultStats.hotplugOff);
    s.putU64(faultStats.hotplugOn);
    s.putU64(faultStats.hotplugRejected);
    s.putU64(faultStats.dvfsDenied);
    s.putU64(faultStats.dvfsDelayed);
    s.putU64(faultStats.thermalSpikes);
    s.putU64(faultStats.taskStalls);
    s.putU64(faultStats.crashes);
    s.putU64(faultStats.invariantBreaks);
    s.putU64(faultStats.suppressed);
}

void
FaultInjector::deserialize(Deserializer &d)
{
    rng.deserialize(d);
    faultStats.hotplugOff = d.getU64();
    faultStats.hotplugOn = d.getU64();
    faultStats.hotplugRejected = d.getU64();
    faultStats.dvfsDenied = d.getU64();
    faultStats.dvfsDelayed = d.getU64();
    faultStats.thermalSpikes = d.getU64();
    faultStats.taskStalls = d.getU64();
    faultStats.crashes = d.getU64();
    faultStats.invariantBreaks = d.getU64();
    faultStats.suppressed = d.getU64();
}

} // namespace biglittle
