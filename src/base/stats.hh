/**
 * @file
 * Streaming summary statistics.
 *
 * RunningStats accumulates count/mean/variance/min/max in O(1) space
 * (Welford's algorithm).  SampleSeries additionally stores samples so
 * percentiles can be queried; it is used for frame-time and latency
 * distributions where min-FPS / tail behavior matters.
 */

#ifndef BIGLITTLE_BASE_STATS_HH
#define BIGLITTLE_BASE_STATS_HH

#include <cstddef>
#include <vector>

namespace biglittle
{

/** Constant-space mean/variance/min/max accumulator. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    /** Remove all observations. */
    void reset();

    std::size_t count() const { return n; }
    bool empty() const { return n == 0; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Population variance; 0 when fewer than 2 samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; 0 when empty. */
    double min() const;

    /** Largest observation; 0 when empty. */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return total; }

  private:
    std::size_t n = 0;
    double meanAcc = 0.0;
    double m2 = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
    double total = 0.0;
};

/** Sample-retaining series supporting percentile queries. */
class SampleSeries
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Remove all observations. */
    void reset();

    std::size_t count() const { return samples.size(); }
    bool empty() const { return samples.empty(); }

    double mean() const { return summary.mean(); }
    double min() const { return summary.min(); }
    double max() const { return summary.max(); }
    double stddev() const { return summary.stddev(); }
    double sum() const { return summary.sum(); }

    /**
     * Percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Median (50th percentile). */
    double median() const { return percentile(50.0); }

    /** Read-only access to raw samples (unsorted insertion order). */
    const std::vector<double> &values() const { return samples; }

  private:
    std::vector<double> samples;
    mutable std::vector<double> sorted;
    mutable bool sortedValid = false;
    RunningStats summary;
};

} // namespace biglittle

#endif // BIGLITTLE_BASE_STATS_HH
