/**
 * @file
 * ablint: the repo's determinism & error-discipline linter.
 *
 * A deliberately small static-analysis pass over src/ and tests/
 * that moves the guarantees PR 2 established at runtime (bit-exact
 * replay, attributable snapshots) to lint time:
 *
 *  - wall-clock      no rand()/random_device/time()/argless chrono
 *                    clocks outside the allowlisted wall-clock
 *                    module (snapshot/watchdog) and inline-justified
 *                    sites;
 *  - unordered-iter  no unordered_map/unordered_set in stateful sim
 *                    code (src/), where iteration order can leak
 *                    into event ordering;
 *  - static-mutable  no mutable `static` state in sim code;
 *  - void-discard    no `(void)` / static_cast<void> laundering of
 *                    a call's return value in src/ (Status/Result
 *                    are [[nodiscard]]; handle them for real);
 *  - serialize-pair  every class declaring serialize()/
 *                    serializePolicy()/serializeState() declares the
 *                    matching deserialize flavor;
 *  - serialize-registry  every serializable class is registered in
 *                    tools/ablint/serialized_state.txt against the
 *                    checkpoint section (or covering parent) that
 *                    captures it, so new state cannot silently
 *                    escape snapshots;
 *  - config-key      every config key string compared against `key`
 *                    in src/ is documented in EXPERIMENTS.md or a
 *                    markdown file under docs/.
 *
 * On top of the token-scan rules sits absema, a semantic pass over a
 * parsed entity model of src/ (classes + data members, function
 * definitions, a call graph, an #include graph - see model.hh):
 *
 *  - serialize-coverage  every plain-value data member of a class in
 *                    serialized_state.txt is referenced by both
 *                    serialize() and deserialize(), and the two
 *                    bodies emit/consume the same wire-op sequence;
 *  - schema-drift    the per-class field-schema digests committed in
 *                    tools/ablint/state_schema.txt match the code,
 *                    and field changes come with a checkpointVersion
 *                    bump (regenerate via `ablint --write-schema`);
 *  - fatal-reach     no fatal() call is transitively reachable from
 *                    the post-init entry points (Experiment::runApp,
 *                    Supervisor::runApp) through the call graph;
 *  - rng-stream      every Rng constructed with an explicit seed in
 *                    sim code traces that seed to deriveStreamSeed()
 *                    / namedStream() / fork();
 *  - layer-cycle     the #include graph respects the layer order of
 *                    src/ (docs/STATIC_ANALYSIS.md) and is acyclic;
 *  - stale-allow     an inline allow directive that no longer
 *                    suppresses anything is itself a finding.
 *
 * On top of absema sits abflow (flow.hh), an intraprocedural def-use
 * engine over function bodies composed bottom-up over the call graph
 * via per-function summaries (param-in -> return/sink-out):
 *
 *  - taint-bound     interprocedural taint from untrusted decode
 *                    surfaces (raw Deserializer::getU64-family
 *                    reads, config/argv numeric parses) to
 *                    allocation-size, loop-bound and index sinks,
 *                    sanitized by getCount()/clamp comparisons;
 *                    supersedes the one-file lexical deser-bound
 *                    across call boundaries (overlapping findings
 *                    are deduplicated in its favor);
 *  - unit-mix        a unit-domain lattice (Tick/ns, ms, us, s,
 *                    kHz, Hz, dimensionless) seeded from
 *                    src/base/types.hh typedefs, the conversion
 *                    helpers and _ms/_us/_khz naming, flagging
 *                    cross-domain add/subtract/compare and argument
 *                    passing without a conversion call;
 *  - status-drop     a Status/Result local that is assigned and
 *                    then overwritten, or dies, without ever being
 *                    branched on, propagated, or logged.
 *
 * Suppression: `// ablint:allow(rule[,rule]): why` on the violating
 * line or the line directly above it, or a checked-in baseline file
 * (tools/ablint/baseline.txt) of `path:line:rule` entries.  Baseline
 * entries that no longer match anything (moved line, fixed code,
 * deleted file) are themselves reported as `stale-baseline`, so the
 * baseline can only shrink.
 *
 * The tool is standalone (no dependency on the simulation libraries)
 * so it can never be broken by the code it checks.
 */

#ifndef BIGLITTLE_TOOLS_ABLINT_HH
#define BIGLITTLE_TOOLS_ABLINT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace biglittle::ablint
{

/** Lexical class of one token. */
enum class TokKind
{
    identifier,
    number,
    str, ///< string literal, text is the (unescaped) raw body
    chr, ///< character literal
    punct, ///< single punctuation character
};

/** One token with its 1-based source line. */
struct Token
{
    TokKind kind;
    std::string text;
    int line = 0;
};

/** One `ablint:allow(...)` comment, for stale-allow accounting. */
struct AllowDirective
{
    int line = 0; ///< line the comment starts on
    std::set<std::string> rules;
};

/** A lexed translation unit plus its suppression directives. */
struct LexedFile
{
    /** Repo-relative path with forward slashes. */
    std::string path;

    std::vector<Token> tokens;

    /**
     * Rules allowed per line: an `ablint:allow(r1,r2)` comment on
     * line N grants {r1,r2} on lines N and N+1 (so the directive
     * can sit above the violating statement).
     */
    std::map<int, std::set<std::string>> allows;

    /** Every allow directive, one entry per comment. */
    std::vector<AllowDirective> directives;

    /** Total number of source lines (for baseline staleness). */
    int lineCount = 0;

    /** True for files under tests/ (some rules are src-only). */
    bool isTest = false;
};

/** Lex @p text as file @p path (no filesystem access). */
LexedFile lexString(const std::string &path, const std::string &text);

/** One rule violation. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;

    /** "file:line: error: [rule] message" */
    std::string format() const;

    /** "::error file=...,line=...,title=...::..." (CI annotation). */
    std::string formatGithub() const;

    /** One JSON object: {"file":...,"line":...,"rule":...,...}. */
    std::string formatJson() const;
};

/** Everything the rule pass needs, filesystem-free for testing. */
struct ScanInput
{
    std::vector<LexedFile> files;

    /** Concatenated EXPERIMENTS.md + docs markdown (config-key). */
    std::string docsText;

    /** tools/ablint/serialized_state.txt contents. */
    std::string registryText;

    /** tools/ablint/state_schema.txt contents (schema-drift). */
    std::string schemaText;
};

/**
 * Which inline allows actually suppressed something:
 * (file, suppressed-finding line) -> rules used there.  Fed by the
 * rule passes, consumed by staleAllowFindings().
 */
using AllowUse =
    std::map<std::pair<std::string, int>, std::set<std::string>>;

/**
 * Per-rule wall time in milliseconds, keyed by rule name (plus the
 * "model-build" entry for the shared entity-model parse).  Filled by
 * the rule passes when non-null; rendered by `ablint --profile`.
 */
using RuleProfile = std::map<std::string, double>;

/**
 * Run the lexical (token-scan) rules; findings already filtered by
 * inline allows.  When @p uses is non-null, records which allows
 * fired (for stale-allow).  When @p profile is non-null, accumulates
 * per-rule wall time.
 */
std::vector<Finding> runRules(const ScanInput &in,
                              AllowUse *uses = nullptr,
                              RuleProfile *profile = nullptr);

/**
 * Run the semantic (entity-model) rules: serialize-coverage,
 * schema-drift, fatal-reach, rng-stream, layer-cycle.  Builds the
 * model (tools/ablint/model.hh) from @p in internally and feeds the
 * same Finding / inline-allow machinery as runRules().
 */
std::vector<Finding> runSemaRules(const ScanInput &in,
                                  AllowUse *uses = nullptr,
                                  RuleProfile *profile = nullptr);

/**
 * Run the dataflow (abflow) rules: taint-bound, unit-mix,
 * status-drop.  Builds the flow model (tools/ablint/flow.hh) from
 * @p in internally; same Finding / inline-allow machinery as the
 * other passes.
 */
std::vector<Finding> runFlowRules(const ScanInput &in,
                                  AllowUse *uses = nullptr,
                                  RuleProfile *profile = nullptr);

/**
 * The stale-allow rule: every `ablint:allow` directive whose rule
 * suppressed nothing in @p uses (and every directive naming an
 * unknown rule) is itself a finding.
 */
std::vector<Finding> staleAllowFindings(const ScanInput &in,
                                        const AllowUse &uses);

/**
 * runRules + runSemaRules + runFlowRules + staleAllowFindings,
 * sorted.  Overlap dedupe: a lexical `deser-bound` finding on a
 * file:line where interprocedural `taint-bound` also fired is
 * dropped in favor of the flow finding.
 */
std::vector<Finding> runAllRules(const ScanInput &in,
                                 RuleProfile *profile = nullptr);

/**
 * Render the state-schema manifest (tools/ablint/state_schema.txt):
 * the current checkpointVersion plus one fnv1a64 field digest per
 * registered serialized class, sorted by class name.  Deterministic,
 * so CI can regenerate and diff.
 */
std::string renderSchemaManifest(const ScanInput &in);

/**
 * Guard for --write-schema: returns an error message (and the
 * regeneration must be refused) when the committed manifest was
 * written at the *current* checkpointVersion yet class digests
 * changed - the caller must bump checkpointVersion first.  Empty
 * string means regeneration is fine.
 */
std::string schemaRegenBlocked(const ScanInput &in);

/**
 * Apply the baseline: drop findings matched by a `path:line:rule`
 * entry; append a `stale-baseline` finding for every entry that
 * matched nothing or references a line past the end of its file.
 */
std::vector<Finding> applyBaseline(const std::vector<Finding> &raw,
                                   const std::string &baselineText,
                                   const std::string &baselinePath,
                                   const ScanInput &in);

/** Names of all rules, for --list-rules and directive validation. */
const std::vector<std::string> &ruleNames();

/**
 * Lex src/ and tests/ (plus @p extraPaths) of a repo checkout and
 * load the docs corpus, the serialization registry and the schema
 * manifest.  I/O failures throw std::runtime_error.
 */
ScanInput loadRepo(const std::string &repoRoot,
                   const std::string &registryPath,
                   const std::string &schemaPath,
                   const std::vector<std::string> &extraPaths);

/**
 * Scan a repo checkout: loadRepo(), then every rule pass (lexical +
 * semantic + stale-allow) and the baseline.  Returns the final
 * findings; I/O failures throw std::runtime_error.
 */
std::vector<Finding> runOnRepo(const std::string &repoRoot,
                               const std::string &baselinePath,
                               const std::string &registryPath,
                               const std::string &schemaPath,
                               const std::vector<std::string> &extraPaths,
                               RuleProfile *profile = nullptr);

} // namespace biglittle::ablint

#endif // BIGLITTLE_TOOLS_ABLINT_HH
