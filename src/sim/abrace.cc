#include "sim/abrace.hh"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "sim/event.hh"

namespace biglittle
{

namespace
{

/** Exact match, or prefix match when @p pattern ends in '*'. */
bool
globMatch(const std::string &pattern, const std::string &text)
{
    if (!pattern.empty() && pattern.back() == '*') {
        const std::size_t n = pattern.size() - 1;
        return text.compare(0, n, pattern, 0, n) == 0;
    }
    return pattern == text;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

const char *
mode(bool write)
{
    return write ? "WRITE" : "READ ";
}

} // namespace

std::string
RaceDetector::Conflict::key() const
{
    // Canonical (sorted) event order so the key is stable regardless
    // of which side happened to be serviced first.
    const std::string &lo = std::min(eventA, eventB);
    const std::string &hi = std::max(eventA, eventB);
    return lo + "|" + hi + "|" + cell;
}

std::string
RaceDetector::Conflict::describe() const
{
    std::ostringstream os;
    os << "abrace: same-tick event order conflict ("
       << (writeA && writeB ? "write-write" : "read-write") << ")\n"
       << "  tick " << tick << " priority " << priority
       << ", contested state '" << cell << "'\n"
       << "  event '" << eventA << "' " << mode(writeA) << " ("
       << provenanceA << ")\n"
       << "  event '" << eventB << "' " << mode(writeB) << " ("
       << provenanceB << ")\n"
       << "  seen " << count << " time(s); service order between these"
       << " events is an arbitrary tie-break.\n"
       << "  Fix: give the handlers distinct EventPriority values"
       << " (docs/DETERMINISM.md), or if the accesses\n"
       << "  are provably commutative, suppress with"
       << " RaceDetector::allow() or a baseline line:\n"
       << "    " << key() << "\n";
    return os.str();
}

void
RaceDetector::noteRead(std::string_view component,
                       std::string_view field)
{
    note(component, field, false);
}

void
RaceDetector::noteWrite(std::string_view component,
                        std::string_view field)
{
    note(component, field, true);
}

void
RaceDetector::note(std::string_view component, std::string_view field,
                   bool write)
{
    // Accesses outside any event handler (setup, teardown, direct
    // calls from the driver loop) have no same-tick peer to race
    // with; ignore them so components can note unconditionally.
    if (!inEvent)
        return;
    std::string cell;
    cell.reserve(component.size() + 1 + field.size());
    cell.append(component);
    cell.push_back('/');
    cell.append(field);
    Access &a = current.cells[std::move(cell)];
    if (write)
        a.write = true;
    else
        a.read = true;
}

void
RaceDetector::allow(std::string_view eventA, std::string_view eventB,
                    std::string_view cell)
{
    allowRules.push_back(AllowRule{std::string(eventA),
                                   std::string(eventB),
                                   std::string(cell)});
}

void
RaceDetector::loadBaselineText(const std::string &text)
{
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t p1 = line.find('|');
        const std::size_t p2 =
            p1 == std::string::npos ? std::string::npos
                                    : line.find('|', p1 + 1);
        if (p2 == std::string::npos) {
            warn("abrace baseline: ignoring malformed line '%s'",
                 line.c_str());
            continue;
        }
        allow(trim(line.substr(0, p1)),
              trim(line.substr(p1 + 1, p2 - p1 - 1)),
              trim(line.substr(p2 + 1)));
    }
}

Status
RaceDetector::loadBaseline(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return notFound("abrace baseline not readable: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    loadBaselineText(buf.str());
    return okStatus();
}

void
RaceDetector::onScheduled(const Event &event, Tick now)
{
    std::ostringstream os;
    if (inEvent)
        os << "scheduled during '" << current.name << "' at tick "
           << now;
    else
        os << "scheduled at tick " << now << " (outside any event)";
    pendingProvenance[event.sequenceNumber()] = os.str();
    if (inEvent)
        pendingParent[event.sequenceNumber()] = current.sequence;
}

void
RaceDetector::onDescheduled(const Event &event)
{
    pendingProvenance.erase(event.sequenceNumber());
    pendingParent.erase(event.sequenceNumber());
}

void
RaceDetector::beginEvent(const ServicedEvent &event)
{
    BL_ASSERT(!inEvent);
    if (batchOpen &&
        (event.when != batchTick || event.priority != batchPriority))
        analyzeBatch();
    if (!batchOpen) {
        batchOpen = true;
        batchTick = event.when;
        batchPriority = event.priority;
    }

    inEvent = true;
    current = Record{};
    current.name = event.name;
    current.sequence = event.sequence;
    auto provIt = pendingProvenance.find(event.sequence);
    if (provIt != pendingProvenance.end()) {
        current.provenance = provIt->second;
        pendingProvenance.erase(provIt);
    } else {
        current.provenance = "schedule site unknown";
    }
    auto parIt = pendingParent.find(event.sequence);
    if (parIt != pendingParent.end()) {
        batchParent[event.sequence] = parIt->second;
        pendingParent.erase(parIt);
    }
}

void
RaceDetector::endEvent()
{
    BL_ASSERT(inEvent);
    inEvent = false;
    if (!current.cells.empty()) {
        ++tracked;
        batch.push_back(std::move(current));
    }
    current = Record{};
}

void
RaceDetector::finish()
{
    BL_ASSERT(!inEvent);
    if (batchOpen)
        analyzeBatch();
}

bool
RaceDetector::isAncestor(std::uint64_t ancestorSeq,
                         std::uint64_t seq) const
{
    // Walk the schedule-parent chain within this batch.  The chain is
    // short (it can only grow within one batch) and acyclic (a parent
    // always has a smaller sequence number than its child).
    auto it = batchParent.find(seq);
    while (it != batchParent.end()) {
        if (it->second == ancestorSeq)
            return true;
        it = batchParent.find(it->second);
    }
    return false;
}

bool
RaceDetector::allowed(const std::string &a, const std::string &b,
                      const std::string &cell) const
{
    for (const AllowRule &rule : allowRules) {
        const bool pairMatch =
            (globMatch(rule.a, a) && globMatch(rule.b, b)) ||
            (globMatch(rule.a, b) && globMatch(rule.b, a));
        if (pairMatch && globMatch(rule.cell, cell))
            return true;
    }
    return false;
}

void
RaceDetector::analyzeBatch()
{
    batchOpen = false;
    if (batch.size() > 1) {
        ++batches;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            for (std::size_t j = i + 1; j < batch.size(); ++j) {
                const Record &a = batch[i];
                const Record &b = batch[j];
                // An event scheduled (transitively) by another batch
                // member is causally ordered after it: not a race.
                if (isAncestor(a.sequence, b.sequence) ||
                    isAncestor(b.sequence, a.sequence))
                    continue;
                // Walk the smaller access set, probe the larger.
                const Record &probe =
                    a.cells.size() <= b.cells.size() ? a : b;
                const Record &other = (&probe == &a) ? b : a;
                for (const auto &[cell, pa] : probe.cells) {
                    auto it = other.cells.find(cell);
                    if (it == other.cells.end())
                        continue;
                    const Access &oa = it->second;
                    // Read-read is commutative; anything with a
                    // write on either side is order-sensitive.
                    if (!pa.write && !oa.write)
                        continue;
                    const bool probeIsA = (&probe == &a);
                    Conflict c;
                    c.tick = batchTick;
                    c.priority = batchPriority;
                    c.eventA = a.name;
                    c.eventB = b.name;
                    c.cell = cell;
                    c.writeA = probeIsA ? pa.write : oa.write;
                    c.writeB = probeIsA ? oa.write : pa.write;
                    c.provenanceA = a.provenance;
                    c.provenanceB = b.provenance;
                    if (allowed(c.eventA, c.eventB, c.cell)) {
                        ++suppressed;
                        continue;
                    }
                    const std::string k = c.key();
                    auto found_it = foundIndex.find(k);
                    if (found_it != foundIndex.end()) {
                        ++found[found_it->second].count;
                    } else {
                        foundIndex.emplace(k, found.size());
                        found.push_back(std::move(c));
                    }
                }
            }
        }
    }
    batch.clear();
    batchParent.clear();
}

std::string
RaceDetector::report() const
{
    if (found.empty())
        return "";
    std::ostringstream os;
    for (const Conflict &c : found)
        os << c.describe() << "\n";
    os << "abrace: " << found.size() << " distinct conflict(s), "
       << suppressed << " occurrence(s) suppressed, " << batches
       << " multi-event batch(es) analyzed, " << tracked
       << " event(s) tracked\n";
    return os.str();
}

} // namespace biglittle
