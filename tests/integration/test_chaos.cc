/**
 * @file
 * Chaos smoke test: full app runs under randomized (but seeded)
 * fault schedules.  Whatever the injector throws at the system -
 * hotplugged cores, denied DVFS transitions, thermal-sensor spikes,
 * stalled tasks - every simulation invariant must hold and no run
 * may abort.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

AppSpec
shortApp(AppSpec app, Tick duration = msToTicks(2000))
{
    app.duration = duration;
    return app;
}

} // namespace

TEST(Chaos, TenSeedsZeroInvariantViolations)
{
    std::uint64_t injected = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        ExperimentConfig cfg;
        cfg.fault = scaledFaultParams(2.0, seed);
        cfg.label = "chaos";
        const AppRunResult r =
            Experiment(cfg).runApp(shortApp(eternityWarrior2App()));
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.invariantViolations, 0u) << "seed " << seed;
        injected += r.faults.totalInjected();
    }
    // The sweep only means something if faults actually landed.
    EXPECT_GT(injected, 0u);
}

TEST(Chaos, LatencyAppSurvivesFaults)
{
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        ExperimentConfig cfg;
        cfg.fault = scaledFaultParams(1.0, seed);
        cfg.maxSimTime = msToTicks(60000);
        const AppRunResult r =
            Experiment(cfg).runApp(pdfReaderApp());
        EXPECT_TRUE(r.completed) << "seed " << seed;
        EXPECT_EQ(r.invariantViolations, 0u) << "seed " << seed;
        EXPECT_GT(r.latency, 0u);
    }
}

TEST(Chaos, HighFaultRateStillHoldsInvariants)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(8.0, 77);
    const AppRunResult r =
        Experiment(cfg).runApp(shortApp(videoPlayerApp()));
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.invariantViolations, 0u);
    EXPECT_GT(r.faults.totalInjected(), 0u);
}

TEST(Chaos, FaultRunsAreDeterministic)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(2.0, 5);
    const AppRunResult a =
        Experiment(cfg).runApp(shortApp(angryBirdApp()));
    const AppRunResult b =
        Experiment(cfg).runApp(shortApp(angryBirdApp()));
    EXPECT_EQ(a.avgFps, b.avgFps);
    EXPECT_EQ(a.faults.hotplugOff, b.faults.hotplugOff);
    EXPECT_EQ(a.faults.dvfsDenied, b.faults.dvfsDenied);
    EXPECT_EQ(a.faults.thermalSpikes, b.faults.thermalSpikes);
    EXPECT_EQ(a.faults.taskStalls, b.faults.taskStalls);
    EXPECT_EQ(a.energy.totalMj(), b.energy.totalMj());
}

TEST(Chaos, FaultFreeBaselineIsUnperturbed)
{
    // A disabled fault config must not change results at all.
    ExperimentConfig plain;
    ExperimentConfig with_knob;
    with_knob.fault = scaledFaultParams(0.0);
    const AppSpec app = shortApp(videoPlayerApp());
    const AppRunResult a = Experiment(plain).runApp(app);
    const AppRunResult b = Experiment(with_knob).runApp(app);
    EXPECT_EQ(a.avgFps, b.avgFps);
    EXPECT_EQ(a.energy.totalMj(), b.energy.totalMj());
    EXPECT_EQ(b.faults.totalInjected(), 0u);
    EXPECT_EQ(b.invariantViolations, 0u);
}
