/**
 * @file
 * absema's entity model: a cross-declaration view of the lexed
 * sources that the semantic rules (sema_rules.cc) reason over.
 *
 * buildModel() parses the token streams produced by lexString() into
 *
 *  - classes with their non-static data members (name, declared
 *    type, line) - nested classes carry qualified names;
 *  - function definitions, both free and member (in-class or
 *    out-of-line `Cls::method(...) { ... }`), each with its body
 *    token range and the ordered list of names it calls;
 *  - the `#include "..."` graph of the scanned files.
 *
 * Same zero-dependency philosophy as the lexer: no libclang, no
 * preprocessing.  The parser is a scope-stack walk tuned to this
 * codebase's idiom; its known blind spots (macro-generated members,
 * function-try-blocks, exotic operator definitions) are documented
 * in docs/STATIC_ANALYSIS.md.  Preprocessor directive lines
 * (including multi-line #define continuations) are skipped, with
 * `#include` targets harvested on the way past.
 */

#ifndef BIGLITTLE_TOOLS_ABLINT_MODEL_HH
#define BIGLITTLE_TOOLS_ABLINT_MODEL_HH

#include "ablint.hh"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace biglittle::ablint
{

/** One non-static (unless flagged) data member of a class. */
struct Member
{
    std::string name;

    /**
     * Declared type as token text ("std :: uint64_t" style spacing),
     * including array extents, excluding initializers and the
     * static/mutable/inline specifiers.
     */
    std::string type;

    int line = 0;
    bool isStatic = false; ///< static or constexpr member
};

/** A class/struct definition. */
struct ClassInfo
{
    std::string name; ///< last component ("Inner")
    std::string qualName; ///< enclosing classes joined ("Outer::Inner")
    const LexedFile *file = nullptr;
    int line = 0;
    std::vector<Member> members;
};

/** A function definition (one with a body). */
struct FunctionDef
{
    std::string name; ///< last component ("serialize")
    std::string qualName; ///< "Task::serialize" / free-function name
    const LexedFile *file = nullptr;
    int line = 0;

    /** Body token range [bodyBegin, bodyEnd) into file->tokens. */
    std::size_t bodyBegin = 0;
    std::size_t bodyEnd = 0;

    /**
     * Parameter-list token range [paramBegin, paramEnd) into
     * file->tokens: the tokens between the declaration's '(' and
     * its matching ')'.  Empty range for `()`.
     */
    std::size_t paramBegin = 0;
    std::size_t paramEnd = 0;

    /** First token of the declaration (return type onward). */
    std::size_t headBegin = 0;

    /** Callee names (last component), in body order. */
    std::vector<std::string> calls;
};

/** One `#include "..."` edge. */
struct IncludeEdge
{
    const LexedFile *file = nullptr;
    int line = 0;
    std::string target; ///< the quoted path, e.g. "sched/hmp.hh"
};

/** The parsed entity model of a ScanInput. */
struct Model
{
    std::vector<ClassInfo> classes;
    std::vector<FunctionDef> functions;
    std::vector<IncludeEdge> includes;

    /** Function indices by last-component name. */
    std::map<std::string, std::vector<std::size_t>> functionsByName;

    /**
     * Class by exact qualified name, else by unique last component;
     * nullptr when unknown or ambiguous-and-absent.
     */
    const ClassInfo *findClass(const std::string &name) const;
};

/** Parse every file of @p files into one model. */
Model buildModel(const std::vector<LexedFile> &files);

/** fnv1a64 of @p text (schema digests; stable across platforms). */
std::uint64_t fnv1a64(const std::string &text);

} // namespace biglittle::ablint

#endif // BIGLITTLE_TOOLS_ABLINT_MODEL_HH
