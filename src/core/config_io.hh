/**
 * @file
 * Textual (de)serialization of ExperimentConfig: a small key=value
 * format so experimental conditions can be stored in files, shared,
 * and passed to the bench binaries and examples with `--config`.
 *
 * Format: one `key = value` pair per line; `#` starts a comment;
 * blank lines ignored.  Unknown keys are fatal (typos must not
 * silently change an experiment).  Example:
 *
 *   # Section VI-C point: 60 ms sampling
 *   governor = interactive
 *   interactive.sampling_ms = 60
 *   interactive.target_load = 70
 *   sched.up_threshold = 700
 *   sched.down_threshold = 256
 *   sched.half_life_ms = 32
 *   cores.little = 4
 *   cores.big = 4
 *   thermal.enabled = true
 *   label = interval-60ms
 */

#ifndef BIGLITTLE_CORE_CONFIG_IO_HH
#define BIGLITTLE_CORE_CONFIG_IO_HH

#include <string>

#include "core/experiment.hh"

namespace biglittle
{

/** Parse a governor name ("interactive", "powersave", ...). */
GovernorKind governorKindFromName(const std::string &name);

/**
 * Parse a config from key=value text.  Starts from the default
 * ExperimentConfig; unknown keys or malformed values are fatal().
 */
ExperimentConfig parseExperimentConfig(const std::string &text);

/** Load a config file; fatal() if unreadable. */
ExperimentConfig loadExperimentConfig(const std::string &path);

/**
 * Serialize a config to the same key=value text (only keys the
 * format covers; platform params are always the Exynos 5422 model).
 * parse(save(cfg)) reproduces cfg for those fields.
 */
std::string saveExperimentConfig(const ExperimentConfig &config);

/** Write saveExperimentConfig() output to a file. */
void writeExperimentConfig(const ExperimentConfig &config,
                           const std::string &path);

} // namespace biglittle

#endif // BIGLITTLE_CORE_CONFIG_IO_HH
