/**
 * @file
 * Fig. 4: latency reduction vs power increase of 4 big cores over
 * 4 little cores for the seven latency-oriented apps.
 *
 * Expected shape (Section III-A): unlike SPEC, the gains are modest
 * (< ~30% latency reduction) because the apps leave cores idle most
 * of the time; the power increase stays below ~47%.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig04_latency_apps",
                   "Fig. 4: 4 big vs 4 little, latency apps");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "latency_little_ms", "latency_big_ms",
                     "latency_reduction_pct", "power_little_mw",
                     "power_big_mw", "power_increase_pct"});
    }

    const auto apps = latencyApps();
    const auto little = runApps(littleOnlyConfig(), apps);
    const auto big = runApps(bigOnlyConfig(), apps);

    std::printf("%s\n",
                (padRight("app", 16) + padLeft("lat little", 12) +
                 padLeft("lat big", 12) + padLeft("lat -%", 9) +
                 padLeft("pwr little", 12) + padLeft("pwr big", 10) +
                 padLeft("pwr +%", 9))
                    .c_str());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double lat_l = static_cast<double>(little[i].latency) /
                             static_cast<double>(oneMs);
        const double lat_b = static_cast<double>(big[i].latency) /
                             static_cast<double>(oneMs);
        const double lat_red = -pctChange(lat_b, lat_l);
        const double pwr_inc =
            pctChange(big[i].avgPowerMw, little[i].avgPowerMw);
        std::printf("%s%12.1f%12.1f%9.1f%12.0f%10.0f%9.1f\n",
                    padRight(apps[i].name, 16).c_str(), lat_l, lat_b,
                    lat_red, little[i].avgPowerMw, big[i].avgPowerMw,
                    pwr_inc);
        if (csv) {
            csv->beginRow();
            csv->cell(apps[i].name);
            csv->cell(lat_l);
            csv->cell(lat_b);
            csv->cell(lat_red);
            csv->cell(little[i].avgPowerMw);
            csv->cell(big[i].avgPowerMw);
            csv->cell(pwr_inc);
            csv->endRow();
        }
    }
    return 0;
}
