/**
 * @file
 * Analytic L2 capacity model.
 *
 * The paper emphasizes that the asymmetric L2 sizes (2 MB big vs
 * 512 KB little) widen the big/little performance gap beyond what
 * microarchitecture alone would give.  We model the L2 as a capacity
 * filter: traffic that misses the L1 hits the L2 unless the working
 * set exceeds the cache, in which case a working-set-ratio fraction
 * spills to DRAM.
 */

#ifndef BIGLITTLE_PLATFORM_CACHE_HH
#define BIGLITTLE_PLATFORM_CACHE_HH

#include "platform/params.hh"
#include "platform/work_class.hh"

namespace biglittle
{

/** Capacity model for one shared cluster L2. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheParams &params);

    /**
     * Fraction of L2 accesses (L1 misses) that miss to DRAM for a
     * working set of @p footprint_kb.
     *
     * Fits-in-cache working sets see only the cold/conflict floor;
     * larger sets miss in proportion to the uncached share of the
     * footprint, softened by an exponent that stands in for reuse
     * locality.  Monotone in footprint, in [floor, 1].
     */
    double missRatio(double footprint_kb) const;

    /** Cold/conflict miss floor (also the fits-in-cache rate). */
    static constexpr double missFloor = 0.02;

    /** Softening exponent on the uncached-share term. */
    static constexpr double reuseExponent = 0.85;

    const CacheParams &params() const { return cacheParams; }

  private:
    CacheParams cacheParams;
};

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_CACHE_HH
