/**
 * @file
 * Future-work study from the paper's conclusion: "to further reduce
 * the energy consumption, another core type, tiny core, with much
 * weaker capability can be added to process such low CPU loads."
 *
 * Table V shows most execution windows stuck in the `min` state -
 * the load needs less than a 500 MHz little core, but DVFS cannot
 * go lower.  This bench extends the little cluster's OPP table down
 * to 200 MHz at reduced voltage (a stand-in for a tiny-core class)
 * and measures, per app: power saving, performance change, and how
 * much of the Table V `min` state the extra headroom recovers.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

namespace
{

/** Exynos 5422 with tiny-class OPPs below the little minimum. */
PlatformParams
tinyAugmentedParams()
{
    PlatformParams p = exynos5422Params();
    ClusterParams &little = p.clusters[0];
    std::vector<Opp> extended = {
        {200000, 800}, {300000, 825}, {400000, 862},
    };
    extended.insert(extended.end(), little.opps.begin(),
                    little.opps.end());
    little.opps = std::move(extended);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_abl_tiny_opp",
                   "future work: tiny-class OPPs below 500 MHz");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "power_base_mw", "power_tiny_mw",
                     "power_saving_pct", "perf_change_pct",
                     "min_state_base_pct", "min_state_tiny_pct"});
    }

    ExperimentConfig base_cfg;
    base_cfg.label = "baseline";
    ExperimentConfig tiny_cfg;
    tiny_cfg.platform = tinyAugmentedParams();
    tiny_cfg.label = "tiny-opp";

    const auto apps = allApps();
    const auto base = runApps(base_cfg, apps);
    const auto tiny = runApps(tiny_cfg, apps);

    std::printf("%s\n",
                (padRight("app", 20) + padLeft("pwr base", 10) +
                 padLeft("pwr tiny", 10) + padLeft("saved %", 9) +
                 padLeft("perf %", 9) + padLeft("min base", 10) +
                 padLeft("min tiny", 10))
                    .c_str());
    std::puts("  (min = Table V share of windows stuck at the "
              "lowest little OPP)");

    double saved_sum = 0.0;
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double saving =
            -pctChange(tiny[i].avgPowerMw, base[i].avgPowerMw);
        saved_sum += saving;
        double perf_change;
        if (apps[i].metric == AppMetric::latency) {
            perf_change = -pctChange(
                static_cast<double>(tiny[i].latency),
                static_cast<double>(base[i].latency));
        } else {
            perf_change = pctChange(tiny[i].avgFps, base[i].avgFps);
        }
        std::printf("%s%10.0f%10.0f%9.1f%9.1f%10.1f%10.1f\n",
                    padRight(apps[i].name, 20).c_str(),
                    base[i].avgPowerMw, tiny[i].avgPowerMw, saving,
                    perf_change, base[i].efficiency.minPct,
                    tiny[i].efficiency.minPct);
        if (csv) {
            csv->beginRow();
            csv->cell(apps[i].name);
            csv->cell(base[i].avgPowerMw);
            csv->cell(tiny[i].avgPowerMw);
            csv->cell(saving);
            csv->cell(perf_change);
            csv->cell(base[i].efficiency.minPct);
            csv->cell(tiny[i].efficiency.minPct);
            csv->endRow();
        }
    }
    std::printf("\naverage power saving across the suite: %.1f%%\n",
                saved_sum / static_cast<double>(apps.size()));
    return 0;
}
