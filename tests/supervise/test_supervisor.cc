/**
 * @file
 * Supervisor unit suite: the rollback-retry state machine over real
 * (small) experiment runs.  Clean pass-through, quarantine of a
 * persistently failing core, class-disable fallback when the faulty
 * core cannot be hotplugged out, fresh-start recovery without
 * checkpoints, and byte-identical recovery decisions per seed.
 */

#include <gtest/gtest.h>

#include <string>

#include "supervise/supervisor.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

AppSpec
shortApp(Tick duration = msToTicks(2000))
{
    // Duration-driven fps app: completes once the window elapses, so
    // a short run still ends with completed = true.
    AppSpec app = eternityWarrior2App();
    app.duration = duration;
    return app;
}

/** Config with periodic checkpoints in a per-test temp dir. */
ExperimentConfig
supervisedConfig(const std::string &name, std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.masterSeed = seed;
    cfg.label = name;
    cfg.snapshot.checkpointEvery = msToTicks(200);
    cfg.snapshot.checkpointDir = ::testing::TempDir();
    return cfg;
}

} // namespace

TEST(Supervisor, CleanRunPassesThrough)
{
    ExperimentConfig cfg = supervisedConfig("sup_clean", 11);
    Supervisor supervisor(cfg);
    const SupervisedRunResult r = supervisor.run(shortApp());
    EXPECT_EQ(r.report.outcome, RecoveryOutcome::clean);
    EXPECT_EQ(r.report.attempts, 1u);
    EXPECT_EQ(r.report.retries, 0u);
    EXPECT_TRUE(r.report.events.empty());
    EXPECT_FALSE(r.run.failed);
    EXPECT_TRUE(r.run.completed);
    EXPECT_NE(r.report.finalStateDigest, 0u);
    EXPECT_EQ(r.report.finalStateDigest, finalStateDigest(r.run));
}

TEST(Supervisor, PersistentCrashIsQuarantinedAndRunContinues)
{
    // Core 6 (a big core, not the boot core) develops failing
    // silicon mid-run.  Retries with a perturbed fault stream cannot
    // cure a deterministic persistent fault, so the supervisor must
    // escalate: hotplug the core out and continue degraded.
    ExperimentConfig cfg = supervisedConfig("sup_pcrash", 21);
    cfg.fault.enabled = true;
    cfg.fault.persistentCrashCore = 6;
    cfg.fault.persistentCrashAt = msToTicks(700);
    Supervisor supervisor(cfg);
    const SupervisedRunResult r = supervisor.run(shortApp());
    EXPECT_EQ(r.report.outcome, RecoveryOutcome::degraded);
    EXPECT_FALSE(r.run.failed);
    EXPECT_GE(r.report.quarantines, 1u);
    bool quarantined_core6 = false;
    for (const RecoveryEvent &ev : r.report.events) {
        EXPECT_EQ(ev.trigger, RecoveryTrigger::fatalFault);
        for (const RecoveryAction &act : ev.actions) {
            if (act.kind == RecoveryActionKind::quarantineCore &&
                act.arg == 6)
                quarantined_core6 = true;
        }
    }
    EXPECT_TRUE(quarantined_core6);
}

TEST(Supervisor, BootCoreCrashFallsBackToClassDisable)
{
    // The boot core cannot be hotplugged out, so the quarantine
    // action cannot stick; the next rung disables the crash class
    // entirely and the run still completes.
    ExperimentConfig cfg = supervisedConfig("sup_bootcrash", 31);
    cfg.fault.enabled = true;
    cfg.fault.persistentCrashCore = 0;
    cfg.fault.persistentCrashAt = msToTicks(700);
    Supervisor supervisor(cfg);
    const SupervisedRunResult r = supervisor.run(shortApp());
    EXPECT_EQ(r.report.outcome, RecoveryOutcome::degraded);
    EXPECT_FALSE(r.run.failed);
    bool disabled_crash = false;
    for (const RecoveryEvent &ev : r.report.events) {
        for (const RecoveryAction &act : ev.actions) {
            if (act.kind == RecoveryActionKind::disableFaultClass &&
                act.arg ==
                    static_cast<std::uint64_t>(FaultClass::crash))
                disabled_crash = true;
        }
    }
    EXPECT_TRUE(disabled_crash);
}

TEST(Supervisor, RecoversByFreshRestartWithoutCheckpoints)
{
    // No periodic checkpoints: every rollback is a fresh start, and
    // recovery actions scripted at tick 0 apply before any event
    // runs.  The quarantine must still land and the run complete.
    ExperimentConfig cfg = supervisedConfig("sup_nockpt", 41);
    cfg.snapshot.checkpointEvery = 0;
    cfg.fault.enabled = true;
    cfg.fault.persistentCrashCore = 5;
    cfg.fault.persistentCrashAt = msToTicks(500);
    SupervisorParams sp;
    sp.checkpointEvery = 0; // keep checkpoints off
    Supervisor supervisor(cfg, sp);
    const SupervisedRunResult r = supervisor.run(shortApp());
    EXPECT_EQ(r.report.outcome, RecoveryOutcome::degraded);
    EXPECT_FALSE(r.run.failed);
    for (const RecoveryEvent &ev : r.report.events)
        EXPECT_EQ(ev.rollbackTo, 0u);
}

TEST(Supervisor, InjectedInvariantBreaksAreRecovered)
{
    ExperimentConfig cfg = supervisedConfig("sup_inv", 51);
    cfg.fault.enabled = true;
    cfg.fault.invariantBreakRatePerSec = 3.0;
    Supervisor supervisor(cfg);
    const SupervisedRunResult r = supervisor.run(shortApp());
    EXPECT_NE(r.report.outcome, RecoveryOutcome::failed);
    EXPECT_FALSE(r.run.failed);
    EXPECT_GE(r.report.attempts, 2u);
}

TEST(Supervisor, RecoveryDecisionsAreDeterministicPerSeed)
{
    // The whole point of scripted recovery: two supervised runs of
    // the same master seed make byte-identical decisions and land on
    // the same final state digest.
    const auto run_once = [](const std::string &label) {
        ExperimentConfig cfg = supervisedConfig(label, 61);
        cfg.fault.enabled = true;
        cfg.fault.persistentCrashCore = 6;
        cfg.fault.persistentCrashAt = msToTicks(700);
        cfg.fault.hotplugRatePerSec = 1.0;
        Supervisor supervisor(cfg);
        return supervisor.run(shortApp());
    };
    const SupervisedRunResult a = run_once("sup_det_a");
    const SupervisedRunResult b = run_once("sup_det_b");
    EXPECT_EQ(a.report.toString(), b.report.toString());
    EXPECT_EQ(a.report.finalStateDigest, b.report.finalStateDigest);
    EXPECT_EQ(a.report.digest(), b.report.digest());
    ASSERT_EQ(a.report.events.size(), b.report.events.size());
}

TEST(Supervisor, ReportRendersActionsAndDigest)
{
    ExperimentConfig cfg = supervisedConfig("sup_render", 21);
    cfg.fault.enabled = true;
    cfg.fault.persistentCrashCore = 6;
    cfg.fault.persistentCrashAt = msToTicks(700);
    Supervisor supervisor(cfg);
    const SupervisedRunResult r = supervisor.run(shortApp());
    const std::string text = r.report.toString();
    EXPECT_NE(text.find("outcome=degraded"), std::string::npos);
    EXPECT_NE(text.find("fatal-fault:cpu6"), std::string::npos);
    EXPECT_NE(text.find("quarantine-core(6)"), std::string::npos);
    EXPECT_NE(text.find("digest=0x"), std::string::npos);
}
