/**
 * @file
 * Tests for the Experiment harness: app runs, kernel runs and
 * microbench runs return coherent, populated results.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/freq_residency.hh"
#include "workload/apps.hh"

using namespace biglittle;

TEST(Experiment, FpsAppRunPopulatesEverything)
{
    Experiment experiment;
    AppSpec app = angryBirdApp();
    app.duration = msToTicks(4000);
    const AppRunResult r = experiment.runApp(app);

    EXPECT_EQ(r.app, "angry_bird");
    EXPECT_EQ(r.metric, AppMetric::fps);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.simulatedTime, msToTicks(4000));
    EXPECT_GT(r.avgFps, 30.0);
    EXPECT_LE(r.avgFps, 61.0);
    EXPECT_GT(r.minFps, 0.0);
    EXPECT_LE(r.minFps, r.avgFps + 1e-9);
    EXPECT_GT(r.frames, 100u);
    EXPECT_GT(r.avgPowerMw, 250.0);
    EXPECT_LT(r.avgPowerMw, 3000.0);
    EXPECT_GT(r.tlp.tlp, 1.0);
    EXPECT_GT(r.efficiency.executionWindows, 0u);
    EXPECT_GT(r.sched.ticks, 0u);
    EXPECT_DOUBLE_EQ(r.performanceValue(), r.avgFps);
}

TEST(Experiment, LatencyAppRunMeasuresScript)
{
    Experiment experiment;
    const AppRunResult r = experiment.runApp(photoEditorApp());
    EXPECT_EQ(r.metric, AppMetric::latency);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.latency, msToTicks(100));
    EXPECT_LT(r.latency, msToTicks(20000));
    EXPECT_DOUBLE_EQ(r.performanceValue(),
                     static_cast<double>(r.latency) /
                         static_cast<double>(oneMs));
}

TEST(Experiment, ResidencyFractionsSumToOne)
{
    Experiment experiment;
    AppSpec app = videoPlayerApp();
    app.duration = msToTicks(3000);
    const AppRunResult r = experiment.runApp(app);
    double little_sum = 0.0;
    for (const auto &e : r.littleResidency.entries)
        little_sum += e.fraction;
    EXPECT_NEAR(little_sum, 1.0, 1e-9);
    // Video player never wakes the big cluster.
    EXPECT_DOUBLE_EQ(r.bigResidency.totalActiveSeconds, 0.0);
}

TEST(Experiment, CoreConfigRestrictsUsage)
{
    ExperimentConfig cfg;
    cfg.coreConfig = {2, 0, "L2"};
    Experiment experiment(cfg);
    AppSpec app = angryBirdApp();
    app.duration = msToTicks(3000);
    const AppRunResult r = experiment.runApp(app);
    EXPECT_DOUBLE_EQ(r.tlp.bigSharePct, 0.0);
    EXPECT_LE(r.tlp.tlp, 2.0 + 1e-9);
}

TEST(Experiment, PowersaveUsesLessPowerThanPerformance)
{
    AppSpec app = fifa15App();
    app.duration = msToTicks(3000);

    ExperimentConfig save_cfg;
    save_cfg.governor = GovernorKind::powersave;
    ExperimentConfig perf_cfg;
    perf_cfg.governor = GovernorKind::performance;

    const AppRunResult save = Experiment(save_cfg).runApp(app);
    const AppRunResult perf = Experiment(perf_cfg).runApp(app);
    EXPECT_LT(save.avgPowerMw, perf.avgPowerMw);
    EXPECT_LE(save.avgFps, perf.avgFps + 1.0);
}

TEST(Experiment, KernelRunScalesWithFrequency)
{
    Experiment experiment;
    const SpecKernel &hmmer = specKernelByName("hmmer");
    const KernelRunResult slow =
        experiment.runKernel(hmmer, CoreType::little, 500000);
    const KernelRunResult fast =
        experiment.runKernel(hmmer, CoreType::little, 1000000);
    EXPECT_NEAR(static_cast<double>(slow.runtime) /
                    static_cast<double>(fast.runtime),
                2.0, 0.05);
    EXPECT_GT(fast.avgPowerMw, slow.avgPowerMw);
}

TEST(Experiment, KernelRunBigBeatsLittle)
{
    Experiment experiment;
    const SpecKernel &mcf = specKernelByName("mcf");
    const KernelRunResult little =
        experiment.runKernel(mcf, CoreType::little, 1300000);
    const KernelRunResult big =
        experiment.runKernel(mcf, CoreType::big, 1300000);
    EXPECT_GT(static_cast<double>(little.runtime) /
                  static_cast<double>(big.runtime),
              3.0);
}

TEST(Experiment, MicrobenchHitsTargetUtilization)
{
    Experiment experiment;
    const MicrobenchResult r = experiment.runMicrobench(
        CoreType::little, 1000000, 0.6, msToTicks(2000));
    EXPECT_NEAR(r.achievedUtilization, 0.6, 0.05);
    EXPECT_EQ(r.freq, 1000000u);
    EXPECT_GT(r.avgPowerMw, 250.0);
}

TEST(Experiment, MicrobenchPowerMonotoneInUtilization)
{
    Experiment experiment;
    double prev = 0.0;
    for (const double util : {0.2, 0.5, 0.8, 1.0}) {
        const MicrobenchResult r = experiment.runMicrobench(
            CoreType::big, 1900000, util, msToTicks(1000));
        EXPECT_GT(r.avgPowerMw, prev) << util;
        prev = r.avgPowerMw;
    }
}

TEST(Experiment, GovernorKindNames)
{
    EXPECT_STREQ(governorKindName(GovernorKind::interactive),
                 "interactive");
    EXPECT_STREQ(governorKindName(GovernorKind::performance),
                 "performance");
    EXPECT_STREQ(governorKindName(GovernorKind::powersave),
                 "powersave");
    EXPECT_STREQ(governorKindName(GovernorKind::ondemand),
                 "ondemand");
    EXPECT_STREQ(governorKindName(GovernorKind::userspace),
                 "userspace");
}
