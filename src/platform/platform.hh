/**
 * @file
 * AsymmetricPlatform: the whole chip.  Builds clusters from a
 * PlatformParams description, provides flat core lookup, and applies
 * the hotplug rules (any core combination may be online, but the boot
 * core — a little core on the target platform — can never be taken
 * offline, matching the restriction described in Section II).
 */

#ifndef BIGLITTLE_PLATFORM_PLATFORM_HH
#define BIGLITTLE_PLATFORM_PLATFORM_HH

#include <memory>
#include <string>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"
#include "platform/cluster.hh"
#include "platform/params.hh"
#include "sim/simulation.hh"

namespace biglittle
{

/**
 * Which cores of a platform are online; used to express the core
 * combinations of Figs. 7/8 (e.g. "L2+B1": two little cores and one
 * big core).
 */
struct CoreConfig
{
    std::uint32_t littleCores;
    std::uint32_t bigCores;
    std::string label; ///< e.g. "L4+B2"
};

/** Build the seven Fig. 7/8 configurations plus the L4+B4 baseline. */
std::vector<CoreConfig> standardCoreConfigs();

/** The asymmetric multi-core chip. */
class AsymmetricPlatform
{
  public:
    AsymmetricPlatform(Simulation &sim, const PlatformParams &params);

    AsymmetricPlatform(const AsymmetricPlatform &) = delete;
    AsymmetricPlatform &operator=(const AsymmetricPlatform &) = delete;

    const PlatformParams &params() const { return platformParams; }
    const std::string &name() const { return platformParams.name; }
    Simulation &simulation() { return sim; }

    std::size_t clusterCount() const { return clusterList.size(); }
    Cluster &cluster(std::size_t i) { return *clusterList.at(i); }
    const Cluster &cluster(std::size_t i) const
    {
        return *clusterList.at(i);
    }

    /** The (single) cluster of the given type; panics if absent. */
    Cluster &clusterOf(CoreType type);
    const Cluster &clusterOf(CoreType type) const;

    Cluster &littleCluster() { return clusterOf(CoreType::little); }
    Cluster &bigCluster() { return clusterOf(CoreType::big); }

    /** Total number of cores across clusters. */
    std::size_t coreCount() const { return coreIndex.size(); }

    /** Core by platform-wide id. */
    Core &core(CoreId id);
    const Core &core(CoreId id) const;

    /** Flat list of all cores in id order. */
    const std::vector<Core *> &cores() const { return coreIndex; }

    /**
     * Whether hotplugging core @p id to @p online would be legal
     * right now: the id must exist, the boot core can never go
     * offline, the last online little core must stay alive (the
     * Exynos 5422 rule, while enforceBootCore holds), and a busy
     * core must be evacuated before it can be unplugged.
     */
    [[nodiscard]] Status hotplugAllowed(CoreId id, bool online) const;

    /**
     * Hotplug a core.  Returns the hotplugAllowed() error - leaving
     * the platform untouched - instead of crashing, so fault
     * injection and runtime policies can degrade gracefully.
     */
    [[nodiscard]] Status setCoreOnline(CoreId id, bool online);

    /** Platform-wide id of the boot (always-alive) core. */
    CoreId bootCore() const { return bootCoreId; }

    /**
     * Apply a CoreConfig: first @p littleCores little cores and
     * first @p bigCores big cores online, everything else offline.
     * Requires at least one little core (the boot core).
     */
    void applyCoreConfig(const CoreConfig &config);

    /** Number of online cores of @p type. */
    std::size_t onlineCount(CoreType type) const;

    /** Close all accounting intervals at the current time. */
    void sync();

  private:
    Simulation &sim;
    PlatformParams platformParams;
    std::vector<std::unique_ptr<Cluster>> clusterList;
    std::vector<Core *> coreIndex;
    CoreId bootCoreId = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_PLATFORM_HH
