#include "workload/app_model.hh"

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

const char *
appMetricName(AppMetric metric)
{
    return metric == AppMetric::latency ? "latency" : "fps";
}

AppInstance::AppInstance(Simulation &sim_in, HmpScheduler &sched_in,
                         const AppSpec &spec)
    : sim(sim_in), sched(sched_in), appSpec(spec)
{
    // ablint:allow(rng-stream): root stream of the app; every consumer forks from it
    Rng root(appSpec.seed);

    for (const PeriodicThreadSpec &pt : appSpec.periodicThreads) {
        Task &task = sched.createTask(
            appSpec.name + "." + pt.name, pt.workClass);
        behaviors.push_back(std::make_unique<PeriodicBehavior>(
            sim, task, root.fork(), pt.periodic,
            pt.isRender ? &renderStats : nullptr));
    }

    if (appSpec.metric == AppMetric::latency) {
        if (appSpec.actions.empty())
            fatal("latency app '%s' has no action script",
                  appSpec.name.c_str());
        Task &ui_task = sched.createTask(appSpec.name + ".ui",
                                         appSpec.uiWorkClass);
        auto ui = std::make_unique<BurstBehavior>(
            sim, ui_task, root.fork(),
            appSpec.burstChunkInstructions, appSpec.burstChunkGap);
        uiBehavior = ui.get();
        behaviors.push_back(std::move(ui));

        for (const BurstThreadSpec &wt : appSpec.workers) {
            Task &task = sched.createTask(
                appSpec.name + "." + wt.name, wt.workClass);
            auto worker = std::make_unique<BurstBehavior>(
                sim, task, root.fork(),
                appSpec.burstChunkInstructions,
                appSpec.burstChunkGap);
            workerBehaviors.push_back(worker.get());
            behaviors.push_back(std::move(worker));
        }

        driver = std::make_unique<WorkflowDriver>(
            sim, *uiBehavior, workerBehaviors, appSpec.actions,
            root.fork(), appSpec.burstJitterSigma);
    }

    // One priority slot per thread: same-tick submissions from
    // different threads settle in thread order instead of schedule
    // order, keeping them out of each other's tie-break batches
    // (docs/DETERMINISM.md).
    for (std::size_t i = 0; i < behaviors.size(); ++i) {
        behaviors[i]->setWorkPriority(
            offsetPriority(EventPriority::workSubmit, i, workSlots));
    }
}

AppInstance::~AppInstance() = default;

void
AppInstance::start()
{
    for (auto &b : behaviors)
        b->start();
    if (driver)
        driver->start();
}

bool
AppInstance::done() const
{
    return driver ? driver->done() : false;
}

Tick
AppInstance::latency() const
{
    BL_ASSERT(driver != nullptr);
    return driver->latency();
}

std::size_t
AppInstance::actionsCompleted() const
{
    return driver ? driver->actionsCompleted() : 0;
}

void
AppInstance::serialize(Serializer &s) const
{
    s.putString(appSpec.name);
    s.putU64(behaviors.size());
    for (const auto &b : behaviors)
        b->serializeState(s);
    renderStats.serialize(s);
    s.putBool(driver != nullptr);
    if (driver)
        driver->serialize(s);
}

void
AppInstance::deserialize(Deserializer &d)
{
    const std::string name = d.getString();
    const std::uint64_t n = d.getU64();
    if (!d.ok())
        return;
    BL_ASSERT(name == appSpec.name);
    BL_ASSERT(n == behaviors.size());
    for (auto &b : behaviors)
        b->deserializeState(d);
    renderStats.deserialize(d);
    const bool has_driver = d.getBool();
    BL_ASSERT(has_driver == (driver != nullptr));
    if (driver)
        driver->deserialize(d);
}

} // namespace biglittle
