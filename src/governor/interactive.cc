#include "governor/interactive.hh"

#include <cmath>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

InteractiveParams
defaultInteractiveParams()
{
    return InteractiveParams{};
}

InteractiveParams
interval60Params()
{
    InteractiveParams p;
    p.samplingRate = msToTicks(60);
    p.name = "interactive-60ms";
    return p;
}

InteractiveParams
interval100Params()
{
    InteractiveParams p;
    p.samplingRate = msToTicks(100);
    p.name = "interactive-100ms";
    return p;
}

InteractiveParams
highTargetLoadParams()
{
    InteractiveParams p;
    p.targetLoad = 80.0;
    p.goHispeedLoad = 95.0;
    p.name = "interactive-target80";
    return p;
}

InteractiveParams
lowTargetLoadParams()
{
    InteractiveParams p;
    p.targetLoad = 60.0;
    p.goHispeedLoad = 75.0;
    p.name = "interactive-target60";
    return p;
}

InteractiveGovernor::InteractiveGovernor(Simulation &sim_in,
                                         Cluster &cluster_in,
                                         const InteractiveParams &params)
    : Governor(sim_in, cluster_in, params.name), ip(params)
{
    BL_ASSERT(ip.targetLoad > 0.0 && ip.targetLoad <= 100.0);
    BL_ASSERT(ip.samplingRate > 0);
    const FreqDomain &domain = cluster_in.freqDomain();
    const auto want = static_cast<FreqKHz>(
        ip.hispeedFraction * static_cast<double>(domain.maxFreq()));
    // Resolve to the lowest OPP at or above the requested fraction.
    hispeed = domain.maxFreq();
    for (const Opp &opp : domain.opps()) {
        if (opp.freq >= want) {
            hispeed = opp.freq;
            break;
        }
    }
}

Tick
InteractiveGovernor::samplingPeriod() const
{
    return ip.samplingRate;
}

void
InteractiveGovernor::sample(Tick)
{
    const double util = clusterUtilization() * 100.0;
    FreqDomain &domain = clusterRef.freqDomain();
    const FreqKHz freq = domain.currentFreq();

    // Capacity needed to hold the observed load at targetLoad%.
    const auto target_freq = static_cast<FreqKHz>(std::ceil(
        static_cast<double>(freq) * util / ip.targetLoad));

    if (util >= ip.goHispeedLoad && freq < hispeed) {
        ++jumps;
        request(std::max(hispeed, target_freq));
        return;
    }
    request(target_freq);
}

void
InteractiveGovernor::serializePolicy(Serializer &s) const
{
    s.putU64(jumps);
}

void
InteractiveGovernor::deserializePolicy(Deserializer &d)
{
    jumps = d.getU64();
}

} // namespace biglittle
