#include "snapshot/checkpoint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/strutil.hh"

namespace biglittle
{

void
Checkpoint::add(std::string name, std::vector<std::uint8_t> payload)
{
    sections.push_back({std::move(name), std::move(payload)});
}

const CheckpointSection *
Checkpoint::find(const std::string &name) const
{
    for (const CheckpointSection &sec : sections) {
        if (sec.name == name)
            return &sec;
    }
    return nullptr;
}

std::size_t
Checkpoint::byteSize() const
{
    return encode().size();
}

std::vector<std::uint8_t>
Checkpoint::encode() const
{
    Serializer s;
    s.putU32(checkpointMagic);
    s.putU32(checkpointVersion);
    s.putString(app);
    s.putString(label);
    s.putU64(masterSeed);
    s.putU64(tick);
    s.putU64(eventsServiced);
    s.putU64(nextSequence);
    s.putU64(sections.size());
    for (const CheckpointSection &sec : sections) {
        s.putString(sec.name);
        s.putBytes(sec.payload.data(), sec.payload.size());
    }
    const std::uint64_t checksum = s.digest();
    s.putU64(checksum);
    return s.takeBytes();
}

Result<Checkpoint>
Checkpoint::decode(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8)
        return invalidArgument("checkpoint truncated");
    // The checksum covers every byte before its own 8.
    const std::size_t body = bytes.size() - 8;
    Deserializer tail(bytes.data() + body, 8);
    const std::uint64_t want = tail.getU64();
    const std::uint64_t have = fnv1a64(bytes.data(), body);
    if (want != have) {
        return invalidArgument(format(
            "checkpoint checksum mismatch: stored %016llx, computed "
            "%016llx (file damaged or truncated)",
            static_cast<unsigned long long>(want),
            static_cast<unsigned long long>(have)));
    }

    Deserializer d(bytes.data(), body);
    // Even a checksum-valid file is untrusted: cap what decoding may
    // allocate to a small multiple of the input so a crafted count
    // or length field cannot balloon memory.
    d.limitAllocations(2, 4096);
    if (d.getU32() != checkpointMagic)
        return invalidArgument("not a checkpoint file (bad magic)");
    const std::uint32_t version = d.getU32();
    if (version != checkpointVersion) {
        return invalidArgument(format(
            "unsupported checkpoint version %u (this build reads %u)",
            version, checkpointVersion));
    }

    Checkpoint ckpt;
    ckpt.app = d.getString();
    ckpt.label = d.getString();
    ckpt.masterSeed = d.getU64();
    ckpt.tick = d.getU64();
    ckpt.eventsServiced = d.getU64();
    ckpt.nextSequence = d.getU64();
    // The smallest possible section is two empty length-prefixed
    // blobs (16 bytes), which bounds a sane sectionCount.
    const std::uint64_t count = d.getCount(16);
    ckpt.sections.reserve(count);
    for (std::uint64_t i = 0; i < count && d.ok(); ++i) {
        CheckpointSection sec;
        sec.name = d.getString();
        sec.payload = d.getBytes();
        ckpt.sections.push_back(std::move(sec));
    }
    if (!d.ok())
        return invalidArgument("checkpoint body truncated");
    return ckpt;
}

Status
Checkpoint::writeFile(const std::string &path) const
{
    return writeBytes(path, encode());
}

Status
Checkpoint::writeBytes(const std::string &path,
                       const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return unavailable("cannot open '" + tmp + "' for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return unavailable("short write to '" + tmp + "'");
    }
    // Keep previous checkpoints as a <path>.1 -> <path>.2 chain so a
    // corrupt write (power cut mid-flush, disk full) - or a rollback
    // loop rewriting the same path over and over - never clobbers
    // the newest good copy: the old .1 must rotate to .2 *before*
    // the primary rotates into .1, otherwise the rename would
    // overwrite the only surviving good checkpoint.  Failure to
    // rotate is not fatal: the new write proceeds anyway.
    std::error_code ec;
    if (std::filesystem::exists(path + ".1", ec))
        std::rename((path + ".1").c_str(), (path + ".2").c_str());
    if (std::filesystem::exists(path, ec))
        std::rename(path.c_str(), (path + ".1").c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return unavailable("cannot rename '" + tmp + "' to '" + path +
                           "'");
    }
    return okStatus();
}

Result<Checkpoint>
Checkpoint::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return notFound("cannot open checkpoint '" + path + "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decode(bytes);
}

std::vector<std::string>
checkpointCandidates(const std::string &path)
{
    std::vector<std::string> out{path, path + ".1", path + ".2"};

    // Periodic checkpoints are named <stem>.<tick>.ckpt; older ticks
    // of the same stem are valid (if stale) resume points.
    const std::string suffix = ".ckpt";
    if (path.size() <= suffix.size() ||
        path.compare(path.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return out;
    const std::string noExt = path.substr(0, path.size() - suffix.size());
    const std::size_t dot = noExt.find_last_of('.');
    if (dot == std::string::npos ||
        dot + 1 == noExt.size() ||
        noExt.size() - dot - 1 > 19 || // stoull range guard
        noExt.find_first_not_of("0123456789", dot + 1) !=
            std::string::npos)
        return out;
    const unsigned long long tick = std::stoull(noExt.substr(dot + 1));
    const std::string stem = noExt.substr(0, dot + 1); // keeps the dot

    std::vector<std::pair<unsigned long long, std::string>> older;
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             parent.empty() ? "." : parent, ec)) {
        const std::string candidate = entry.path().string();
        const std::string name = entry.path().filename().string();
        const std::string stemName =
            std::filesystem::path(stem).filename().string();
        if (name.size() <= stemName.size() + suffix.size() ||
            name.compare(0, stemName.size(), stemName) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string mid = name.substr(
            stemName.size(),
            name.size() - stemName.size() - suffix.size());
        if (mid.empty() || mid.size() > 19 ||
            mid.find_first_not_of("0123456789") != std::string::npos)
            continue;
        const unsigned long long candTick = std::stoull(mid);
        if (candTick < tick)
            older.emplace_back(candTick, candidate);
    }
    std::sort(older.begin(), older.end(),
              [](const auto &a, const auto &b) {
                  return a.first != b.first ? a.first > b.first
                                            : a.second < b.second;
              });
    for (const auto &[candTick, candidate] : older)
        out.push_back(candidate);
    return out;
}

Result<Checkpoint>
loadCheckpointWithFallback(
    const std::string &path,
    const std::function<Status(const Checkpoint &)> &accept)
{
    for (const std::string &candidate : checkpointCandidates(path)) {
        Result<Checkpoint> loaded = Checkpoint::readFile(candidate);
        if (!loaded.ok()) {
            // Only the primary's absence is worth a warning for the
            // rotated/older names; a missing .1 is the common case.
            if (candidate == path ||
                loaded.status().code() != StatusCode::notFound) {
                warn("checkpoint '%s' rejected: %s", candidate.c_str(),
                     loaded.status().message().c_str());
            }
            continue;
        }
        if (accept) {
            const Status st = accept(loaded.value());
            if (!st.ok()) {
                warn("checkpoint '%s' rejected: %s", candidate.c_str(),
                     st.message().c_str());
                continue;
            }
        }
        if (candidate != path) {
            warn("resuming from fallback checkpoint '%s' (newest "
                 "candidate '%s' was unusable)",
                 candidate.c_str(), path.c_str());
        }
        return std::move(loaded.value());
    }
    return notFound("no usable checkpoint for '" + path +
                    "' (all candidates rejected)");
}

Status
compareCheckpoints(const Checkpoint &expected, const Checkpoint &actual)
{
    if (expected.tick != actual.tick) {
        return internalError(format(
            "checkpoint tick mismatch: expected %llu, got %llu",
            static_cast<unsigned long long>(expected.tick),
            static_cast<unsigned long long>(actual.tick)));
    }
    for (const CheckpointSection &want : expected.sections) {
        const CheckpointSection *have = actual.find(want.name);
        if (have == nullptr) {
            return internalError("section '" + want.name +
                                 "' missing from live state");
        }
        if (have->payload != want.payload) {
            return internalError(format(
                "state diverged in section '%s': checkpoint digest "
                "%016llx (%zu bytes), live digest %016llx (%zu bytes)",
                want.name.c_str(),
                static_cast<unsigned long long>(fnv1a64(
                    want.payload.data(), want.payload.size())),
                want.payload.size(),
                static_cast<unsigned long long>(fnv1a64(
                    have->payload.data(), have->payload.size())),
                have->payload.size()));
        }
    }
    for (const CheckpointSection &have : actual.sections) {
        if (expected.find(have.name) == nullptr) {
            return internalError("live state has extra section '" +
                                 have.name + "'");
        }
    }
    return okStatus();
}

} // namespace biglittle
