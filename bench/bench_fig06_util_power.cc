/**
 * @file
 * Fig. 6: whole-system power vs CPU utilization, one core busy, for
 * a sweep of frequencies on each core type.
 *
 * Expected shape (Section III-B): power grows linearly in
 * utilization with a slope that steepens sharply with frequency, and
 * the big core covers a clearly higher power band than the little
 * core at every utilization level.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"
#include "core/experiment.hh"

using namespace biglittle;

namespace
{

void
sweepCoreType(Experiment &experiment, CoreType type,
              const std::vector<FreqKHz> &freqs, Tick duration,
              CsvWriter *csv)
{
    std::printf("\n%s core (power in mW by utilization %%)\n",
                coreTypeName(type));
    std::string header = padRight("freq", 10);
    for (int u = 10; u <= 100; u += 10)
        header += padLeft(format("%d%%", u), 7);
    std::printf("%s\n", header.c_str());

    for (const FreqKHz freq : freqs) {
        std::string line = padRight(freqToString(freq), 10);
        for (int u = 10; u <= 100; u += 10) {
            const MicrobenchResult r = experiment.runMicrobench(
                type, freq, u / 100.0, duration);
            line += padLeft(format("%.0f", r.avgPowerMw), 7);
            if (csv) {
                csv->beginRow();
                csv->cell(std::string(coreTypeName(type)));
                csv->cell(static_cast<std::uint64_t>(freq));
                csv->cell(static_cast<std::uint64_t>(u));
                csv->cell(r.avgPowerMw);
                csv->cell(r.achievedUtilization * 100.0);
                csv->endRow();
            }
        }
        std::printf("%s\n", line.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig06_util_power",
                   "Fig. 6: power vs utilization by core/frequency");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.addInt("duration-ms", 2000, "length of each point");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"core_type", "freq_khz", "target_util_pct",
                     "power_mw", "achieved_util_pct"});
    }

    const Tick duration =
        msToTicks(static_cast<std::uint64_t>(args.getInt("duration-ms")));
    Experiment experiment;
    sweepCoreType(experiment, CoreType::little,
                  {500000, 700000, 900000, 1100000, 1300000},
                  duration, csv.get());
    sweepCoreType(experiment, CoreType::big,
                  {800000, 1100000, 1400000, 1700000, 1900000},
                  duration, csv.get());
    return 0;
}
