#include "snapshot/checkpoint.hh"

#include <cstdio>
#include <fstream>

#include "base/serialize.hh"
#include "base/strutil.hh"

namespace biglittle
{

void
Checkpoint::add(std::string name, std::vector<std::uint8_t> payload)
{
    sections.push_back({std::move(name), std::move(payload)});
}

const CheckpointSection *
Checkpoint::find(const std::string &name) const
{
    for (const CheckpointSection &sec : sections) {
        if (sec.name == name)
            return &sec;
    }
    return nullptr;
}

std::size_t
Checkpoint::byteSize() const
{
    return encode().size();
}

std::vector<std::uint8_t>
Checkpoint::encode() const
{
    Serializer s;
    s.putU32(checkpointMagic);
    s.putU32(checkpointVersion);
    s.putString(app);
    s.putString(label);
    s.putU64(masterSeed);
    s.putU64(tick);
    s.putU64(eventsServiced);
    s.putU64(nextSequence);
    s.putU64(sections.size());
    for (const CheckpointSection &sec : sections) {
        s.putString(sec.name);
        s.putBytes(sec.payload.data(), sec.payload.size());
    }
    const std::uint64_t checksum = s.digest();
    s.putU64(checksum);
    return s.takeBytes();
}

Result<Checkpoint>
Checkpoint::decode(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8)
        return invalidArgument("checkpoint truncated");
    // The checksum covers every byte before its own 8.
    const std::size_t body = bytes.size() - 8;
    Deserializer tail(bytes.data() + body, 8);
    const std::uint64_t want = tail.getU64();
    const std::uint64_t have = fnv1a64(bytes.data(), body);
    if (want != have) {
        return invalidArgument(format(
            "checkpoint checksum mismatch: stored %016llx, computed "
            "%016llx (file damaged or truncated)",
            static_cast<unsigned long long>(want),
            static_cast<unsigned long long>(have)));
    }

    Deserializer d(bytes.data(), body);
    if (d.getU32() != checkpointMagic)
        return invalidArgument("not a checkpoint file (bad magic)");
    const std::uint32_t version = d.getU32();
    if (version != checkpointVersion) {
        return invalidArgument(format(
            "unsupported checkpoint version %u (this build reads %u)",
            version, checkpointVersion));
    }

    Checkpoint ckpt;
    ckpt.app = d.getString();
    ckpt.label = d.getString();
    ckpt.masterSeed = d.getU64();
    ckpt.tick = d.getU64();
    ckpt.eventsServiced = d.getU64();
    ckpt.nextSequence = d.getU64();
    const std::uint64_t count = d.getU64();
    for (std::uint64_t i = 0; i < count && d.ok(); ++i) {
        CheckpointSection sec;
        sec.name = d.getString();
        sec.payload = d.getBytes();
        ckpt.sections.push_back(std::move(sec));
    }
    if (!d.ok())
        return invalidArgument("checkpoint body truncated");
    return ckpt;
}

Status
Checkpoint::writeFile(const std::string &path) const
{
    return writeBytes(path, encode());
}

Status
Checkpoint::writeBytes(const std::string &path,
                       const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return unavailable("cannot open '" + tmp + "' for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return unavailable("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return unavailable("cannot rename '" + tmp + "' to '" + path +
                           "'");
    }
    return okStatus();
}

Result<Checkpoint>
Checkpoint::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return notFound("cannot open checkpoint '" + path + "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decode(bytes);
}

Status
compareCheckpoints(const Checkpoint &expected, const Checkpoint &actual)
{
    if (expected.tick != actual.tick) {
        return internalError(format(
            "checkpoint tick mismatch: expected %llu, got %llu",
            static_cast<unsigned long long>(expected.tick),
            static_cast<unsigned long long>(actual.tick)));
    }
    for (const CheckpointSection &want : expected.sections) {
        const CheckpointSection *have = actual.find(want.name);
        if (have == nullptr) {
            return internalError("section '" + want.name +
                                 "' missing from live state");
        }
        if (have->payload != want.payload) {
            return internalError(format(
                "state diverged in section '%s': checkpoint digest "
                "%016llx (%zu bytes), live digest %016llx (%zu bytes)",
                want.name.c_str(),
                static_cast<unsigned long long>(fnv1a64(
                    want.payload.data(), want.payload.size())),
                want.payload.size(),
                static_cast<unsigned long long>(fnv1a64(
                    have->payload.data(), have->payload.size())),
                have->payload.size()));
        }
    }
    for (const CheckpointSection &have : actual.sections) {
        if (expected.find(have.name) == nullptr) {
            return internalError("live state has extra section '" +
                                 have.name + "'");
        }
    }
    return okStatus();
}

} // namespace biglittle
