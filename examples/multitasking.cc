/**
 * @file
 * multitasking: run two applications concurrently on one platform -
 * the scenario the paper's Section V notes is rare on phones
 * ("limited screen interface... restricts the number of
 * simultaneously active applications") but that the workbench
 * composes naturally.  A video player keeps the little cluster
 * lightly busy in the background while a foreground latency app is
 * driven by a Poisson stream of user inputs; the report shows how
 * the combination shifts TLP, big-core usage and power versus each
 * app alone.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "core/freq_residency.hh"
#include "core/state_sampler.hh"
#include "core/tlp.hh"
#include "governor/interactive.hh"
#include "platform/power.hh"
#include "platform/thermal.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "workload/apps.hh"
#include "workload/input_events.hh"

using namespace biglittle;

namespace
{

struct RunStats
{
    double powerMw;
    double tlp;
    double bigShare;
    double idle;
};

RunStats
run(bool background_video, bool foreground_bursts, Tick duration)
{
    Simulation sim;
    AsymmetricPlatform plat(sim, exynos5422Params());
    HmpScheduler sched(sim, plat, baselineSchedParams());
    InteractiveGovernor lg(sim, plat.littleCluster(),
                           defaultInteractiveParams());
    InteractiveGovernor bg(sim, plat.bigCluster(),
                           defaultInteractiveParams());
    ThermalThrottle lt(sim, plat.littleCluster());
    ThermalThrottle bt(sim, plat.bigCluster());
    PowerModel power(plat);
    StateSampler sampler(sim, plat);

    std::unique_ptr<AppInstance> video;
    if (background_video) {
        AppSpec spec = videoPlayerApp();
        spec.duration = duration;
        video = std::make_unique<AppInstance>(sim, sched, spec);
    }

    std::unique_ptr<BurstBehavior> ui;
    std::unique_ptr<PoissonInputSource> input;
    if (foreground_bursts) {
        Task &task = sched.createTask("foreground.ui",
                                      uiWorkClass());
        ui = std::make_unique<BurstBehavior>(sim, task, Rng(21),
                                             6e6, usToTicks(900));
        PoissonInputParams params;
        params.meanInterArrival = msToTicks(400);
        params.medianBurst = 80e6;
        input = std::make_unique<PoissonInputSource>(sim, *ui, params,
                                                     Rng(22));
    }

    lg.start();
    bg.start();
    lt.start();
    bt.start();
    sched.start();
    sampler.start();
    if (video)
        video->start();
    if (input)
        input->start();

    const PowerSnapshot before = power.snapshot();
    sim.runFor(duration);
    const PowerSnapshot after = power.snapshot();

    const TlpReport tlp = makeTlpReport(sampler);
    return {power.energyBetween(before, after).averagePowerMw(),
            tlp.tlp, tlp.bigSharePct, tlp.idlePct};
}

void
show(const char *label, const RunStats &s)
{
    std::printf("%-28s %7.0f mW   TLP %4.2f   big %5.1f%%   idle "
                "%5.1f%%\n",
                label, s.powerMw, s.tlp, s.bigShare, s.idle);
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("multitasking",
                   "video playback + bursty foreground app together");
    args.addInt("duration-ms", 10000, "run length per scenario");
    args.parse(argc, argv);
    const Tick duration = msToTicks(
        static_cast<std::uint64_t>(args.getInt("duration-ms")));

    std::puts("scenario comparison (same platform, same governor):\n");
    show("video player alone", run(true, false, duration));
    show("bursty foreground alone", run(false, true, duration));
    show("both concurrently", run(true, true, duration));
    std::puts("\n(concurrency raises TLP above either app alone; "
              "note the emergent interaction: the video threads "
              "keep the little cluster at a higher frequency, so "
              "the foreground bursts increasingly finish on little "
              "cores before the HMP up-migration triggers)");
    return 0;
}
