/**
 * @file
 * Table V: efficiency decomposition of the scheduler+governor - the
 * share of 10 ms execution windows in the {min, <50%, 50-70%,
 * 70-95%, >95%, full} utilization categories per app.
 *
 * Expected shape (Section VI-B): min and <50% dominate for most apps
 * (the governor keeps a conservative margin, and many loads need
 * less than a little core at 500 MHz); bursty bbench/encoder show
 * large >95% shares, and encoder/virus_scanner a few percent of
 * full.
 */

#include "base/argparse.hh"
#include "base/csv.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_table5_efficiency",
                   "Table V: scheduler/governor efficiency");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);

    const auto results = runApps(baselineConfig(), allApps());
    printEfficiencyTable(results, csv.get());
    return 0;
}
