#include "base/argparse.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "base/exit_codes.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace biglittle
{

ArgParser::ArgParser(std::string program_in, std::string description_in)
    : program(std::move(program_in)), description(std::move(description_in))
{
}

void
ArgParser::declare(const std::string &name, Kind kind,
                   const std::string &def, const std::string &help)
{
    BL_ASSERT(!options.count(name));
    options[name] = Option{kind, help, def, def, false};
    order.push_back(name);
}

void
ArgParser::addString(const std::string &name, const std::string &def,
                     const std::string &help)
{
    declare(name, Kind::string, def, help);
}

void
ArgParser::addInt(const std::string &name, std::int64_t def,
                  const std::string &help)
{
    declare(name, Kind::integer, std::to_string(def), help);
}

void
ArgParser::addDouble(const std::string &name, double def,
                     const std::string &help)
{
    declare(name, Kind::real, format("%g", def), help);
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    declare(name, Kind::flag, "false", help);
}

Result<std::vector<std::string>>
ArgParser::tryParse(int argc, const char *const *argv)
{
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            sawHelp = true;
            continue;
        }
        if (!startsWith(arg, "--")) {
            positional.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool have_value = false;
        const std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            have_value = true;
        }
        const auto it = options.find(name);
        if (it == options.end())
            return invalidArgument(format("%s: unknown option '--%s'",
                                          program.c_str(), name.c_str()));
        Option &opt = it->second;
        if (opt.kind == Kind::flag) {
            if (have_value)
                return invalidArgument(
                    format("%s: flag '--%s' does not take a value",
                           program.c_str(), name.c_str()));
            opt.value = "true";
            opt.set = true;
            continue;
        }
        if (!have_value) {
            if (i + 1 >= argc)
                return invalidArgument(
                    format("%s: option '--%s' requires a value",
                           program.c_str(), name.c_str()));
            value = argv[++i];
        }
        opt.value = value;
        opt.set = true;
    }
    return positional;
}

std::vector<std::string>
ArgParser::parse(int argc, const char *const *argv)
{
    Result<std::vector<std::string>> parsed = tryParse(argc, argv);
    if (helpRequested()) {
        std::fputs(helpText().c_str(), stdout);
        std::exit(exitOk);
    }
    if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n(run %s --help for usage)\n",
                     parsed.status().message().c_str(), program.c_str());
        std::exit(exitUsage);
    }
    return std::move(parsed.value());
}

const ArgParser::Option &
ArgParser::lookup(const std::string &name, Kind kind) const
{
    const auto it = options.find(name);
    if (it == options.end())
        panic("option '--%s' was never declared", name.c_str());
    if (it->second.kind != kind)
        panic("option '--%s' accessed with the wrong type",
              name.c_str());
    return it->second;
}

std::string
ArgParser::getString(const std::string &name) const
{
    return lookup(name, Kind::string).value;
}

Result<std::int64_t>
ArgParser::tryGetInt(const std::string &name) const
{
    const Option &opt = lookup(name, Kind::integer);
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(opt.value.c_str(), &end, 10);
    if (end == opt.value.c_str() || *end != '\0' || errno == ERANGE)
        return invalidArgument(
            format("option '--%s': '%s' is not an integer", name.c_str(),
                   opt.value.c_str()));
    return static_cast<std::int64_t>(v);
}

Result<double>
ArgParser::tryGetDouble(const std::string &name) const
{
    const Option &opt = lookup(name, Kind::real);
    char *end = nullptr;
    const double v = std::strtod(opt.value.c_str(), &end);
    if (end == opt.value.c_str() || *end != '\0')
        return invalidArgument(
            format("option '--%s': '%s' is not a number", name.c_str(),
                   opt.value.c_str()));
    return v;
}

std::int64_t
ArgParser::getInt(const std::string &name) const
{
    Result<std::int64_t> v = tryGetInt(name);
    if (!v.ok()) {
        std::fprintf(stderr, "%s: %s\n", program.c_str(),
                     v.status().message().c_str());
        std::exit(exitUsage);
    }
    return v.value();
}

double
ArgParser::getDouble(const std::string &name) const
{
    Result<double> v = tryGetDouble(name);
    if (!v.ok()) {
        std::fprintf(stderr, "%s: %s\n", program.c_str(),
                     v.status().message().c_str());
        std::exit(exitUsage);
    }
    return v.value();
}

bool
ArgParser::getFlag(const std::string &name) const
{
    return lookup(name, Kind::flag).value == "true";
}

bool
ArgParser::wasSet(const std::string &name) const
{
    const auto it = options.find(name);
    if (it == options.end())
        panic("option '--%s' was never declared", name.c_str());
    return it->second.set;
}

std::string
ArgParser::helpText() const
{
    std::string out = program + " - " + description + "\n\noptions:\n";
    for (const auto &name : order) {
        const Option &opt = options.at(name);
        std::string left = "  --" + name;
        if (opt.kind != Kind::flag)
            left += " <value>";
        out += padRight(left, 30) + opt.help;
        if (opt.kind != Kind::flag)
            out += " (default: " + opt.def + ")";
        out += '\n';
    }
    out += padRight("  --help", 30);
    out += "show this message and exit\n";
    return out;
}

} // namespace biglittle
