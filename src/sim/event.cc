#include "sim/event.hh"

#include "base/logging.hh"
#include "sim/eventq.hh"

namespace biglittle
{

Event::Event(EventPriority prio_in)
    : prio(prio_in)
{
}

Event::~Event()
{
    if (queue != nullptr)
        queue->deschedule(*this);
}

CallbackEvent::CallbackEvent(std::function<void()> fn_in,
                             EventPriority prio_in, std::string label_in)
    : Event(prio_in), fn(std::move(fn_in)), label(std::move(label_in))
{
    BL_ASSERT(fn != nullptr);
}

void
CallbackEvent::process()
{
    fn();
}

} // namespace biglittle
