#include "platform/params.hh"

namespace biglittle
{

const char *
coreTypeName(CoreType type)
{
    return type == CoreType::big ? "big" : "little";
}

PlatformParams
exynos5422Params()
{
    PlatformParams p;
    p.name = "exynos5422";
    p.basePowerMw = 250.0;
    p.dvfsTransitionLatency = usToTicks(100);

    // ---- little cluster: 4x Cortex-A7-class, in-order 2-issue ----
    ClusterParams little;
    little.name = littleClusterName;
    little.type = CoreType::little;
    little.coreCount = 4;
    little.perf = CorePerfParams{
        /*issueWidth=*/2.0,
        /*ilpExtraction=*/0.55,
        /*pipelinePenaltyCpi=*/0.35,
        /*l2HitCycles=*/14.0,
        /*memLatencyNs=*/130.0,
    };
    little.l2 = CacheParams{512, 8, 64};
    little.opps = {
        {500000, 900}, {600000, 925}, {700000, 950}, {800000, 975},
        {900000, 1000}, {1000000, 1025}, {1100000, 1050},
        {1200000, 1075}, {1300000, 1100},
    };
    // Calibration anchor: one little core fully busy at 1.3 GHz /
    // 1.1 V contributes ~650 mW of core+cluster power, putting the
    // full-system SPEC power near 0.9-1.0 W as in Fig. 3.
    little.power = CorePowerParams{
        /*dynCoeffMw=*/330.0, // 330 * 1.1^2 * 1.3 ~= 519 mW dynamic
        /*staticCoeffMw=*/45.0, // ~50 mW leakage per core at 1.1 V
        /*clusterStaticCoeffMw=*/70.0, // ~77 mW for the 512 KB L2
    };
    p.clusters.push_back(little);

    // ---- big cluster: 4x Cortex-A15-class, out-of-order 3-issue ----
    ClusterParams big;
    big.name = bigClusterName;
    big.type = CoreType::big;
    big.coreCount = 4;
    big.perf = CorePerfParams{
        /*issueWidth=*/3.0,
        /*ilpExtraction=*/0.95,
        /*pipelinePenaltyCpi=*/0.15,
        /*l2HitCycles=*/21.0,
        /*memLatencyNs=*/110.0,
    };
    big.l2 = CacheParams{2048, 16, 64};
    big.opps = {
        {800000, 900}, {900000, 925}, {1000000, 950},
        {1100000, 975}, {1200000, 1000}, {1300000, 1025},
        {1400000, 1062}, {1500000, 1100}, {1600000, 1137},
        {1700000, 1175}, {1800000, 1212}, {1900000, 1250},
    };
    // Calibration anchors (Section III-A): at the shared 1.3 GHz
    // point a fully busy big core draws ~2.3x the little-core system
    // power, and a big core at 0.8 GHz still draws ~1.5x the little
    // core at 1.3 GHz, because of the wider datapath and the 2 MB L2.
    big.power = CorePowerParams{
        /*dynCoeffMw=*/1210.0, // 1210 * 1.025^2 * 1.3 ~= 1653 mW
        /*staticCoeffMw=*/180.0,
        /*clusterStaticCoeffMw=*/260.0,
    };
    p.clusters.push_back(big);

    p.bootCluster = 0;
    p.bootCore = 0;
    return p;
}

} // namespace biglittle
