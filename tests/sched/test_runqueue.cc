/**
 * @file
 * Tests for the per-core execution engine: dispatch, round-robin
 * timeslicing, migration mid-slice, frequency-change recomputation,
 * and core busy-flag maintenance.
 */

#include "sched_fixture.hh"

using namespace biglittle;
using namespace biglittle::test;

using RunQueueTest = SchedFixture;

TEST_F(RunQueueTest, IdleCoreHasEmptyQueue)
{
    const CoreRunner &rq = sched.runner(0);
    EXPECT_EQ(rq.depth(), 0u);
    EXPECT_EQ(rq.running(), nullptr);
    EXPECT_FALSE(plat.core(0).busy());
}

TEST_F(RunQueueTest, EnqueueStartsExecutionAndSetsBusy)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    t.submitWork(1e8);
    CoreRunner &rq = sched.runner(0);
    EXPECT_EQ(rq.running(), &t);
    EXPECT_EQ(rq.depth(), 1u);
    EXPECT_TRUE(plat.core(0).busy());
}

TEST_F(RunQueueTest, CoreGoesIdleAfterDrain)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    t.submitWork(1e6);
    sim.runFor(msToTicks(50));
    EXPECT_FALSE(plat.core(0).busy());
    EXPECT_EQ(sched.runner(0).depth(), 0u);
    EXPECT_EQ(t.state(), TaskState::sleeping);
}

TEST_F(RunQueueTest, TwoTasksShareViaRoundRobin)
{
    Task &a = sched.createTask("a", pureCompute(), CoreId{0});
    Task &b = sched.createTask("b", pureCompute(), CoreId{0});
    a.submitWork(1e9);
    b.submitWork(1e9);
    CoreRunner &rq = sched.runner(0);
    EXPECT_EQ(rq.depth(), 2u);
    EXPECT_EQ(rq.running(), &a);
    // After one timeslice, b gets the core.
    sim.runFor(params.timeslice + oneMs);
    EXPECT_EQ(rq.running(), &b);
    EXPECT_EQ(a.state(), TaskState::queued);
    // And it rotates back.
    sim.runFor(params.timeslice);
    EXPECT_EQ(rq.running(), &a);
}

TEST_F(RunQueueTest, SharedCoreSplitsThroughputFairly)
{
    Task &a = sched.createTask("a", pureCompute(), CoreId{0});
    Task &b = sched.createTask("b", pureCompute(), CoreId{0});
    a.submitWork(1e9);
    b.submitWork(1e9);
    sim.runFor(msToTicks(600));
    sched.runner(0).chargeRunning();
    const double ra = a.instructionsRetired();
    const double rb = b.instructionsRetired();
    EXPECT_GT(ra, 0.0);
    EXPECT_NEAR(ra / rb, 1.0, 0.05);
    // Combined throughput matches one core's rate.
    const double rate = perf_model::instRate(plat.core(0),
                                             pureCompute());
    EXPECT_NEAR(ra + rb, rate * 0.6, rate * 0.6 * 0.02);
}

TEST_F(RunQueueTest, FreqChangeMidSliceAdjustsRate)
{
    plat.littleCluster().freqDomain().setFreqNow(500000);
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    RecordingClient client;
    client.sim = &sim;
    t.setClient(&client);

    const double slow_rate =
        perf_model::instRateAt(plat.core(0), 500000, pureCompute());
    const double fast_rate =
        perf_model::instRateAt(plat.core(0), 1300000, pureCompute());
    // Work sized to 20 ms at the slow rate.
    t.submitWork(slow_rate * 0.020);
    sim.runFor(msToTicks(10)); // half done at slow rate
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    sim.runFor(msToTicks(20));
    ASSERT_EQ(client.drains.size(), 1u);
    // Remaining half finishes at the fast rate.
    const double expected_ms =
        10.0 + (slow_rate * 0.010) / fast_rate * 1e3;
    EXPECT_NEAR(static_cast<double>(client.drains[0]) / oneMs,
                expected_ms, 0.4);
}

TEST_F(RunQueueTest, RemoveRunningTaskStartsNext)
{
    Task &a = sched.createTask("a", pureCompute(), CoreId{0});
    Task &b = sched.createTask("b", pureCompute(), CoreId{0});
    a.submitWork(1e9);
    b.submitWork(1e9);
    CoreRunner &rq0 = sched.runner(0);
    CoreRunner &rq1 = sched.runner(1);
    ASSERT_EQ(rq0.running(), &a);
    const double before = a.pendingInstructions();
    sim.runFor(oneMs);
    rq0.remove(a);
    EXPECT_LT(a.pendingInstructions(), before); // partial charge
    EXPECT_EQ(rq0.running(), &b);
    rq1.enqueue(a);
    EXPECT_EQ(rq1.running(), &a);
}

TEST_F(RunQueueTest, RemoveWaitingTaskKeepsRunner)
{
    Task &a = sched.createTask("a", pureCompute(), CoreId{0});
    Task &b = sched.createTask("b", pureCompute(), CoreId{0});
    a.submitWork(1e9);
    b.submitWork(1e9);
    CoreRunner &rq = sched.runner(0);
    ASSERT_EQ(rq.waiting().size(), 1u);
    rq.remove(b);
    EXPECT_EQ(rq.running(), &a);
    EXPECT_TRUE(rq.waiting().empty());
}

TEST_F(RunQueueTest, LoadSumAggregatesQueuedTasks)
{
    Task &a = sched.createTask("a", pureCompute(), CoreId{0});
    Task &b = sched.createTask("b", pureCompute(), CoreId{0});
    a.submitWork(1e9);
    b.submitWork(1e9);
    sim.runFor(msToTicks(50));
    const double sum = sched.runner(0).loadSum();
    EXPECT_NEAR(sum,
                a.loadTracker().value() + b.loadTracker().value(),
                1e-9);
    EXPECT_GT(sum, 0.0);
}

TEST_F(RunQueueTest, SlicesAreCounted)
{
    Task &a = sched.createTask("a", pureCompute(), CoreId{0});
    a.submitWork(1e9);
    sim.runFor(msToTicks(100));
    EXPECT_GE(sched.runner(0).slicesDispatched(), 1u);
}

TEST_F(RunQueueTest, ManyTasksAllComplete)
{
    std::vector<RecordingClient> clients(6);
    std::vector<Task *> tasks;
    for (int i = 0; i < 6; ++i) {
        Task &t = sched.createTask("t" + std::to_string(i),
                                   pureCompute(), CoreId{0});
        clients[i].sim = &sim;
        t.setClient(&clients[i]);
        t.submitWork(2e6);
        tasks.push_back(&t);
    }
    sim.runFor(msToTicks(200));
    for (int i = 0; i < 6; ++i) {
        EXPECT_EQ(clients[i].drains.size(), 1u) << i;
        EXPECT_EQ(tasks[i]->state(), TaskState::sleeping);
    }
    EXPECT_FALSE(plat.core(0).busy());
}
