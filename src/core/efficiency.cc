#include "core/efficiency.hh"

#include "base/logging.hh"

namespace biglittle
{

EfficiencyAnalyzer::EfficiencyAnalyzer(Simulation &sim_in,
                                       AsymmetricPlatform &platform,
                                       Tick window)
    : sim(sim_in), plat(platform), windowTicks(window)
{
    BL_ASSERT(windowTicks > 0);
    lastBusyTicks.assign(plat.coreCount(), 0);
}

void
EfficiencyAnalyzer::start()
{
    plat.sync();
    for (const Core *core : plat.cores())
        lastBusyTicks[core->id()] = core->busyTicks();
    if (sampleTask == nullptr) {
        sampleTask = &sim.addPeriodic(
            windowTicks, [this](Tick now) { sampleWindow(now); },
            EventPriority::stats, "efficiency-analyzer");
    }
    sampleTask->start();
}

void
EfficiencyAnalyzer::stop()
{
    if (sampleTask != nullptr)
        sampleTask->cancel();
}

void
EfficiencyAnalyzer::sampleWindow(Tick)
{
    plat.sync();
    for (const Core *core : plat.cores()) {
        const Tick busy = core->busyTicks();
        const Tick delta = busy - lastBusyTicks[core->id()];
        lastBusyTicks[core->id()] = busy;
        if (delta == 0)
            continue; // no execution in this window
        const double util = static_cast<double>(delta) /
                            static_cast<double>(windowTicks);
        const FreqDomain &domain = core->freqDomain();
        const bool at_max = domain.currentFreq() == domain.maxFreq();
        const bool at_min = domain.currentFreq() == domain.minFreq();
        if (core->type() == CoreType::big && at_max && util >= 0.99) {
            ++fullCount;
        } else if (util >= 0.95) {
            ++above95;
        } else if (util >= 0.70) {
            ++from70to95;
        } else if (util >= 0.50) {
            ++from50to70;
        } else if (core->type() == CoreType::little && at_min) {
            ++minCount;
        } else {
            ++below50;
        }
    }
}

EfficiencyReport
EfficiencyAnalyzer::report() const
{
    EfficiencyReport r;
    const std::uint64_t total = minCount + below50 + from50to70 +
                                from70to95 + above95 + fullCount;
    r.executionWindows = total;
    if (total == 0)
        return r;
    const auto pct = [total](std::uint64_t n) {
        return 100.0 * static_cast<double>(n) /
               static_cast<double>(total);
    };
    r.minPct = pct(minCount);
    r.below50Pct = pct(below50);
    r.from50to70Pct = pct(from50to70);
    r.from70to95Pct = pct(from70to95);
    r.above95Pct = pct(above95);
    r.fullPct = pct(fullCount);
    return r;
}

} // namespace biglittle
