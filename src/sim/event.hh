/**
 * @file
 * Discrete-event primitives.
 *
 * Events are intrusive: an Event object knows whether it is currently
 * scheduled and at what tick, so it can be rescheduled or descheduled
 * in O(log n).  Ordering is (when, priority, sequence) which makes
 * simulations fully deterministic even when many events share a tick.
 */

#ifndef BIGLITTLE_SIM_EVENT_HH
#define BIGLITTLE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"

namespace biglittle
{

class EventQueue;

/**
 * Priorities for events that fire on the same tick.  Lower values run
 * first.  The ordering mirrors what a real kernel does in one tick:
 * task state changes settle before the scheduler looks at loads, the
 * governor samples after scheduling, and statistics observe last.
 *
 * Within the task-state band every *actor* owns a distinct slot
 * (per-core slice events, the DVFS apply, input sources, the workflow
 * driver, per-behavior work submission), because their handlers all
 * funnel into HmpScheduler::wakeup and contend for the same run
 * queues and placement cursor.  Sharing one slot would leave their
 * same-tick order to the arbitrary schedule-order tie-break - the
 * exact nondeterminism class abrace exists to catch (sim/abrace.hh).
 * The full priority table with the rationale for each slot lives in
 * docs/DETERMINISM.md.
 */
enum class EventPriority : std::int32_t
{
    /** Base of the per-core slice-event slots: slot = sliceEnd +
     *  core id, capped to `sliceSlots` cores.  Completions and
     *  quantum expiries settle in core-id order. */
    sliceEnd = 0,
    taskState = 0, ///< legacy alias: generic task-state events
    dvfsApply = 16, ///< frequency-domain apply (after work settles)
    inputPump = 17, ///< input sources delivering user bursts
    workflowStep = 18, ///< workflow driver think/act steps
    /** Base of the per-behavior work-submission slots: slot =
     *  workSubmit + behavior index, capped to `workSlots`. */
    workSubmit = 20,
    schedTick = 40, ///< scheduler load update + migration
    /** Base of the per-cluster thermal-evaluation slots: slot =
     *  thermal + the cluster's first core id, capped to
     *  `clusterSlots`.  Ceiling updates settle before the governors
     *  sample, so a request always sees the fresh ceiling. */
    thermal = 44,
    /** Base of the per-cluster governor-sampling slots, keyed like
     *  `thermal`.  Distinct slots keep the two clusters' samplers -
     *  which share the fault injector's DVFS-gate rng - out of one
     *  tie-break batch. */
    governor = 60,
    stats = 80, ///< state samplers, meters
    faultReplug = 88, ///< hotplug capacity restoration
    deferred = 90, ///< everything else
};

/** Width of the per-core slice-event priority band. */
constexpr std::size_t sliceSlots = 16;

/** Width of the per-behavior work-submission priority band. */
constexpr std::size_t workSlots = 16;

/** Width of the per-cluster thermal/governor priority bands. */
constexpr std::size_t clusterSlots = 16;

/**
 * The @p slot'th priority of the band starting at @p base.  Slots at
 * or beyond @p width share the band's last value - they stay inside
 * the band (no collision with the next one), and abrace still
 * watches whatever ends up sharing a slot.
 */
constexpr EventPriority
offsetPriority(EventPriority base, std::size_t slot, std::size_t width)
{
    const std::size_t capped = slot < width ? slot : width - 1;
    return static_cast<EventPriority>(
        static_cast<std::int32_t>(base) +
        static_cast<std::int32_t>(capped));
}

/**
 * Base class for schedulable events.  Subclasses implement process().
 */
class Event
{
  public:
    /** @param prio same-tick ordering class for this event. */
    explicit Event(EventPriority prio = EventPriority::deferred);

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called by the queue when the event fires. */
    virtual void process() = 0;

    /**
     * Called by a dying queue on each still-pending event after
     * detaching it.  Self-owning events (the one-shots behind
     * Simulation::at/after) override this with `delete this`; events
     * owned elsewhere keep the default no-op.
     */
    virtual void orphaned() {}

    /** Diagnostic name used in trace output. */
    virtual std::string name() const { return "event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return queue != nullptr; }

    /** Tick this event is scheduled for (valid when scheduled()). */
    Tick when() const { return whenTick; }

    /** Same-tick ordering class. */
    EventPriority priority() const { return prio; }

    /**
     * Monotonic insertion number assigned by the queue at schedule
     * time; same-tick same-priority events fire in this order, which
     * makes run order independent of heap/container internals.  Valid
     * while scheduled; exposed so traces and checkpoints can record
     * the exact total order.
     */
    std::uint64_t sequenceNumber() const { return sequence; }

  private:
    friend class EventQueue;

    EventPriority prio;
    Tick whenTick = 0;
    std::uint64_t sequence = 0;
    EventQueue *queue = nullptr;
};

/**
 * An event that runs an arbitrary callback.  Convenient for small
 * one-shot actions without declaring a subclass.
 */
class CallbackEvent : public Event
{
  public:
    CallbackEvent(std::function<void()> fn,
                  EventPriority prio = EventPriority::deferred,
                  std::string label = "callback");

    void process() override;
    std::string name() const override { return label; }

  private:
    std::function<void()> fn;
    std::string label;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_EVENT_HH
