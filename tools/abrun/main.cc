/**
 * @file
 * abrun: the multi-seed run supervisor.
 *
 * A chaos sweep is a matrix of (app, seed) cells, each an independent
 * supervised experiment.  One cell dying must never take the sweep
 * down with it, so every cell forks into its own child process: the
 * child builds the config, runs Supervisor::run, writes its
 * RecoveryReport next to the sweep report, and exits through the
 * repo's exit-code taxonomy (base/exit_codes.hh):
 *
 *   0   the supervised run ended clean, recovered, or degraded
 *   1   the supervisor exhausted its escalation ladder (permanent)
 *   2   CLI usage error (permanent)
 *   3   unwritable report/checkpoint path (permanent)
 *   86  watchdog: the child stalled past its wall-clock limit
 *       (transient - retried with backoff)
 *
 * A child killed by a signal (crash, OOM kill, the hard alarm) is
 * also transient: the cell is retried with exponential backoff up to
 * --retries times before it is declared lost.  The sweep report
 * aggregates every cell; the tool exits 0 iff no cell was lost.
 *
 * The simulation inside each cell is deterministic per seed; the
 * *supervision* of the sweep (retries, backoff) only re-runs that
 * deterministic function, so a retried cell that succeeds produces
 * the same report bytes it would have produced the first time.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "base/argparse.hh"
#include "base/exit_codes.hh"
#include "base/strutil.hh"
#include "snapshot/watchdog.hh"
#include "supervise/supervisor.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

struct SweepOptions
{
    std::vector<AppSpec> apps;
    std::uint64_t seedBase = 1;
    std::uint64_t seeds = 10;
    Tick checkpointEvery = msToTicks(200);
    std::string reportDir = "abrun-reports";
    std::uint32_t retries = 2;
    std::uint32_t jobs = 4;
    unsigned alarmSec = 300;
    double watchdogStallSec = 60.0;
    // chaos fault rates (per second of simulated time)
    double hotplugRate = 0.0;
    double thermalRate = 0.0;
    double stallRate = 0.0;
    double crashRate = 0.0;
    double invariantRate = 0.0;
    std::int64_t persistentCrashCore = -1;
    Tick persistentCrashAt = 0;
};

/** One (app, seed) cell of the sweep matrix. */
struct Cell
{
    std::size_t appIndex = 0;
    std::uint64_t seed = 0;
    std::uint32_t attempts = 0;
    bool done = false;
    bool lost = false;
    int lastExit = 0; ///< exit code, or -signal when killed
    std::string outcome; ///< from the child's report file
    /// Earliest time a transient retry may fork (backoff deadline).
    std::chrono::steady_clock::time_point notBefore{};
};

std::string
cellReportPath(const SweepOptions &opt, const AppSpec &app,
               std::uint64_t seed)
{
    return opt.reportDir + "/" + app.name + ".s" +
           std::to_string(seed) + ".report.txt";
}

/**
 * The child's whole life: run one supervised cell, write its report,
 * and exit through the taxonomy.  Never returns.
 */
[[noreturn]] void
runCell(const SweepOptions &opt, const AppSpec &app,
        std::uint64_t seed)
{
    // Hard kill-switch: if even the in-process watchdog cannot get a
    // chunk boundary to trip at, SIGALRM ends the cell and the
    // parent retries it as transient.
    alarm(opt.alarmSec);

    ExperimentConfig cfg;
    cfg.masterSeed = seed;
    cfg.label = format("abrun.s%llu",
                       static_cast<unsigned long long>(seed));
    cfg.snapshot.checkpointEvery = opt.checkpointEvery;
    cfg.snapshot.checkpointDir = opt.reportDir;
    cfg.watchdog.enabled = true;
    cfg.watchdog.stallLimitSec = opt.watchdogStallSec;
    if (opt.hotplugRate > 0.0 || opt.thermalRate > 0.0 ||
        opt.stallRate > 0.0 || opt.crashRate > 0.0 ||
        opt.invariantRate > 0.0 || opt.persistentCrashCore >= 0) {
        cfg.fault.enabled = true;
        cfg.fault.hotplugRatePerSec = opt.hotplugRate;
        cfg.fault.thermalSpikeRatePerSec = opt.thermalRate;
        cfg.fault.taskStallRatePerSec = opt.stallRate;
        cfg.fault.crashRatePerSec = opt.crashRate;
        cfg.fault.invariantBreakRatePerSec = opt.invariantRate;
        if (opt.persistentCrashCore >= 0) {
            cfg.fault.persistentCrashCore =
                static_cast<CoreId>(opt.persistentCrashCore);
            cfg.fault.persistentCrashAt = opt.persistentCrashAt;
        }
    }

    Supervisor supervisor(cfg);
    const SupervisedRunResult result = supervisor.run(app);

    {
        std::ofstream out(cellReportPath(opt, app, seed),
                          std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "abrun: cannot write cell report for %s "
                         "seed %llu\n",
                         app.name.c_str(),
                         static_cast<unsigned long long>(seed));
            _exit(exitBadFile);
        }
        out << "cell app=" << app.name << " seed=" << seed << "\n"
            << result.report.toString();
    }
    _exit(result.report.outcome == RecoveryOutcome::failed ? exitFatal
                                                           : exitOk);
}

/** First "outcome=..." token of the cell's report file, if any. */
std::string
readOutcome(const std::string &path)
{
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        const auto pos = line.find("outcome=");
        if (pos == std::string::npos)
            continue;
        const auto end = line.find(' ', pos);
        return line.substr(pos + 8, end == std::string::npos
                                        ? std::string::npos
                                        : end - pos - 8);
    }
    return "";
}

bool
transientExit(int status)
{
    if (WIFSIGNALED(status))
        return true; // crash / alarm / OOM kill
    return WIFEXITED(status) && WEXITSTATUS(status) == watchdogExitCode;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("abrun",
                   "multi-seed chaos-sweep supervisor: forks each "
                   "(app, seed) cell into an isolated process, "
                   "retries transient failures, and aggregates a "
                   "sweep report");
    args.addString("apps", "bbench",
                   "comma-separated app names, or all/latency/fps");
    args.addInt("seeds", 10, "number of seeds per app");
    args.addInt("seed-base", 1, "first master seed");
    args.addInt("checkpoint-every-ms", 200,
                "periodic checkpoint interval (simulated ms)");
    args.addString("report-dir", "abrun-reports",
                   "directory for cell reports, checkpoints, and "
                   "the sweep report");
    args.addInt("retries", 2,
                "transient-failure retries per cell (watchdog "
                "trips and signals; permanent exits are not "
                "retried)");
    args.addInt("jobs", 4, "concurrent cell processes");
    args.addInt("alarm-sec", 300,
                "hard wall-clock kill switch per cell attempt");
    args.addDouble("watchdog-sec", 60.0,
                   "in-child stall watchdog limit (wall seconds)");
    args.addDouble("hotplug-rate", 0.0, "hotplug faults per sim s");
    args.addDouble("thermal-rate", 0.0,
                   "thermal spike faults per sim s");
    args.addDouble("stall-rate", 0.0, "task-stall faults per sim s");
    args.addDouble("crash-rate", 0.0,
                   "unrecoverable-fault injections per sim s");
    args.addDouble("invariant-rate", 0.0,
                   "injected invariant breaks per sim s");
    args.addInt("persistent-crash-core", -1,
                "core with failing silicon (-1 = none)");
    args.addInt("persistent-crash-at-ms", 0,
                "tick the persistent crash starts (ms)");
    args.addFlag("chaos",
                 "shorthand: enable a default mixed fault load "
                 "(hotplug+thermal+stall+crash+invariant)");
    args.parse(argc, argv);

    SweepOptions opt;
    const std::string apps = args.getString("apps");
    if (apps == "all") {
        opt.apps = allApps();
    } else if (apps == "latency") {
        opt.apps = latencyApps();
    } else if (apps == "fps") {
        opt.apps = fpsApps();
    } else {
        std::size_t start = 0;
        while (start <= apps.size()) {
            const auto comma = apps.find(',', start);
            const std::string name = apps.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            if (!name.empty())
                opt.apps.push_back(appByName(name));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
    if (opt.apps.empty()) {
        std::fprintf(stderr, "abrun: no apps selected\n");
        return exitUsage;
    }
    opt.seeds = static_cast<std::uint64_t>(args.getInt("seeds"));
    opt.seedBase =
        static_cast<std::uint64_t>(args.getInt("seed-base"));
    opt.checkpointEvery =
        msToTicks(args.getInt("checkpoint-every-ms"));
    opt.reportDir = args.getString("report-dir");
    opt.retries = static_cast<std::uint32_t>(args.getInt("retries"));
    opt.jobs = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, args.getInt("jobs")));
    opt.alarmSec = static_cast<unsigned>(args.getInt("alarm-sec"));
    opt.watchdogStallSec = args.getDouble("watchdog-sec");
    opt.hotplugRate = args.getDouble("hotplug-rate");
    opt.thermalRate = args.getDouble("thermal-rate");
    opt.stallRate = args.getDouble("stall-rate");
    opt.crashRate = args.getDouble("crash-rate");
    opt.invariantRate = args.getDouble("invariant-rate");
    opt.persistentCrashCore = args.getInt("persistent-crash-core");
    opt.persistentCrashAt =
        msToTicks(args.getInt("persistent-crash-at-ms"));
    if (args.getFlag("chaos")) {
        if (opt.hotplugRate == 0.0)
            opt.hotplugRate = 2.0;
        if (opt.thermalRate == 0.0)
            opt.thermalRate = 1.0;
        if (opt.stallRate == 0.0)
            opt.stallRate = 1.0;
        if (opt.crashRate == 0.0)
            opt.crashRate = 0.2;
        if (opt.invariantRate == 0.0)
            opt.invariantRate = 0.2;
    }

    if (!std::filesystem::exists(opt.reportDir)) {
        std::error_code ec;
        std::filesystem::create_directories(opt.reportDir, ec);
        if (ec) {
            std::fprintf(stderr,
                         "abrun: cannot create report dir '%s'\n",
                         opt.reportDir.c_str());
            return exitBadFile;
        }
    }

    std::vector<Cell> cells;
    for (std::size_t a = 0; a < opt.apps.size(); ++a) {
        for (std::uint64_t s = 0; s < opt.seeds; ++s)
            cells.push_back({a, opt.seedBase + s});
    }

    std::deque<std::size_t> pending;
    for (std::size_t i = 0; i < cells.size(); ++i)
        pending.push_back(i);
    std::map<pid_t, std::size_t> active;

    while (!pending.empty() || !active.empty()) {
        // Dispatch every eligible cell; a retry whose backoff has not
        // elapsed rotates to the back of the queue instead of
        // sleeping in the dispatch loop, so one backed-off cell never
        // stalls dispatch or reaping for the rest of the sweep.
        bool backing_off = false;
        for (std::size_t scan = pending.size();
             scan > 0 && !pending.empty() && active.size() < opt.jobs;
             --scan) {
            const std::size_t idx = pending.front();
            pending.pop_front();
            Cell &cell = cells[idx];
            if (std::chrono::steady_clock::now() < cell.notBefore) {
                pending.push_back(idx);
                backing_off = true;
                continue;
            }
            ++cell.attempts;
            const pid_t pid = fork();
            if (pid < 0) {
                std::fprintf(stderr, "abrun: fork failed\n");
                return exitFatal;
            }
            if (pid == 0)
                runCell(opt, opt.apps[cell.appIndex], cell.seed);
            active.emplace(pid, idx);
        }

        if (active.empty()) {
            // Only backed-off cells remain; nap until one is due.
            usleep(20000);
            continue;
        }

        int status = 0;
        pid_t pid;
        if (backing_off && active.size() < opt.jobs) {
            // A retry is waiting on its deadline and a job slot is
            // free: poll instead of blocking so the retry is not
            // stuck behind a long-running child.
            pid = waitpid(-1, &status, WNOHANG);
            if (pid == 0) {
                usleep(20000);
                continue;
            }
        } else {
            pid = waitpid(-1, &status, 0);
        }
        if (pid < 0)
            continue;
        const auto it = active.find(pid);
        if (it == active.end())
            continue;
        const std::size_t idx = it->second;
        active.erase(it);
        Cell &cell = cells[idx];

        cell.lastExit = WIFSIGNALED(status) ? -WTERMSIG(status)
                                            : WEXITSTATUS(status);
        if (WIFEXITED(status) && WEXITSTATUS(status) == exitOk) {
            cell.done = true;
            cell.outcome = readOutcome(cellReportPath(
                opt, opt.apps[cell.appIndex], cell.seed));
        } else if (transientExit(status) &&
                   cell.attempts <= opt.retries) {
            std::fprintf(stderr,
                         "abrun: cell %s seed %llu transient "
                         "failure (%s %d), retry %u/%u\n",
                         opt.apps[cell.appIndex].name.c_str(),
                         static_cast<unsigned long long>(cell.seed),
                         WIFSIGNALED(status) ? "signal" : "exit",
                         WIFSIGNALED(status) ? WTERMSIG(status)
                                             : WEXITSTATUS(status),
                         cell.attempts, opt.retries);
            // Exponential backoff before the retry forks: the
            // failure may have been resource pressure from the
            // sweep itself.
            cell.notBefore = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(
                                 100LL << std::min(cell.attempts, 6u));
            pending.push_back(idx);
        } else {
            cell.done = true;
            cell.lost = true;
            cell.outcome = readOutcome(cellReportPath(
                opt, opt.apps[cell.appIndex], cell.seed));
            if (cell.outcome.empty())
                cell.outcome = "no-report";
        }
    }

    std::size_t lost = 0, retried = 0, degraded = 0, recovered = 0;
    for (const Cell &cell : cells) {
        lost += cell.lost ? 1 : 0;
        retried += cell.attempts > 1 ? 1 : 0;
        degraded += cell.outcome == "degraded" ? 1 : 0;
        recovered += cell.outcome == "recovered" ? 1 : 0;
    }

    const std::string sweepPath = opt.reportDir + "/sweep.txt";
    {
        std::ofstream out(sweepPath, std::ios::trunc);
        out << "abrun sweep: " << cells.size() << " cells, " << lost
            << " lost, " << retried << " retried, " << recovered
            << " recovered, " << degraded << " degraded\n";
        for (const Cell &cell : cells) {
            out << "  " << opt.apps[cell.appIndex].name << " s"
                << cell.seed << " attempts=" << cell.attempts
                << " exit=" << cell.lastExit << " outcome="
                << (cell.outcome.empty() ? "clean" : cell.outcome)
                << (cell.lost ? " LOST" : "") << "\n";
        }
    }
    std::printf("abrun: %zu cells, %zu lost, %zu retried, %zu "
                "recovered, %zu degraded (report: %s)\n",
                cells.size(), lost, retried, recovered, degraded,
                sweepPath.c_str());
    return lost == 0 ? exitOk : exitFatal;
}
