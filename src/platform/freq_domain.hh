/**
 * @file
 * FreqDomain: per-cluster DVFS.
 *
 * Mirrors the target platform's constraint that each core type shares
 * a single clock: a frequency request selects the lowest OPP at or
 * above the request, and (optionally) becomes effective only after
 * the hardware transition latency.  Listeners (the owning cluster)
 * are told immediately before the change so they can close their
 * time-energy accounting at the old operating point.
 */

#ifndef BIGLITTLE_PLATFORM_FREQ_DOMAIN_HH
#define BIGLITTLE_PLATFORM_FREQ_DOMAIN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"
#include "platform/params.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class Serializer;
class Deserializer;

/**
 * What a fault gate decides about one DVFS request: let it through,
 * refuse it outright (the regulator/firmware rejected it), or apply
 * it late (a slow or contended transition).
 */
enum class DvfsFaultAction
{
    allow,
    deny,
    delay,
};

/** One shared clock/voltage domain (a big.LITTLE cluster). */
class FreqDomain
{
  public:
    /** Called just before a change with (old OPP, new OPP). */
    using ChangeListener = std::function<void(const Opp &, const Opp &)>;

    /** Consulted per request with the resolved target frequency. */
    using FaultGate = std::function<DvfsFaultAction(FreqKHz)>;

    /**
     * @param sim time source and event scheduling
     * @param name diagnostic name
     * @param opps ascending-frequency OPP table (non-empty)
     * @param transition_latency delay before a request takes effect
     */
    FreqDomain(Simulation &sim, std::string name, std::vector<Opp> opps,
               Tick transition_latency);

    /** Current effective OPP. */
    const Opp &currentOpp() const { return table[curIndex]; }

    /** Current effective frequency. */
    FreqKHz currentFreq() const { return table[curIndex].freq; }

    /** Current supply voltage in volts. */
    double currentVolts() const;

    /** Lowest available frequency. */
    FreqKHz minFreq() const { return table.front().freq; }

    /** Highest available frequency. */
    FreqKHz maxFreq() const { return table.back().freq; }

    /** Full OPP table, ascending. */
    const std::vector<Opp> &opps() const { return table; }

    /**
     * Request frequency @p target; the effective OPP becomes the
     * lowest OPP >= target (the highest OPP if target is above max).
     * The change lands after the transition latency; a newer request
     * supersedes a pending one.  A request equal to the current and
     * pending state is a no-op.
     *
     * Returns unavailable() when an installed fault gate denies the
     * transition; the domain then stays at its current (valid) OPP
     * and the caller is expected to retry on its next sample.
     */
    [[nodiscard]] Status requestFreq(FreqKHz target);

    /** Apply a frequency immediately (hotplug/test/reset paths). */
    void setFreqNow(FreqKHz target);

    /**
     * Clamp the domain to at most @p ceiling (thermal throttling).
     * Takes effect immediately if the current frequency exceeds it;
     * later requests are clamped until the ceiling is raised.  Pass
     * maxFreq() to remove the cap.
     */
    void setCeiling(FreqKHz ceiling);

    /** Current thermal/administrative ceiling. */
    FreqKHz ceiling() const { return table[ceilingIndex].freq; }

    /**
     * Pin the domain at @p freq (0 pins at the current frequency):
     * the supervisor's quarantine action for a misbehaving DVFS path.
     * The pin is applied immediately (bypassing the fault gate, like
     * any setFreqNow) and from then on every requestFreq() is refused
     * with unavailable(), so governors degrade to their deny path.
     * A one-way latch; deliberately not serialized — it is
     * reconstructed by replaying the supervisor's recovery script.
     */
    void setPinned(FreqKHz freq);

    /** Whether the domain is pinned (requests refused). */
    bool pinned() const { return isPinned; }

    /** Requests refused because the domain is pinned. */
    std::uint64_t pinnedRefusals() const { return pinnedRefused; }

    /** Register a pre-change listener. */
    void addListener(ChangeListener listener);

    /**
     * Install (or, with an empty function, remove) a fault gate that
     * screens every requestFreq().  Delayed transitions land after
     * latency + @p extra_latency.  setFreqNow() bypasses the gate:
     * it is the hotplug/test/reset path.
     */
    void setFaultGate(FaultGate gate, Tick extra_latency = 0);

    /** Requests refused by the fault gate. */
    std::uint64_t deniedRequests() const { return deniedCount; }

    /** Requests the fault gate applied late. */
    std::uint64_t delayedRequests() const { return delayedCount; }

    /** Number of completed frequency transitions. */
    std::uint64_t transitions() const { return transitionCount; }

    const std::string &name() const { return domainName; }

    /**
     * Write the domain's mutable state: current/ceiling/pending OPP
     * indices, the tick a pending transition lands at, and the
     * transition/fault counters.
     */
    void serialize(Serializer &s) const;

    /**
     * Restore state written by serialize().  A pending transition is
     * re-scheduled at its recorded tick (which must not be in the
     * past of the owning simulation).
     */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    std::string domainName; // ablint:allow(serialize-coverage): construction-time config (covers table)
    std::vector<Opp> table;
    Tick latency; // ablint:allow(serialize-coverage): construction-time config
    std::size_t curIndex = 0;
    std::size_t ceilingIndex;

    /** Index of a pending request, or size() when none. */
    std::size_t pendingIndex;
    CallbackEvent applyEvent;

    // ablint:allow(serialize-coverage): callback wiring, re-registered at construction
    std::vector<ChangeListener> listeners;
    std::uint64_t transitionCount = 0;

    FaultGate faultGate; // ablint:allow(serialize-coverage): fault wiring re-installed by the injector on rebuild (covers faultExtraLatency)
    Tick faultExtraLatency = 0;
    std::uint64_t deniedCount = 0;
    std::uint64_t delayedCount = 0;

    bool isPinned = false; // ablint:allow(serialize-coverage): pin re-applied by config replay; refusal counter is diagnostic
    std::uint64_t pinnedRefused = 0;

    std::size_t indexFor(FreqKHz target) const;
    void applyIndex(std::size_t index);
    void applyPending();
};

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_FREQ_DOMAIN_HH
