/**
 * @file
 * The four untrusted-input surfaces of the workbench as FuzzTargets:
 *
 *  - config:     ConfigIo key=value text  -> parseExperimentConfig()
 *  - checkpoint: Checkpoint binary bytes  -> Checkpoint::decode()
 *  - trace:      EventTrace binary bytes  -> EventTrace::decode()
 *  - argparse:   NUL-separated argv text  -> ArgParser::tryParse()
 *
 * Each target seeds the mutator with valid artifacts produced by
 * the corresponding encoder, and the binary targets add a
 * structure-aware mutation that re-fixes the trailing FNV-1a
 * checksum after mutating the body — without it, nearly every
 * mutant dies at the integrity gate and the deep decode logic
 * (string lengths, section counts, allocation sizing) never gets
 * exercised.
 */

#ifndef BIGLITTLE_FUZZ_TARGETS_HH
#define BIGLITTLE_FUZZ_TARGETS_HH

#include <memory>

#include "fuzz/fuzz.hh"

namespace biglittle
{

/** parseExperimentConfig() on arbitrary text. */
class ConfigFuzzTarget : public FuzzTarget
{
  public:
    std::string name() const override { return "config"; }
    std::vector<std::vector<std::uint8_t>> seedInputs() const override;
    bool mutate(Rng &rng,
                std::vector<std::uint8_t> &input) const override;
    void run(const std::vector<std::uint8_t> &input) const override;
};

/** Checkpoint::decode() on arbitrary bytes. */
class CheckpointFuzzTarget : public FuzzTarget
{
  public:
    std::string name() const override { return "checkpoint"; }
    std::vector<std::vector<std::uint8_t>> seedInputs() const override;
    bool mutate(Rng &rng,
                std::vector<std::uint8_t> &input) const override;
    void run(const std::vector<std::uint8_t> &input) const override;
};

/** EventTrace::decode() on arbitrary bytes. */
class TraceFuzzTarget : public FuzzTarget
{
  public:
    std::string name() const override { return "trace"; }
    std::vector<std::vector<std::uint8_t>> seedInputs() const override;
    bool mutate(Rng &rng,
                std::vector<std::uint8_t> &input) const override;
    void run(const std::vector<std::uint8_t> &input) const override;
};

/** ArgParser::tryParse() on a NUL-separated argv vector. */
class ArgparseFuzzTarget : public FuzzTarget
{
  public:
    std::string name() const override { return "argparse"; }
    std::vector<std::vector<std::uint8_t>> seedInputs() const override;
    void run(const std::vector<std::uint8_t> &input) const override;
};

/** All four targets, in the order abfuzz runs them. */
std::vector<std::unique_ptr<FuzzTarget>> allFuzzTargets();

/**
 * Mutate a checksum-terminated artifact: strip the trailing 8-byte
 * FNV-1a checksum, apply one generic mutation to the body, and
 * re-append the recomputed checksum.  Shared by the checkpoint and
 * trace targets.  Returns false (caller falls back to the generic
 * mutator, leaving the checksum broken — that path must also be
 * safe) on a seeded coin flip or when the input is too short.
 */
bool mutateBodyRefixChecksum(Rng &rng,
                             std::vector<std::uint8_t> &input);

} // namespace biglittle

#endif // BIGLITTLE_FUZZ_TARGETS_HH
