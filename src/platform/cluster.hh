/**
 * @file
 * Cluster: a set of identical cores sharing an L2 and a frequency
 * domain, with cluster-level static-energy accounting (the shared L2
 * and interconnect leak whenever the cluster is powered).
 */

#ifndef BIGLITTLE_PLATFORM_CLUSTER_HH
#define BIGLITTLE_PLATFORM_CLUSTER_HH

#include <memory>
#include <vector>

#include "base/types.hh"
#include "platform/cache.hh"
#include "platform/core.hh"
#include "platform/freq_domain.hh"
#include "platform/params.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class Serializer;
class Deserializer;

/** A homogeneous group of cores with shared L2 and clock. */
class Cluster
{
  public:
    /**
     * @param sim simulation context
     * @param params cluster description
     * @param first_id platform-wide id of this cluster's core 0
     * @param dvfs_latency frequency-transition latency for the domain
     */
    Cluster(Simulation &sim, const ClusterParams &params, CoreId first_id,
            Tick dvfs_latency, bool cpuidle_enabled = true);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    const std::string &name() const { return clusterParams.name; }
    CoreType type() const { return clusterParams.type; }
    const ClusterParams &params() const { return clusterParams; }

    FreqDomain &freqDomain() { return domain; }
    const FreqDomain &freqDomain() const { return domain; }

    const CacheModel &l2() const { return l2Model; }

    std::size_t coreCount() const { return coreList.size(); }
    Core &core(std::size_t i) { return *coreList.at(i); }
    const Core &core(std::size_t i) const { return *coreList.at(i); }

    /** Number of cores currently online. */
    std::size_t onlineCount() const;

    /** Number of cores currently busy. */
    std::size_t busyCount() const;

    /** Close cluster + core accounting intervals at the current time. */
    void sync();

    /** Called by a member core just before its state flips. */
    void preCoreStateChange();

    /** Integral of V over seconds with >=1 busy core. */
    double activeWeight() const { return activeW; }

    /** Integral of V over seconds powered but fully idle. */
    double idleWeight() const { return idleW; }

    /** Whether idle cores use the two-state cpuidle model. */
    bool cpuidleEnabled() const { return cpuidle; }

    /**
     * Write the cluster's accounting state, each member core, and
     * the frequency domain.  Call sync() first so every accounting
     * interval is closed at the current tick.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    ClusterParams clusterParams;
    // ablint:allow(serialize-coverage): stateless perf model built from ClusterParams
    CacheModel l2Model;
    FreqDomain domain;
    std::vector<std::unique_ptr<Core>> coreList;
    Tick lastUpdate = 0;
    // ablint:allow(serialize-coverage): construction-time config
    bool cpuidle;

    double activeW = 0.0;
    double idleW = 0.0;

    void accountTo(Tick now);
};

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_CLUSTER_HH
