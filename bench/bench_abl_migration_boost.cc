/**
 * @file
 * Ablation: the up-migration frequency boost.
 *
 * Without the boost, a task that hops to the big cluster runs at
 * the big minimum frequency (0.8 GHz - slower than a little core at
 * 1.3 GHz for low-ILP code) until the governor's next sample.  This
 * bench quantifies the latency and power effect of the boost across
 * the latency-oriented apps.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_abl_migration_boost",
                   "ablation: HMP up-migration frequency boost");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "latency_boost_ms", "latency_noboost_ms",
                     "latency_cost_pct", "power_boost_mw",
                     "power_noboost_mw"});
    }

    ExperimentConfig boost_cfg;
    boost_cfg.label = "boost";
    ExperimentConfig plain_cfg;
    plain_cfg.sched.upMigrationBoostFreq = 0;
    plain_cfg.label = "no-boost";

    const auto apps = latencyApps();
    const auto with_boost = runApps(boost_cfg, apps);
    const auto without = runApps(plain_cfg, apps);

    std::printf("%s\n",
                (padRight("app", 16) + padLeft("boost", 10) +
                 padLeft("no boost", 10) + padLeft("cost %", 9) +
                 padLeft("pwr boost", 11) + padLeft("pwr plain", 11))
                    .c_str());
    std::puts("  (latency in ms; cost = slowdown without the boost)");
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double lat_b = static_cast<double>(
            with_boost[i].latency) / static_cast<double>(oneMs);
        const double lat_p = static_cast<double>(without[i].latency) /
                             static_cast<double>(oneMs);
        const double cost = pctChange(lat_p, lat_b);
        std::printf("%s%10.1f%10.1f%9.1f%11.0f%11.0f\n",
                    padRight(apps[i].name, 16).c_str(), lat_b, lat_p,
                    cost, with_boost[i].avgPowerMw,
                    without[i].avgPowerMw);
        if (csv) {
            csv->beginRow();
            csv->cell(apps[i].name);
            csv->cell(lat_b);
            csv->cell(lat_p);
            csv->cell(cost);
            csv->cell(with_boost[i].avgPowerMw);
            csv->cell(without[i].avgPowerMw);
            csv->endRow();
        }
    }
    return 0;
}
