/**
 * @file
 * RaceDetector unit tests: conflict detection over same-(tick,
 * priority) batches, causal-ordering exemption, suppression (inline
 * allow rules, globs, baseline text), dedup/counting, provenance,
 * and the report format.
 */

#include <gtest/gtest.h>

#include "sim/abrace.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

/** Simulation with a detector attached for the fixture's lifetime. */
struct TrackedSim
{
    Simulation sim;
    RaceDetector race;

    TrackedSim() { sim.eventQueue().setRaceDetector(&race); }

    ~TrackedSim()
    {
        sim.eventQueue().setRaceDetector(nullptr);
    }

    void
    at(Tick when, const char *label, std::function<void()> fn,
       EventPriority prio = EventPriority::taskState)
    {
        sim.at(when, std::move(fn), prio, label);
    }

    void
    finish()
    {
        sim.runUntil(1000);
        race.finish();
    }
};

} // namespace

TEST(RaceDetector, WriteWriteConflictReported)
{
    TrackedSim t;
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "field"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "field"); });
    t.finish();

    ASSERT_EQ(t.race.conflicts().size(), 1u);
    const RaceDetector::Conflict &c = t.race.conflicts()[0];
    EXPECT_EQ(c.eventA, "a");
    EXPECT_EQ(c.eventB, "b");
    EXPECT_EQ(c.cell, "comp/field");
    EXPECT_TRUE(c.writeA);
    EXPECT_TRUE(c.writeB);
    EXPECT_EQ(c.tick, 10u);
    EXPECT_EQ(c.key(), "a|b|comp/field");
}

TEST(RaceDetector, ReadWriteConflictReported)
{
    TrackedSim t;
    t.at(10, "reader", [&] { t.sim.noteRead("comp", "field"); });
    t.at(10, "writer", [&] { t.sim.noteWrite("comp", "field"); });
    t.finish();

    ASSERT_EQ(t.race.conflicts().size(), 1u);
    const RaceDetector::Conflict &c = t.race.conflicts()[0];
    EXPECT_FALSE(c.writeA);
    EXPECT_TRUE(c.writeB);
    EXPECT_NE(c.describe().find("read-write"), std::string::npos);
}

TEST(RaceDetector, ReadReadIsNotAConflict)
{
    TrackedSim t;
    t.at(10, "a", [&] { t.sim.noteRead("comp", "field"); });
    t.at(10, "b", [&] { t.sim.noteRead("comp", "field"); });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
}

TEST(RaceDetector, DifferentCellsDoNotConflict)
{
    TrackedSim t;
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "x"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "y"); });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
}

TEST(RaceDetector, DifferentTickOrPriorityDoNotConflict)
{
    TrackedSim t;
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(11, "b", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(20, "c", [&] { t.sim.noteWrite("comp", "f"); },
         EventPriority::taskState);
    t.at(20, "d", [&] { t.sim.noteWrite("comp", "f"); },
         EventPriority::governor);
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
}

TEST(RaceDetector, CausallyOrderedEventsAreExempt)
{
    // a schedules b into its own batch: b is ordered after a, so
    // their shared cell is not contested.  c, scheduled up front, is
    // unordered with respect to both.
    TrackedSim t;
    t.at(10, "a", [&] {
        t.sim.noteWrite("comp", "f");
        t.at(10, "b", [&] { t.sim.noteWrite("comp", "f"); });
    });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
}

TEST(RaceDetector, TransitiveCausalityIsExempt)
{
    TrackedSim t;
    t.at(10, "a", [&] {
        t.sim.noteWrite("comp", "f");
        t.at(10, "b", [&] {
            t.at(10, "c", [&] { t.sim.noteWrite("comp", "f"); });
        });
    });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
}

TEST(RaceDetector, ScheduledChildStillConflictsWithUnrelatedPeer)
{
    TrackedSim t;
    t.at(10, "peer", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "a", [&] {
        t.at(10, "child", [&] { t.sim.noteWrite("comp", "f"); });
    });
    t.finish();
    // peer vs child are unordered (different parents).
    ASSERT_EQ(t.race.conflicts().size(), 1u);
    EXPECT_EQ(t.race.conflicts()[0].eventA, "peer");
    EXPECT_EQ(t.race.conflicts()[0].eventB, "child");
}

TEST(RaceDetector, DuplicateConflictsAreCountedOnce)
{
    TrackedSim t;
    for (Tick tick = 10; tick <= 30; tick += 10) {
        t.at(tick, "a", [&] { t.sim.noteWrite("comp", "f"); });
        t.at(tick, "b", [&] { t.sim.noteWrite("comp", "f"); });
    }
    t.finish();
    ASSERT_EQ(t.race.conflicts().size(), 1u);
    EXPECT_EQ(t.race.conflicts()[0].count, 3u);
    EXPECT_EQ(t.race.conflicts()[0].tick, 10u);
}

TEST(RaceDetector, InlineAllowSuppresses)
{
    TrackedSim t;
    t.race.allow("a", "b", "comp/f");
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "f"); });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
    EXPECT_EQ(t.race.suppressedCount(), 1u);
}

TEST(RaceDetector, AllowMatchesEitherOrderAndGlobs)
{
    TrackedSim t;
    t.race.allow("b*", "a", "comp/*");
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "b2", [&] { t.sim.noteWrite("comp", "f"); });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
    EXPECT_EQ(t.race.suppressedCount(), 1u);
}

TEST(RaceDetector, NonMatchingAllowDoesNotSuppress)
{
    TrackedSim t;
    t.race.allow("x", "y", "*");
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "f"); });
    t.finish();
    EXPECT_EQ(t.race.conflicts().size(), 1u);
    EXPECT_EQ(t.race.suppressedCount(), 0u);
}

TEST(RaceDetector, BaselineTextSuppressesAndSkipsComments)
{
    TrackedSim t;
    t.race.loadBaselineText("# comment line\n"
                            "\n"
                            "a|b|comp/f\n");
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "f"); });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
    EXPECT_EQ(t.race.suppressedCount(), 1u);
}

TEST(RaceDetector, MissingBaselineFileIsAnError)
{
    RaceDetector race;
    const Status st =
        race.loadBaseline("/nonexistent/abrace-baseline.txt");
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::notFound);
}

TEST(RaceDetector, ProvenanceNamesTheSchedulingEvent)
{
    TrackedSim t;
    t.at(10, "peer", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "parent", [&] {
        t.at(10, "child", [&] { t.sim.noteWrite("comp", "f"); });
    });
    t.finish();
    ASSERT_EQ(t.race.conflicts().size(), 1u);
    const RaceDetector::Conflict &c = t.race.conflicts()[0];
    EXPECT_NE(c.provenanceA.find("outside any event"),
              std::string::npos);
    EXPECT_NE(c.provenanceB.find("during 'parent'"),
              std::string::npos);
    const std::string report = t.race.report();
    EXPECT_NE(report.find("peer"), std::string::npos);
    EXPECT_NE(report.find("child"), std::string::npos);
    EXPECT_NE(report.find("comp/f"), std::string::npos);
    // Baseline keys are canonical: event names in sorted order.
    EXPECT_NE(report.find("child|peer|comp/f"), std::string::npos);
}

TEST(RaceDetector, AccessesOutsideEventsAreIgnored)
{
    TrackedSim t;
    t.sim.noteWrite("comp", "f"); // outside any handler
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.finish();
    EXPECT_TRUE(t.race.conflicts().empty());
    EXPECT_EQ(t.race.eventsTracked(), 1u);
}

TEST(RaceDetector, WriteDominatesRead)
{
    TrackedSim t;
    t.at(10, "a", [&] {
        t.sim.noteRead("comp", "f");
        t.sim.noteWrite("comp", "f");
    });
    t.at(10, "b", [&] { t.sim.noteRead("comp", "f"); });
    t.finish();
    ASSERT_EQ(t.race.conflicts().size(), 1u);
    EXPECT_TRUE(t.race.conflicts()[0].writeA);
    EXPECT_FALSE(t.race.conflicts()[0].writeB);
}

TEST(RaceDetector, CleanRunReportIsEmpty)
{
    TrackedSim t;
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "x"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "y"); });
    t.finish();
    EXPECT_EQ(t.race.report(), "");
    EXPECT_EQ(t.race.batchesAnalyzed(), 1u);
    EXPECT_EQ(t.race.eventsTracked(), 2u);
}

#ifdef ABRACE_BASELINE_PATH
/**
 * Meta-test mirroring ablint's AblintRepo: the checked-in baseline
 * (tools/abrace/baseline.txt) must load cleanly and suppress
 * NOTHING - conflicts get fixed with distinct priorities or inline
 * allows, never parked in the baseline (docs/DETERMINISM.md).
 */
TEST(RaceDetector, CheckedInBaselineLoadsAndIsEmpty)
{
    TrackedSim t;
    ASSERT_TRUE(t.race.loadBaseline(ABRACE_BASELINE_PATH).ok());
    // A synthetic conflict must still be reported: nothing in the
    // shipped file may act as a suppression rule.
    t.at(10, "a", [&] { t.sim.noteWrite("comp", "f"); });
    t.at(10, "b", [&] { t.sim.noteWrite("comp", "f"); });
    t.finish();
    EXPECT_EQ(t.race.conflicts().size(), 1u);
    EXPECT_EQ(t.race.suppressedCount(), 0u);
}
#endif
