/**
 * @file
 * Tests for the Task state machine and work bookkeeping.
 */

#include "sched_fixture.hh"

using namespace biglittle;
using namespace biglittle::test;

using TaskTest = SchedFixture;

TEST_F(TaskTest, CreatedSleepingWithNoWork)
{
    Task &t = sched.createTask("t", pureCompute());
    EXPECT_EQ(t.state(), TaskState::sleeping);
    EXPECT_TRUE(t.drained());
    EXPECT_EQ(t.core(), nullptr);
    EXPECT_DOUBLE_EQ(t.instructionsRetired(), 0.0);
    EXPECT_FALSE(t.pinnedCore().has_value());
}

TEST_F(TaskTest, SubmitWorkWakesAndRuns)
{
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(1e6);
    EXPECT_EQ(t.state(), TaskState::running);
    ASSERT_NE(t.core(), nullptr);
    EXPECT_EQ(t.core()->type(), CoreType::little);
}

TEST_F(TaskTest, WorkDrainsAndClientIsNotified)
{
    Task &t = sched.createTask("t", pureCompute());
    RecordingClient client;
    client.sim = &sim;
    t.setClient(&client);
    t.submitWork(1e6); // ~1 ms on a little core at 1.3 GHz
    sim.runFor(msToTicks(50));
    EXPECT_EQ(t.state(), TaskState::sleeping);
    ASSERT_EQ(client.drains.size(), 1u);
    EXPECT_GT(client.drains[0], 0u);
    EXPECT_NEAR(t.instructionsRetired(), 1e6, 1.0);
}

TEST_F(TaskTest, SubmitWhileRunnableAccumulates)
{
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(5e6);
    t.submitWork(3e6);
    EXPECT_DOUBLE_EQ(t.pendingInstructions(), 8e6);
    EXPECT_EQ(t.state(), TaskState::running);
}

TEST_F(TaskTest, DrainTimeMatchesAnalyticRate)
{
    Task &t = sched.createTask("t", pureCompute());
    RecordingClient client;
    client.sim = &sim;
    t.setClient(&client);
    const double rate = perf_model::instRate(
        plat.littleCluster().core(0), pureCompute());
    const double insts = 10e6;
    t.submitWork(insts);
    sim.runFor(msToTicks(100));
    ASSERT_EQ(client.drains.size(), 1u);
    const double expected_ns = insts / rate * 1e9;
    EXPECT_NEAR(static_cast<double>(client.drains[0]), expected_ns,
                expected_ns * 0.01 + 1000.0);
}

TEST_F(TaskTest, PinnedTaskRunsOnPinnedCore)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{6});
    t.submitWork(1e6);
    ASSERT_NE(t.core(), nullptr);
    EXPECT_EQ(t.core()->id(), 6u);
    EXPECT_EQ(t.core()->type(), CoreType::big);
}

TEST_F(TaskTest, FinishedTaskIgnoresWork)
{
    Task &t = sched.createTask("t", pureCompute());
    t.finish();
    EXPECT_EQ(t.state(), TaskState::finished);
    t.submitWork(1e6);
    EXPECT_TRUE(t.drained());
    EXPECT_EQ(t.state(), TaskState::finished);
}

TEST_F(TaskTest, FinishWhileRunnablePanics)
{
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(1e9);
    EXPECT_DEATH(t.finish(), "not sleeping");
}

TEST_F(TaskTest, SubmitZeroWorkAsserts)
{
    Task &t = sched.createTask("t", pureCompute());
    EXPECT_DEATH(t.submitWork(0.0), "assertion");
}

TEST_F(TaskTest, LastCoreIdTracksPlacement)
{
    Task &t = sched.createTask("t", pureCompute());
    EXPECT_EQ(t.lastCoreId(), invalidCoreId);
    t.submitWork(1e5);
    const CoreId first = t.lastCoreId();
    EXPECT_NE(first, invalidCoreId);
    sim.runFor(msToTicks(20));
    // Re-wakeup lands on the same (idle) core: wakeup affinity.
    t.submitWork(1e5);
    EXPECT_EQ(t.lastCoreId(), first);
}

TEST_F(TaskTest, PinToNonexistentCoreIsFatal)
{
    EXPECT_EXIT(sched.createTask("t", pureCompute(), CoreId{99}),
                ::testing::ExitedWithCode(1), "nonexistent core");
}

TEST_F(TaskTest, RepeatedCyclesAccumulateRetired)
{
    Task &t = sched.createTask("t", pureCompute());
    RecordingClient client;
    client.sim = &sim;
    t.setClient(&client);
    for (int i = 0; i < 5; ++i) {
        t.submitWork(1e6);
        sim.runFor(msToTicks(20));
    }
    EXPECT_EQ(client.drains.size(), 5u);
    EXPECT_NEAR(t.instructionsRetired(), 5e6, 5.0);
}
