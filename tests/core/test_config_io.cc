/**
 * @file
 * Tests for the ExperimentConfig text format: parsing, defaults,
 * comments, error handling, and save/parse round-trips.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/config_io.hh"

using namespace biglittle;

namespace
{

/** Unwrap a Result<ExperimentConfig>, failing the test on error. */
ExperimentConfig
parseOk(const std::string &text)
{
    Result<ExperimentConfig> r = parseExperimentConfig(text);
    EXPECT_TRUE(r.ok()) << r.status().toString();
    return r.ok() ? r.value() : ExperimentConfig{};
}

/** The Status of a parse that is expected to fail. */
Status
parseErr(const std::string &text)
{
    Result<ExperimentConfig> r = parseExperimentConfig(text);
    EXPECT_FALSE(r.ok());
    return r.ok() ? okStatus() : r.status();
}

} // namespace

TEST(ConfigIo, EmptyTextYieldsDefaults)
{
    const ExperimentConfig cfg = parseOk("");
    EXPECT_EQ(cfg.governor, GovernorKind::interactive);
    EXPECT_EQ(cfg.sched.upThreshold, 700u);
    EXPECT_EQ(cfg.coreConfig.littleCores, 4u);
    EXPECT_EQ(cfg.coreConfig.bigCores, 4u);
    EXPECT_TRUE(cfg.thermalEnabled);
}

TEST(ConfigIo, ParsesAllKeyKinds)
{
    const ExperimentConfig cfg = parseOk(R"(
# a Section VI-C style point
governor = ondemand
label = my-point
interactive.sampling_ms = 60
interactive.target_load = 80
sched.up_threshold = 850
sched.down_threshold = 400
sched.half_life_ms = 64
sched.boost_khz = 0
cores.little = 2
cores.big = 1
thermal.enabled = false
sample_window_ms = 20
)");
    EXPECT_EQ(cfg.governor, GovernorKind::ondemand);
    EXPECT_EQ(cfg.label, "my-point");
    EXPECT_EQ(cfg.interactive.samplingRate, msToTicks(60));
    EXPECT_DOUBLE_EQ(cfg.interactive.targetLoad, 80.0);
    EXPECT_EQ(cfg.sched.upThreshold, 850u);
    EXPECT_EQ(cfg.sched.downThreshold, 400u);
    EXPECT_DOUBLE_EQ(cfg.sched.loadHalfLifeMs, 64.0);
    EXPECT_EQ(cfg.sched.upMigrationBoostFreq, 0u);
    EXPECT_EQ(cfg.coreConfig.littleCores, 2u);
    EXPECT_EQ(cfg.coreConfig.bigCores, 1u);
    EXPECT_EQ(cfg.coreConfig.label, "L2+B1");
    EXPECT_FALSE(cfg.thermalEnabled);
    EXPECT_EQ(cfg.sampleWindow, msToTicks(20));
}

TEST(ConfigIo, CommentsAndWhitespaceIgnored)
{
    const ExperimentConfig cfg = parseOk(
        "  # full-line comment\n"
        "\n"
        "   governor =   powersave   # trailing comment\n");
    EXPECT_EQ(cfg.governor, GovernorKind::powersave);
}

TEST(ConfigIo, BooleanSpellings)
{
    for (const char *yes : {"true", "1", "yes", "on"}) {
        const ExperimentConfig cfg =
            parseOk(std::string("thermal.enabled = ") + yes);
        EXPECT_TRUE(cfg.thermalEnabled) << yes;
    }
    for (const char *no : {"false", "0", "no", "off"}) {
        const ExperimentConfig cfg =
            parseOk(std::string("thermal.enabled = ") + no);
        EXPECT_FALSE(cfg.thermalEnabled) << no;
    }
}

TEST(ConfigIo, UnknownKeyIsAnError)
{
    const Status st = parseErr("bogus.key = 1");
    EXPECT_EQ(st.code(), StatusCode::invalidArgument);
    EXPECT_NE(st.message().find("unknown config key"),
              std::string::npos);
}

TEST(ConfigIo, UnknownKeyReportsLineNumber)
{
    const Status st = parseErr("# comment\n"
                               "governor = ondemand\n"
                               "bogus.key = 1\n");
    EXPECT_NE(st.message().find("line 3: unknown config key "
                                "'bogus.key'"),
              std::string::npos);
}

TEST(ConfigIo, MalformedLineIsAnError)
{
    const Status st = parseErr("governor interactive");
    EXPECT_NE(st.message().find("expected 'key = value'"),
              std::string::npos);
}

TEST(ConfigIo, NonNumericValueIsAnError)
{
    const Status st = parseErr("sched.up_threshold = high");
    EXPECT_NE(st.message().find("not a number"), std::string::npos);
}

TEST(ConfigIo, NonNumericValueReportsLineAndKey)
{
    const Status st = parseErr("\n\nsched.up_threshold = high");
    EXPECT_NE(st.message().find("line 3: key 'sched.up_threshold': "
                                "'high' is not a number"),
              std::string::npos);
}

TEST(ConfigIo, BadBooleanReportsLineAndKey)
{
    const Status st = parseErr("fault.enabled = maybe");
    EXPECT_NE(st.message().find("line 1: key 'fault.enabled': "
                                "'maybe' is not a boolean"),
              std::string::npos);
}

TEST(ConfigIo, UnknownGovernorIsAnError)
{
    const Status st = parseErr("governor = warpdrive");
    EXPECT_NE(st.message().find("unknown governor"),
              std::string::npos);
}

TEST(ConfigIo, NegativeUnsignedValueIsAnError)
{
    const Status st = parseErr("seed = -7");
    EXPECT_NE(st.message().find("out of range"), std::string::npos);
}

TEST(ConfigIo, EmptyKeyOrValueIsAnError)
{
    EXPECT_NE(parseErr("= 5").message().find("empty key or value"),
              std::string::npos);
    EXPECT_NE(parseErr("seed =").message().find("empty key or value"),
              std::string::npos);
}

TEST(ConfigIo, MissingFileIsAnError)
{
    Result<ExperimentConfig> r =
        loadExperimentConfig("/nonexistent/x.conf");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::notFound);
    EXPECT_NE(r.status().message().find("cannot open config"),
              std::string::npos);
}

TEST(ConfigIo, SaveParseRoundTrip)
{
    ExperimentConfig cfg;
    cfg.governor = GovernorKind::schedutil;
    cfg.label = "round-trip";
    cfg.interactive.samplingRate = msToTicks(100);
    cfg.interactive.targetLoad = 60.0;
    cfg.sched.upThreshold = 550;
    cfg.sched.downThreshold = 100;
    cfg.sched.loadHalfLifeMs = 16.0;
    cfg.sched.upMigrationBoostFreq = 1700000;
    cfg.coreConfig = {3, 2, "L3+B2"};
    cfg.thermalEnabled = false;
    cfg.userspaceBigFreq = 1100000;

    const ExperimentConfig back =
        parseOk(saveExperimentConfig(cfg));
    EXPECT_EQ(back.governor, cfg.governor);
    EXPECT_EQ(back.label, cfg.label);
    EXPECT_EQ(back.interactive.samplingRate,
              cfg.interactive.samplingRate);
    EXPECT_DOUBLE_EQ(back.interactive.targetLoad,
                     cfg.interactive.targetLoad);
    EXPECT_EQ(back.sched.upThreshold, cfg.sched.upThreshold);
    EXPECT_EQ(back.sched.downThreshold, cfg.sched.downThreshold);
    EXPECT_DOUBLE_EQ(back.sched.loadHalfLifeMs,
                     cfg.sched.loadHalfLifeMs);
    EXPECT_EQ(back.sched.upMigrationBoostFreq,
              cfg.sched.upMigrationBoostFreq);
    EXPECT_EQ(back.coreConfig.littleCores, cfg.coreConfig.littleCores);
    EXPECT_EQ(back.coreConfig.bigCores, cfg.coreConfig.bigCores);
    EXPECT_EQ(back.thermalEnabled, cfg.thermalEnabled);
    EXPECT_EQ(back.userspaceBigFreq, cfg.userspaceBigFreq);
}

TEST(ConfigIo, ParsesFaultKeys)
{
    const ExperimentConfig cfg = parseOk(R"(
fault.enabled = true
fault.seed = 99
fault.draw_period_ms = 5
fault.hotplug_rate_hz = 2.5
fault.hotplug_downtime_ms = 100
fault.dvfs_deny_prob = 0.25
fault.dvfs_delay_prob = 0.1
fault.dvfs_extra_latency_us = 750
fault.thermal_spike_rate_hz = 1.5
fault.thermal_spike_c = 15
fault.task_stall_rate_hz = 3
fault.task_stall_instructions = 5e6
)");
    EXPECT_TRUE(cfg.fault.enabled);
    EXPECT_EQ(cfg.fault.seed, 99u);
    EXPECT_EQ(cfg.fault.drawPeriod, msToTicks(5));
    EXPECT_DOUBLE_EQ(cfg.fault.hotplugRatePerSec, 2.5);
    EXPECT_EQ(cfg.fault.hotplugDownTime, msToTicks(100));
    EXPECT_DOUBLE_EQ(cfg.fault.dvfsDenyProb, 0.25);
    EXPECT_DOUBLE_EQ(cfg.fault.dvfsDelayProb, 0.1);
    EXPECT_EQ(cfg.fault.dvfsExtraLatency, usToTicks(750));
    EXPECT_DOUBLE_EQ(cfg.fault.thermalSpikeRatePerSec, 1.5);
    EXPECT_DOUBLE_EQ(cfg.fault.thermalSpikeC, 15.0);
    EXPECT_DOUBLE_EQ(cfg.fault.taskStallRatePerSec, 3.0);
    EXPECT_DOUBLE_EQ(cfg.fault.taskStallInstructions, 5e6);
}

TEST(ConfigIo, FaultKeysRoundTrip)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(1.5, 31);
    const ExperimentConfig back =
        parseOk(saveExperimentConfig(cfg));
    EXPECT_EQ(back.fault.enabled, cfg.fault.enabled);
    EXPECT_EQ(back.fault.seed, cfg.fault.seed);
    EXPECT_DOUBLE_EQ(back.fault.hotplugRatePerSec,
                     cfg.fault.hotplugRatePerSec);
    EXPECT_EQ(back.fault.hotplugDownTime, cfg.fault.hotplugDownTime);
    EXPECT_DOUBLE_EQ(back.fault.dvfsDenyProb, cfg.fault.dvfsDenyProb);
    EXPECT_DOUBLE_EQ(back.fault.dvfsDelayProb,
                     cfg.fault.dvfsDelayProb);
    EXPECT_EQ(back.fault.dvfsExtraLatency, cfg.fault.dvfsExtraLatency);
    EXPECT_DOUBLE_EQ(back.fault.thermalSpikeRatePerSec,
                     cfg.fault.thermalSpikeRatePerSec);
    EXPECT_DOUBLE_EQ(back.fault.thermalSpikeC, cfg.fault.thermalSpikeC);
    EXPECT_DOUBLE_EQ(back.fault.taskStallRatePerSec,
                     cfg.fault.taskStallRatePerSec);
    EXPECT_DOUBLE_EQ(back.fault.taskStallInstructions,
                     cfg.fault.taskStallInstructions);
}

TEST(ConfigIo, FileRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "biglittle_config_test.conf";
    ExperimentConfig cfg;
    cfg.governor = GovernorKind::conservative;
    cfg.coreConfig = {2, 2, "L2+B2"};
    ASSERT_TRUE(writeExperimentConfig(cfg, path).ok());
    Result<ExperimentConfig> back = loadExperimentConfig(path);
    ASSERT_TRUE(back.ok()) << back.status().toString();
    EXPECT_EQ(back.value().governor, GovernorKind::conservative);
    EXPECT_EQ(back.value().coreConfig.bigCores, 2u);
    std::remove(path.c_str());
}

TEST(ConfigIo, GovernorNamesRoundTrip)
{
    for (const GovernorKind kind :
         {GovernorKind::interactive, GovernorKind::performance,
          GovernorKind::powersave, GovernorKind::ondemand,
          GovernorKind::conservative, GovernorKind::schedutil,
          GovernorKind::userspace}) {
        Result<GovernorKind> back =
            governorKindFromName(governorKindName(kind));
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back.value(), kind);
    }
}

TEST(ConfigIo, ParsesSnapshotAndWatchdogKeys)
{
    const ExperimentConfig cfg = parseOk(R"(
seed = 777
snapshot.checkpoint_every_ms = 250
snapshot.checkpoint_dir = /tmp/ckpts
snapshot.resume = /tmp/ckpts/run.ckpt
snapshot.record_trace = /tmp/run.trace
watchdog.enabled = true
watchdog.stall_limit_sec = 12.5
watchdog.runaway_limit_sec = 3600
watchdog.report = /tmp/watchdog.txt
watchdog.ring_depth = 128
)");
    EXPECT_EQ(cfg.masterSeed, 777u);
    EXPECT_EQ(cfg.snapshot.checkpointEvery, msToTicks(250));
    EXPECT_EQ(cfg.snapshot.checkpointDir, "/tmp/ckpts");
    EXPECT_EQ(cfg.snapshot.resumePath, "/tmp/ckpts/run.ckpt");
    EXPECT_EQ(cfg.snapshot.recordTracePath, "/tmp/run.trace");
    EXPECT_TRUE(cfg.watchdog.enabled);
    EXPECT_DOUBLE_EQ(cfg.watchdog.stallLimitSec, 12.5);
    EXPECT_DOUBLE_EQ(cfg.watchdog.runawayLimitSec, 3600.0);
    EXPECT_EQ(cfg.watchdog.reportPath, "/tmp/watchdog.txt");
    EXPECT_EQ(cfg.watchdog.ringDepth, 128u);
}

TEST(ConfigIo, ParsesReplayTraceKey)
{
    const ExperimentConfig cfg =
        parseOk("snapshot.replay_trace = /tmp/ref.trace");
    EXPECT_EQ(cfg.snapshot.replayTracePath, "/tmp/ref.trace");
}

TEST(ConfigIo, SnapshotAndWatchdogKeysRoundTrip)
{
    ExperimentConfig cfg;
    cfg.masterSeed = 424242;
    cfg.snapshot.checkpointEvery = msToTicks(500);
    cfg.snapshot.checkpointDir = "/var/ckpt";
    cfg.snapshot.resumePath = "/var/ckpt/app.default.5.ckpt";
    cfg.snapshot.recordTracePath = "/var/ckpt/app.trace";
    cfg.watchdog.enabled = true;
    cfg.watchdog.stallLimitSec = 45.0;
    cfg.watchdog.runawayLimitSec = 900.0;
    cfg.watchdog.reportPath = "/var/ckpt/dog.txt";
    cfg.watchdog.ringDepth = 32;

    const ExperimentConfig back =
        parseOk(saveExperimentConfig(cfg));
    EXPECT_EQ(back.masterSeed, cfg.masterSeed);
    EXPECT_EQ(back.snapshot.checkpointEvery,
              cfg.snapshot.checkpointEvery);
    EXPECT_EQ(back.snapshot.checkpointDir, cfg.snapshot.checkpointDir);
    EXPECT_EQ(back.snapshot.resumePath, cfg.snapshot.resumePath);
    EXPECT_EQ(back.snapshot.recordTracePath,
              cfg.snapshot.recordTracePath);
    EXPECT_EQ(back.watchdog.enabled, cfg.watchdog.enabled);
    EXPECT_DOUBLE_EQ(back.watchdog.stallLimitSec,
                     cfg.watchdog.stallLimitSec);
    EXPECT_DOUBLE_EQ(back.watchdog.runawayLimitSec,
                     cfg.watchdog.runawayLimitSec);
    EXPECT_EQ(back.watchdog.reportPath, cfg.watchdog.reportPath);
    EXPECT_EQ(back.watchdog.ringDepth, cfg.watchdog.ringDepth);
}

TEST(ConfigIo, DefaultSnapshotConfigRoundTripsWithEmptyPaths)
{
    // Empty path values are omitted on save (the parser rejects a
    // key with no value), so defaults must survive a round trip.
    const ExperimentConfig back =
        parseOk(saveExperimentConfig(ExperimentConfig{}));
    EXPECT_EQ(back.masterSeed, 0u);
    EXPECT_EQ(back.snapshot.checkpointEvery, 0u);
    EXPECT_TRUE(back.snapshot.resumePath.empty());
    EXPECT_TRUE(back.snapshot.recordTracePath.empty());
    EXPECT_TRUE(back.snapshot.replayTracePath.empty());
    EXPECT_FALSE(back.watchdog.enabled);
}
