/**
 * @file
 * Tests for the Checkpoint container: encode/decode round trips,
 * rejection of damaged files (magic, version, checksum, truncation),
 * crash-safe file I/O, and section-attributing comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sys/stat.h>

#include "base/serialize.hh"
#include "snapshot/checkpoint.hh"

using namespace biglittle;

namespace
{

Checkpoint
sampleCheckpoint()
{
    Checkpoint ckpt;
    ckpt.app = "angry_bird";
    ckpt.label = "default";
    ckpt.masterSeed = 42;
    ckpt.tick = 123456789;
    ckpt.eventsServiced = 9876;
    ckpt.nextSequence = 10001;
    ckpt.add("eventq", {1, 2, 3, 4});
    ckpt.add("sched", {0xAA, 0xBB});
    ckpt.add("app", {});
    return ckpt;
}

} // namespace

TEST(Checkpoint, EncodeDecodeRoundTrip)
{
    const Checkpoint ckpt = sampleCheckpoint();
    const auto bytes = ckpt.encode();
    const Result<Checkpoint> back = Checkpoint::decode(bytes);
    ASSERT_TRUE(back.ok()) << back.status().message();

    EXPECT_EQ(back.value().app, ckpt.app);
    EXPECT_EQ(back.value().label, ckpt.label);
    EXPECT_EQ(back.value().masterSeed, ckpt.masterSeed);
    EXPECT_EQ(back.value().tick, ckpt.tick);
    EXPECT_EQ(back.value().eventsServiced, ckpt.eventsServiced);
    EXPECT_EQ(back.value().nextSequence, ckpt.nextSequence);
    ASSERT_EQ(back.value().sections.size(), 3u);
    EXPECT_EQ(back.value().sections[0].name, "eventq");
    EXPECT_EQ(back.value().sections[0].payload,
              (std::vector<std::uint8_t>{1, 2, 3, 4}));
    EXPECT_TRUE(back.value().sections[2].payload.empty());
}

TEST(Checkpoint, ReencodeIsByteIdentical)
{
    const Checkpoint ckpt = sampleCheckpoint();
    const auto bytes = ckpt.encode();
    const Result<Checkpoint> back = Checkpoint::decode(bytes);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().encode(), bytes);
}

TEST(Checkpoint, ByteSizeMatchesEncoding)
{
    const Checkpoint ckpt = sampleCheckpoint();
    EXPECT_EQ(ckpt.byteSize(), ckpt.encode().size());
}

TEST(Checkpoint, FindLocatesSections)
{
    const Checkpoint ckpt = sampleCheckpoint();
    ASSERT_NE(ckpt.find("sched"), nullptr);
    EXPECT_EQ(ckpt.find("sched")->payload.size(), 2u);
    EXPECT_EQ(ckpt.find("nope"), nullptr);
}

TEST(Checkpoint, CorruptedByteIsRejected)
{
    auto bytes = sampleCheckpoint().encode();
    bytes[bytes.size() / 2] ^= 0x01;
    const Result<Checkpoint> back = Checkpoint::decode(bytes);
    ASSERT_FALSE(back.ok());
    EXPECT_NE(back.status().message().find("checksum"),
              std::string::npos);
}

TEST(Checkpoint, TruncationIsRejected)
{
    auto bytes = sampleCheckpoint().encode();
    // Truncation at every prefix length must fail cleanly, never
    // crash: the trailing checksum no longer matches the body.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{4}, std::size_t{9},
          bytes.size() / 2, bytes.size() - 1}) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + keep);
        EXPECT_FALSE(Checkpoint::decode(cut).ok()) << keep;
    }
}

TEST(Checkpoint, BadMagicIsRejected)
{
    // Rebuild a well-formed file with the wrong magic so the
    // checksum is self-consistent and the magic check itself fires.
    Serializer s;
    s.putU32(0xDEADBEEFU);
    s.putU32(checkpointVersion);
    s.putString("a");
    s.putString("b");
    for (int i = 0; i < 5; ++i)
        s.putU64(0);
    s.putU64(s.digest());
    const Result<Checkpoint> back = Checkpoint::decode(s.bytes());
    ASSERT_FALSE(back.ok());
    EXPECT_NE(back.status().message().find("magic"),
              std::string::npos);
}

TEST(Checkpoint, FutureVersionIsRejected)
{
    Serializer s;
    s.putU32(checkpointMagic);
    s.putU32(checkpointVersion + 1);
    s.putString("a");
    s.putString("b");
    for (int i = 0; i < 5; ++i)
        s.putU64(0);
    s.putU64(s.digest());
    const Result<Checkpoint> back = Checkpoint::decode(s.bytes());
    ASSERT_FALSE(back.ok());
    EXPECT_NE(back.status().message().find("version"),
              std::string::npos);
}

TEST(Checkpoint, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "bl_ckpt_rt.ckpt";
    const Checkpoint ckpt = sampleCheckpoint();
    ASSERT_TRUE(ckpt.writeFile(path).ok());
    const Result<Checkpoint> back = Checkpoint::readFile(path);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(back.value().encode(), ckpt.encode());
    std::remove(path.c_str());
}

TEST(Checkpoint, WriteLeavesNoTempFile)
{
    const std::string path = ::testing::TempDir() + "bl_ckpt_tmp.ckpt";
    ASSERT_TRUE(sampleCheckpoint().writeFile(path).ok());
    std::ifstream tmp(path + ".tmp");
    EXPECT_FALSE(tmp.good());
    std::remove(path.c_str());
}

TEST(Checkpoint, WriteToBadDirectoryFailsGracefully)
{
    const Status st =
        sampleCheckpoint().writeFile("/nonexistent-dir/x.ckpt");
    EXPECT_FALSE(st.ok());
}

TEST(Checkpoint, MissingFileFailsGracefully)
{
    const Result<Checkpoint> back =
        Checkpoint::readFile("/nonexistent-dir/x.ckpt");
    ASSERT_FALSE(back.ok());
    EXPECT_EQ(back.status().code(), StatusCode::notFound);
}

TEST(CompareCheckpoints, IdenticalIsOk)
{
    const Checkpoint a = sampleCheckpoint();
    const Checkpoint b = sampleCheckpoint();
    EXPECT_TRUE(compareCheckpoints(a, b).ok());
}

TEST(CompareCheckpoints, DifferingSectionIsNamed)
{
    const Checkpoint a = sampleCheckpoint();
    Checkpoint b = sampleCheckpoint();
    b.sections[1].payload = {0xAA, 0xCC};
    const Status st = compareCheckpoints(a, b);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("section 'sched'"), std::string::npos);
    EXPECT_NE(st.message().find("digest"), std::string::npos);
}

TEST(CompareCheckpoints, MissingSectionIsNamed)
{
    const Checkpoint a = sampleCheckpoint();
    Checkpoint b = sampleCheckpoint();
    b.sections.pop_back();
    const Status st = compareCheckpoints(a, b);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("'app' missing"), std::string::npos);
}

TEST(CompareCheckpoints, ExtraSectionIsNamed)
{
    const Checkpoint a = sampleCheckpoint();
    Checkpoint b = sampleCheckpoint();
    b.add("mystery", {1});
    const Status st = compareCheckpoints(a, b);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("extra section 'mystery'"),
              std::string::npos);
}

TEST(CompareCheckpoints, TickMismatchIsReported)
{
    const Checkpoint a = sampleCheckpoint();
    Checkpoint b = sampleCheckpoint();
    b.tick += 1;
    const Status st = compareCheckpoints(a, b);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("tick mismatch"), std::string::npos);
}

TEST(CheckpointRotation, RewriteKeepsPreviousGeneration)
{
    const std::string path =
        ::testing::TempDir() + "bl_ckpt_rot.ckpt";
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());

    Checkpoint first = sampleCheckpoint();
    first.tick = 100;
    ASSERT_TRUE(first.writeFile(path).ok());

    Checkpoint second = sampleCheckpoint();
    second.tick = 200;
    ASSERT_TRUE(second.writeFile(path).ok());

    const Result<Checkpoint> now = Checkpoint::readFile(path);
    const Result<Checkpoint> prev =
        Checkpoint::readFile(path + ".1");
    ASSERT_TRUE(now.ok()) << now.status().message();
    ASSERT_TRUE(prev.ok()) << prev.status().message();
    EXPECT_EQ(now.value().tick, 200u);
    EXPECT_EQ(prev.value().tick, 100u);

    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(CheckpointRotation, CandidatesListNewestFirst)
{
    const std::string dir =
        ::testing::TempDir() + "bl_ckpt_cand";
    ::mkdir(dir.c_str(), 0755);
    const auto write = [&](Tick tick) {
        Checkpoint c = sampleCheckpoint();
        c.tick = tick;
        const std::string p =
            dir + "/app.default." + std::to_string(tick) + ".ckpt";
        ASSERT_TRUE(c.writeFile(p).ok());
    };
    write(400);
    write(800);
    write(1200);

    const std::string primary = dir + "/app.default.1200.ckpt";
    const auto candidates = checkpointCandidates(primary);
    // Primary, its rotation chain, then older ticks descending.
    ASSERT_GE(candidates.size(), 5u);
    EXPECT_EQ(candidates[0], primary);
    EXPECT_EQ(candidates[1], primary + ".1");
    EXPECT_EQ(candidates[2], primary + ".2");
    EXPECT_EQ(candidates[3], dir + "/app.default.800.ckpt");
    EXPECT_EQ(candidates[4], dir + "/app.default.400.ckpt");
}

TEST(CheckpointRotation, NonTickNameStillListsRotationSiblings)
{
    const auto candidates = checkpointCandidates("/tmp/foo.bin");
    ASSERT_EQ(candidates.size(), 3u);
    EXPECT_EQ(candidates[0], "/tmp/foo.bin");
    EXPECT_EQ(candidates[1], "/tmp/foo.bin.1");
    EXPECT_EQ(candidates[2], "/tmp/foo.bin.2");
}

TEST(CheckpointRotation, RepeatedRewritesNeverClobberNewestGood)
{
    // The rollback-retry loop rewrites the same checkpoint path once
    // per attempt.  The rotation chain must shift .1 -> .2 before
    // the primary rotates into .1: with the old single-slot scheme,
    // write 3 would overwrite the .1 holding write 2 - the newest
    // good generation - leaving only the (possibly corrupt) primary.
    const std::string path =
        ::testing::TempDir() + "bl_ckpt_chain.ckpt";
    for (const char *suffix : {"", ".1", ".2"})
        std::remove((path + suffix).c_str());

    for (const Tick tick : {Tick{100}, Tick{200}, Tick{300}}) {
        Checkpoint c = sampleCheckpoint();
        c.tick = tick;
        ASSERT_TRUE(c.writeFile(path).ok());
    }

    const Result<Checkpoint> now = Checkpoint::readFile(path);
    const Result<Checkpoint> one = Checkpoint::readFile(path + ".1");
    const Result<Checkpoint> two = Checkpoint::readFile(path + ".2");
    ASSERT_TRUE(now.ok()) << now.status().message();
    ASSERT_TRUE(one.ok()) << one.status().message();
    ASSERT_TRUE(two.ok()) << two.status().message();
    EXPECT_EQ(now.value().tick, 300u);
    EXPECT_EQ(one.value().tick, 200u);
    EXPECT_EQ(two.value().tick, 100u);

    // A fourth write drops the oldest generation, keeps the rest.
    Checkpoint c = sampleCheckpoint();
    c.tick = 400;
    ASSERT_TRUE(c.writeFile(path).ok());
    EXPECT_EQ(Checkpoint::readFile(path).value().tick, 400u);
    EXPECT_EQ(Checkpoint::readFile(path + ".1").value().tick, 300u);
    EXPECT_EQ(Checkpoint::readFile(path + ".2").value().tick, 200u);

    for (const char *suffix : {"", ".1", ".2"})
        std::remove((path + suffix).c_str());
}

TEST(CheckpointRotation, FallbackSkipsCorruptNewest)
{
    const std::string dir =
        ::testing::TempDir() + "bl_ckpt_fall";
    ::mkdir(dir.c_str(), 0755);
    const auto pathFor = [&](Tick tick) {
        return dir + "/app.default." + std::to_string(tick) +
               ".ckpt";
    };
    for (const Tick tick : {Tick{500}, Tick{1000}}) {
        Checkpoint c = sampleCheckpoint();
        c.tick = tick;
        ASSERT_TRUE(c.writeFile(pathFor(tick)).ok());
    }
    // Damage the newest: flip one payload bit so the checksum
    // check rejects it.
    {
        std::fstream f(pathFor(1000),
                       std::ios::in | std::ios::out |
                           std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(40);
        const int orig = f.get();
        ASSERT_NE(orig, EOF);
        f.seekp(40);
        f.put(static_cast<char>(orig ^ 0x01));
    }

    const Result<Checkpoint> loaded =
        loadCheckpointWithFallback(pathFor(1000));
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded.value().tick, 500u);
}

TEST(CheckpointRotation, FallbackHonorsAcceptPredicate)
{
    const std::string dir =
        ::testing::TempDir() + "bl_ckpt_accept";
    ::mkdir(dir.c_str(), 0755);
    const auto pathFor = [&](Tick tick) {
        return dir + "/app.default." + std::to_string(tick) +
               ".ckpt";
    };
    for (const Tick tick : {Tick{300}, Tick{600}}) {
        Checkpoint c = sampleCheckpoint();
        c.tick = tick;
        ASSERT_TRUE(c.writeFile(pathFor(tick)).ok());
    }

    // Predicate rejects everything: the load must fail with a
    // message naming the primary path.
    const auto reject = [](const Checkpoint &) {
        return failedPrecondition("not wanted");
    };
    const Result<Checkpoint> none =
        loadCheckpointWithFallback(pathFor(600), reject);
    ASSERT_FALSE(none.ok());
    EXPECT_NE(none.status().message().find(pathFor(600)),
              std::string::npos);

    // Predicate accepting only the older tick exercises the
    // accept-driven fallback (newest is intact but unwanted).
    const auto only300 = [](const Checkpoint &c) {
        return c.tick == 300 ? okStatus()
                             : failedPrecondition("wrong tick");
    };
    const Result<Checkpoint> older =
        loadCheckpointWithFallback(pathFor(600), only300);
    ASSERT_TRUE(older.ok()) << older.status().message();
    EXPECT_EQ(older.value().tick, 300u);
}

TEST(CheckpointRotation, AllCandidatesMissingIsNotFound)
{
    const Result<Checkpoint> none = loadCheckpointWithFallback(
        ::testing::TempDir() + "bl_no_such_ckpt.ckpt");
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.status().code(), StatusCode::notFound);
}
