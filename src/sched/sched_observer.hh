/**
 * @file
 * SchedObserver: hook interface through which the HMP scheduler
 * reports placement decisions (wakeups, sleeps, migrations, balance
 * moves).  The trace recorder is the canonical implementation; tests
 * install their own to assert on scheduling decisions directly.
 */

#ifndef BIGLITTLE_SCHED_SCHED_OBSERVER_HH
#define BIGLITTLE_SCHED_SCHED_OBSERVER_HH

namespace biglittle
{

class Core;
class Task;

/** Observer of scheduler placement decisions. */
class SchedObserver
{
  public:
    virtual ~SchedObserver() = default;

    /** @p task was placed on @p target after sleeping. */
    virtual void onWakeup(const Task &task, const Core &target) = 0;

    /** @p task drained its backlog and went to sleep. */
    virtual void onSleep(const Task &task) = 0;

    /** @p task moved between core types (@p up: little -> big). */
    virtual void onMigrate(const Task &task, const Core &from,
                           const Core &to, bool up) = 0;

    /** @p task was spread within a cluster by load balancing. */
    virtual void onBalance(const Task &task, const Core &from,
                           const Core &to) = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_SCHED_SCHED_OBSERVER_HH
