#include "fault/invariants.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "base/logging.hh"
#include "base/strutil.hh"
#include "platform/platform.hh"
#include "sched/hmp.hh"

namespace biglittle
{

namespace
{

/** Tolerance for floating-point energy accumulators. */
constexpr double energyEpsMj = 1e-9;

} // namespace

InvariantChecker::InvariantChecker(Simulation &sim_in,
                                   AsymmetricPlatform &platform,
                                   HmpScheduler *sched_in,
                                   PowerModel *power_in,
                                   const InvariantParams &params)
    : sim(sim_in), plat(platform), sched(sched_in), power(power_in),
      ip(params)
{
    BL_ASSERT(ip.checkPeriod > 0);
}

void
InvariantChecker::start()
{
    lastNow = sim.now();
    if (power != nullptr) {
        energyBase = power->snapshot();
        haveEnergyBase = true;
    }
    if (sweepTask == nullptr) {
        sweepTask = &sim.addPeriodic(
            ip.checkPeriod,
            [this](Tick) { lastSweep = checkNow(); },
            EventPriority::stats, "invariant-sweep");
    }
    sweepTask->start();
}

void
InvariantChecker::stop()
{
    if (sweepTask != nullptr)
        sweepTask->cancel();
}

void
InvariantChecker::reportExternal(std::string what)
{
    violate(what);
    lastSweep = internalError("external: " + std::move(what));
}

void
InvariantChecker::violate(std::string what)
{
    ++violationTotal;
    if (recorded.size() < ip.maxRecorded) {
        warn("invariant violated @%llu: %s",
             static_cast<unsigned long long>(sim.now()), what.c_str());
        recorded.push_back({sim.now(), std::move(what)});
    }
}

Status
InvariantChecker::checkNow()
{
    // A pure observer: declare representative reads so abrace can
    // prove the sweep commutes with the samplers sharing its
    // priority (read-read pairs are never reported).
    sim.noteRead("sched", "rrCursor");
    const std::uint64_t before = violationTotal;
    checkTime();
    checkTopology();
    checkFrequencies();
    checkRunqueues();
    checkEnergy();
    ++checkCount;
    if (violationTotal == before)
        return okStatus();
    const std::string &what =
        recorded.empty() ? "violation (record buffer full)"
                         : recorded.back().what;
    return internalError(
        format("%llu invariant violation(s); last: %s",
               static_cast<unsigned long long>(violationTotal - before),
               what.c_str()));
}

void
InvariantChecker::checkTime()
{
    const Tick now = sim.now();
    if (now < lastNow) {
        violate(format("time ran backwards: %llu < %llu",
                       static_cast<unsigned long long>(now),
                       static_cast<unsigned long long>(lastNow)));
    }
    lastNow = std::max(lastNow, now);
}

void
InvariantChecker::checkTopology()
{
    if (plat.params().enforceBootCore &&
        plat.onlineCount(CoreType::little) == 0)
        violate("no little core online (boot rule broken)");

    for (const Core *core : plat.cores()) {
        if (core->busy() && !core->online())
            violate(format("core %u busy while offline", core->id()));
        if (core->busyTicks() > core->onlineTicks())
            violate(format("core %u busy %llu ticks > online %llu",
                           core->id(),
                           static_cast<unsigned long long>(
                               core->busyTicks()),
                           static_cast<unsigned long long>(
                               core->onlineTicks())));
    }
}

void
InvariantChecker::checkFrequencies()
{
    for (std::size_t i = 0; i < plat.clusterCount(); ++i) {
        const FreqDomain &domain = plat.cluster(i).freqDomain();
        const FreqKHz freq = domain.currentFreq();
        const auto &table = domain.opps();
        const bool onTable = std::any_of(
            table.begin(), table.end(),
            [freq](const Opp &opp) { return opp.freq == freq; });
        if (!onTable) {
            violate(format("%s at %u kHz, not an OPP-table entry",
                           domain.name().c_str(), freq));
        }
        if (freq > domain.ceiling()) {
            violate(format("%s at %u kHz above ceiling %u kHz",
                           domain.name().c_str(), freq,
                           domain.ceiling()));
        }
    }
}

void
InvariantChecker::checkRunqueues()
{
    if (sched == nullptr)
        return;

    // How many run queues each task appears on (running or waiting).
    // Keyed by pointer, so sorted iteration would not be any more
    // deterministic; safe because it is a counting map that is only
    // ever *read* below, in deterministic task-creation order.
    // ablint:allow(unordered-iter): lookup-only counting map
    std::unordered_map<const Task *, std::uint32_t> queuedOn;
    for (const Core *core : plat.cores()) {
        const CoreRunner &runner = sched->runner(core->id());
        const Task *running = runner.running();
        if (running != nullptr) {
            ++queuedOn[running];
            if (running->state() != TaskState::running)
                violate(format("task '%s' on core %u runner but not "
                               "in running state",
                               running->name().c_str(), core->id()));
        }
        for (const Task *task : runner.waiting()) {
            ++queuedOn[task];
            if (task->state() != TaskState::queued)
                violate(format("task '%s' waiting on core %u but not "
                               "in queued state",
                               task->name().c_str(), core->id()));
        }
        if (runner.depth() > 0 && !core->online())
            violate(format("offline core %u has %zu queued task(s)",
                           core->id(), runner.depth()));
    }

    for (const auto &task : sched->tasks()) {
        if (task->pendingInstructions() < 0.0)
            violate(format("task '%s' has negative pending work %g",
                           task->name().c_str(),
                           task->pendingInstructions()));
        const bool runnable = task->state() == TaskState::queued ||
                              task->state() == TaskState::running;
        const std::uint32_t queues = queuedOn[task.get()];
        if (runnable && queues != 1) {
            violate(format("runnable task '%s' is on %u run queues",
                           task->name().c_str(), queues));
        } else if (!runnable && queues != 0) {
            violate(format("%s task '%s' is still on a run queue",
                           task->state() == TaskState::sleeping
                               ? "sleeping"
                               : "finished",
                           task->name().c_str()));
        }
        if (runnable && task->core() != nullptr) {
            const CoreRunner &runner = sched->runner(task->core()->id());
            if (runner.running() != task.get() &&
                std::find(runner.waiting().begin(),
                          runner.waiting().end(),
                          task.get()) == runner.waiting().end())
                violate(format("task '%s' claims core %u but its "
                               "runner disagrees",
                               task->name().c_str(),
                               task->core()->id()));
        }
        if (runnable && task->core() == nullptr)
            violate(format("runnable task '%s' has no core",
                           task->name().c_str()));
    }
}

void
InvariantChecker::checkEnergy()
{
    if (power == nullptr)
        return;

    const double instant = power->instantPowerMw();
    if (!(instant >= 0.0) || !std::isfinite(instant))
        violate(format("instantaneous power %g mW", instant));

    PowerSnapshot cur = power->snapshot();
    if (haveEnergyBase) {
        const EnergyBreakdown e =
            power->energyBetween(energyBase, cur);
        if (e.coreDynamicMj < -energyEpsMj ||
            e.coreStaticMj < -energyEpsMj ||
            e.clusterStaticMj < -energyEpsMj ||
            e.baseMj < -energyEpsMj || !std::isfinite(e.totalMj()))
            violate(format("negative energy over check window "
                           "(total %g mJ)",
                           e.totalMj()));
    }
    energyBase = std::move(cur);
    haveEnergyBase = true;
}

void
InvariantChecker::checkPlacement(const Task &task, const Core &target,
                                 const char *event)
{
    if (!target.online())
        violate(format("%s placed task '%s' on offline core %u",
                       event, task.name().c_str(), target.id()));
}

void
InvariantChecker::onWakeup(const Task &task, const Core &target)
{
    checkPlacement(task, target, "wakeup");
    if (nextObserver != nullptr)
        nextObserver->onWakeup(task, target);
}

void
InvariantChecker::onSleep(const Task &task)
{
    if (!task.drained())
        violate(format("task '%s' slept with %g pending instructions",
                       task.name().c_str(),
                       task.pendingInstructions()));
    if (nextObserver != nullptr)
        nextObserver->onSleep(task);
}

void
InvariantChecker::onMigrate(const Task &task, const Core &from,
                            const Core &to, bool up)
{
    checkPlacement(task, to, "migration");
    if (nextObserver != nullptr)
        nextObserver->onMigrate(task, from, to, up);
}

void
InvariantChecker::onBalance(const Task &task, const Core &from,
                            const Core &to)
{
    checkPlacement(task, to, "balance");
    if (nextObserver != nullptr)
        nextObserver->onBalance(task, from, to);
}

} // namespace biglittle
