#include "trace/trace.hh"

#include "base/csv.hh"
#include "base/logging.hh"
#include "base/strutil.hh"

namespace biglittle
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::wakeup:
        return "wakeup";
      case TraceKind::sleep:
        return "sleep";
      case TraceKind::migrateUp:
        return "migrate-up";
      case TraceKind::migrateDown:
        return "migrate-down";
      case TraceKind::balance:
        return "balance";
      case TraceKind::freqChange:
        return "freq-change";
    }
    return "unknown";
}

TraceRecorder::TraceRecorder(Simulation &sim_in,
                             std::size_t max_events)
    : sim(sim_in), maxEvents(max_events)
{
    BL_ASSERT(maxEvents > 0);
}

void
TraceRecorder::attachScheduler(HmpScheduler &sched)
{
    sched.setObserver(this);
}

void
TraceRecorder::attachCluster(Cluster &cluster)
{
    const std::string name = cluster.name();
    FreqDomain *domain = &cluster.freqDomain();
    domain->addListener([this, domain](const Opp &, const Opp &next) {
        TraceEvent event;
        event.when = sim.now();
        event.kind = TraceKind::freqChange;
        event.taskName = domain->name();
        event.freq = next.freq;
        push(std::move(event));
    });
}

void
TraceRecorder::push(TraceEvent event)
{
    ++total;
    buffer.push_back(std::move(event));
    if (buffer.size() > maxEvents)
        buffer.pop_front();
}

TraceEvent
TraceRecorder::taskEvent(TraceKind kind, const Task &task)
{
    TraceEvent event;
    event.kind = kind;
    event.task = task.id();
    event.taskName = task.name();
    event.load = task.loadTracker().value();
    return event;
}

void
TraceRecorder::onWakeup(const Task &task, const Core &target)
{
    TraceEvent event = taskEvent(TraceKind::wakeup, task);
    event.when = sim.now();
    event.core = target.id();
    push(std::move(event));
}

void
TraceRecorder::onSleep(const Task &task)
{
    TraceEvent event = taskEvent(TraceKind::sleep, task);
    event.when = sim.now();
    push(std::move(event));
}

void
TraceRecorder::onMigrate(const Task &task, const Core &from,
                         const Core &to, bool up)
{
    TraceEvent event = taskEvent(
        up ? TraceKind::migrateUp : TraceKind::migrateDown, task);
    event.when = sim.now();
    event.fromCore = from.id();
    event.core = to.id();
    push(std::move(event));
}

void
TraceRecorder::onBalance(const Task &task, const Core &from,
                         const Core &to)
{
    TraceEvent event = taskEvent(TraceKind::balance, task);
    event.when = sim.now();
    event.fromCore = from.id();
    event.core = to.id();
    push(std::move(event));
}

std::size_t
TraceRecorder::countOf(TraceKind kind) const
{
    std::size_t n = 0;
    for (const TraceEvent &e : buffer)
        n += e.kind == kind ? 1 : 0;
    return n;
}

Status
TraceRecorder::writeCsv(const std::string &path) const
{
    CsvWriter csv;
    const Status opened = csv.open(path);
    if (!opened.ok())
        return opened;
    csv.header({"time_ms", "kind", "task_id", "name", "core",
                "from_core", "freq_khz", "load"});
    for (const TraceEvent &e : buffer) {
        csv.beginRow();
        csv.cell(static_cast<double>(e.when) /
                 static_cast<double>(oneMs));
        csv.cell(std::string(traceKindName(e.kind)));
        csv.cell(static_cast<std::uint64_t>(e.task));
        csv.cell(e.taskName);
        csv.cell(e.core == invalidCoreId
                     ? std::string("-")
                     : std::to_string(e.core));
        csv.cell(e.fromCore == invalidCoreId
                     ? std::string("-")
                     : std::to_string(e.fromCore));
        csv.cell(static_cast<std::uint64_t>(e.freq));
        csv.cell(e.load);
        csv.endRow();
    }
    return okStatus();
}

std::string
TraceRecorder::timeline(std::size_t max_lines) const
{
    std::string out;
    const std::size_t start =
        buffer.size() > max_lines ? buffer.size() - max_lines : 0;
    for (std::size_t i = start; i < buffer.size(); ++i) {
        const TraceEvent &e = buffer[i];
        out += format("[%10.3fms] %-12s",
                      static_cast<double>(e.when) /
                          static_cast<double>(oneMs),
                      traceKindName(e.kind));
        switch (e.kind) {
          case TraceKind::wakeup:
            out += format(" %-24s -> cpu%u (load %.0f)",
                          e.taskName.c_str(), e.core, e.load);
            break;
          case TraceKind::sleep:
            out += format(" %-24s (load %.0f)", e.taskName.c_str(),
                          e.load);
            break;
          case TraceKind::migrateUp:
          case TraceKind::migrateDown:
          case TraceKind::balance:
            out += format(" %-24s cpu%u -> cpu%u (load %.0f)",
                          e.taskName.c_str(), e.fromCore, e.core,
                          e.load);
            break;
          case TraceKind::freqChange:
            out += format(" %-24s -> %s", e.taskName.c_str(),
                          freqToString(e.freq).c_str());
            break;
        }
        out += '\n';
    }
    return out;
}

void
TraceRecorder::clear()
{
    buffer.clear();
}

} // namespace biglittle
