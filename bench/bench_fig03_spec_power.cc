/**
 * @file
 * Fig. 3: whole-system power (mW) while running each SPEC-like
 * kernel on one core, for little\@1.3 GHz and big\@{0.8, 1.3, 1.9}.
 *
 * Expected shape (Section III-A): at the shared 1.3 GHz point the
 * big core draws ~2.3x the little-core system power; even big\@0.8
 * draws ~1.5x little\@1.3; spread across kernels is much smaller
 * than the performance spread.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"
#include "core/experiment.hh"
#include "workload/spec.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig03_spec_power",
                   "Fig. 3: SPEC whole-system power by core/freq");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"kernel", "little_1.3GHz_mw", "big_0.8GHz_mw",
                     "big_1.3GHz_mw", "big_1.9GHz_mw"});
    }

    Experiment experiment;
    std::printf("%s\n", (padRight("kernel", 14) +
                         padLeft("little@1.3", 12) +
                         padLeft("big@0.8", 10) +
                         padLeft("big@1.3", 10) +
                         padLeft("big@1.9", 10))
                            .c_str());
    std::puts("  (average whole-system power in mW)");

    for (const SpecKernel &kernel : specSuite()) {
        const double little = experiment
            .runKernel(kernel, CoreType::little, 1300000).avgPowerMw;
        const double big08 = experiment
            .runKernel(kernel, CoreType::big, 800000).avgPowerMw;
        const double big13 = experiment
            .runKernel(kernel, CoreType::big, 1300000).avgPowerMw;
        const double big19 = experiment
            .runKernel(kernel, CoreType::big, 1900000).avgPowerMw;
        std::printf("%s%12.0f%10.0f%10.0f%10.0f\n",
                    padRight(kernel.name, 14).c_str(), little, big08,
                    big13, big19);
        if (csv) {
            csv->beginRow();
            csv->cell(kernel.name);
            csv->cell(little);
            csv->cell(big08);
            csv->cell(big13);
            csv->cell(big19);
            csv->endRow();
        }
    }
    return 0;
}
