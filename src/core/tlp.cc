#include "core/tlp.hh"

namespace biglittle
{

TlpReport
makeTlpReport(const StateSampler &sampler)
{
    TlpReport report;
    const std::size_t nb = sampler.bigCores();
    const std::size_t nl = sampler.littleCores();

    report.matrixPct.assign(nb + 1, std::vector<double>(nl + 1, 0.0));

    std::uint64_t total = 0;
    std::uint64_t active = 0;
    std::uint64_t little_only = 0;
    std::uint64_t any_big = 0;
    double core_sum = 0.0;
    double little_sum = 0.0;
    double big_sum = 0.0;

    for (std::size_t b = 0; b <= nb; ++b) {
        for (std::size_t l = 0; l <= nl; ++l) {
            const std::uint64_t n = sampler.windowsAt(b, l);
            report.matrixPct[b][l] =
                100.0 * sampler.fractionAt(b, l);
            total += n;
            if (b + l == 0)
                continue;
            active += n;
            core_sum += static_cast<double>(n) *
                        static_cast<double>(b + l);
            little_sum +=
                static_cast<double>(n) * static_cast<double>(l);
            big_sum += static_cast<double>(n) * static_cast<double>(b);
            if (b == 0)
                little_only += n;
            else
                any_big += n;
        }
    }

    if (total > 0) {
        report.idlePct = 100.0 * static_cast<double>(total - active) /
                         static_cast<double>(total);
    }
    if (active > 0) {
        const auto a = static_cast<double>(active);
        report.littleOnlyWindowPct =
            100.0 * static_cast<double>(little_only) / a;
        report.anyBigWindowPct =
            100.0 * static_cast<double>(any_big) / a;
        report.tlp = core_sum / a;
        report.littleTlp = little_sum / a;
        report.bigTlp = big_sum / a;
    }
    if (core_sum > 0.0) {
        report.littleSharePct = 100.0 * little_sum / core_sum;
        report.bigSharePct = 100.0 * big_sum / core_sum;
    }
    return report;
}

} // namespace biglittle
