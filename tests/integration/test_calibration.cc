/**
 * @file
 * Calibration tests: the paper-shape assertions.  Each test pins one
 * qualitative claim from the paper's evaluation to a band, so a
 * regression in any model or policy that would bend a figure's shape
 * fails loudly here.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hh"
#include "platform/perf_model.hh"
#include "workload/apps.hh"
#include "workload/spec.hh"

using namespace biglittle;

namespace
{

/** Table III results, computed once and shared across tests. */
const std::map<std::string, AppRunResult> &
tableThree()
{
    static const std::map<std::string, AppRunResult> results = [] {
        std::map<std::string, AppRunResult> map;
        Experiment experiment;
        for (const AppSpec &app : allApps())
            map.emplace(app.name, experiment.runApp(app));
        return map;
    }();
    return results;
}

} // namespace

TEST(CalibrationFig2, SpeedupBandsMatchPaper)
{
    // Big@1.3 vs little@1.3: always >1, up to ~4.5x; exactly a few
    // low-ILP kernels lose at big@0.8.
    Experiment experiment;
    const SpecKernel &mcf = specKernelByName("mcf");
    const SpecKernel &hmmer = specKernelByName("hmmer");
    const auto runtime = [&](const SpecKernel &k, CoreType t,
                             FreqKHz f) {
        return static_cast<double>(
            experiment.runKernel(k, t, f).runtime);
    };
    const double mcf_speedup =
        runtime(mcf, CoreType::little, 1300000) /
        runtime(mcf, CoreType::big, 1300000);
    EXPECT_GT(mcf_speedup, 3.5);
    EXPECT_LT(mcf_speedup, 5.0);
    const double hmmer_speedup =
        runtime(hmmer, CoreType::little, 1300000) /
        runtime(hmmer, CoreType::big, 1300000);
    EXPECT_GT(hmmer_speedup, 1.3);
    EXPECT_LT(hmmer_speedup, 2.5);
}

TEST(CalibrationFig3, PowerRatiosMatchPaper)
{
    Experiment experiment;
    const SpecKernel &hmmer = specKernelByName("hmmer");
    const double little = experiment
        .runKernel(hmmer, CoreType::little, 1300000).avgPowerMw;
    const double big13 = experiment
        .runKernel(hmmer, CoreType::big, 1300000).avgPowerMw;
    const double big08 = experiment
        .runKernel(hmmer, CoreType::big, 800000).avgPowerMw;
    EXPECT_NEAR(big13 / little, 2.3, 0.3);
    EXPECT_NEAR(big08 / little, 1.5, 0.25);
}

TEST(CalibrationFig6, PowerSlopeSteepensWithFrequency)
{
    Experiment experiment;
    const auto slope = [&](FreqKHz f) {
        const double lo = experiment
            .runMicrobench(CoreType::big, f, 0.2, msToTicks(1000))
            .avgPowerMw;
        const double hi = experiment
            .runMicrobench(CoreType::big, f, 1.0, msToTicks(1000))
            .avgPowerMw;
        return hi - lo;
    };
    EXPECT_GT(slope(1900000), 2.0 * slope(800000));
}

TEST(CalibrationTable3, TlpBelowThreeExceptBBench)
{
    for (const auto &[name, r] : tableThree()) {
        if (name == "bbench") {
            EXPECT_GT(r.tlp.tlp, 3.0) << name;
            EXPECT_LT(r.tlp.tlp, 4.6) << name;
        } else {
            EXPECT_LT(r.tlp.tlp, 3.0) << name;
        }
    }
}

TEST(CalibrationTable3, BigShareRankingMatchesPaper)
{
    const auto &t3 = tableThree();
    const auto big = [&](const char *name) {
        return t3.at(name).tlp.bigSharePct;
    };
    // Paper ordering: encoder (62) > bbench (48) >> video apps (~0).
    EXPECT_GT(big("encoder"), big("bbench"));
    EXPECT_GT(big("bbench"), big("virus_scanner"));
    EXPECT_GT(big("encoder"), 35.0);
    EXPECT_GT(big("bbench"), 25.0);
    // Media playback and the light game never need big cores.
    EXPECT_LT(big("video_player"), 2.0);
    EXPECT_LT(big("youtube"), 2.0);
    EXPECT_LT(big("angry_bird"), 2.0);
}

TEST(CalibrationTable3, IdleShapesMatchPaper)
{
    const auto &t3 = tableThree();
    // Browser has by far the most idle time (reading pauses).
    for (const auto &[name, r] : t3) {
        if (name != "browser") {
            EXPECT_GT(t3.at("browser").tlp.idlePct, r.tlp.idlePct)
                << name;
        }
    }
    // bbench and encoder are nearly never idle.
    EXPECT_LT(t3.at("bbench").tlp.idlePct, 5.0);
    EXPECT_LT(t3.at("encoder").tlp.idlePct, 5.0);
}

TEST(CalibrationTable4, OneBigCoreAbsorbsBursts)
{
    // Section V-B: when big cores are used at all, one big core
    // dominates; only bbench spreads to several.
    const auto &t3 = tableThree();
    for (const auto &[name, r] : t3) {
        if (name == "bbench")
            continue;
        double one_big = 0.0, many_big = 0.0;
        for (std::size_t l = 0; l <= 4; ++l) {
            one_big += r.tlp.matrixPct[1][l];
            for (std::size_t b = 2; b <= 4; ++b)
                many_big += r.tlp.matrixPct[b][l];
        }
        if (one_big + many_big > 3.0) {
            EXPECT_GT(one_big, many_big) << name;
        }
    }
}

TEST(CalibrationFig5, FpsShapesMatchPaper)
{
    // 4-big vs 4-little: no average-FPS change for angry_bird and
    // the video apps; a visible gain for the demanding game.
    AppSpec game = eternityWarrior2App();
    AppSpec casual = angryBirdApp();

    ExperimentConfig little_cfg;
    little_cfg.coreConfig = {4, 0, "L4"};
    ExperimentConfig big_cfg;
    big_cfg.coreConfig = {1, 4, "B4"};
    big_cfg.sched.upThreshold = 1;
    big_cfg.sched.downThreshold = 0;

    const double game_little =
        Experiment(little_cfg).runApp(game).avgFps;
    const double game_big = Experiment(big_cfg).runApp(game).avgFps;
    EXPECT_GT(game_big, game_little * 1.05);

    const double casual_little =
        Experiment(little_cfg).runApp(casual).avgFps;
    const double casual_big =
        Experiment(big_cfg).runApp(casual).avgFps;
    EXPECT_NEAR(casual_big, casual_little, casual_little * 0.05);
}

TEST(CalibrationTable5, MinAndBelow50Dominate)
{
    // Section VI-B: "the majority of cycles are either in min or
    // <50% state" for most applications.
    const auto &t3 = tableThree();
    int dominated = 0;
    for (const auto &[name, r] : t3) {
        if (r.efficiency.minPct + r.efficiency.below50Pct > 50.0)
            ++dominated;
    }
    EXPECT_GE(dominated, 8);
}

TEST(CalibrationTable5, BurstyAppsShowHighOverload)
{
    const auto &t3 = tableThree();
    // bbench/encoder load in bursts faster than DVFS reacts.
    EXPECT_GT(t3.at("bbench").efficiency.above95Pct +
                  t3.at("bbench").efficiency.fullPct,
              8.0);
    EXPECT_GT(t3.at("encoder").efficiency.above95Pct +
                  t3.at("encoder").efficiency.fullPct,
              8.0);
}

TEST(CalibrationFig9, VideoLivesAtLowestLittleFreq)
{
    const auto &t3 = tableThree();
    const FreqResidency &res = t3.at("video_player").littleResidency;
    ASSERT_FALSE(res.entries.empty());
    // The lowest OPP dominates the little-core distribution.
    EXPECT_GT(res.entries.front().fraction, 0.5);
}

TEST(CalibrationFig10, EncoderRunsBigCoresHot)
{
    const auto &t3 = tableThree();
    const FreqResidency &res = t3.at("encoder").bigResidency;
    double high = 0.0;
    for (const auto &e : res.entries) {
        if (e.freq >= 1400000)
            high += e.fraction;
    }
    // Latency workloads absorb bursts at high big frequencies.
    EXPECT_GT(high, 0.4);
}
