/**
 * @file
 * The entity-model builder: a scope-stack parse of the lexed token
 * streams into classes + members, function definitions + call lists,
 * and the include graph.  See model.hh for scope and blind spots.
 */

#include "model.hh"

#include "sink.hh"

#include <algorithm>

namespace biglittle::ablint
{

namespace
{

using detail::isIdent;
using detail::isPunct;

/** Identifiers that look like calls but are not (for call lists). */
bool
isCallKeyword(const std::string &name)
{
    static const std::set<std::string> keywords = {
        "if",       "for",         "while",     "switch",
        "return",   "sizeof",      "alignof",   "decltype",
        "catch",    "new",         "delete",    "throw",
        "noexcept", "static_cast", "const_cast", "defined",
        "dynamic_cast", "reinterpret_cast", "static_assert",
        // The assertion contract is allowed to die; treating it as
        // a call would make every asserting function fatal-reaching.
        "BL_ASSERT", "assert",
    };
    return keywords.count(name) > 0;
}

/** Specifiers stripped from member declarations. */
bool
isDeclSpecifier(const std::string &name)
{
    static const std::set<std::string> specs = {
        "static",   "mutable", "inline",       "constexpr",
        "constinit", "extern",  "thread_local", "volatile",
        "explicit", "virtual", "typename",
    };
    return specs.count(name) > 0;
}

class FileParser
{
  public:
    FileParser(const LexedFile &file, Model &model)
        : f(file), toks(file.tokens), n(file.tokens.size()), m(model)
    {
    }

    void
    run()
    {
        parseDecls(std::vector<std::string>(), false,
                   /*stopAtBrace=*/false);
    }

  private:
    const LexedFile &f;
    const std::vector<Token> &toks;
    const std::size_t n;
    Model &m;
    std::size_t i = 0;

    bool
    startsLine(std::size_t at) const
    {
        return at == 0 || toks[at - 1].line != toks[at].line;
    }

    /** Skip a preprocessor line (plus backslash continuations). */
    void
    skipDirective()
    {
        int dirLine = toks[i].line;
        ++i; // '#'
        // Harvest `#include "..."` while passing.
        if (i < n && isIdent(toks[i], "include") &&
            toks[i].line == dirLine) {
            if (i + 1 < n && toks[i + 1].kind == TokKind::str &&
                toks[i + 1].line == dirLine) {
                m.includes.push_back(
                    {&f, dirLine, toks[i + 1].text});
            }
        }
        bool lastWasBackslash = false;
        while (i < n) {
            if (toks[i].line == dirLine) {
                lastWasBackslash = isPunct(toks[i], '\\');
                ++i;
            } else if (lastWasBackslash) {
                dirLine = toks[i].line; // continuation line
                lastWasBackslash = false;
            } else {
                break;
            }
        }
    }

    /** From @p at (a '<'), step past the balanced angle list. */
    std::size_t
    skipAngles(std::size_t at) const
    {
        int depth = 0;
        while (at < n) {
            if (isPunct(toks[at], '<')) {
                ++depth;
            } else if (isPunct(toks[at], '>')) {
                if (--depth == 0)
                    return at + 1;
            } else if (isPunct(toks[at], ';')) {
                return at; // malformed; bail at the statement end
            }
            ++at;
        }
        return at;
    }

    /** From @p at (an open bracket), past the matching close. */
    std::size_t
    skipBalanced(std::size_t at, char open, char close) const
    {
        int depth = 0;
        while (at < n) {
            if (isPunct(toks[at], open))
                ++depth;
            else if (isPunct(toks[at], close) && --depth == 0)
                return at + 1;
            ++at;
        }
        return at;
    }

    /** Skip to just past the next ';' at brace/paren depth 0. */
    void
    skipStatement()
    {
        int depth = 0;
        while (i < n) {
            const Token &t = toks[i];
            if (isPunct(t, '{') || isPunct(t, '(') ||
                isPunct(t, '['))
                ++depth;
            else if (isPunct(t, '}') || isPunct(t, ')') ||
                     isPunct(t, ']'))
                --depth;
            else if (isPunct(t, ';') && depth <= 0) {
                ++i;
                return;
            }
            ++i;
        }
    }

    /** enum [class] [name] [: base] [{ ... }] [;] */
    void
    skipEnum()
    {
        ++i; // 'enum'
        while (i < n && !isPunct(toks[i], '{') &&
               !isPunct(toks[i], ';'))
            ++i;
        if (i < n && isPunct(toks[i], '{'))
            i = skipBalanced(i, '{', '}');
        if (i < n && isPunct(toks[i], ';'))
            ++i;
    }

    /**
     * Parse declarations until EOF or (when @p stopAtBrace) the '}'
     * closing the scope the caller opened.
     */
    void
    parseDecls(const std::vector<std::string> &classStack,
               bool inClass, bool stopAtBrace)
    {
        while (i < n) {
            const Token &t = toks[i];
            if (isPunct(t, '#') && startsLine(i)) {
                skipDirective();
                continue;
            }
            if (isPunct(t, '}')) {
                if (stopAtBrace)
                    return;
                ++i; // stray close (extern "C" etc.): ignore
                continue;
            }
            if (isPunct(t, ';')) {
                ++i;
                continue;
            }
            if (t.kind == TokKind::identifier) {
                if (t.text == "template") {
                    ++i;
                    if (i < n && isPunct(toks[i], '<'))
                        i = skipAngles(i);
                    continue;
                }
                if (t.text == "namespace") {
                    parseNamespace(classStack);
                    continue;
                }
                if (t.text == "class" || t.text == "struct" ||
                    t.text == "union") {
                    parseClass(classStack);
                    continue;
                }
                if (t.text == "enum") {
                    skipEnum();
                    continue;
                }
                if (t.text == "using" || t.text == "typedef" ||
                    t.text == "friend" ||
                    t.text == "static_assert") {
                    skipStatement();
                    continue;
                }
                if (inClass &&
                    (t.text == "public" || t.text == "private" ||
                     t.text == "protected") &&
                    i + 1 < n && isPunct(toks[i + 1], ':') &&
                    !(i + 2 < n && isPunct(toks[i + 2], ':'))) {
                    i += 2;
                    continue;
                }
                if (t.text == "extern" && i + 1 < n &&
                    toks[i + 1].kind == TokKind::str) {
                    // extern "C" { ... } or extern "C" decl
                    i += 2;
                    if (i < n && isPunct(toks[i], '{')) {
                        ++i;
                        parseDecls(classStack, inClass, true);
                        if (i < n)
                            ++i; // the '}'
                    }
                    continue;
                }
            }
            parseStatement(classStack, inClass);
        }
    }

    void
    parseNamespace(const std::vector<std::string> &classStack)
    {
        ++i; // 'namespace'
        while (i < n && (toks[i].kind == TokKind::identifier ||
                         isPunct(toks[i], ':')))
            ++i;
        if (i < n && isPunct(toks[i], '=')) {
            skipStatement(); // namespace alias
            return;
        }
        if (i < n && isPunct(toks[i], '{')) {
            ++i;
            // Namespaces are transparent for qualified names.
            parseDecls(classStack, false, true);
            if (i < n)
                ++i; // the '}'
        }
    }

    void
    parseClass(const std::vector<std::string> &classStack)
    {
        const int declLine = toks[i].line;
        ++i; // class/struct/union
        // Skip [[attributes]].
        while (i + 1 < n && isPunct(toks[i], '[') &&
               isPunct(toks[i + 1], '[')) {
            i += 2;
            while (i < n && !isPunct(toks[i], ']'))
                ++i;
            while (i < n && isPunct(toks[i], ']'))
                ++i;
        }
        // Collect the head up to '{' (definition), ';' (forward
        // declaration) or '=' (alias-like, not a class).
        std::vector<std::string> idents;
        int nameLine = declLine;
        while (i < n) {
            const Token &t = toks[i];
            if (isPunct(t, '{') || isPunct(t, ';') ||
                isPunct(t, '='))
                break;
            if (isPunct(t, ':') &&
                !(i + 1 < n && isPunct(toks[i + 1], ':')) &&
                !(i > 0 && isPunct(toks[i - 1], ':'))) {
                // Base clause: scan to the body '{' (angles okay:
                // template bases contain no braces).
                while (i < n && !isPunct(toks[i], '{') &&
                       !isPunct(toks[i], ';'))
                    ++i;
                break;
            }
            if (t.kind == TokKind::identifier && t.text != "final") {
                idents.push_back(t.text);
                nameLine = t.line;
            }
            if (isPunct(t, '<')) { // specialization args
                i = skipAngles(i);
                continue;
            }
            ++i;
        }
        if (i >= n || !isPunct(toks[i], '{')) {
            // Forward declaration or something stranger: consume
            // the statement and move on.
            skipStatement();
            return;
        }
        ++i; // '{'
        std::string name =
            idents.empty() ? std::string() : idents.back();
        std::vector<std::string> inner = classStack;
        ClassInfo rec;
        if (!name.empty()) {
            inner.push_back(name);
            rec.name = name;
            rec.qualName = joinQual(inner);
            rec.file = &f;
            rec.line = nameLine;
            m.classes.push_back(rec);
        }
        const std::size_t classIdx =
            name.empty() ? m.classes.size() : m.classes.size() - 1;
        parseClassBody(inner, name.empty() ? classStack : inner,
                       name.empty() ? static_cast<std::size_t>(-1)
                                    : classIdx);
        // Optional trailing declarator list: `} instance;`
        skipStatement();
    }

    static std::string
    joinQual(const std::vector<std::string> &parts)
    {
        std::string out;
        for (const auto &p : parts) {
            if (!out.empty())
                out += "::";
            out += p;
        }
        return out;
    }

    /**
     * Body of a class whose members land in m.classes[classIdx]
     * (npos for anonymous).  Consumes up to and including '}'.
     */
    void
    parseClassBody(const std::vector<std::string> &classStack,
                   const std::vector<std::string> &memberScope,
                   std::size_t classIdx)
    {
        (void)memberScope;
        while (i < n) {
            const Token &t = toks[i];
            if (isPunct(t, '}')) {
                ++i;
                return;
            }
            if (isPunct(t, '#') && startsLine(i)) {
                skipDirective();
                continue;
            }
            if (isPunct(t, ';')) {
                ++i;
                continue;
            }
            if (t.kind == TokKind::identifier) {
                if (t.text == "template") {
                    ++i;
                    if (i < n && isPunct(toks[i], '<'))
                        i = skipAngles(i);
                    continue;
                }
                if (t.text == "class" || t.text == "struct" ||
                    t.text == "union") {
                    parseClass(classStack);
                    continue;
                }
                if (t.text == "enum") {
                    skipEnum();
                    continue;
                }
                if (t.text == "using" || t.text == "typedef" ||
                    t.text == "friend" ||
                    t.text == "static_assert") {
                    skipStatement();
                    continue;
                }
                if ((t.text == "public" || t.text == "private" ||
                     t.text == "protected") &&
                    i + 1 < n && isPunct(toks[i + 1], ':') &&
                    !(i + 2 < n && isPunct(toks[i + 2], ':'))) {
                    i += 2;
                    continue;
                }
            }
            parseMemberStatement(classStack, classIdx);
        }
    }

    /**
     * Scan one statement from @p from, classifying it.  Returns the
     * index of the terminator (';' at depth 0, or the '{' of a
     * function body / braced initializer) plus what was seen on the
     * way: the first depth-0 '(' and whether '=' preceded it.
     */
    struct StmtShape
    {
        std::size_t end = 0; ///< index of ';' or '{'
        bool hitBrace = false;
        std::size_t firstParen = static_cast<std::size_t>(-1);
        bool eqBeforeParen = false;
        bool sawEq = false;
    };

    StmtShape
    scanStatement(std::size_t from) const
    {
        StmtShape s;
        int paren = 0;
        int bracket = 0;
        int angle = 0;
        std::size_t at = from;
        while (at < n) {
            const Token &t = toks[at];
            if (isPunct(t, '(')) {
                if (paren == 0 && bracket == 0 && angle == 0 &&
                    s.firstParen == static_cast<std::size_t>(-1)) {
                    s.firstParen = at;
                    s.eqBeforeParen = s.sawEq;
                }
                ++paren;
            } else if (isPunct(t, ')')) {
                --paren;
            } else if (isPunct(t, '[')) {
                ++bracket;
            } else if (isPunct(t, ']')) {
                --bracket;
            } else if (isPunct(t, '<')) {
                // Heuristic: angles open after an identifier
                // (template-id); `a < b` comparisons only occur in
                // initializers, where miscounting is harmless.
                if (at > from &&
                    toks[at - 1].kind == TokKind::identifier)
                    ++angle;
            } else if (isPunct(t, '>')) {
                if (angle > 0)
                    --angle;
            } else if (isPunct(t, '=') && paren == 0 &&
                       bracket == 0) {
                s.sawEq = true;
            } else if (isPunct(t, '{') && paren == 0 &&
                       bracket == 0) {
                s.end = at;
                s.hitBrace = true;
                return s;
            } else if (isPunct(t, ';') && paren == 0 &&
                       bracket == 0) {
                s.end = at;
                return s;
            }
            ++at;
        }
        s.end = n;
        return s;
    }

    /** One statement at class-body depth: member, method, or noise. */
    void
    parseMemberStatement(const std::vector<std::string> &classStack,
                         std::size_t classIdx)
    {
        const std::size_t start = i;
        const StmtShape s = scanStatement(start);
        const bool isFunction =
            s.firstParen != static_cast<std::size_t>(-1) &&
            !s.eqBeforeParen;
        if (s.hitBrace && isFunction) {
            parseFunctionFrom(start, s, classStack);
            return;
        }
        if (s.hitBrace) {
            // Member with braced initializer: `Rng tieRng{1};` or
            // `= { ... }`.  Members come from the tokens before the
            // '=' / '{'; then skip the braces and the ';'.
            if (classIdx != static_cast<std::size_t>(-1))
                recordMembers(start, s.end, classIdx);
            i = skipBalanced(s.end, '{', '}');
            if (i < n && isPunct(toks[i], ';'))
                ++i;
            return;
        }
        // Plain ';'-terminated statement.
        if (!isFunction &&
            classIdx != static_cast<std::size_t>(-1))
            recordMembers(start, s.end, classIdx);
        i = s.end < n ? s.end + 1 : n;
    }

    /**
     * Record the data member(s) declared in [start, end).  @p end is
     * the terminating ';' / '{' of the statement.
     */
    void
    recordMembers(std::size_t start, std::size_t end,
                  std::size_t classIdx)
    {
        // Strip declaration specifiers; note static/constexpr.
        bool isStatic = false;
        std::size_t at = start;
        while (at < end && toks[at].kind == TokKind::identifier &&
               isDeclSpecifier(toks[at].text)) {
            if (toks[at].text == "static" ||
                toks[at].text == "constexpr" ||
                toks[at].text == "constinit")
                isStatic = true;
            ++at;
        }
        if (at >= end)
            return;
        // Split into declarator chunks at depth-0 commas; the first
        // chunk carries the type.
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        {
            int paren = 0, bracket = 0, brace = 0, angle = 0;
            std::size_t chunkStart = at;
            for (std::size_t j = at; j < end; ++j) {
                const Token &t = toks[j];
                if (isPunct(t, '('))
                    ++paren;
                else if (isPunct(t, ')'))
                    --paren;
                else if (isPunct(t, '['))
                    ++bracket;
                else if (isPunct(t, ']'))
                    --bracket;
                else if (isPunct(t, '{'))
                    ++brace;
                else if (isPunct(t, '}'))
                    --brace;
                else if (isPunct(t, '<') && j > at &&
                         toks[j - 1].kind == TokKind::identifier)
                    ++angle;
                else if (isPunct(t, '>') && angle > 0)
                    --angle;
                else if (isPunct(t, ',') && paren == 0 &&
                         bracket == 0 && brace == 0 && angle == 0) {
                    chunks.push_back({chunkStart, j});
                    chunkStart = j + 1;
                }
            }
            chunks.push_back({chunkStart, end});
        }
        ClassInfo &cls = m.classes[classIdx];
        std::string typeText;
        for (std::size_t c = 0; c < chunks.size(); ++c) {
            const auto [cb, ce] = chunks[c];
            // Declarator name: last identifier before the first
            // depth-0 '=', '{' or bitfield ':' of the chunk.
            std::size_t nameIdx = static_cast<std::size_t>(-1);
            int paren = 0, bracket = 0;
            for (std::size_t j = cb; j < ce; ++j) {
                const Token &t = toks[j];
                if (isPunct(t, '('))
                    ++paren;
                else if (isPunct(t, ')'))
                    --paren;
                else if (isPunct(t, '['))
                    ++bracket;
                else if (isPunct(t, ']'))
                    --bracket;
                if (paren > 0 || bracket > 0)
                    continue;
                if (isPunct(t, '=') || isPunct(t, '{'))
                    break;
                if (isPunct(t, ':') &&
                    !(j + 1 < ce && isPunct(toks[j + 1], ':')) &&
                    !(j > cb && isPunct(toks[j - 1], ':')))
                    break; // bitfield width
                if (t.kind == TokKind::identifier &&
                    !isDeclSpecifier(t.text) && t.text != "const")
                    nameIdx = j;
            }
            if (nameIdx == static_cast<std::size_t>(-1))
                continue;
            // Type text: every non-initializer token of the chunk
            // except the name itself (array extents ride along so
            // `s[4] -> s[6]` changes the digest).  The first chunk
            // sets the shared base type for later declarators.
            std::string text;
            for (std::size_t j = cb; j < ce; ++j) {
                if (j == nameIdx)
                    continue;
                const Token &t = toks[j];
                if (isPunct(t, '=') || isPunct(t, '{'))
                    break;
                if (!text.empty())
                    text += ' ';
                text += t.text;
            }
            if (c == 0)
                typeText = text;
            else if (!typeText.empty())
                text = text.empty() ? typeText
                                    : typeText + " " + text;
            Member mem;
            mem.name = toks[nameIdx].text;
            mem.type = text;
            mem.line = toks[nameIdx].line;
            mem.isStatic = isStatic;
            cls.members.push_back(std::move(mem));
        }
    }

    /**
     * A statement at namespace depth: out-of-line member def, free
     * function def, or a declaration to skip.
     */
    void
    parseStatement(const std::vector<std::string> &classStack,
                   bool inClass)
    {
        if (inClass) {
            // Delegated from parseClassBody only.
            return;
        }
        const std::size_t start = i;
        const StmtShape s = scanStatement(start);
        const bool isFunction =
            s.firstParen != static_cast<std::size_t>(-1) &&
            !s.eqBeforeParen;
        if (s.hitBrace && isFunction) {
            parseFunctionFrom(start, s, classStack);
            return;
        }
        if (s.hitBrace) {
            i = skipBalanced(s.end, '{', '}');
            if (i < n && isPunct(toks[i], ';'))
                ++i;
            return;
        }
        i = s.end < n ? s.end + 1 : n;
    }

    /**
     * Record a function definition whose statement scan found the
     * parameter '(' at @p s.firstParen and a '{'.  The '{' in @p s
     * may be the body, or an initializer inside the ctor-init list;
     * resolve the real body, harvest calls, and step past it.
     */
    void
    parseFunctionFrom(std::size_t start, const StmtShape &s,
                      const std::vector<std::string> &classStack)
    {
        // Name: identifier chain directly before the '('.
        std::vector<std::string> qual;
        std::size_t at = s.firstParen;
        while (at > start) {
            if (toks[at - 1].kind == TokKind::identifier) {
                qual.push_back(toks[at - 1].text);
                if (at >= 3 && isPunct(toks[at - 2], ':') &&
                    isPunct(toks[at - 3], ':')) {
                    at -= 3;
                    continue;
                }
            }
            break;
        }
        std::reverse(qual.begin(), qual.end());

        // Find the body '{': after the parameter list, step over
        // qualifiers/trailing-return and a ctor-init list whose
        // initializers may themselves be braced.  A '{' can only be
        // an initializer (not the body) once a single ':' opened a
        // ctor-init list - `const`/`override` before the body brace
        // must not count.
        const std::size_t parenClose =
            skipBalanced(s.firstParen, '(', ')');
        std::size_t body = parenClose;
        bool inCtorInit = false;
        const auto walkToBrace = [&]() {
            while (body < n && !isPunct(toks[body], '{') &&
                   !isPunct(toks[body], ';')) {
                if (isPunct(toks[body], '(')) {
                    body = skipBalanced(body, '(', ')');
                    continue;
                }
                if (isPunct(toks[body], '<')) {
                    body = skipAngles(body);
                    continue;
                }
                if (isPunct(toks[body], ':') &&
                    !(body + 1 < n &&
                      isPunct(toks[body + 1], ':')) &&
                    !(body > 0 && isPunct(toks[body - 1], ':')))
                    inCtorInit = true;
                ++body;
            }
        };
        walkToBrace();
        while (inCtorInit && body < n && isPunct(toks[body], '{') &&
               body > 0 &&
               (toks[body - 1].kind == TokKind::identifier ||
                isPunct(toks[body - 1], '>'))) {
            body = skipBalanced(body, '{', '}');
            walkToBrace();
        }
        if (body >= n || !isPunct(toks[body], '{')) {
            // `= default;`-style or parse trouble: skip statement.
            i = body < n ? body + 1 : n;
            return;
        }
        const std::size_t bodyEnd = skipBalanced(body, '{', '}');

        if (!qual.empty()) {
            FunctionDef fn;
            fn.name = qual.back();
            std::vector<std::string> full = classStack;
            // Out-of-line definitions carry their own qualifiers.
            for (std::size_t q = 0; q + 1 < qual.size(); ++q)
                full.push_back(qual[q]);
            full.push_back(qual.back());
            fn.qualName = joinQual(full);
            fn.file = &f;
            fn.line = toks[s.firstParen].line;
            fn.bodyBegin = body + 1;
            fn.bodyEnd = bodyEnd > 0 ? bodyEnd - 1 : bodyEnd;
            fn.paramBegin = s.firstParen + 1;
            fn.paramEnd = parenClose > 0 ? parenClose - 1 : 0;
            fn.headBegin = start;
            harvestCalls(fn);
            m.functionsByName[fn.name].push_back(
                m.functions.size());
            m.functions.push_back(std::move(fn));
        }
        i = bodyEnd;
    }

    /** Every `name(` in the body, keywords excluded. */
    void
    harvestCalls(FunctionDef &fn) const
    {
        for (std::size_t j = fn.bodyBegin; j + 1 < fn.bodyEnd;
             ++j) {
            if (toks[j].kind == TokKind::identifier &&
                isPunct(toks[j + 1], '(') &&
                !isCallKeyword(toks[j].text))
                fn.calls.push_back(toks[j].text);
        }
    }
};

} // namespace

const ClassInfo *
Model::findClass(const std::string &name) const
{
    const ClassInfo *byLast = nullptr;
    for (const auto &c : classes) {
        if (c.qualName == name)
            return &c;
        if (c.name == name && byLast == nullptr)
            byLast = &c;
    }
    return byLast;
}

Model
buildModel(const std::vector<LexedFile> &files)
{
    Model m;
    // Two passes so ClassInfo/FunctionDef vectors never reallocate
    // under a live FileParser... they may; FileParser only appends,
    // and holds no references across appends, so a single pass is
    // safe.
    for (const auto &f : files)
        FileParser(f, m).run();
    return m;
}

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace biglittle::ablint
