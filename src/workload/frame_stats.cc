#include "workload/frame_stats.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

void
FrameStats::recordFrame(Tick now)
{
    BL_ASSERT(completions.empty() || now >= completions.back());
    completions.push_back(now);
}

double
FrameStats::averageFps() const
{
    if (completions.size() < 2)
        return 0.0;
    const Tick span = completions.back() - completions.front();
    if (span == 0)
        return 0.0;
    return static_cast<double>(completions.size() - 1) /
           ticksToSeconds(span);
}

double
FrameStats::minFps(Tick window) const
{
    BL_ASSERT(window > 0);
    if (completions.size() < 2)
        return 0.0;
    const Tick start = completions.front();
    const Tick end = completions.back();
    if (end - start < window)
        return averageFps();

    double min_fps = -1.0;
    Tick win_start = start;
    while (win_start < end) {
        const Tick win_end = std::min(win_start + window, end);
        const Tick span = win_end - win_start;
        if (span * 2 < window)
            break; // drop a short tail window
        const auto lo = std::lower_bound(completions.begin(),
                                         completions.end(), win_start);
        const auto hi = std::lower_bound(completions.begin(),
                                         completions.end(), win_end);
        const double fps =
            static_cast<double>(hi - lo) / ticksToSeconds(span);
        if (min_fps < 0.0 || fps < min_fps)
            min_fps = fps;
        win_start = win_end;
    }
    return min_fps < 0.0 ? averageFps() : min_fps;
}

void
FrameStats::serialize(Serializer &s) const
{
    s.putU64(completions.size());
    for (const Tick t : completions)
        s.putU64(t);
}

void
FrameStats::deserialize(Deserializer &d)
{
    const std::uint64_t n = d.getCount(sizeof(Tick));
    completions.clear();
    completions.reserve(n);
    for (std::uint64_t i = 0; i < n && d.ok(); ++i)
        completions.push_back(d.getU64());
}

SampleSeries
FrameStats::frameIntervalsMs() const
{
    SampleSeries s;
    for (std::size_t i = 1; i < completions.size(); ++i) {
        s.add(static_cast<double>(completions[i] - completions[i - 1]) /
              static_cast<double>(oneMs));
    }
    return s;
}

} // namespace biglittle
