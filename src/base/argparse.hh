/**
 * @file
 * A small declarative command-line parser for bench binaries and
 * examples: `--name value`, `--name=value`, and boolean `--flag`
 * forms, with typed accessors, defaults, and generated --help text.
 */

#ifndef BIGLITTLE_BASE_ARGPARSE_HH
#define BIGLITTLE_BASE_ARGPARSE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace biglittle
{

/** Declarative CLI option parser. */
class ArgParser
{
  public:
    /**
     * @param program name shown in usage output
     * @param description one-line summary shown in --help
     */
    ArgParser(std::string program, std::string description);

    /** Declare a string-valued option. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare an integer-valued option. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);

    /** Declare a floating-point option. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Declare a boolean flag (false by default, set by presence). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv.  Unknown options are fatal().  `--help` prints the
     * generated usage text and exits(0).
     * @return leftover positional arguments.
     */
    std::vector<std::string> parse(int argc, const char *const *argv);

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** True if the user supplied the option explicitly. */
    bool wasSet(const std::string &name) const;

    /** Render the --help text (also printed on parse of --help). */
    std::string helpText() const;

  private:
    enum class Kind { string, integer, real, flag };

    struct Option
    {
        Kind kind;
        std::string help;
        std::string value; // current value, textual
        std::string def;   // default, textual
        bool set = false;
    };

    std::string program;
    std::string description;
    std::map<std::string, Option> options;
    std::vector<std::string> order;

    const Option &lookup(const std::string &name, Kind kind) const;
    void declare(const std::string &name, Kind kind,
                 const std::string &def, const std::string &help);
};

} // namespace biglittle

#endif // BIGLITTLE_BASE_ARGPARSE_HH
