/**
 * @file
 * Fig. 10: big-cluster frequency residency per app (share of
 * core-active time at each OPP; idle time excluded).
 *
 * Expected shape (Section VI-A): latency workloads that use big
 * cores to absorb bursts (encoder, virus_scanner, photo_editor) run
 * them at high frequencies; games/browsing/video use big cores
 * mostly at low frequencies for occasional overflow load.
 */

#include "base/argparse.hh"
#include "base/csv.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig10_big_freq_dist",
                   "Fig. 10: big-core frequency distribution");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);

    const auto results = runApps(baselineConfig(), allApps());
    printFreqResidencyTable(results, /*big=*/true, csv.get());
    return 0;
}
