#include "base/histogram.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/serialize.hh"

namespace biglittle
{

BinnedHistogram::BinnedHistogram(std::vector<double> edges_in)
    : edges(std::move(edges_in))
{
    BL_ASSERT(!edges.empty());
    BL_ASSERT(std::is_sorted(edges.begin(), edges.end()));
    for (std::size_t i = 1; i < edges.size(); ++i)
        BL_ASSERT(edges[i] > edges[i - 1]);
    weights.assign(edges.size() > 1 ? edges.size() - 1 : 0, 0.0);
}

void
BinnedHistogram::add(double x, double weight)
{
    total += weight;
    if (x < edges.front()) {
        under += weight;
        return;
    }
    if (x >= edges.back()) {
        over += weight;
        return;
    }
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    const auto bin = static_cast<std::size_t>(it - edges.begin()) - 1;
    weights[bin] += weight;
}

std::size_t
BinnedHistogram::bins() const
{
    return weights.size();
}

double
BinnedHistogram::binWeight(std::size_t i) const
{
    BL_ASSERT(i < weights.size());
    return weights[i];
}

double
BinnedHistogram::binFraction(std::size_t i) const
{
    return total > 0.0 ? binWeight(i) / total : 0.0;
}

double
BinnedHistogram::binLow(std::size_t i) const
{
    BL_ASSERT(i < weights.size());
    return edges[i];
}

double
BinnedHistogram::binHigh(std::size_t i) const
{
    BL_ASSERT(i < weights.size());
    return edges[i + 1];
}

void
BinnedHistogram::reset()
{
    std::fill(weights.begin(), weights.end(), 0.0);
    under = over = total = 0.0;
}

void
DiscreteHistogram::add(std::uint64_t key, double weight)
{
    map[key] += weight;
    total += weight;
}

double
DiscreteHistogram::weightAt(std::uint64_t key) const
{
    const auto it = map.find(key);
    return it == map.end() ? 0.0 : it->second;
}

double
DiscreteHistogram::fractionAt(std::uint64_t key) const
{
    return total > 0.0 ? weightAt(key) / total : 0.0;
}

void
DiscreteHistogram::reset()
{
    map.clear();
    total = 0.0;
}

void
DiscreteHistogram::serialize(Serializer &s) const
{
    s.putU64(map.size());
    for (const auto &[key, weight] : map) {
        s.putU64(key);
        s.putDouble(weight);
    }
    s.putDouble(total);
}

void
DiscreteHistogram::deserialize(Deserializer &d)
{
    map.clear();
    // key u64 + weight double per cell
    const std::uint64_t cells = d.getCount(16);
    for (std::uint64_t i = 0; i < cells && d.ok(); ++i) {
        const std::uint64_t key = d.getU64();
        // A hostile key inserts one cell keyed by it; the cell
        // count above is already getCount-bounded.
        // ablint:allow(taint-bound): map is associative, the key is a value not a size
        map[key] = d.getDouble();
    }
    total = d.getDouble();
}

} // namespace biglittle
