#include "core/experiment.hh"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/strutil.hh"
#include "governor/simple_governors.hh"
#include "sched/hmp.hh"
#include "sim/abrace.hh"
#include "sim/simulation.hh"
#include "snapshot/event_trace.hh"
#include "workload/behavior.hh"
#include "workload/microbench.hh"

namespace biglittle
{

const char *
governorKindName(GovernorKind kind)
{
    switch (kind) {
      case GovernorKind::interactive:
        return "interactive";
      case GovernorKind::performance:
        return "performance";
      case GovernorKind::powersave:
        return "powersave";
      case GovernorKind::ondemand:
        return "ondemand";
      case GovernorKind::conservative:
        return "conservative";
      case GovernorKind::schedutil:
        return "schedutil";
      case GovernorKind::userspace:
        return "userspace";
    }
    return "unknown";
}

double
AppRunResult::performanceValue() const
{
    if (metric == AppMetric::latency)
        return static_cast<double>(latency) /
               static_cast<double>(oneMs);
    return avgFps;
}

Status
compareStateDigests(const AppRunResult &a, const AppRunResult &b)
{
    if (a.stateDigests.size() != b.stateDigests.size()) {
        return internalError(format(
            "state digest section counts differ: %zu vs %zu",
            a.stateDigests.size(), b.stateDigests.size()));
    }
    for (std::size_t i = 0; i < a.stateDigests.size(); ++i) {
        const auto &[nameA, digestA] = a.stateDigests[i];
        const auto &[nameB, digestB] = b.stateDigests[i];
        if (nameA != nameB) {
            return internalError(format(
                "state digest section %zu named '%s' vs '%s'", i,
                nameA.c_str(), nameB.c_str()));
        }
        // The eventq digest folds in per-event sequence numbers,
        // which legitimately differ under a permuted tie-break.
        if (nameA == "eventq")
            continue;
        if (digestA != digestB) {
            return internalError(format(
                "state digests diverge in section '%s': "
                "%016llx vs %016llx",
                nameA.c_str(),
                static_cast<unsigned long long>(digestA),
                static_cast<unsigned long long>(digestB)));
        }
    }
    return okStatus();
}

namespace
{

/** Everything a run needs, wired together with correct lifetimes. */
struct Rig
{
    Simulation sim;
    AsymmetricPlatform platform;
    HmpScheduler sched;
    PowerModel power;
    std::vector<std::unique_ptr<Governor>> governors;
    std::vector<std::unique_ptr<ThermalThrottle>> throttles;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<InvariantChecker> checker;

    explicit Rig(const ExperimentConfig &cfg)
        : platform(sim, cfg.platform),
          sched(sim, platform, cfg.sched), power(platform)
    {
        platform.applyCoreConfig(cfg.coreConfig);
        for (std::size_t i = 0; i < platform.clusterCount(); ++i) {
            Cluster &cl = platform.cluster(i);
            governors.push_back(makeGovernor(cfg, cl));
            if (cfg.thermalEnabled) {
                throttles.push_back(std::make_unique<ThermalThrottle>(
                    sim, cl, cfg.thermal));
            }
        }
        if (cfg.fault.enabled) {
            FaultParams fault_params = cfg.fault;
            if (cfg.masterSeed != 0) {
                fault_params.seed =
                    deriveStreamSeed(cfg.masterSeed, "fault");
            }
            injector = std::make_unique<FaultInjector>(
                sim, platform, sched, fault_params);
            for (auto &throttle : throttles)
                injector->addThermal(throttle.get());
            checker = std::make_unique<InvariantChecker>(
                sim, platform, &sched, &power);
            checker->setNext(sched.observer());
            sched.setObserver(checker.get());
            // Injected invariant breaks surface through the checker
            // like any sweep finding, so supervised runs detect them
            // at the same chunk boundary either way.
            injector->setViolationSink([this](const std::string &what) {
                checker->reportExternal(what);
            });
        }
    }

    std::unique_ptr<Governor>
    makeGovernor(const ExperimentConfig &cfg, Cluster &cl)
    {
        switch (cfg.governor) {
          case GovernorKind::interactive:
            return std::make_unique<InteractiveGovernor>(
                sim, cl, cfg.interactive);
          case GovernorKind::performance:
            return std::make_unique<PerformanceGovernor>(sim, cl);
          case GovernorKind::powersave:
            return std::make_unique<PowersaveGovernor>(sim, cl);
          case GovernorKind::ondemand:
            return std::make_unique<OndemandGovernor>(sim, cl);
          case GovernorKind::conservative:
            return std::make_unique<ConservativeGovernor>(sim, cl);
          case GovernorKind::schedutil:
            return std::make_unique<SchedutilGovernor>(sim, cl);
          case GovernorKind::userspace: {
            FreqKHz f = cl.type() == CoreType::little
                ? cfg.userspaceLittleFreq : cfg.userspaceBigFreq;
            if (f == 0)
                f = cl.freqDomain().minFreq();
            return std::make_unique<UserspaceGovernor>(sim, cl, f);
          }
        }
        panic("unhandled governor kind");
    }

    void
    startSystem()
    {
        for (auto &gov : governors)
            gov->start();
        for (auto &throttle : throttles)
            throttle->start();
        sched.start();
        if (checker != nullptr)
            checker->start();
        if (injector != nullptr)
            injector->start();
    }
};

/**
 * Snapshot the full mutable state of a rigged run as named sections.
 * The section list is the checkpoint contract: every component with
 * state that can drift between runs must appear here, because resume
 * verification byte-compares exactly these sections.
 */
Checkpoint
collectCheckpoint(Rig &rig, AppInstance &instance,
                  const ExperimentConfig &cfg, const std::string &app)
{
    rig.platform.sync();
    Checkpoint ckpt;
    ckpt.app = app;
    ckpt.label = cfg.label;
    ckpt.masterSeed = cfg.masterSeed;
    ckpt.tick = rig.sim.now();
    ckpt.eventsServiced = rig.sim.eventQueue().eventsServiced();
    ckpt.nextSequence = rig.sim.eventQueue().nextSequenceValue();

    const auto section = [&ckpt](const std::string &name, auto &&fill) {
        Serializer s;
        fill(s);
        ckpt.add(name, s.takeBytes());
    };
    section("eventq",
            [&](Serializer &s) { rig.sim.eventQueue().serialize(s); });
    for (std::size_t i = 0; i < rig.platform.clusterCount(); ++i) {
        section(format("cluster.%zu", i), [&](Serializer &s) {
            rig.platform.cluster(i).serialize(s);
        });
    }
    for (std::size_t i = 0; i < rig.throttles.size(); ++i) {
        section(format("thermal.%zu", i), [&](Serializer &s) {
            rig.throttles[i]->serialize(s);
        });
    }
    section("sched", [&](Serializer &s) { rig.sched.serialize(s); });
    for (std::size_t i = 0; i < rig.governors.size(); ++i) {
        section(format("governor.%zu", i), [&](Serializer &s) {
            rig.governors[i]->serialize(s);
        });
    }
    if (rig.injector != nullptr) {
        section("fault",
                [&](Serializer &s) { rig.injector->serialize(s); });
    }
    section("app", [&](Serializer &s) { instance.serialize(s); });
    return ckpt;
}

/**
 * Apply one timed recovery action to a live rig.  Called at chunk
 * boundaries only (a serialization point: no event in flight), in
 * script order, so every attempt replaying the same script perturbs
 * the run at exactly the same place.
 */
void
applyRecoveryAction(Rig &rig, const RecoveryAction &act,
                    AppRunResult &result)
{
    inform("recovery: applying %s", act.describe().c_str());
    switch (act.kind) {
      case RecoveryActionKind::perturbFaultRng:
        if (rig.injector != nullptr)
            rig.injector->reseed(act.arg);
        break;
      case RecoveryActionKind::perturbTieBreak:
        rig.sim.eventQueue().setTieBreak(TieBreak::shuffle, act.arg);
        break;
      case RecoveryActionKind::quarantineCore: {
        const CoreId id = static_cast<CoreId>(act.arg);
        if (id >= rig.platform.coreCount())
            break;
        Core &core = rig.platform.core(id);
        if (core.online()) {
            const Result<std::size_t> moved = rig.sched.evacuateCore(id);
            if (!moved.ok()) {
                warn("recovery: evacuating core %u failed: %s", id,
                     moved.status().message().c_str());
            }
            const Status off = rig.platform.setCoreOnline(id, false);
            if (!off.ok()) {
                warn("recovery: cannot hotplug core %u out: %s", id,
                     off.message().c_str());
            }
        }
        // The latch only engages once the core is actually out; a
        // refused unplug (boot core) leaves the supervisor to
        // escalate to its disable-the-class rung instead.
        if (!core.online())
            core.markQuarantined();
        break;
      }
      case RecoveryActionKind::pinFreqDomain: {
        const std::size_t cl = static_cast<std::size_t>(act.arg);
        if (cl < rig.platform.clusterCount()) {
            rig.platform.cluster(cl).freqDomain().setPinned(
                static_cast<FreqKHz>(act.arg2));
        }
        break;
      }
      case RecoveryActionKind::disableFaultClass:
        if (rig.injector != nullptr && act.arg < faultClassCount)
            rig.injector->disableClass(static_cast<FaultClass>(act.arg));
        break;
    }
    ++result.scriptApplied;
}

} // namespace

Experiment::Experiment(ExperimentConfig config)
    : cfg(std::move(config))
{
}

AppRunResult
Experiment::runApp(const AppSpec &app)
{
    const SnapshotParams &snap = cfg.snapshot;
    if (!snap.recordTracePath.empty() && !snap.replayTracePath.empty()) {
        // Contradictory config, caught before the run starts.
        // ablint:allow(post-init-fatal): pre-run validation
        fatal("cannot record and replay-compare a trace in one run");
    }

    AppSpec run_app = app;
    if (cfg.masterSeed != 0) {
        run_app.seed =
            deriveStreamSeed(cfg.masterSeed, "app." + app.name);
    }

    Rig rig(cfg);

    // abrace: attach the race detector / permuted tie-break before
    // any event is scheduled so provenance covers the whole run.
    std::unique_ptr<RaceDetector> race;
    if (cfg.race.detect) {
        race = std::make_unique<RaceDetector>();
        if (!cfg.race.baselinePath.empty()) {
            const Status loaded =
                race->loadBaseline(cfg.race.baselinePath);
            if (!loaded.ok()) {
                // Run without the baseline rather than dying: the
                // conservative failure mode is *more* findings.
                warn("abrace: ignoring baseline '%s': %s",
                     cfg.race.baselinePath.c_str(),
                     loaded.toString().c_str());
            }
        }
        rig.sim.eventQueue().setRaceDetector(race.get());
    }
    if (cfg.race.tieBreak != TieBreak::fifo) {
        rig.sim.eventQueue().setTieBreak(cfg.race.tieBreak,
                                         cfg.race.shuffleSeed);
    }

    StateSampler sampler(rig.sim, rig.platform, cfg.sampleWindow);
    EfficiencyAnalyzer efficiency(rig.sim, rig.platform,
                                  cfg.sampleWindow);
    AppInstance instance(rig.sim, rig.sched, run_app);

    // Resume: load + identity-check the checkpoint before spending
    // any simulation time on the fast-forward.  A corrupt or
    // mismatched newest checkpoint falls back to older candidates
    // (rotated <path>.1, earlier periodic ticks), and when nothing
    // is usable the run simply starts fresh - a damaged file on disk
    // must never kill an otherwise valid experiment.
    std::optional<Checkpoint> resume;
    if (!snap.resumePath.empty()) {
        const auto accept = [&](const Checkpoint &c) -> Status {
            if (c.app != app.name || c.label != cfg.label ||
                c.masterSeed != cfg.masterSeed) {
                return failedPrecondition(format(
                    "checkpoint is from app '%s' config '%s' seed "
                    "%llu; this run is app '%s' config '%s' seed %llu",
                    c.app.c_str(), c.label.c_str(),
                    static_cast<unsigned long long>(c.masterSeed),
                    app.name.c_str(), cfg.label.c_str(),
                    static_cast<unsigned long long>(cfg.masterSeed)));
            }
            return okStatus();
        };
        Result<Checkpoint> loaded =
            loadCheckpointWithFallback(snap.resumePath, accept);
        if (loaded.ok()) {
            resume = std::move(loaded.value());
        } else {
            warn("resume: %s; starting from a fresh run",
                 loaded.status().message().c_str());
        }
    }

    EventTraceRecorder recorder;
    std::unique_ptr<EventTraceComparer> comparer;
    if (!snap.recordTracePath.empty()) {
        recorder.attach(rig.sim.eventQueue());
    } else if (!snap.replayTracePath.empty()) {
        Result<EventTrace> reference =
            EventTrace::readFile(snap.replayTracePath);
        if (!reference.ok()) {
            // Run without the comparison rather than dying on a
            // damaged reference; the warning keeps it auditable.
            warn("replay: %s; running without trace comparison",
                 reference.status().toString().c_str());
        } else {
            comparer = std::make_unique<EventTraceComparer>(
                std::move(reference.value()));
            comparer->attach(rig.sim.eventQueue());
        }
    }

    Watchdog watchdog(cfg.watchdog);
    if (cfg.recovery.supervised) {
        // Supervised runs must survive a trip so the recovery state
        // machine can roll back and retry; the trip is polled at the
        // next chunk boundary instead of exiting the process.
        watchdog.setExitOnTrip(false);
    }
    watchdog.start(rig.sim.eventQueue());

    rig.startSystem();
    sampler.start();
    efficiency.start();
    const PowerSnapshot before = rig.power.snapshot();
    const Tick start = rig.sim.now();
    instance.start();

    AppRunResult result;

    const Tick cap = start +
        (app.metric == AppMetric::latency
             ? std::min(app.duration, cfg.maxSimTime)
             : app.duration);

    // One chunked loop for both metrics: chunk boundaries never
    // change the event order (runUntil parks the clock), they only
    // give us places to heartbeat, checkpoint, and land exactly on
    // the resume tick.
    const Tick chunk = msToTicks(10);
    Tick next_ckpt =
        snap.checkpointEvery > 0 ? start + snap.checkpointEvery : 0;
    const Tick resume_tick = resume ? resume->tick : 0;
    bool resume_verified = !resume;

    const auto recordFailure = [&](RecoveryTrigger trigger,
                                   std::string incident, CoreId core,
                                   std::string detail) {
        result.failed = true;
        result.failureTrigger = trigger;
        result.failureIncident = std::move(incident);
        result.failureCore = core;
        result.failedAt = rig.sim.now();
        result.failureDetail = std::move(detail);
        warn("run failed (%s) at tick %llu: %s",
             recoveryTriggerName(trigger),
             static_cast<unsigned long long>(result.failedAt),
             result.failureDetail.c_str());
    };

    // Recovery-script replay: actions are applied at the first chunk
    // boundary at or after their atTick, after resume verification
    // and after the boundary's checkpoint write (so a checkpoint at
    // tick T never bakes in same-tick actions and resuming from it
    // replays them).  Actions scripted at or before the start tick
    // land here, before any event runs.  The script is replayed in
    // tick order, not append order - a supervisor rolling back
    // exponentially appends later decisions at *earlier* ticks - and
    // the sort is stable so same-tick actions keep their append
    // order, identically on every attempt.
    std::vector<RecoveryAction> script = cfg.recovery.script;
    std::stable_sort(script.begin(), script.end(),
                     [](const RecoveryAction &a, const RecoveryAction &b) {
                         return a.atTick < b.atTick;
                     });
    std::size_t next_action = 0;
    while (next_action < script.size() &&
           script[next_action].atTick <= rig.sim.now()) {
        applyRecoveryAction(rig, script[next_action], result);
        ++next_action;
    }
    const std::uint64_t violations_seen =
        rig.checker != nullptr ? rig.checker->violationCount() : 0;

    while (rig.sim.now() < cap) {
        if (app.metric == AppMetric::latency && instance.done())
            break;
        Tick target = std::min(cap, rig.sim.now() + chunk);
        if (next_ckpt > rig.sim.now())
            target = std::min(target, next_ckpt);
        if (!resume_verified && resume_tick > rig.sim.now())
            target = std::min(target, resume_tick);
        rig.sim.runUntil(target);
        watchdog.heartbeat();

        if (!resume_verified && rig.sim.now() >= resume_tick) {
            // The fast-forward reached the checkpoint's tick: the
            // live state must now equal the file byte for byte, or
            // the "resumed" run would silently diverge from the one
            // that wrote the checkpoint.  A mismatch is intercepted
            // as a failure (never fatal): unsupervised callers get a
            // failed result, a supervisor falls back to an older
            // checkpoint or a fresh start.
            const Checkpoint live =
                collectCheckpoint(rig, instance, cfg, app.name);
            const Status match = compareCheckpoints(*resume, live);
            if (!match.ok()) {
                recordFailure(RecoveryTrigger::resumeDivergence,
                              "resume-divergence", invalidCoreId,
                              format("resume verification failed at "
                                     "tick %llu: %s",
                                     static_cast<unsigned long long>(
                                         resume_tick),
                                     match.toString().c_str()));
                break;
            }
            result.resumedFrom = resume_tick;
            resume_verified = true;
        }

        // Failure interception: an armed unrecoverable fault kills an
        // unsupervised run (the historical die-on-oops contract) and
        // stops a supervised one at this boundary for rollback-retry.
        if (rig.injector != nullptr &&
            rig.injector->pendingFatal().armed) {
            const PendingFatal pf = rig.injector->pendingFatal();
            if (!cfg.recovery.supervised) {
                // Unsupervised runs keep the die-on-oops
                // contract; supervised ones recover below.
                // ablint:allow(post-init-fatal): die-on-oops contract
                fatal("unrecoverable fault on core %u at tick %llu",
                      pf.core,
                      static_cast<unsigned long long>(pf.at));
            }
            recordFailure(
                RecoveryTrigger::fatalFault,
                format("fatal-fault:cpu%u", pf.core), pf.core,
                format("%s unrecoverable fault on core %u",
                       pf.persistent ? "persistent" : "transient",
                       pf.core));
            break;
        }
        if (cfg.recovery.supervised &&
            cfg.recovery.failOnInvariantViolation &&
            rig.checker != nullptr &&
            rig.checker->violationCount() > violations_seen) {
            const auto &recorded = rig.checker->violations();
            recordFailure(RecoveryTrigger::invariantViolation,
                          "invariant-violation", invalidCoreId,
                          recorded.empty() ? "invariant violation"
                                           : recorded.back().what);
            break;
        }
        if (cfg.recovery.supervised && watchdog.trips() > 0) {
            recordFailure(RecoveryTrigger::watchdogStall,
                          "watchdog-stall", invalidCoreId,
                          "wall-clock watchdog tripped");
            break;
        }

        if (next_ckpt > 0 && rig.sim.now() >= next_ckpt) {
            if (resume_verified) {
                // Host time measures checkpoint-write overhead for
                // the stats report; it never feeds back into
                // simulated behavior.
                // ablint:allow(wall-clock): overhead metric only
                const auto t0 = std::chrono::steady_clock::now();
                const Checkpoint ckpt =
                    collectCheckpoint(rig, instance, cfg, app.name);
                const std::vector<std::uint8_t> bytes = ckpt.encode();
                const std::string path = snap.checkpointDir + "/" +
                    app.name + "." + cfg.label +
                    format(".%llu.ckpt",
                           static_cast<unsigned long long>(ckpt.tick));
                const Status written =
                    Checkpoint::writeBytes(path, bytes);
                // ablint:allow(wall-clock): overhead metric only
                const auto t1 = std::chrono::steady_clock::now();
                if (!written.ok()) {
                    warn("checkpoint write failed: %s",
                         written.toString().c_str());
                } else {
                    ++result.checkpoints.count;
                    result.checkpoints.bytes += bytes.size();
                    result.checkpoints.writeMs +=
                        std::chrono::duration<double, std::milli>(
                            t1 - t0)
                            .count();
                    result.checkpoints.lastPath = path;
                    result.checkpoints.paths.push_back(path);
                    watchdog.noteCheckpoint(bytes);
                }
            }
            next_ckpt += snap.checkpointEvery;
        }

        while (next_action < script.size() &&
               script[next_action].atTick <= rig.sim.now()) {
            applyRecoveryAction(rig, script[next_action], result);
            ++next_action;
        }
    }

    watchdog.stop();
    // abrace: close the last open batch, harvest, and detach before
    // teardown (component destructors deschedule events, and the
    // detector is destroyed before the rig is).
    if (race != nullptr) {
        race->finish();
        rig.sim.eventQueue().setRaceDetector(nullptr);
        result.raceConflicts = race->conflicts().size();
        result.raceSuppressed = race->suppressedCount();
        result.raceReport = race->report();
        if (result.raceConflicts > 0) {
            warn("abrace: %llu conflict(s) in app '%s':\n%s",
                 static_cast<unsigned long long>(result.raceConflicts),
                 app.name.c_str(), result.raceReport.c_str());
        }
    }
    if (comparer != nullptr) {
        comparer->detach();
        comparer->finish();
        if (comparer->diverged()) {
            result.traceDiverged = true;
            result.divergenceReport =
                comparer->divergence()->describe();
            warn("replay diverged from '%s':\n%s",
                 snap.replayTracePath.c_str(),
                 result.divergenceReport.c_str());
        }
    }
    if (!snap.recordTracePath.empty()) {
        recorder.detach();
        const Status written =
            recorder.trace().writeFile(snap.recordTracePath);
        if (!written.ok())
            warn("trace write failed: %s",
                 written.toString().c_str());
    }

    result.app = app.name;
    result.configLabel = cfg.label;
    result.metric = app.metric;
    result.simulatedTime = rig.sim.now() - start;
    result.completed = !result.failed &&
        (app.metric == AppMetric::latency ? instance.done() : true);
    if (app.metric == AppMetric::latency) {
        result.latency = instance.done() ? instance.latency()
                                         : result.simulatedTime;
        if (!instance.done())
            warn("app '%s' hit the simulation cap before finishing",
                 app.name.c_str());
    } else {
        result.avgFps = instance.frameStats().averageFps();
        result.minFps = instance.frameStats().minFps();
        result.frames = instance.frameStats().frames();
    }

    const PowerSnapshot after = rig.power.snapshot();
    result.energy = rig.power.energyBetween(before, after);
    result.avgPowerMw = result.energy.averagePowerMw();

    result.tlp = makeTlpReport(sampler);
    result.efficiency = efficiency.report();
    result.littleResidency =
        makeFreqResidency(rig.platform.littleCluster());
    result.bigResidency = makeFreqResidency(rig.platform.bigCluster());
    result.sched = rig.sched.stats();
    for (const auto &task : rig.sched.tasks()) {
        TaskSummary summary;
        summary.name = task->name();
        summary.instructionsRetired = task->instructionsRetired();
        summary.littleRuntime = task->runtimeOn(CoreType::little);
        summary.bigRuntime = task->runtimeOn(CoreType::big);
        summary.typeMigrations = task->typeMigrations();
        result.tasks.push_back(std::move(summary));
    }
    if (rig.injector != nullptr)
        result.faults = rig.injector->stats();
    if (rig.checker != nullptr) {
        const Status final_sweep = rig.checker->checkNow();
        result.invariantViolations = rig.checker->violationCount();
        if (!final_sweep.ok())
            result.invariantSummary = final_sweep.toString();
    }

    // End-state fingerprint: one digest per checkpoint section, so
    // two runs of the same config can be compared for bit-identity
    // without writing checkpoint files (compareStateDigests).
    const Checkpoint final_state =
        collectCheckpoint(rig, instance, cfg, app.name);
    result.stateDigests.reserve(final_state.sections.size());
    for (const CheckpointSection &sec : final_state.sections) {
        result.stateDigests.emplace_back(
            sec.name, fnv1a64(sec.payload.data(), sec.payload.size()));
    }
    return result;
}

KernelRunResult
Experiment::runKernel(const SpecKernel &kernel, CoreType type,
                      FreqKHz freq)
{
    ExperimentConfig run_cfg = cfg;
    run_cfg.governor = GovernorKind::userspace;
    if (type == CoreType::little)
        run_cfg.userspaceLittleFreq = freq;
    else
        run_cfg.userspaceBigFreq = freq;

    Experiment sub(run_cfg);
    Rig rig(sub.cfg);

    // Pin to the first online core of the requested cluster.
    Cluster &cluster = rig.platform.clusterOf(type);
    Core *target = nullptr;
    for (std::size_t i = 0; i < cluster.coreCount(); ++i) {
        if (cluster.core(i).online()) {
            target = &cluster.core(i);
            break;
        }
    }
    if (target == nullptr) {
        // The kernel has nowhere to run: a setup error.
        // ablint:allow(post-init-fatal): setup-time validation
        fatal("no online %s core for kernel '%s'", coreTypeName(type),
              kernel.name.c_str());
    }

    Task &task = rig.sched.createTask(kernel.name, kernel.workClass,
                                      target->id());
    bool finished = false;
    // Legacy fixed seed when no master seed is set (preserves the
    // calibrated reference numbers); otherwise a named stream.
    ContinuousBehavior behavior(
        rig.sim, task,
        cfg.masterSeed != 0
            ? namedStream(cfg.masterSeed, "kernel." + kernel.name)
            // ablint:allow(rng-stream): legacy fixed seed preserving calibrated reference numbers
            : Rng(7),
        kernel.instructions, [&finished](Tick) { finished = true; });

    rig.startSystem();
    const PowerSnapshot before = rig.power.snapshot();
    const Tick start = rig.sim.now();
    behavior.start();

    const Tick cap = start + cfg.maxSimTime;
    while (!finished && rig.sim.now() < cap)
        rig.sim.runFor(msToTicks(50));

    KernelRunResult result;
    result.kernel = kernel.name;
    result.coreType = type;
    result.freq = freq;
    result.completed = finished;
    if (finished) {
        result.runtime = behavior.completionTick() - start;
    } else {
        // An unfinished kernel is a reportable measurement problem,
        // not a process-killing one: callers check completed and a
        // supervisor retries the cell.
        warn("kernel '%s' did not finish within the simulation cap",
             kernel.name.c_str());
        result.runtime = rig.sim.now() - start;
    }
    const PowerSnapshot after = rig.power.snapshot();
    result.energy = rig.power.energyBetween(before, after);
    // Average power over the kernel's own runtime (the run loop may
    // overshoot completion by part of a slice).
    result.avgPowerMw = result.energy.elapsed > 0
        ? result.energy.totalMj() / ticksToSeconds(result.energy.elapsed)
        : 0.0;
    return result;
}

MicrobenchResult
Experiment::runMicrobench(CoreType type, FreqKHz freq,
                          double utilization, Tick duration)
{
    ExperimentConfig run_cfg = cfg;
    run_cfg.governor = GovernorKind::userspace;
    if (type == CoreType::little)
        run_cfg.userspaceLittleFreq = freq;
    else
        run_cfg.userspaceBigFreq = freq;

    Experiment sub(run_cfg);
    Rig rig(sub.cfg);

    Cluster &cluster = rig.platform.clusterOf(type);
    Core *target = nullptr;
    for (std::size_t i = 0; i < cluster.coreCount(); ++i) {
        if (cluster.core(i).online()) {
            target = &cluster.core(i);
            break;
        }
    }
    if (target == nullptr) {
        // The microbenchmark has nowhere to run: a setup error.
        // ablint:allow(post-init-fatal): setup-time validation
        fatal("no online %s core for the microbenchmark",
              coreTypeName(type));
    }

    UtilizationMicrobench bench(rig.sim, rig.sched, target->id(),
                                utilization);
    rig.startSystem();
    const PowerSnapshot before = rig.power.snapshot();
    const Tick start = rig.sim.now();
    const Tick busy_before = target->busyTicks();
    bench.start();
    rig.sim.runUntil(start + duration);

    rig.platform.sync();
    MicrobenchResult result;
    result.coreType = type;
    result.freq = freq;
    result.targetUtilization = utilization;
    result.achievedUtilization =
        static_cast<double>(target->busyTicks() - busy_before) /
        static_cast<double>(duration);
    const PowerSnapshot after = rig.power.snapshot();
    result.avgPowerMw =
        rig.power.energyBetween(before, after).averagePowerMw();
    return result;
}

} // namespace biglittle
