#include "workload/spec.hh"

#include "base/logging.hh"

namespace biglittle
{

const std::vector<SpecKernel> &
specSuite()
{
    // {ilp, l1MissPerInst, footprintKB}; budgets sized so each run
    // takes a few simulated seconds on a little core at 1.3 GHz.
    static const std::vector<SpecKernel> suite = {
        {"perlbench", {0.32, 0.006, 250.0}, 2.0e9},
        {"bzip2", {0.55, 0.014, 850.0}, 2.0e9},
        {"gcc", {0.50, 0.020, 1400.0}, 1.5e9},
        {"mcf", {0.25, 0.050, 1800.0}, 0.8e9},
        {"gobmk", {0.30, 0.008, 400.0}, 2.0e9},
        {"hmmer", {0.92, 0.004, 180.0}, 3.0e9},
        {"sjeng", {0.28, 0.007, 300.0}, 2.0e9},
        {"libquantum", {0.60, 0.040, 32768.0}, 0.8e9},
        {"h264ref", {0.85, 0.012, 600.0}, 3.0e9},
        {"omnetpp", {0.40, 0.035, 1600.0}, 1.0e9},
        {"astar", {0.45, 0.022, 1100.0}, 1.5e9},
        {"xalancbmk", {0.50, 0.030, 1700.0}, 1.2e9},
    };
    return suite;
}

const SpecKernel &
specKernelByName(const std::string &name)
{
    for (const SpecKernel &k : specSuite()) {
        if (k.name == name)
            return k;
    }
    fatal("unknown SPEC kernel '%s'", name.c_str());
}

} // namespace biglittle
