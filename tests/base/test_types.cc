/**
 * @file
 * Unit tests for the fundamental time/frequency scalar types.
 */

#include <gtest/gtest.h>

#include "base/types.hh"

using namespace biglittle;

TEST(Types, TickConstantsAreConsistent)
{
    EXPECT_EQ(oneUs, 1000u);
    EXPECT_EQ(oneMs, 1000u * oneUs);
    EXPECT_EQ(oneSec, 1000u * oneMs);
}

TEST(Types, MsToTicksRoundTrip)
{
    EXPECT_EQ(msToTicks(0), 0u);
    EXPECT_EQ(msToTicks(1), oneMs);
    EXPECT_EQ(msToTicks(250), 250u * oneMs);
    EXPECT_EQ(ticksToMs(msToTicks(123)), 123u);
}

TEST(Types, UsToTicks)
{
    EXPECT_EQ(usToTicks(16667), 16667u * 1000u);
}

TEST(Types, TicksToMsTruncates)
{
    EXPECT_EQ(ticksToMs(oneMs - 1), 0u);
    EXPECT_EQ(ticksToMs(oneMs), 1u);
    EXPECT_EQ(ticksToMs(oneMs + 1), 1u);
}

TEST(Types, TicksToSeconds)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(oneSec), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(oneMs), 1e-3);
    EXPECT_DOUBLE_EQ(ticksToSeconds(0), 0.0);
}

TEST(Types, FrequencyConversions)
{
    EXPECT_DOUBLE_EQ(kHzToHz(1300000), 1.3e9);
    EXPECT_DOUBLE_EQ(kHzToGHz(1300000), 1.3);
    EXPECT_DOUBLE_EQ(kHzToGHz(500000), 0.5);
}

TEST(Types, CyclesIn)
{
    // 1 second at 1 GHz is 1e9 cycles.
    EXPECT_DOUBLE_EQ(cyclesIn(oneSec, 1000000), 1e9);
    // 1 ms at 500 MHz is 5e5 cycles.
    EXPECT_DOUBLE_EQ(cyclesIn(oneMs, 500000), 5e5);
}

TEST(Types, SentinelsAreExtreme)
{
    EXPECT_GT(invalidCoreId, 1000000u);
    EXPECT_EQ(maxTick, std::numeric_limits<Tick>::max());
}
