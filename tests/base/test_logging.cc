/**
 * @file
 * Tests for the logging/error facilities: panic aborts, fatal exits
 * with status 1, log-level filtering is honored.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"

using namespace biglittle;

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config '%s'", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config 'x'");
}

TEST(LoggingDeathTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(BL_ASSERT(1 == 2), "assertion '1 == 2' failed");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    BL_ASSERT(2 + 2 == 4);
    SUCCEED();
}

TEST(Logging, LevelRoundTrip)
{
    const LogLevel old = logLevel();
    setLogLevel(LogLevel::quiet);
    EXPECT_EQ(logLevel(), LogLevel::quiet);
    setLogLevel(LogLevel::verbose);
    EXPECT_EQ(logLevel(), LogLevel::verbose);
    setLogLevel(old);
}

TEST(Logging, WarnAndInformDoNotCrashAtAnyLevel)
{
    const LogLevel old = logLevel();
    for (LogLevel level :
         {LogLevel::quiet, LogLevel::normal, LogLevel::verbose}) {
        setLogLevel(level);
        warn("test warning %d", 1);
        inform("test info %s", "two");
        debugLog("test debug %f", 3.0);
    }
    setLogLevel(old);
    SUCCEED();
}
