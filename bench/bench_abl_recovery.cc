/**
 * @file
 * Ablation: what supervised self-healing costs.
 *
 * A persistent unrecoverable fault is planted on a big core mid-run
 * and the Supervisor left to deal with it: rollback-retry, then
 * quarantine, then finish degraded.  Swept over the checkpoint
 * period, the run reports
 *
 *  - rollback latency: host milliseconds per recovery cycle (the
 *    verified fast-forward back to the rollback point plus the
 *    re-executed tail), which shrinks as checkpoints get denser;
 *  - checkpoint overhead: how much the denser checkpointing costs
 *    the clean portion of the run;
 *  - degraded-mode throughput: frame rate after the faulty core is
 *    hotplugged out, against the clean 8-core baseline.
 *
 * The interesting shape: rollback latency should fall roughly
 * linearly with the checkpoint period while the degraded frame rate
 * stays flat - recovery cost is a knob, the degraded steady state is
 * not.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"
#include "supervise/supervisor.hh"

using namespace biglittle;

namespace
{

double
wallMsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_abl_recovery",
                   "ablation: rollback latency and degraded-mode "
                   "throughput of supervised recovery");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.addInt("seed", 1, "master seed");
    args.addInt("duration_ms", 4000, "app run length");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"ckpt_ms", "attempts", "retries", "quarantines",
                     "wall_ms", "rollback_ms", "clean_fps",
                     "degraded_fps", "fps_retention"});
    }

    const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
    const auto duration_ms =
        static_cast<std::uint64_t>(args.getInt("duration_ms"));
    AppSpec app = eternityWarrior2App();
    app.duration = msToTicks(duration_ms);

    // Clean 8-core baseline: no faults, no supervisor involvement
    // beyond pass-through.
    ExperimentConfig clean_cfg;
    clean_cfg.masterSeed = seed;
    clean_cfg.label = "recovery-clean";
    const auto clean_t0 = std::chrono::steady_clock::now();
    const AppRunResult clean = Experiment(clean_cfg).runApp(app);
    const double clean_wall = wallMsSince(clean_t0);

    std::printf("clean baseline: %.1f fps, %.0f host ms\n\n",
                clean.avgFps, clean_wall);
    std::printf("%s\n",
                (padRight("ckpt period", 13) + padLeft("attempts", 9) +
                 padLeft("retries", 8) + padLeft("rollback", 11) +
                 padLeft("fps", 8) + padLeft("retention", 11))
                    .c_str());

    const std::vector<std::uint64_t> ckpt_periods_ms = {50, 100, 200,
                                                        400};
    for (const std::uint64_t ckpt_ms : ckpt_periods_ms) {
        ExperimentConfig cfg;
        cfg.masterSeed = seed;
        cfg.label = format("recovery-c%llu",
                           static_cast<unsigned long long>(ckpt_ms));
        cfg.snapshot.checkpointEvery = msToTicks(ckpt_ms);
        cfg.snapshot.checkpointDir = "bench-recovery-ckpt";
        std::filesystem::create_directories(cfg.snapshot.checkpointDir);
        cfg.fault.enabled = true;
        cfg.fault.persistentCrashCore = 6;
        cfg.fault.persistentCrashAt =
            msToTicks(duration_ms * 6 / 10);

        Supervisor supervisor(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        const SupervisedRunResult r = supervisor.run(app);
        const double wall = wallMsSince(t0);

        // Everything past the clean-run cost is recovery machinery:
        // checkpoint writes, verified fast-forwards, re-executed
        // tails.  Attribute it per rollback cycle.
        const std::uint32_t cycles =
            r.report.retries + r.report.quarantines;
        const double rollback_ms =
            cycles > 0 ? (wall - clean_wall) / cycles : 0.0;
        const double retention =
            clean.avgFps > 0.0 ? r.run.avgFps / clean.avgFps : 0.0;

        std::printf("%s%9u%8u%9.1fms%8.1f%10.0f%%\n",
                    padRight(format("%llums",
                                    static_cast<unsigned long long>(
                                        ckpt_ms)),
                             13)
                        .c_str(),
                    r.report.attempts, r.report.retries, rollback_ms,
                    r.run.avgFps, retention * 100.0);
        if (csv) {
            csv->beginRow();
            csv->cell(static_cast<double>(ckpt_ms));
            csv->cell(static_cast<double>(r.report.attempts));
            csv->cell(static_cast<double>(r.report.retries));
            csv->cell(static_cast<double>(r.report.quarantines));
            csv->cell(wall);
            csv->cell(rollback_ms);
            csv->cell(clean.avgFps);
            csv->cell(r.run.avgFps);
            csv->cell(retention);
            csv->endRow();
        }
    }
    std::puts("\n(denser checkpoints shorten each rollback; the "
              "degraded frame rate depends only on the quarantined "
              "core, not the checkpoint period)");
    return 0;
}
