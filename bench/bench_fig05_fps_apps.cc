/**
 * @file
 * Fig. 5: average- and minimum-FPS improvement vs power increase of
 * 4 big cores over 4 little cores for the five FPS-oriented apps.
 *
 * Expected shape (Section III-A): average-FPS gains are small except
 * for the CPU-intensive game (eternity_warrior2), but the worst
 * 1-second window improves more - occasional demand spikes exceed
 * the little cores' capability.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig05_fps_apps",
                   "Fig. 5: 4 big vs 4 little, FPS apps");
    args.addString("csv", "", "mirror rows into this CSV file");
    addSnapshotOptions(args);
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "avg_fps_little", "avg_fps_big",
                     "avg_fps_improve_pct", "min_fps_little",
                     "min_fps_big", "min_fps_improve_pct",
                     "power_increase_pct"});
    }

    const auto apps = fpsApps();
    ExperimentConfig little_cfg = littleOnlyConfig();
    ExperimentConfig big_cfg = bigOnlyConfig();
    applySnapshotOptions(args, little_cfg);
    applySnapshotOptions(args, big_cfg);
    const auto little = runApps(little_cfg, apps);
    const auto big = runApps(big_cfg, apps);

    std::printf("%s\n",
                (padRight("app", 18) + padLeft("avg L", 8) +
                 padLeft("avg B", 8) + padLeft("avg +%", 8) +
                 padLeft("min L", 8) + padLeft("min B", 8) +
                 padLeft("min +%", 8) + padLeft("pwr +%", 9))
                    .c_str());
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const double avg_imp =
            pctChange(big[i].avgFps, little[i].avgFps);
        const double min_imp =
            pctChange(big[i].minFps, little[i].minFps);
        const double pwr_inc =
            pctChange(big[i].avgPowerMw, little[i].avgPowerMw);
        std::printf("%s%8.1f%8.1f%8.1f%8.1f%8.1f%8.1f%9.1f\n",
                    padRight(apps[i].name, 18).c_str(),
                    little[i].avgFps, big[i].avgFps, avg_imp,
                    little[i].minFps, big[i].minFps, min_imp,
                    pwr_inc);
        if (csv) {
            csv->beginRow();
            csv->cell(apps[i].name);
            csv->cell(little[i].avgFps);
            csv->cell(big[i].avgFps);
            csv->cell(avg_imp);
            csv->cell(little[i].minFps);
            csv->cell(big[i].minFps);
            csv->cell(min_imp);
            csv->cell(pwr_inc);
            csv->endRow();
        }
    }
    return 0;
}
