/**
 * @file
 * Core: one logical CPU with exact event-driven time/energy
 * accounting.
 *
 * A core is either online or offline (hotplug) and, while online,
 * either busy (running at least one task) or idle (WFI).  Every state
 * or frequency transition closes the accounting interval at the old
 * operating point, so busy-time-by-frequency residency (Figs. 9/10)
 * and the energy weights used by the power model are exact, with no
 * sampling error.
 */

#ifndef BIGLITTLE_PLATFORM_CORE_HH
#define BIGLITTLE_PLATFORM_CORE_HH

#include <string>

#include "base/histogram.hh"
#include "base/types.hh"
#include "platform/freq_domain.hh"
#include "platform/params.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class Cluster;

/** One logical CPU. */
class Core
{
  public:
    Core(Simulation &sim, CoreId id, CoreType type,
         const CorePerfParams &perf, FreqDomain &domain,
         Cluster &cluster, std::string name);

    Core(const Core &) = delete;
    Core &operator=(const Core &) = delete;

    CoreId id() const { return coreId; }
    CoreType type() const { return coreType; }
    const std::string &name() const { return coreName; }
    const CorePerfParams &perfParams() const { return perf; }
    FreqDomain &freqDomain() { return domain; }
    const FreqDomain &freqDomain() const { return domain; }
    Cluster &cluster() { return parent; }
    const Cluster &cluster() const { return parent; }

    bool online() const { return isOnline; }
    bool busy() const { return isBusy; }

    /**
     * Whether the core has been quarantined (hotplugged out for good
     * by a supervisor after persistent faults).  A one-way latch: the
     * platform refuses to bring a quarantined core back online, so
     * neither the fault injector's replug nor a core-config sweep can
     * revive failing silicon.  Deliberately not serialized: the flag
     * is reconstructed by replaying the supervisor's recovery script,
     * keeping checkpoint bytes identical across attempts.
     */
    bool quarantined() const { return isQuarantined; }

    /** Latch the quarantine flag (there is no way back). */
    void markQuarantined() { isQuarantined = true; }

    /**
     * Hotplug the core.  Going offline requires the core to be idle
     * (the scheduler must have migrated its tasks away first).
     */
    void setOnline(bool online);

    /** Mark the core busy (>=1 runnable task) or idle. */
    void setBusy(bool busy);

    /** Close the accounting interval at the current time. */
    void sync();

    /** Called by the cluster just before the domain changes OPP. */
    void preFreqChange();

    /** Total ticks spent busy since construction. */
    Tick busyTicks() const { return busyTotal; }

    /** Total ticks spent online since construction. */
    Tick onlineTicks() const { return onlineTotal; }

    /** Busy ticks keyed by the frequency (kHz) they ran at. */
    const DiscreteHistogram &busyTicksByFreq() const { return busyByFreq; }

    /** Integral of V^2 * f_GHz over busy seconds (dynamic energy). */
    double dynWeight() const { return dynW; }

    /** Integral of V over online-and-busy seconds. */
    double staticBusyWeight() const { return staticBusyW; }

    /** Integral of V over online-and-idle seconds (all states). */
    double staticIdleWeight() const { return idleWfiW + idleGatedW; }

    /** Integral of V over idle seconds spent in clock-gated WFI. */
    double idleWfiWeight() const { return idleWfiW; }

    /** Integral of V over idle seconds spent power gated. */
    double idleGatedWeight() const { return idleGatedW; }

    /**
     * Length of the current continuous idle span (0 while busy or
     * offline); instantaneous power picks the C-state from it.
     */
    Tick currentIdleSpan() const;

    /**
     * Write all mutable accounting state.  Call sync() first so the
     * open interval is closed at the current tick; two runs in the
     * same state then produce identical bytes.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize() (round-trip exact). */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    CoreId coreId; // ablint:allow(serialize-coverage): identity fixed at construction
    CoreType coreType;
    CorePerfParams perf;
    FreqDomain &domain;
    Cluster &parent;
    // ablint:allow(serialize-coverage): identity fixed at construction
    std::string coreName;

    bool isOnline = true;
    bool isBusy = false;
    // ablint:allow(serialize-coverage): re-latched by the supervisor's quarantine record on rebuild
    bool isQuarantined = false;
    Tick lastUpdate = 0;

    Tick busyTotal = 0;
    Tick onlineTotal = 0;
    Tick idleSpanStart = 0; ///< start of the current idle span
    DiscreteHistogram busyByFreq;
    double dynW = 0.0;
    double staticBusyW = 0.0;
    double idleWfiW = 0.0;
    double idleGatedW = 0.0;
    // ablint:allow(serialize-coverage): fixed at construction from params
    Tick gateAfter; ///< WFI -> gated promotion delay (from params)

    void accountTo(Tick now);
};

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_CORE_HH
