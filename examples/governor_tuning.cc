/**
 * @file
 * governor_tuning: sweep one interactive-governor or HMP-scheduler
 * parameter for one app and print the power/performance frontier -
 * the Section VI-C methodology as a reusable tool.
 *
 * Examples:
 *   governor_tuning --app bbench --knob sampling
 *   governor_tuning --app fifa15 --knob target-load
 *   governor_tuning --app encoder --knob up-threshold
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/logging.hh"
#include "base/strutil.hh"
#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

struct SweepResult
{
    std::string setting;
    double perf;
    double powerMw;
};

SweepResult
runPoint(const AppSpec &app, const ExperimentConfig &cfg,
         const std::string &setting)
{
    std::fprintf(stderr, "  running %s = %s...\n", cfg.label.c_str(),
                 setting.c_str());
    Experiment experiment(cfg);
    const AppRunResult r = experiment.runApp(app);
    return {setting, r.performanceValue(), r.avgPowerMw};
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("governor_tuning",
                   "sweep a governor/scheduler knob for one app");
    args.addString("app", "bbench", "app name from Table II");
    args.addString("knob", "sampling",
                   "sampling | target-load | up-threshold | history");
    args.parse(argc, argv);

    const AppSpec app = appByName(args.getString("app"));
    const std::string knob = toLower(args.getString("knob"));

    std::vector<SweepResult> results;
    if (knob == "sampling") {
        for (const int ms : {10, 20, 40, 60, 100}) {
            ExperimentConfig cfg;
            cfg.interactive.samplingRate =
                msToTicks(static_cast<std::uint64_t>(ms));
            cfg.label = "sampling";
            results.push_back(
                runPoint(app, cfg, format("%dms", ms)));
        }
    } else if (knob == "target-load") {
        for (const int load : {50, 60, 70, 80, 90}) {
            ExperimentConfig cfg;
            cfg.interactive.targetLoad = load;
            cfg.interactive.goHispeedLoad =
                std::min(99.0, load + 15.0);
            cfg.label = "target-load";
            results.push_back(runPoint(app, cfg, format("%d", load)));
        }
    } else if (knob == "up-threshold") {
        for (const int up : {400, 550, 700, 850, 950}) {
            ExperimentConfig cfg;
            cfg.sched.upThreshold = static_cast<std::uint32_t>(up);
            cfg.sched.downThreshold = static_cast<std::uint32_t>(
                std::max(32, up - 444));
            cfg.label = "up-threshold";
            results.push_back(runPoint(app, cfg, format("%d", up)));
        }
    } else if (knob == "history") {
        for (const int half_life : {8, 16, 32, 64, 128}) {
            ExperimentConfig cfg;
            cfg.sched.loadHalfLifeMs = half_life;
            cfg.label = "history";
            results.push_back(
                runPoint(app, cfg, format("%dms", half_life)));
        }
    } else {
        fatal("unknown knob '%s'", knob.c_str());
    }

    const char *perf_label =
        app.metric == AppMetric::latency ? "latency(ms)" : "avg FPS";
    std::printf("\n%s sweep for %s\n", knob.c_str(), app.name.c_str());
    std::printf("%s%14s%12s\n", padRight("setting", 12).c_str(),
                perf_label, "power(mW)");
    for (const SweepResult &r : results) {
        std::printf("%s%14.1f%12.0f\n",
                    padRight(r.setting, 12).c_str(), r.perf,
                    r.powerMw);
    }
    std::puts("\n(the default platform setting is the middle row; "
              "Section VI-C of the paper explores the same space)");
    return 0;
}
