/**
 * @file
 * Fig. 13: average-FPS change of the eight governor/HMP parameter
 * configurations relative to the default system, for the five
 * FPS-oriented apps (average and min-max range).
 *
 * Expected shape (Section VI-C): average FPS is largely insensitive
 * to the knobs; only the longest sampling interval shows visible
 * drops for the demanding game.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig13_param_fps",
                   "Fig. 13: FPS change of 8 configs");
    args.addString("csv", "", "mirror rows into this CSV file");
    addRaceOptions(args);
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"config", "app", "avg_fps",
                     "fps_change_pct"});
    }

    RaceGate gate(args);
    const auto apps = fpsApps();
    ExperimentConfig baseline_cfg = baselineConfig();
    applyRaceOptions(args, baseline_cfg);
    const auto baseline = runApps(baseline_cfg, apps);
    gate.check(baseline_cfg, apps, baseline);

    std::printf("%s\n",
                (padRight("config", 20) + padLeft("avg %", 9) +
                 padLeft("min %", 9) + padLeft("max %", 9))
                    .c_str());
    std::puts("  (average-FPS change vs baseline; negative = worse)");

    for (const SweepPoint &point : parameterSweep()) {
        ExperimentConfig sweep_cfg = point.config;
        applyRaceOptions(args, sweep_cfg);
        const auto results = runApps(sweep_cfg, apps);
        gate.check(sweep_cfg, apps, results);
        double sum = 0.0, mn = 1e9, mx = -1e9;
        for (std::size_t a = 0; a < apps.size(); ++a) {
            const double change =
                pctChange(results[a].avgFps, baseline[a].avgFps);
            sum += change;
            mn = std::min(mn, change);
            mx = std::max(mx, change);
            if (csv) {
                csv->beginRow();
                csv->cell(point.label);
                csv->cell(apps[a].name);
                csv->cell(results[a].avgFps);
                csv->cell(change);
                csv->endRow();
            }
        }
        std::printf("%s%9.2f%9.2f%9.2f\n",
                    padRight(point.label, 20).c_str(),
                    sum / static_cast<double>(apps.size()), mn, mx);
    }
    return gate.exitCode();
}
