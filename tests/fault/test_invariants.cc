/**
 * @file
 * Tests for the InvariantChecker: a healthy system passes every
 * sweep, manufactured bad states are flagged (without crashing), and
 * observer callbacks chain to the next observer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/invariants.hh"
#include "platform/platform.hh"
#include "platform/power.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

WorkClass
pureCompute()
{
    return WorkClass{0.8, 0.0, 64.0};
}

/** Observer that records which callbacks reached it. */
class RecordingObserver : public SchedObserver
{
  public:
    std::vector<std::string> events;

    void
    onWakeup(const Task &, const Core &) override
    {
        events.push_back("wakeup");
    }

    void onSleep(const Task &) override { events.push_back("sleep"); }

    void
    onMigrate(const Task &, const Core &, const Core &, bool) override
    {
        events.push_back("migrate");
    }

    void
    onBalance(const Task &, const Core &, const Core &) override
    {
        events.push_back("balance");
    }
};

class InvariantTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    HmpScheduler sched{sim, plat, baselineSchedParams()};
    PowerModel power{plat};

    void
    SetUp() override
    {
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        plat.bigCluster().freqDomain().setFreqNow(1900000);
    }
};

} // namespace

TEST_F(InvariantTest, HealthyRunHasNoViolations)
{
    InvariantChecker checker(sim, plat, &sched, &power);
    sched.setObserver(&checker);
    sched.start();
    checker.start();
    sched.createTask("a", pureCompute()).submitWork(1e10);
    sched.createTask("b", pureCompute()).submitWork(5e9);
    sim.runFor(msToTicks(500));

    EXPECT_GT(checker.checks(), 0u);
    EXPECT_EQ(checker.violationCount(), 0u);
    EXPECT_TRUE(checker.checkNow().ok());
}

TEST_F(InvariantTest, FlagsAllLittleCoresOffline)
{
    InvariantChecker checker(sim, plat, &sched, &power);

    // Bypass AsymmetricPlatform::setCoreOnline (which would refuse)
    // to manufacture the state the checker must catch.
    for (std::size_t i = 0; i < 4; ++i)
        plat.core(i).setOnline(false);

    const Status st = checker.checkNow();
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::internal);
    EXPECT_GE(checker.violationCount(), 1u);
    ASSERT_FALSE(checker.violations().empty());
    EXPECT_NE(checker.violations().front().what.find("little"),
              std::string::npos);
}

TEST_F(InvariantTest, NoLittleCoreIsLegalWithoutBootRule)
{
    PlatformParams p = exynos5422Params();
    p.enforceBootCore = false;
    Simulation sim2;
    AsymmetricPlatform plat2(sim2, p);
    InvariantChecker checker(sim2, plat2, nullptr, nullptr);

    for (std::size_t i = 0; i < 4; ++i)
        plat2.core(i).setOnline(false);
    EXPECT_TRUE(checker.checkNow().ok());
}

TEST_F(InvariantTest, FlagsOfflinePlacement)
{
    InvariantChecker checker(sim, plat, &sched, &power);
    sched.start();
    Task &t = sched.createTask("t", pureCompute());

    const Core &offline = plat.core(7);
    plat.core(7).setOnline(false);
    checker.onWakeup(t, offline);
    EXPECT_EQ(checker.violationCount(), 1u);
    EXPECT_NE(checker.violations().front().what.find("offline"),
              std::string::npos);
}

TEST_F(InvariantTest, FlagsUndrainedSleep)
{
    InvariantChecker checker(sim, plat, &sched, &power);
    sched.start();
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(1e9);
    checker.onSleep(t); // pending work: not a legal sleep
    EXPECT_EQ(checker.violationCount(), 1u);
}

TEST_F(InvariantTest, ObserverCallbacksChain)
{
    InvariantChecker checker(sim, plat, &sched, &power);
    RecordingObserver next;
    checker.setNext(&next);
    sched.start();
    Task &t = sched.createTask("t", pureCompute());

    checker.onWakeup(t, plat.core(0));
    checker.onBalance(t, plat.core(0), plat.core(1));
    checker.onMigrate(t, plat.core(0), plat.core(4), true);
    EXPECT_EQ(next.events,
              (std::vector<std::string>{"wakeup", "balance",
                                        "migrate"}));
    // Healthy placements produced no violations along the way.
    EXPECT_EQ(checker.violationCount(), 0u);
}

TEST_F(InvariantTest, RecordingIsCappedButCountingIsNot)
{
    InvariantParams ip;
    ip.maxRecorded = 2;
    InvariantChecker checker(sim, plat, &sched, &power, ip);
    sched.start();
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(1e9);
    for (int i = 0; i < 5; ++i)
        checker.onSleep(t);
    EXPECT_EQ(checker.violationCount(), 5u);
    EXPECT_EQ(checker.violations().size(), 2u);
}

TEST_F(InvariantTest, EnergyAndRunqueueSweepStaysClean)
{
    InvariantChecker checker(sim, plat, &sched, &power);
    sched.setObserver(&checker);
    sched.start();
    checker.start();
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(2e9);
    // Drive through wakeup / migration / drain under the sweep.
    for (int i = 0; i < 20; ++i) {
        sim.runFor(msToTicks(25));
        if (t.drained())
            t.submitWork(2e9);
    }
    EXPECT_EQ(checker.violationCount(), 0u);
}
