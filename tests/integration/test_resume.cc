/**
 * @file
 * Kill/resume integration suite: a run that is checkpointed, killed,
 * and resumed must be bit-identical to an uninterrupted run — across
 * many seeds, with and without fault injection — and the event-trace
 * record/replay machinery must pinpoint the first diverging event of
 * a perturbed run.  This is the end-to-end proof of the determinism
 * contract in docs/DETERMINISM.md.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

#include "base/strutil.hh"
#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

/**
 * Exact fingerprint of everything a run reports.  Doubles are
 * rendered with %a (hex float) so any difference — even one ULP —
 * changes the string; "bit-identical" is meant literally.
 */
std::string
fingerprint(const AppRunResult &r)
{
    std::string out = r.app + "|" + r.configLabel + "|";
    out += format("st=%llu done=%d lat=%llu frames=%llu ",
                  static_cast<unsigned long long>(r.simulatedTime),
                  r.completed ? 1 : 0,
                  static_cast<unsigned long long>(r.latency),
                  static_cast<unsigned long long>(r.frames));
    out += format("fps=%a min=%a pwr=%a ", r.avgFps, r.minFps,
                  r.avgPowerMw);
    out += format("eDyn=%a eStat=%a eClus=%a eBase=%a ",
                  r.energy.coreDynamicMj, r.energy.coreStaticMj,
                  r.energy.clusterStaticMj, r.energy.baseMj);
    out += format("tlp=%a idle=%a ", r.tlp.tlp, r.tlp.idlePct);
    out += format("up=%llu down=%llu bal=%llu wake=%llu abrk=%llu ",
                  static_cast<unsigned long long>(r.sched.migrationsUp),
                  static_cast<unsigned long long>(
                      r.sched.migrationsDown),
                  static_cast<unsigned long long>(r.sched.balanceMoves),
                  static_cast<unsigned long long>(r.sched.wakeups),
                  static_cast<unsigned long long>(
                      r.sched.affinityBreaks));
    out += format("fHp=%llu fDvfs=%llu fTherm=%llu fStall=%llu inv=%llu ",
                  static_cast<unsigned long long>(r.faults.hotplugOff +
                                                  r.faults.hotplugOn),
                  static_cast<unsigned long long>(r.faults.dvfsDenied +
                                                  r.faults.dvfsDelayed),
                  static_cast<unsigned long long>(
                      r.faults.thermalSpikes),
                  static_cast<unsigned long long>(r.faults.taskStalls),
                  static_cast<unsigned long long>(
                      r.invariantViolations));
    for (const TaskSummary &t : r.tasks) {
        out += format("%s:%a:%llu:%llu ", t.name.c_str(),
                      t.instructionsRetired,
                      static_cast<unsigned long long>(t.littleRuntime),
                      static_cast<unsigned long long>(t.bigRuntime));
    }
    return out;
}

std::string
scratchDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
}

AppSpec
testApp(std::uint64_t seed)
{
    AppSpec app = eternityWarrior2App();
    app.seed = seed;
    app.duration = msToTicks(1500);
    return app;
}

ExperimentConfig
faultyConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.fault = scaledFaultParams(1.5, seed);
    cfg.label = "chaos";
    return cfg;
}

/**
 * The core property: run to completion with periodic checkpoints,
 * then "kill" the run at an intermediate checkpoint and resume from
 * its file; the resumed run's full result must be bit-identical.
 */
void
expectResumeBitIdentical(const ExperimentConfig &base_cfg,
                         const AppSpec &app, const std::string &dir)
{
    // Truncated run: the "killed" process.  It gets its own
    // checkpoint dir so its files are the ones a real crash leaves.
    AppSpec killed = app;
    killed.duration = msToTicks(900);
    ExperimentConfig killed_cfg = base_cfg;
    killed_cfg.snapshot.checkpointEvery = msToTicks(400);
    killed_cfg.snapshot.checkpointDir = dir;
    Experiment killed_exp(killed_cfg);
    const AppRunResult partial = killed_exp.runApp(killed);
    ASSERT_EQ(partial.checkpoints.count, 2u); // 400 ms and 800 ms
    ASSERT_FALSE(partial.checkpoints.lastPath.empty());

    // Reference: the same run uninterrupted, no snapshotting at all.
    Experiment full_exp(base_cfg);
    const AppRunResult full = full_exp.runApp(app);

    // Resumed: fast-forward through the checkpoint, then finish.
    ExperimentConfig resume_cfg = base_cfg;
    resume_cfg.snapshot.resumePath = partial.checkpoints.lastPath;
    Experiment resumed_exp(resume_cfg);
    const AppRunResult resumed = resumed_exp.runApp(app);

    EXPECT_EQ(resumed.resumedFrom, msToTicks(800));
    EXPECT_EQ(fingerprint(resumed), fingerprint(full));
}

} // namespace

class ResumeSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ResumeSeeds, ResumedRunIsBitIdentical)
{
    // Per-seed dir: the tick-named checkpoint files are identical
    // across seeds, so a shared dir races under parallel ctest.
    expectResumeBitIdentical(
        ExperimentConfig{}, testApp(GetParam()),
        scratchDir("bl_resume_clean_" +
                   std::to_string(GetParam())));
}

TEST_P(ResumeSeeds, ResumedChaosRunIsBitIdentical)
{
    // Fault injection participates in the determinism contract: the
    // injector's RNG and counters are checkpointed, so a perturbed
    // run resumes exactly as it would have continued.
    expectResumeBitIdentical(
        faultyConfig(GetParam()), testApp(GetParam()),
        scratchDir("bl_resume_chaos_" +
                   std::to_string(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, ResumeSeeds,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull,
                                           5ull, 6ull, 7ull, 8ull,
                                           9ull, 10ull));

TEST(Resume, KilledRunCheckpointEqualsUninterruptedCheckpoint)
{
    // Crash-equivalence: the checkpoint a killed run leaves behind is
    // byte-identical to the one an uninterrupted run writes at the
    // same tick — checkpoint contents depend only on simulated
    // history, never on how much future the process went on to have.
    const std::string dir_killed = scratchDir("bl_ckpt_killed");
    const std::string dir_full = scratchDir("bl_ckpt_full");

    AppSpec killed = testApp(42);
    killed.duration = msToTicks(900);
    ExperimentConfig cfg;
    cfg.snapshot.checkpointEvery = msToTicks(400);
    cfg.snapshot.checkpointDir = dir_killed;
    const AppRunResult partial = Experiment(cfg).runApp(killed);

    cfg.snapshot.checkpointDir = dir_full;
    const AppRunResult complete = Experiment(cfg).runApp(testApp(42));
    ASSERT_GT(complete.checkpoints.count, partial.checkpoints.count);

    const std::string base = partial.checkpoints.lastPath.substr(
        dir_killed.size());
    const Result<Checkpoint> a =
        Checkpoint::readFile(dir_killed + base);
    const Result<Checkpoint> b = Checkpoint::readFile(dir_full + base);
    ASSERT_TRUE(a.ok()) << a.status().message();
    ASSERT_TRUE(b.ok()) << b.status().message();
    EXPECT_EQ(a.value().encode(), b.value().encode());
}

TEST(Resume, LatencyAppResumesBitIdentical)
{
    AppSpec app = virusScannerApp();
    app.seed = 3;
    const std::string dir = scratchDir("bl_resume_latency");

    ExperimentConfig ckpt_cfg;
    ckpt_cfg.snapshot.checkpointEvery = msToTicks(300);
    ckpt_cfg.snapshot.checkpointDir = dir;
    const AppRunResult partial = Experiment(ckpt_cfg).runApp(app);
    ASSERT_GT(partial.checkpoints.count, 0u);

    const AppRunResult full = Experiment().runApp(app);

    ExperimentConfig resume_cfg;
    resume_cfg.snapshot.resumePath = partial.checkpoints.lastPath;
    const AppRunResult resumed = Experiment(resume_cfg).runApp(app);

    EXPECT_GT(resumed.resumedFrom, 0u);
    EXPECT_EQ(fingerprint(resumed), fingerprint(full));
}

TEST(Resume, CheckpointOverheadIsReported)
{
    const std::string dir = scratchDir("bl_resume_overhead");
    ExperimentConfig cfg;
    cfg.snapshot.checkpointEvery = msToTicks(500);
    cfg.snapshot.checkpointDir = dir;
    const AppRunResult r = Experiment(cfg).runApp(testApp(1));
    EXPECT_EQ(r.checkpoints.count, 3u); // 500 ms, 1000 ms, 1500 ms
    EXPECT_GT(r.checkpoints.bytes, 0u);
    EXPECT_GT(r.checkpoints.writeMs, 0.0);
    const Result<Checkpoint> last =
        Checkpoint::readFile(r.checkpoints.lastPath);
    ASSERT_TRUE(last.ok()) << last.status().message();
    EXPECT_EQ(last.value().tick, msToTicks(1500));
}

TEST(Resume, MismatchedIdentityFallsBackToFreshRun)
{
    // A checkpoint from a different config must not be restored —
    // but neither should it kill a long batch.  The run warns and
    // starts from scratch, producing the same result as one that
    // never asked to resume.
    const std::string dir = scratchDir("bl_resume_mismatch");
    ExperimentConfig cfg;
    cfg.snapshot.checkpointEvery = msToTicks(400);
    cfg.snapshot.checkpointDir = dir;
    const AppRunResult r = Experiment(cfg).runApp(testApp(1));
    ASSERT_GT(r.checkpoints.count, 0u);

    ExperimentConfig other;
    other.label = "different-config";
    other.snapshot.resumePath = r.checkpoints.lastPath;
    const AppRunResult fresh = Experiment(other).runApp(testApp(1));
    EXPECT_EQ(fresh.resumedFrom, 0u);
    EXPECT_TRUE(fresh.completed);
}

TEST(Resume, MissingCheckpointFallsBackToFreshRun)
{
    ExperimentConfig cfg;
    cfg.snapshot.resumePath = "/nonexistent/x.ckpt";
    const AppRunResult fresh = Experiment(cfg).runApp(testApp(1));
    EXPECT_EQ(fresh.resumedFrom, 0u);
    EXPECT_TRUE(fresh.completed);
}

TEST(Resume, CorruptNewestFallsBackToOlderCheckpoint)
{
    // Last-good-checkpoint recovery: when the newest checkpoint is
    // truncated (the classic crash-mid-write artifact), --resume
    // must fall back to the older tick-named sibling and still
    // reproduce the uninterrupted run bit-for-bit.
    const std::string dir = scratchDir("bl_resume_corrupt");
    AppSpec killed = testApp(7);
    killed.duration = msToTicks(900);
    ExperimentConfig cfg;
    cfg.snapshot.checkpointEvery = msToTicks(400);
    cfg.snapshot.checkpointDir = dir;
    const AppRunResult partial = Experiment(cfg).runApp(killed);
    ASSERT_EQ(partial.checkpoints.count, 2u);

    // Truncate the newest (800 ms) checkpoint to half its size.
    {
        FILE *f = std::fopen(partial.checkpoints.lastPath.c_str(),
                             "rb");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        std::fclose(f);
        ASSERT_GT(size, 0);
        ASSERT_EQ(::truncate(partial.checkpoints.lastPath.c_str(),
                             size / 2),
                  0);
    }

    const AppRunResult full = Experiment().runApp(testApp(7));

    ExperimentConfig resume_cfg;
    resume_cfg.snapshot.resumePath = partial.checkpoints.lastPath;
    const AppRunResult resumed =
        Experiment(resume_cfg).runApp(testApp(7));
    EXPECT_EQ(resumed.resumedFrom, msToTicks(400));
    EXPECT_EQ(fingerprint(resumed), fingerprint(full));
}

TEST(ResumeDeathTest, RecordAndReplayTogetherIsFatal)
{
    ExperimentConfig cfg;
    cfg.snapshot.recordTracePath = "/tmp/a.trace";
    cfg.snapshot.replayTracePath = "/tmp/b.trace";
    EXPECT_EXIT((void)Experiment(cfg).runApp(testApp(1)),
                ::testing::ExitedWithCode(1),
                "record and replay");
}

TEST(TraceReplay, IdenticalRunMatchesRecordedTrace)
{
    const std::string trace =
        ::testing::TempDir() + "bl_replay_match.trace";

    ExperimentConfig record_cfg;
    record_cfg.snapshot.recordTracePath = trace;
    (void)Experiment(record_cfg).runApp(testApp(5));

    ExperimentConfig replay_cfg;
    replay_cfg.snapshot.replayTracePath = trace;
    const AppRunResult r = Experiment(replay_cfg).runApp(testApp(5));
    EXPECT_FALSE(r.traceDiverged);
    EXPECT_TRUE(r.divergenceReport.empty());
    std::remove(trace.c_str());
}

TEST(TraceReplay, PerturbedRunReportsFirstDivergence)
{
    const std::string trace =
        ::testing::TempDir() + "bl_replay_diverge.trace";

    ExperimentConfig record_cfg;
    record_cfg.snapshot.recordTracePath = trace;
    (void)Experiment(record_cfg).runApp(testApp(5));

    // A different app seed shifts jitter draws: the runs diverge,
    // and the report must name the first differing event.
    ExperimentConfig replay_cfg;
    replay_cfg.snapshot.replayTracePath = trace;
    const AppRunResult r = Experiment(replay_cfg).runApp(testApp(6));
    EXPECT_TRUE(r.traceDiverged);
    EXPECT_NE(r.divergenceReport.find("first divergence"),
              std::string::npos);
    std::remove(trace.c_str());
}

TEST(TraceReplay, ChaosRunReplaysCleanly)
{
    // Fault-injected runs are deterministic too; their recorded
    // trace replays without divergence.
    const std::string trace =
        ::testing::TempDir() + "bl_replay_chaos.trace";

    ExperimentConfig record_cfg = faultyConfig(7);
    record_cfg.snapshot.recordTracePath = trace;
    (void)Experiment(record_cfg).runApp(testApp(7));

    ExperimentConfig replay_cfg = faultyConfig(7);
    replay_cfg.snapshot.replayTracePath = trace;
    const AppRunResult r = Experiment(replay_cfg).runApp(testApp(7));
    EXPECT_FALSE(r.traceDiverged) << r.divergenceReport;
    std::remove(trace.c_str());
}
