/**
 * @file
 * Analytic performance model.
 *
 * Converts (core microarchitecture, L2 capacity, frequency) x
 * WorkClass into nanoseconds per instruction:
 *
 *   ns/inst = (coreCpi + l1MissPerInst * l2HitCycles) / f_GHz
 *           + l1MissPerInst * l2MissRatio(footprint) * memLatencyNs
 *
 * with coreCpi = 1 / (1 + (issueWidth-1) * ilpExtraction * ilp)
 *              + pipelinePenaltyCpi.
 *
 * The first term scales with frequency (core-bound work); the DRAM
 * term does not, which is what makes memory-bound work insensitive
 * to DVFS and shrinks the big-core advantage exactly as Section
 * III-A observes.
 */

#ifndef BIGLITTLE_PLATFORM_PERF_MODEL_HH
#define BIGLITTLE_PLATFORM_PERF_MODEL_HH

#include "base/types.hh"
#include "platform/cache.hh"
#include "platform/core.hh"
#include "platform/params.hh"
#include "platform/work_class.hh"

namespace biglittle
{

/** Stateless analytic timing model. */
namespace perf_model
{

/** Core-pipeline cycles per instruction for @p work (no memory). */
double coreCpi(const CorePerfParams &perf, const WorkClass &work);

/**
 * Nanoseconds per instruction on a core with @p perf and an L2
 * described by @p l2, clocked at @p freq.
 */
double nsPerInst(const CorePerfParams &perf, const CacheModel &l2,
                 FreqKHz freq, const WorkClass &work);

/**
 * Instructions per second for @p core at its domain's current
 * frequency.
 */
double instRate(const Core &core, const WorkClass &work);

/**
 * Instructions per second for @p core at an explicit frequency
 * (used when sizing work against a hypothetical OPP).
 */
double instRateAt(const Core &core, FreqKHz freq, const WorkClass &work);

/**
 * Speedup of (big microarch, big L2, @p big_freq) over (little
 * microarch, little L2, @p little_freq) for @p work; a convenience
 * for calibration tests and the Fig. 2 bench.
 */
double speedup(const ClusterParams &big, FreqKHz big_freq,
               const ClusterParams &little, FreqKHz little_freq,
               const WorkClass &work);

} // namespace perf_model

} // namespace biglittle

#endif // BIGLITTLE_PLATFORM_PERF_MODEL_HH
