/**
 * @file
 * Determinism tests: identical configurations produce bit-identical
 * results, and seeds change outcomes only where randomness is
 * intended.  Reproducibility is a core requirement for a
 * characterization workbench.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

AppRunResult
runShort(const AppSpec &app_in, std::uint64_t seed)
{
    AppSpec app = app_in;
    app.seed = seed;
    if (app.metric == AppMetric::fps)
        app.duration = msToTicks(2500);
    Experiment experiment;
    return experiment.runApp(app);
}

} // namespace

TEST(Determinism, RepeatedFpsRunsAreBitIdentical)
{
    const AppRunResult a = runShort(eternityWarrior2App(), 9);
    const AppRunResult b = runShort(eternityWarrior2App(), 9);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_DOUBLE_EQ(a.avgFps, b.avgFps);
    EXPECT_DOUBLE_EQ(a.minFps, b.minFps);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
    EXPECT_DOUBLE_EQ(a.tlp.tlp, b.tlp.tlp);
    EXPECT_EQ(a.sched.migrationsUp, b.sched.migrationsUp);
    EXPECT_EQ(a.sched.wakeups, b.sched.wakeups);
}

TEST(Determinism, RepeatedLatencyRunsAreBitIdentical)
{
    const AppRunResult a = runShort(virusScannerApp(), 3);
    const AppRunResult b = runShort(virusScannerApp(), 3);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
    EXPECT_DOUBLE_EQ(a.tlp.idlePct, b.tlp.idlePct);
}

TEST(Determinism, SeedChangesStochasticOutcomes)
{
    const AppRunResult a = runShort(eternityWarrior2App(), 1);
    const AppRunResult b = runShort(eternityWarrior2App(), 2);
    // Different jitter draws shift per-frame costs.
    EXPECT_NE(a.avgPowerMw, b.avgPowerMw);
}

TEST(Determinism, KernelRunsAreBitIdentical)
{
    Experiment e1, e2;
    const SpecKernel &gcc = specKernelByName("gcc");
    const KernelRunResult a =
        e1.runKernel(gcc, CoreType::big, 1300000);
    const KernelRunResult b =
        e2.runKernel(gcc, CoreType::big, 1300000);
    EXPECT_EQ(a.runtime, b.runtime);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
}

TEST(Determinism, MicrobenchRunsAreBitIdentical)
{
    Experiment e1, e2;
    const MicrobenchResult a = e1.runMicrobench(
        CoreType::little, 900000, 0.4, msToTicks(1000));
    const MicrobenchResult b = e2.runMicrobench(
        CoreType::little, 900000, 0.4, msToTicks(1000));
    EXPECT_DOUBLE_EQ(a.achievedUtilization, b.achievedUtilization);
    EXPECT_DOUBLE_EQ(a.avgPowerMw, b.avgPowerMw);
}

TEST(Determinism, ResultsIndependentOfPriorRuns)
{
    // A run's outcome must not depend on experiments executed
    // earlier in the same process (no hidden global state).
    Experiment e1;
    const AppRunResult fresh = e1.runApp([&] {
        AppSpec app = angryBirdApp();
        app.duration = msToTicks(2000);
        return app;
    }());

    Experiment e2;
    AppSpec warmup = videoPlayerApp();
    warmup.duration = msToTicks(1000);
    (void)e2.runApp(warmup);
    const AppRunResult after = e2.runApp([&] {
        AppSpec app = angryBirdApp();
        app.duration = msToTicks(2000);
        return app;
    }());

    EXPECT_EQ(fresh.frames, after.frames);
    EXPECT_DOUBLE_EQ(fresh.avgFps, after.avgFps);
    EXPECT_DOUBLE_EQ(fresh.avgPowerMw, after.avgPowerMw);
}
