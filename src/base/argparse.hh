/**
 * @file
 * A small declarative command-line parser for bench binaries and
 * examples: `--name value`, `--name=value`, and boolean `--flag`
 * forms, with typed accessors, defaults, and generated --help text.
 */

#ifndef BIGLITTLE_BASE_ARGPARSE_HH
#define BIGLITTLE_BASE_ARGPARSE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.hh"

namespace biglittle
{

/** Declarative CLI option parser. */
class ArgParser
{
  public:
    /**
     * @param program name shown in usage output
     * @param description one-line summary shown in --help
     */
    ArgParser(std::string program, std::string description);

    /** Declare a string-valued option. */
    void addString(const std::string &name, const std::string &def,
                   const std::string &help);

    /** Declare an integer-valued option. */
    void addInt(const std::string &name, std::int64_t def,
                const std::string &help);

    /** Declare a floating-point option. */
    void addDouble(const std::string &name, double def,
                   const std::string &help);

    /** Declare a boolean flag (false by default, set by presence). */
    void addFlag(const std::string &name, const std::string &help);

    /**
     * Parse argv without ever exiting: unknown options, flags given
     * values, and missing values come back as invalidArgument.
     * `--help` sets helpRequested() instead of printing.  This is
     * the only entry point safe to call on untrusted argv (the fuzz
     * harness uses it directly).
     * @return leftover positional arguments.
     */
    [[nodiscard]] Result<std::vector<std::string>>
    tryParse(int argc, const char *const *argv);

    /**
     * Parse argv for a bench main: on a malformed command line prints
     * the error plus a usage hint to stderr and exits(2); on --help
     * prints the usage text and exits(0).
     * @return leftover positional arguments.
     */
    std::vector<std::string> parse(int argc, const char *const *argv);

    /** True once tryParse() has seen `--help` / `-h`. */
    bool helpRequested() const { return sawHelp; }

    std::string getString(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getFlag(const std::string &name) const;

    /** Value parses as an integer, or invalidArgument (no exit). */
    [[nodiscard]] Result<std::int64_t>
    tryGetInt(const std::string &name) const;

    /** Value parses as a double, or invalidArgument (no exit). */
    [[nodiscard]] Result<double>
    tryGetDouble(const std::string &name) const;

    /** True if the user supplied the option explicitly. */
    bool wasSet(const std::string &name) const;

    /** Render the --help text (also printed on parse of --help). */
    std::string helpText() const;

  private:
    enum class Kind { string, integer, real, flag };

    struct Option
    {
        Kind kind;
        std::string help;
        std::string value; // current value, textual
        std::string def;   // default, textual
        bool set = false;
    };

    std::string program;
    std::string description;
    std::map<std::string, Option> options;
    std::vector<std::string> order;
    bool sawHelp = false;

    const Option &lookup(const std::string &name, Kind kind) const;
    void declare(const std::string &name, Kind kind,
                 const std::string &def, const std::string &help);
};

} // namespace biglittle

#endif // BIGLITTLE_BASE_ARGPARSE_HH
