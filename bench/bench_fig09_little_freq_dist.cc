/**
 * @file
 * Fig. 9: little-cluster frequency residency per app (share of
 * core-active time at each OPP; idle time excluded).
 *
 * Expected shape (Section VI-A): diverse distributions - the video
 * apps sit at the lowest frequency, games with fluctuating load
 * spread across the range.
 */

#include "base/argparse.hh"
#include "base/csv.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_fig09_little_freq_dist",
                   "Fig. 9: little-core frequency distribution");
    args.addString("csv", "", "mirror rows into this CSV file");
    addRaceOptions(args);
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);

    ExperimentConfig cfg = baselineConfig();
    applyRaceOptions(args, cfg);
    RaceGate gate(args);

    const auto apps = allApps();
    const auto results = runApps(cfg, apps);
    gate.check(cfg, apps, results);
    printFreqResidencyTable(results, /*big=*/false, csv.get());
    return gate.exitCode();
}
