/**
 * @file
 * Weighted histograms over fixed bin edges and over discrete keys.
 *
 * Used for frequency-residency distributions (time spent at each OPP)
 * and for utilization-bucket decompositions, where each observation
 * carries a duration weight rather than a unit count.
 */

#ifndef BIGLITTLE_BASE_HISTOGRAM_HH
#define BIGLITTLE_BASE_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace biglittle
{

class Serializer;
class Deserializer;

/**
 * Histogram over half-open numeric bins [edge_i, edge_{i+1}) with
 * under/overflow buckets and per-observation weights.
 */
class BinnedHistogram
{
  public:
    /** @param edges strictly increasing bin boundaries (>= 1 edge). */
    explicit BinnedHistogram(std::vector<double> edges);

    /** Accumulate @p weight into the bin containing @p x. */
    void add(double x, double weight = 1.0);

    /** Number of interior bins (edges.size() - 1). */
    std::size_t bins() const;

    /** Weight in interior bin @p i. */
    double binWeight(std::size_t i) const;

    /** Weight of observations below the first edge. */
    double underflow() const { return under; }

    /** Weight of observations at/above the last edge. */
    double overflow() const { return over; }

    /** Total accumulated weight including under/overflow. */
    double totalWeight() const { return total; }

    /** Fraction of total weight in interior bin @p i (0 if empty). */
    double binFraction(std::size_t i) const;

    /** Lower edge of interior bin @p i. */
    double binLow(std::size_t i) const;

    /** Upper edge of interior bin @p i. */
    double binHigh(std::size_t i) const;

    /** Drop all accumulated weight. */
    void reset();

  private:
    std::vector<double> edges;
    std::vector<double> weights;
    double under = 0.0;
    double over = 0.0;
    double total = 0.0;
};

/**
 * Weighted histogram over arbitrary discrete 64-bit keys (e.g. OPP
 * frequencies in kHz).  Keys are kept sorted for stable reporting.
 */
class DiscreteHistogram
{
  public:
    /** Accumulate @p weight at @p key. */
    void add(std::uint64_t key, double weight = 1.0);

    /** Total accumulated weight across all keys. */
    double totalWeight() const { return total; }

    /** Weight at @p key (0 if never seen). */
    double weightAt(std::uint64_t key) const;

    /** Fraction of total weight at @p key (0 if total is 0). */
    double fractionAt(std::uint64_t key) const;

    /** Sorted (key, weight) view. */
    const std::map<std::uint64_t, double> &cells() const { return map; }

    /** Drop all accumulated weight. */
    void reset();

    /** Write cells + total (sorted, so byte-stable). */
    void serialize(Serializer &s) const;

    /** Replace contents with state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    std::map<std::uint64_t, double> map;
    double total = 0.0;
};

} // namespace biglittle

#endif // BIGLITTLE_BASE_HISTOGRAM_HH
