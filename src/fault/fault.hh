/**
 * @file
 * FaultInjector: deterministic, seeded perturbation of a running
 * platform, in the spirit of chaos testing for mobile SoCs.
 *
 * The injector drives four fault classes through the event queue:
 *
 *  - hotplug: a random non-boot core is evacuated and taken offline
 *    for a down time, then brought back (a thermally-parked or
 *    firmware-failed CPU);
 *  - DVFS: frequency-transition requests are probabilistically
 *    denied or delayed (a busy regulator / slow firmware mailbox);
 *  - thermal: a sensor spike is injected into a cluster's thermal
 *    throttle (a bad sample biasing the IPA loop);
 *  - task stall: a random thread receives a burst of extra work (a
 *    lock-contention or retry stall delaying its deadline).
 *
 * All draws come from one seeded Rng, so a fault schedule is exactly
 * reproducible, and every perturbation goes through the public
 * Status-returning degradation paths - a refused fault (e.g. the
 * hotplug rule protecting the last little core) is counted, never
 * forced.
 */

#ifndef BIGLITTLE_FAULT_FAULT_HH
#define BIGLITTLE_FAULT_FAULT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "platform/freq_domain.hh"
#include "sim/simulation.hh"

namespace biglittle
{

class AsymmetricPlatform;
class HmpScheduler;
class Serializer;
class Deserializer;
class ThermalThrottle;

/**
 * The injected fault classes, as an addressable enum so a supervisor
 * can disable one class (the last rung of the escalation ladder)
 * without touching the others.
 */
enum class FaultClass : std::uint32_t
{
    hotplug = 0,
    dvfs = 1,
    thermal = 2,
    taskStall = 3,
    crash = 4,
    invariantBreak = 5,
};

constexpr std::uint32_t faultClassCount = 6;

/** Stable lower-case name ("task-stall"). */
const char *faultClassName(FaultClass cls);

/**
 * Which component a supervisor should quarantine when faults of a
 * class keep recurring after its retry budget: the implicated core
 * (crash, hotplug), the implicated frequency domain (dvfs), or -
 * when no single component is to blame - the fault class itself.
 */
enum class QuarantineKind
{
    core,
    freqDomain,
    faultClass,
};

/** Escalation target for persistent faults of @p cls. */
QuarantineKind quarantineFor(FaultClass cls);

/**
 * An unrecoverable fault the injector has raised: the simulated
 * equivalent of a kernel oops on the named core.  Unsupervised runs
 * die on it; a supervisor rolls back and retries instead.
 */
struct PendingFatal
{
    bool armed = false;
    Tick at = 0; ///< tick the fault fired
    CoreId core = invalidCoreId; ///< implicated core
    bool persistent = false; ///< recurs until the core is quarantined
};

/** Rates and magnitudes of the injected fault classes. */
struct FaultParams
{
    bool enabled = false;

    /** Seed of the injector's private random stream. */
    std::uint64_t seed = 1;

    /** Resolution at which fault arrivals are drawn. */
    Tick drawPeriod = msToTicks(10);

    // hotplug
    double hotplugRatePerSec = 0.0; ///< off events per second
    Tick hotplugDownTime = msToTicks(250); ///< offline duration

    // DVFS
    double dvfsDenyProb = 0.0; ///< per-request denial probability
    double dvfsDelayProb = 0.0; ///< per-request delay probability
    Tick dvfsExtraLatency = usToTicks(500); ///< added when delayed

    // thermal
    double thermalSpikeRatePerSec = 0.0;
    double thermalSpikeC = 20.0; ///< sensor spike magnitude

    // task stall
    double taskStallRatePerSec = 0.0;
    double taskStallInstructions = 3e6; ///< extra work per stall

    // crash (unrecoverable fault on a random online core)
    double crashRatePerSec = 0.0;

    /**
     * Deterministic persistent crash: from this tick on, every fault
     * draw raises an unrecoverable fault attributed to
     * persistentCrashCore while that core is online — the "core with
     * failing silicon" a supervisor can only survive by quarantining
     * it.  0 disables.
     */
    Tick persistentCrashAt = 0;
    CoreId persistentCrashCore = invalidCoreId;

    // injected invariant break (reported through the violation sink)
    double invariantBreakRatePerSec = 0.0;
};

/**
 * The baseline fault profile scaled by @p rate (0 disables all
 * classes): the knob the resilience bench sweeps.
 */
FaultParams scaledFaultParams(double rate, std::uint64_t seed = 1);

/** Counters of injected (and refused) perturbations. */
struct FaultStats
{
    std::uint64_t hotplugOff = 0;
    std::uint64_t hotplugOn = 0;
    std::uint64_t hotplugRejected = 0; ///< refused by platform/sched
    std::uint64_t dvfsDenied = 0;
    std::uint64_t dvfsDelayed = 0;
    std::uint64_t thermalSpikes = 0;
    std::uint64_t taskStalls = 0;
    std::uint64_t crashes = 0; ///< unrecoverable faults raised
    std::uint64_t invariantBreaks = 0; ///< injected sweep failures
    std::uint64_t suppressed = 0; ///< draws skipped: class disabled

    /** All perturbations that actually landed. */
    std::uint64_t
    totalInjected() const
    {
        return hotplugOff + hotplugOn + dvfsDenied + dvfsDelayed +
               thermalSpikes + taskStalls + crashes + invariantBreaks;
    }
};

/** Schedules perturbations of a platform through the event queue. */
class FaultInjector
{
  public:
    FaultInjector(Simulation &sim, AsymmetricPlatform &platform,
                  HmpScheduler &sched, const FaultParams &params);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    ~FaultInjector();

    /** Register a thermal throttle as a sensor-spike target. */
    void addThermal(ThermalThrottle *throttle);

    /** Install the DVFS gates and begin drawing fault arrivals. */
    void start();

    /** Stop injecting (cores already offline still come back). */
    void stop();

    const FaultParams &params() const { return fp; }
    const FaultStats &stats() const { return faultStats; }

    // ---- recovery hooks (used by the supervised run loop) ----

    /**
     * Stop drawing faults of one class: the supervisor's
     * disable-the-failing-behavior quarantine action.  The skipped
     * draws still consume the same random numbers, so disabling a
     * class never perturbs the schedule of the remaining classes.
     */
    void disableClass(FaultClass cls);

    bool classDisabled(FaultClass cls) const
    {
        return (disabledMask &
                (1u << static_cast<std::uint32_t>(cls))) != 0;
    }

    /**
     * Restart the injector's stream from @p seed: the bounded
     * perturbation a supervisor applies on rollback-retry so a
     * transient fault schedule is re-drawn.
     */
    void reseed(std::uint64_t seed);

    /**
     * Route injected invariant breaks into the checker (or any other
     * sink); without a sink the class never fires.
     */
    void setViolationSink(std::function<void(const std::string &)> sink)
    {
        violationSink = std::move(sink);
    }

    /**
     * The armed unrecoverable fault, if any.  The run loop polls this
     * at chunk boundaries: unsupervised runs die, supervised runs
     * hand it to the recovery state machine.
     */
    const PendingFatal &pendingFatal() const { return pendingCrash; }

    /** Disarm the pending fault (the run loop consumed it). */
    void clearPendingFatal() { pendingCrash = PendingFatal{}; }

    /**
     * Write the injector's random stream and counters.  The recovery
     * overlays (disabled classes, pending fatal) are deliberately
     * not serialized: they are reconstructed by replaying the
     * supervisor's timed recovery script, which keeps checkpoint
     * bytes identical across attempts (docs/ROBUSTNESS.md §8).
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    Simulation &sim;
    AsymmetricPlatform &plat;
    HmpScheduler &sched;
    FaultParams fp;
    Rng rng;

    PeriodicTask *drawTask = nullptr;
    std::vector<ThermalThrottle *> throttles;
    // ablint:allow(serialize-coverage): gates reinstalled from FaultParams on rebuild
    bool gatesInstalled = false;
    FaultStats faultStats;

    std::uint32_t disabledMask = 0; // ablint:allow(serialize-coverage): rebuilt injector re-arms via supervisor replay (covers pendingCrash)
    PendingFatal pendingCrash;
    std::function<void(const std::string &)> violationSink;

    void draw(Tick now);
    void injectHotplug();
    void injectThermalSpike();
    void injectTaskStall();
    void injectCrash(Tick now);
    void checkPersistentCrash(Tick now);
    void injectInvariantBreak(Tick now);
    DvfsFaultAction gateDecision();
};

} // namespace biglittle

#endif // BIGLITTLE_FAULT_FAULT_HH
