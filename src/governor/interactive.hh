/**
 * @file
 * InteractiveGovernor: the Android `interactive` cpufreq governor the
 * paper studies (Algorithm 2).
 *
 * Every sampling period the governor measures the cluster's busy
 * fraction and sizes the next frequency so the load would sit at
 * `targetLoad` percent of capacity; a load above `goHispeedLoad`
 * jumps straight to a preset hispeed frequency to protect
 * interactivity.
 */

#ifndef BIGLITTLE_GOVERNOR_INTERACTIVE_HH
#define BIGLITTLE_GOVERNOR_INTERACTIVE_HH

#include "governor/governor.hh"

namespace biglittle
{

/** Tunables of the interactive governor. */
struct InteractiveParams
{
    /** Utilization sampling period (20 ms on the target platform). */
    Tick samplingRate = msToTicks(20);

    /** Percent utilization the chosen frequency should yield. */
    double targetLoad = 70.0;

    /**
     * Percent utilization that triggers the jump to hispeedFreq;
     * tracks targetLoad in the paper's "high/low target load"
     * configurations.
     */
    double goHispeedLoad = 85.0;

    /**
     * Hispeed frequency as a fraction of the domain maximum; the
     * governor resolves it to the nearest OPP at startup.
     */
    double hispeedFraction = 0.75;

    std::string name = "interactive";
};

/** Section VI-C configuration: default (20 ms, target 70). */
InteractiveParams defaultInteractiveParams();

/** Section VI-C configuration: 60 ms sampling interval. */
InteractiveParams interval60Params();

/** Section VI-C configuration: 100 ms sampling interval. */
InteractiveParams interval100Params();

/** Section VI-C configuration: high (80) target load. */
InteractiveParams highTargetLoadParams();

/** Section VI-C configuration: low (60) target load. */
InteractiveParams lowTargetLoadParams();

/** Algorithm 2: the load-tracking interactive governor. */
class InteractiveGovernor : public Governor
{
  public:
    InteractiveGovernor(Simulation &sim, Cluster &cluster,
                        const InteractiveParams &params);

    Tick samplingPeriod() const override;

    const InteractiveParams &params() const { return ip; }

    /** Resolved hispeed frequency. */
    FreqKHz hispeedFreq() const { return hispeed; }

    /** Times the hispeed jump fired. */
    std::uint64_t hispeedJumps() const { return jumps; }

  protected:
    void sample(Tick now) override;
    void serializePolicy(Serializer &s) const override;
    void deserializePolicy(Deserializer &d) override;

  private:
    InteractiveParams ip;
    // ablint:allow(serialize-coverage): derived from InteractiveParams at construction
    FreqKHz hispeed;
    std::uint64_t jumps = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_GOVERNOR_INTERACTIVE_HH
