/**
 * @file
 * Discrete-event primitives.
 *
 * Events are intrusive: an Event object knows whether it is currently
 * scheduled and at what tick, so it can be rescheduled or descheduled
 * in O(log n).  Ordering is (when, priority, sequence) which makes
 * simulations fully deterministic even when many events share a tick.
 */

#ifndef BIGLITTLE_SIM_EVENT_HH
#define BIGLITTLE_SIM_EVENT_HH

#include <cstdint>
#include <functional>
#include <string>

#include "base/types.hh"

namespace biglittle
{

class EventQueue;

/**
 * Priorities for events that fire on the same tick.  Lower values run
 * first.  The ordering mirrors what a real kernel does in one tick:
 * task state changes settle before the scheduler looks at loads, the
 * governor samples after scheduling, and statistics observe last.
 */
enum class EventPriority : std::int32_t
{
    taskState = 0, ///< wakeups, completions, sleep transitions
    schedTick = 10, ///< scheduler load update + migration
    governor = 20, ///< DVFS governor sampling
    stats = 30, ///< state samplers, meters
    deferred = 40, ///< everything else
};

/**
 * Base class for schedulable events.  Subclasses implement process().
 */
class Event
{
  public:
    /** @param prio same-tick ordering class for this event. */
    explicit Event(EventPriority prio = EventPriority::deferred);

    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Called by the queue when the event fires. */
    virtual void process() = 0;

    /**
     * Called by a dying queue on each still-pending event after
     * detaching it.  Self-owning events (the one-shots behind
     * Simulation::at/after) override this with `delete this`; events
     * owned elsewhere keep the default no-op.
     */
    virtual void orphaned() {}

    /** Diagnostic name used in trace output. */
    virtual std::string name() const { return "event"; }

    /** True while the event sits in a queue. */
    bool scheduled() const { return queue != nullptr; }

    /** Tick this event is scheduled for (valid when scheduled()). */
    Tick when() const { return whenTick; }

    /** Same-tick ordering class. */
    EventPriority priority() const { return prio; }

    /**
     * Monotonic insertion number assigned by the queue at schedule
     * time; same-tick same-priority events fire in this order, which
     * makes run order independent of heap/container internals.  Valid
     * while scheduled; exposed so traces and checkpoints can record
     * the exact total order.
     */
    std::uint64_t sequenceNumber() const { return sequence; }

  private:
    friend class EventQueue;

    EventPriority prio;
    Tick whenTick = 0;
    std::uint64_t sequence = 0;
    EventQueue *queue = nullptr;
};

/**
 * An event that runs an arbitrary callback.  Convenient for small
 * one-shot actions without declaring a subclass.
 */
class CallbackEvent : public Event
{
  public:
    CallbackEvent(std::function<void()> fn,
                  EventPriority prio = EventPriority::deferred,
                  std::string label = "callback");

    void process() override;
    std::string name() const override { return label; }

  private:
    std::function<void()> fn;
    std::string label;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_EVENT_HH
