/**
 * @file
 * The Table II application suite: twelve synthetic mobile apps whose
 * thread structure, burst shapes and demand levels are tuned so the
 * characterization results land in the bands the paper reports
 * (Tables III-V, Figs. 4/5/7-13).
 *
 * Latency-oriented: pdf_reader, video_editor, photo_editor, bbench,
 * virus_scanner, browser, encoder.
 * FPS-oriented: angry_bird, eternity_warrior2, fifa15, video_player,
 * youtube.
 */

#ifndef BIGLITTLE_WORKLOAD_APPS_HH
#define BIGLITTLE_WORKLOAD_APPS_HH

#include <string>
#include <vector>

#include "workload/app_model.hh"

namespace biglittle
{

AppSpec pdfReaderApp();
AppSpec videoEditorApp();
AppSpec photoEditorApp();
AppSpec bbenchApp();
AppSpec virusScannerApp();
AppSpec browserApp();
AppSpec encoderApp();
AppSpec angryBirdApp();
AppSpec eternityWarrior2App();
AppSpec fifa15App();
AppSpec videoPlayerApp();
AppSpec youtubeApp();

/** All twelve apps in Table II order. */
std::vector<AppSpec> allApps();

/** The seven latency-oriented apps (Fig. 4 / Fig. 12). */
std::vector<AppSpec> latencyApps();

/** The five FPS-oriented apps (Fig. 5 / Fig. 13). */
std::vector<AppSpec> fpsApps();

/** Look an app up by its spec name; fatal() if unknown. */
AppSpec appByName(const std::string &name);

} // namespace biglittle

#endif // BIGLITTLE_WORKLOAD_APPS_HH
