#include "fuzz/targets.hh"

#include <string>

#include "base/argparse.hh"
#include "base/serialize.hh"
#include "core/config_io.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/event_trace.hh"

namespace biglittle
{

namespace
{

std::vector<std::uint8_t>
toBytes(const std::string &s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::string
toText(const std::vector<std::uint8_t> &bytes)
{
    return std::string(bytes.begin(), bytes.end());
}

} // namespace

bool
mutateBodyRefixChecksum(Rng &rng, std::vector<std::uint8_t> &input)
{
    // Leave a quarter of the rounds to the generic mutator so the
    // broken-checksum path stays covered too.
    const bool refix = rng.chance(0.75);
    if (input.size() < 16 || !refix)
        return false;
    std::vector<std::uint8_t> body(input.begin(), input.end() - 8);
    mutateBytes(rng, body);
    const std::uint64_t sum = fnv1a64(body.data(), body.size());
    for (std::size_t i = 0; i < 8; ++i)
        body.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
    input = std::move(body);
    return true;
}

// --- config ---------------------------------------------------------

std::vector<std::vector<std::uint8_t>>
ConfigFuzzTarget::seedInputs() const
{
    std::vector<std::vector<std::uint8_t>> seeds;
    seeds.push_back(toBytes(saveExperimentConfig(ExperimentConfig{})));

    ExperimentConfig tuned;
    tuned.label = "fuzz-seed";
    tuned.coreConfig = {2, 4, "L2+B4"};
    seeds.push_back(toBytes(saveExperimentConfig(tuned)));

    seeds.push_back(toBytes("# comment only\n"
                            "governor = interactive\n"
                            "interactive.sampling_ms = 60\n"
                            "\n"
                            "label = interval-60ms\n"));
    return seeds;
}

bool
ConfigFuzzTarget::mutate(Rng &rng,
                         std::vector<std::uint8_t> &input) const
{
    if (!rng.chance(0.6))
        return false; // generic byte mutations still apply to text

    std::string text = toText(input);
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        lines.push_back(cur);

    const std::uint64_t strategy = rng.uniformInt(0, 4);
    switch (strategy) {
      case 0: // duplicate a line (repeated keys must stay defined)
        if (!lines.empty()) {
            const std::size_t at = static_cast<std::size_t>(
                rng.uniformInt(0, lines.size() - 1));
            lines.insert(lines.begin() +
                             static_cast<std::ptrdiff_t>(at),
                         lines[at]);
        }
        break;
      case 1: // unknown key
        lines.push_back("bogus.key.level" +
                        std::to_string(rng.uniformInt(0, 99)) +
                        " = 1");
        break;
      case 2: { // hostile value on a known key
        static const char *const values[] = {
            "1e999", "-5", "nan", "0x10", "yes please", "9" };
        std::string value =
            values[rng.uniformInt(0, 5)];
        if (value == "9") // absurdly long digit string
            value.assign(4096, '9');
        lines.push_back("seed = " + value);
        break;
      }
      case 3: // structurally malformed line
        lines.push_back(rng.chance(0.5) ? "just some words"
                                        : "= value-with-no-key");
        break;
      case 4: { // very long key (parser buffers must be dynamic)
        std::string key(static_cast<std::size_t>(
                            rng.uniformInt(128, 2048)),
                        'k');
        lines.push_back(key + " = 1");
        break;
      }
    }

    std::string out;
    for (const std::string &line : lines) {
        out += line;
        out += '\n';
    }
    input = toBytes(out);
    return true;
}

void
ConfigFuzzTarget::run(const std::vector<std::uint8_t> &input) const
{
    const Result<ExperimentConfig> cfg =
        parseExperimentConfig(toText(input));
    (void)cfg; // any Status outcome is fine; crashing is not
}

// --- checkpoint -----------------------------------------------------

std::vector<std::vector<std::uint8_t>>
CheckpointFuzzTarget::seedInputs() const
{
    std::vector<std::vector<std::uint8_t>> seeds;

    Checkpoint small;
    small.app = "eternity_warrior2";
    small.label = "default";
    small.masterSeed = 7;
    small.tick = 123;
    seeds.push_back(small.encode());

    Checkpoint rich;
    rich.app = "virus_scanner";
    rich.label = "chaos";
    rich.masterSeed = 99;
    rich.tick = 1u << 20;
    rich.eventsServiced = 54321;
    rich.nextSequence = 77;
    rich.add("eventq", std::vector<std::uint8_t>(256, 0xAB));
    rich.add("sched", {1, 2, 3});
    rich.add("empty-payload", {});
    rich.add(std::string(200, 'n'), {9});
    seeds.push_back(rich.encode());

    return seeds;
}

bool
CheckpointFuzzTarget::mutate(Rng &rng,
                             std::vector<std::uint8_t> &input) const
{
    return mutateBodyRefixChecksum(rng, input);
}

void
CheckpointFuzzTarget::run(const std::vector<std::uint8_t> &input) const
{
    const Result<Checkpoint> ckpt = Checkpoint::decode(input);
    (void)ckpt;
}

// --- trace ----------------------------------------------------------

std::vector<std::vector<std::uint8_t>>
TraceFuzzTarget::seedInputs() const
{
    std::vector<std::vector<std::uint8_t>> seeds;

    EventTrace empty;
    seeds.push_back(empty.encode());

    EventTrace busy;
    for (std::uint64_t i = 0; i < 64; ++i) {
        TraceRecord r;
        r.when = i * 1000;
        r.priority = static_cast<std::int32_t>(i % 5) - 2;
        r.sequence = i;
        r.name = "event-" + std::to_string(i);
        busy.records.push_back(std::move(r));
    }
    seeds.push_back(busy.encode());

    return seeds;
}

bool
TraceFuzzTarget::mutate(Rng &rng,
                        std::vector<std::uint8_t> &input) const
{
    return mutateBodyRefixChecksum(rng, input);
}

void
TraceFuzzTarget::run(const std::vector<std::uint8_t> &input) const
{
    const Result<EventTrace> trace = EventTrace::decode(input);
    (void)trace;
}

// --- argparse -------------------------------------------------------

std::vector<std::vector<std::uint8_t>>
ArgparseFuzzTarget::seedInputs() const
{
    const auto argvBytes = [](std::vector<std::string> args) {
        std::vector<std::uint8_t> bytes;
        for (const std::string &arg : args) {
            bytes.insert(bytes.end(), arg.begin(), arg.end());
            bytes.push_back('\0');
        }
        return bytes;
    };
    return {
        argvBytes({"--seed", "42", "--csv", "out.csv"}),
        argvBytes({"--scale", "1.5", "--verbose"}),
        argvBytes({"--help"}),
        argvBytes({"--seed", "-3", "--app", "bbench"}),
    };
}

void
ArgparseFuzzTarget::run(const std::vector<std::uint8_t> &input) const
{
    // The same option shapes the bench front-ends declare.
    ArgParser args("abfuzz-argparse", "fuzz harness parser");
    args.addString("app", "encoder", "app name");
    args.addString("csv", "", "csv output");
    args.addInt("seed", 0, "master seed");
    args.addDouble("scale", 1.0, "fault scale");
    args.addFlag("verbose", "chatty output");

    std::vector<std::string> tokens;
    std::string cur;
    for (const std::uint8_t b : input) {
        if (b == '\0') {
            tokens.push_back(cur);
            cur.clear();
        } else {
            cur += static_cast<char>(b);
        }
    }
    if (!cur.empty())
        tokens.push_back(cur);

    std::vector<const char *> argv;
    argv.push_back("abfuzz-argparse");
    for (const std::string &t : tokens)
        argv.push_back(t.c_str());

    const Result<std::vector<std::string>> rest = args.tryParse(
        static_cast<int>(argv.size()), argv.data());
    if (rest.ok()) {
        // Typed getters run their own validation on hostile
        // values; any Status outcome is acceptable here.
        // ablint:allow(status-drop): fuzz harness, the Result is deliberately unread
        [[maybe_unused]] const Result<std::int64_t> seed =
            args.tryGetInt("seed");
        // ablint:allow(status-drop): fuzz harness, the Result is deliberately unread
        [[maybe_unused]] const Result<double> scale =
            args.tryGetDouble("scale");
        [[maybe_unused]] const std::string app =
            args.getString("app");
        [[maybe_unused]] const bool verbose =
            args.getFlag("verbose");
    }
}

std::vector<std::unique_ptr<FuzzTarget>>
allFuzzTargets()
{
    std::vector<std::unique_ptr<FuzzTarget>> targets;
    targets.push_back(std::make_unique<ConfigFuzzTarget>());
    targets.push_back(std::make_unique<CheckpointFuzzTarget>());
    targets.push_back(std::make_unique<TraceFuzzTarget>());
    targets.push_back(std::make_unique<ArgparseFuzzTarget>());
    return targets;
}

} // namespace biglittle
