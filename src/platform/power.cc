#include "platform/power.hh"

#include "base/logging.hh"

namespace biglittle
{

PowerModel::PowerModel(AsymmetricPlatform &platform_in)
    : platform(platform_in)
{
}

PowerSnapshot
PowerModel::snapshot()
{
    platform.sync();
    PowerSnapshot snap;
    snap.when = platform.simulation().now();
    for (std::size_t ci = 0; ci < platform.clusterCount(); ++ci) {
        const Cluster &cl = platform.cluster(ci);
        PowerSnapshot::ClusterWeights w;
        for (std::size_t i = 0; i < cl.coreCount(); ++i) {
            const Core &c = cl.core(i);
            w.dyn += c.dynWeight();
            w.staticBusy += c.staticBusyWeight();
            w.staticIdleWfi += c.idleWfiWeight();
            w.staticIdleGated += c.idleGatedWeight();
        }
        w.clusterActive = cl.activeWeight();
        w.clusterIdle = cl.idleWeight();
        snap.clusters.push_back(w);
    }
    return snap;
}

EnergyBreakdown
PowerModel::energyBetween(const PowerSnapshot &a,
                          const PowerSnapshot &b) const
{
    BL_ASSERT(b.when >= a.when);
    BL_ASSERT(a.clusters.size() == b.clusters.size());
    BL_ASSERT(a.clusters.size() == platform.clusterCount());

    EnergyBreakdown e;
    e.elapsed = b.when - a.when;
    for (std::size_t ci = 0; ci < platform.clusterCount(); ++ci) {
        const Cluster &cl = platform.cluster(ci);
        const CorePowerParams &pw = cl.params().power;
        const auto &wa = a.clusters[ci];
        const auto &wb = b.clusters[ci];
        e.coreDynamicMj += pw.dynCoeffMw * (wb.dyn - wa.dyn);
        const double idle_wfi = wb.staticIdleWfi - wa.staticIdleWfi;
        const double idle_gated =
            wb.staticIdleGated - wa.staticIdleGated;
        double idle_mj;
        if (cl.cpuidleEnabled()) {
            idle_mj = pw.staticCoeffMw *
                (pw.wfiLeakFraction * idle_wfi +
                 pw.gatedLeakFraction * idle_gated);
        } else {
            idle_mj = pw.staticCoeffMw * pw.idleLeakFraction *
                (idle_wfi + idle_gated);
        }
        e.coreStaticMj +=
            pw.staticCoeffMw * (wb.staticBusy - wa.staticBusy) +
            idle_mj;
        e.clusterStaticMj +=
            pw.clusterStaticCoeffMw *
                (wb.clusterActive - wa.clusterActive) +
            pw.clusterStaticCoeffMw * pw.idleLeakFraction *
                (wb.clusterIdle - wa.clusterIdle);
    }
    e.baseMj += platform.params().basePowerMw * ticksToSeconds(e.elapsed);
    return e;
}

EnergyBreakdown
PowerModel::energySinceStart()
{
    PowerSnapshot zero;
    zero.when = 0;
    zero.clusters.resize(platform.clusterCount());
    return energyBetween(zero, snapshot());
}

double
clusterInstantPowerMw(const Cluster &cl)
{
    if (cl.onlineCount() == 0)
        return 0.0;
    const CorePowerParams &pw = cl.params().power;
    const double volts = cl.freqDomain().currentVolts();
    const double f_ghz = kHzToGHz(cl.freqDomain().currentFreq());
    double mw = 0.0;
    for (std::size_t i = 0; i < cl.coreCount(); ++i) {
        const Core &c = cl.core(i);
        if (!c.online())
            continue;
        if (c.busy()) {
            mw += pw.dynCoeffMw * volts * volts * f_ghz;
            mw += pw.staticCoeffMw * volts;
        } else if (cl.cpuidleEnabled()) {
            const bool gated = c.currentIdleSpan() >= pw.gateAfter;
            mw += pw.staticCoeffMw * volts *
                  (gated ? pw.gatedLeakFraction
                         : pw.wfiLeakFraction);
        } else {
            mw += pw.staticCoeffMw * volts * pw.idleLeakFraction;
        }
    }
    const bool any_busy = cl.busyCount() > 0;
    mw += pw.clusterStaticCoeffMw * volts *
          (any_busy ? 1.0 : pw.idleLeakFraction);
    return mw;
}

double
PowerModel::instantPowerMw() const
{
    double mw = platform.params().basePowerMw;
    for (std::size_t ci = 0; ci < platform.clusterCount(); ++ci)
        mw += clusterInstantPowerMw(platform.cluster(ci));
    return mw;
}

} // namespace biglittle
