/**
 * @file
 * Tests for the power model: calibration anchors from Section III-A
 * (2.3x iso-frequency ratio, 1.5x for big@0.8 vs little@1.3), energy
 * accounting consistency, and utilization linearity (Fig. 6).
 */

#include <gtest/gtest.h>

#include "platform/power.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class PowerTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    PowerModel power{plat};

    /** Run one core busy at a fixed freq and return avg system mW. */
    double
    systemPowerOneBusy(CoreType type, FreqKHz freq, Tick duration)
    {
        Cluster &cl = plat.clusterOf(type);
        cl.freqDomain().setFreqNow(freq);
        const PowerSnapshot before = power.snapshot();
        cl.core(0).setBusy(true);
        sim.runFor(duration);
        cl.core(0).setBusy(false);
        const PowerSnapshot after = power.snapshot();
        return power.energyBetween(before, after).averagePowerMw();
    }
};

} // namespace

TEST_F(PowerTest, IdleSystemPowerIsSmall)
{
    const PowerSnapshot before = power.snapshot();
    sim.runFor(oneSec);
    const PowerSnapshot after = power.snapshot();
    const EnergyBreakdown e = power.energyBetween(before, after);
    // Base + leakage only: well under 0.5 W.
    EXPECT_GT(e.averagePowerMw(), 200.0);
    EXPECT_LT(e.averagePowerMw(), 500.0);
    EXPECT_DOUBLE_EQ(e.coreDynamicMj, 0.0);
}

TEST_F(PowerTest, IsoFrequencyRatioMatchesPaper)
{
    const double little =
        systemPowerOneBusy(CoreType::little, 1300000, oneSec);
    const double big =
        systemPowerOneBusy(CoreType::big, 1300000, oneSec);
    // Section III-A: "a big core consumes 2.3 times more power".
    EXPECT_NEAR(big / little, 2.3, 0.25);
}

TEST_F(PowerTest, BigMinVsLittleMaxRatioMatchesPaper)
{
    const double little =
        systemPowerOneBusy(CoreType::little, 1300000, oneSec);
    const double big =
        systemPowerOneBusy(CoreType::big, 800000, oneSec);
    // "Even a big core with 0.8GHz consumes 1.5 times more power
    // than a little core with 1.3GHz."
    EXPECT_NEAR(big / little, 1.5, 0.2);
}

TEST_F(PowerTest, PowerIncreasesWithFrequency)
{
    double prev = 0.0;
    for (FreqKHz f : {800000u, 1100000u, 1400000u, 1700000u,
                      1900000u}) {
        const double p =
            systemPowerOneBusy(CoreType::big, f, msToTicks(100));
        EXPECT_GT(p, prev) << f;
        prev = p;
    }
}

TEST_F(PowerTest, EnergyScalesLinearlyWithBusyTime)
{
    Cluster &cl = plat.littleCluster();
    cl.freqDomain().setFreqNow(1300000);
    const PowerSnapshot s0 = power.snapshot();
    cl.core(0).setBusy(true);
    sim.runFor(msToTicks(100));
    const PowerSnapshot s1 = power.snapshot();
    sim.runFor(msToTicks(200));
    cl.core(0).setBusy(false);
    const PowerSnapshot s2 = power.snapshot();
    const double e1 = power.energyBetween(s0, s1).coreDynamicMj;
    const double e2 = power.energyBetween(s1, s2).coreDynamicMj;
    EXPECT_NEAR(e2 / e1, 2.0, 1e-6);
}

TEST_F(PowerTest, SnapshotsCompose)
{
    Cluster &cl = plat.bigCluster();
    const PowerSnapshot s0 = power.snapshot();
    cl.core(1).setBusy(true);
    sim.runFor(msToTicks(37));
    const PowerSnapshot s1 = power.snapshot();
    sim.runFor(msToTicks(11));
    cl.core(1).setBusy(false);
    sim.runFor(msToTicks(5));
    const PowerSnapshot s2 = power.snapshot();
    const double total = power.energyBetween(s0, s2).totalMj();
    const double split = power.energyBetween(s0, s1).totalMj() +
                         power.energyBetween(s1, s2).totalMj();
    EXPECT_NEAR(total, split, 1e-9);
}

TEST_F(PowerTest, EnergySinceStartMatchesManualSnapshot)
{
    plat.littleCluster().core(2).setBusy(true);
    sim.runFor(msToTicks(50));
    plat.littleCluster().core(2).setBusy(false);
    const EnergyBreakdown e = power.energySinceStart();
    EXPECT_EQ(e.elapsed, msToTicks(50));
    EXPECT_GT(e.coreDynamicMj, 0.0);
    EXPECT_GT(e.baseMj, 0.0);
}

TEST_F(PowerTest, InstantPowerTracksState)
{
    const double idle = power.instantPowerMw();
    plat.bigCluster().freqDomain().setFreqNow(1900000);
    plat.bigCluster().core(0).setBusy(true);
    const double busy = power.instantPowerMw();
    EXPECT_GT(busy, idle + 2000.0); // a big core at 1.9 GHz is >2 W
    plat.bigCluster().core(0).setBusy(false);
    EXPECT_LT(power.instantPowerMw(), busy);
}

TEST_F(PowerTest, MarginalCoreCostShrinksAfterFirst)
{
    plat.littleCluster().freqDomain().setFreqNow(1300000);
    const double p0 = power.instantPowerMw();
    plat.littleCluster().core(0).setBusy(true);
    const double p1 = power.instantPowerMw();
    plat.littleCluster().core(1).setBusy(true);
    const double p2 = power.instantPowerMw();
    plat.littleCluster().core(2).setBusy(true);
    const double p3 = power.instantPowerMw();
    // The first busy core also wakes the shared L2 (cluster-active
    // static), so its marginal cost exceeds the later cores'.
    EXPECT_GT(p1 - p0, p2 - p1);
    // Subsequent cores add the same dynamic+static increment.
    EXPECT_NEAR(p2 - p1, p3 - p2, 1e-9);
    EXPECT_GT(p2 - p1, 0.0);
}

TEST_F(PowerTest, OfflineClusterDrawsNothing)
{
    for (std::size_t i = 0; i < 4; ++i)
        plat.bigCluster().core(i).setOnline(false);
    EXPECT_DOUBLE_EQ(clusterInstantPowerMw(plat.bigCluster()), 0.0);
}

TEST_F(PowerTest, HotplugReducesIdleLeakage)
{
    const double all_on = power.instantPowerMw();
    for (std::size_t i = 0; i < 4; ++i)
        plat.bigCluster().core(i).setOnline(false);
    const double big_off = power.instantPowerMw();
    EXPECT_LT(big_off, all_on);
}

TEST_F(PowerTest, UtilizationLinearityOfEnergy)
{
    // Fig. 6 linearity: energy at 50% duty is the midpoint of idle
    // and fully-busy energy over the same interval.
    Cluster &cl = plat.littleCluster();
    cl.freqDomain().setFreqNow(1300000);

    const PowerSnapshot a = power.snapshot();
    sim.runFor(oneSec); // idle
    const PowerSnapshot b = power.snapshot();
    cl.core(0).setBusy(true);
    sim.runFor(oneSec); // busy
    cl.core(0).setBusy(false);
    const PowerSnapshot c = power.snapshot();
    // 50% duty second
    for (int i = 0; i < 10; ++i) {
        cl.core(0).setBusy(true);
        sim.runFor(msToTicks(50));
        cl.core(0).setBusy(false);
        sim.runFor(msToTicks(50));
    }
    const PowerSnapshot d = power.snapshot();

    const double e_idle = power.energyBetween(a, b).totalMj();
    const double e_busy = power.energyBetween(b, c).totalMj();
    const double e_half = power.energyBetween(c, d).totalMj();
    EXPECT_NEAR(e_half, (e_idle + e_busy) / 2.0,
                0.02 * (e_idle + e_busy));
}

TEST_F(PowerTest, MismatchedSnapshotsAssert)
{
    PowerSnapshot bogus;
    bogus.when = 0;
    bogus.clusters.resize(1); // wrong cluster count
    const PowerSnapshot good = power.snapshot();
    EXPECT_DEATH((void)power.energyBetween(bogus, good), "assertion");
}
