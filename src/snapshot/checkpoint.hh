/**
 * @file
 * Checkpoint: a versioned container of named binary state sections,
 * with crash-safe file I/O.
 *
 * A checkpoint captures everything mutable about a run at one tick:
 * each simulation component contributes one section of bytes written
 * with a Serializer.  The file layout is
 *
 *   magic u32 | version u32 | app string | label string |
 *   masterSeed u64 | tick u64 | eventsServiced u64 |
 *   nextSequence u64 | sectionCount u64 |
 *   (name string | payload bytes) * sectionCount | checksum u64
 *
 * where checksum is the FNV-1a hash of every byte before it.  Writes
 * go to a temporary file that is renamed into place, so a crash
 * mid-write can never leave a truncated checkpoint under the real
 * name; reads validate magic, version, and checksum and return a
 * Status instead of crashing on a damaged file.
 *
 * Restoring does NOT rebuild the event queue from these bytes - the
 * queue holds closures that cannot round-trip through a file.
 * Resume re-executes deterministically up to `tick` and then
 * byte-compares every section against the live state (see
 * docs/DETERMINISM.md), so the sections double as a tamper-evident
 * fingerprint of the run.
 */

#ifndef BIGLITTLE_SNAPSHOT_CHECKPOINT_HH
#define BIGLITTLE_SNAPSHOT_CHECKPOINT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/status.hh"
#include "base/types.hh"

namespace biglittle
{

/**
 * File format magic ("BLCK") and the current layout version.  The
 * version guards every section payload layout, not just the container
 * framing: bump it whenever any component's serialize() bytes change
 * (v2: FaultInjector gained the crash/invariant-break/suppressed
 * counters), so an old-build checkpoint is rejected up front instead
 * of under-reading a section into garbage.
 */
constexpr std::uint32_t checkpointMagic = 0x424C434BU;
constexpr std::uint32_t checkpointVersion = 2;

/** One component's serialized state. */
struct CheckpointSection
{
    std::string name;
    std::vector<std::uint8_t> payload;
};

/** A full simulation snapshot at one tick. */
struct Checkpoint
{
    std::string app; ///< workload identity guard
    std::string label; ///< config label guard
    std::uint64_t masterSeed = 0;
    Tick tick = 0;
    std::uint64_t eventsServiced = 0;
    std::uint64_t nextSequence = 0;
    std::vector<CheckpointSection> sections;

    /** Append a named section. */
    void add(std::string name, std::vector<std::uint8_t> payload);

    /** Section by name, or nullptr. */
    const CheckpointSection *find(const std::string &name) const;

    /** Serialized size of the whole container in bytes. */
    std::size_t byteSize() const;

    /** Encode to the flat file layout (including the checksum). */
    std::vector<std::uint8_t> encode() const;

    /** Decode; rejects bad magic/version/checksum/truncation. */
    [[nodiscard]] static Result<Checkpoint>
    decode(const std::vector<std::uint8_t> &bytes);

    /**
     * Atomically write to @p path (tmp file + rename).  Existing
     * generations rotate down the `<path>.1` -> `<path>.2` chain
     * first (oldest dropped), so the last good checkpoints survive a
     * bad write even when a rollback loop rewrites the same path
     * repeatedly.
     */
    [[nodiscard]] Status writeFile(const std::string &path) const;

    /** Read and decode @p path. */
    [[nodiscard]] static Result<Checkpoint>
    readFile(const std::string &path);

    /**
     * Atomically write pre-encoded bytes (tmp file + rename),
     * rotating existing generations down the `<path>.1` ->
     * `<path>.2` chain.
     */
    [[nodiscard]] static Status
    writeBytes(const std::string &path,
               const std::vector<std::uint8_t> &bytes);
};

/**
 * Resume candidates for @p path, newest first: the file itself, its
 * `<path>.1` and `<path>.2` rotations, then - when the name follows
 * the periodic
 * `<stem>.<tick>.ckpt` convention of Experiment - every sibling
 * checkpoint of the same stem with an older tick, newest to oldest.
 */
std::vector<std::string> checkpointCandidates(const std::string &path);

/**
 * Load the newest readable (and, when @p accept is given, accepted)
 * checkpoint from checkpointCandidates(path).  Every rejected
 * candidate is warn()ed with its reason; the Result is the first
 * survivor, or notFound when none is usable.  This is what turns a
 * corrupt newest checkpoint into a logged fallback instead of a dead
 * run.
 */
[[nodiscard]] Result<Checkpoint> loadCheckpointWithFallback(
    const std::string &path,
    const std::function<Status(const Checkpoint &)> &accept = nullptr);

/**
 * Compare two checkpoints section by section.  Returns ok when every
 * section matches byte for byte; otherwise names the first differing
 * (or missing) section and the digests of both sides, which
 * attributes nondeterminism to a component instead of a vague
 * "results differ".
 */
[[nodiscard]] Status compareCheckpoints(const Checkpoint &expected,
                                        const Checkpoint &actual);

} // namespace biglittle

#endif // BIGLITTLE_SNAPSHOT_CHECKPOINT_HH
