/**
 * @file
 * Watchdog: a wall-clock monitor for long simulations.
 *
 * A discrete-event run can fail in two silent ways: it stalls (an
 * event loop stops making progress - a deadlocked drain listener, an
 * event storm pinned at one tick) or it runs away (simulated time
 * advances but never reaches the cap - a workload that will not
 * converge).  Both look identical from outside: a process that burns
 * CPU forever.  The watchdog turns either into a diagnosable,
 * non-zero exit.
 *
 * The simulation thread calls heartbeat() between event slices; each
 * heartbeat snapshots the progress counters and the queue's recent-
 * event ring buffer (and, optionally, freshly encoded checkpoint
 * bytes) under a mutex.  A background thread wakes a few times a
 * second and trips when
 *
 *  - no serviced-event progress for stallLimit wall seconds, or
 *  - total wall time exceeds runawayLimit seconds.
 *
 * On trip it writes a report file (reason, last tick, serviced
 * count, the last-N-events dump), writes the last checkpoint bytes
 * next to it, and _Exit()s with watchdogExitCode - deliberately not
 * a clean shutdown, because the simulation thread is wedged and
 * cannot be joined.
 */

#ifndef BIGLITTLE_SNAPSHOT_WATCHDOG_HH
#define BIGLITTLE_SNAPSHOT_WATCHDOG_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/types.hh"

namespace biglittle
{

class EventQueue;

/** Exit code of a watchdog trip (distinct from crash/assert codes). */
constexpr int watchdogExitCode = 86;

/** Watchdog tunables. */
struct WatchdogParams
{
    bool enabled = false;

    /** Wall seconds without serviced-event progress before a trip. */
    double stallLimitSec = 30.0;

    /** Wall seconds of total run time before a trip (0 = no limit). */
    double runawayLimitSec = 0.0;

    /** Where the trip report is written ("" = stderr only). */
    std::string reportPath;

    /** Ring-buffer depth mirrored into the report. */
    std::size_t ringDepth = 64;
};

/** Monitors a simulation thread's progress from a helper thread. */
class Watchdog
{
  public:
    explicit Watchdog(const WatchdogParams &params);

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    ~Watchdog();

    /**
     * Begin monitoring.  @p queue is only touched from heartbeat()
     * (the simulation thread), never from the watchdog thread.
     */
    void start(EventQueue &queue);

    /** Stop monitoring and join the helper thread. */
    void stop();

    /**
     * Progress report from the simulation thread.  Cheap when called
     * every few simulated milliseconds.  Also snapshots the ring
     * buffer so a later trip can dump it without touching the queue.
     */
    void heartbeat();

    /**
     * Stash the latest checkpoint bytes; on a trip they are written
     * to reportPath + ".ckpt" so the stalled run can be examined
     * from its last good state.
     */
    void noteCheckpoint(std::vector<std::uint8_t> bytes);

    /** Trips observed (always 0 unless exitOnTrip was disabled). */
    std::uint64_t trips() const { return tripCount.load(); }

    /**
     * Testing hook: when disabled, a trip writes the report and
     * increments trips() but does not _Exit(), so unit tests can
     * assert on the report without dying.
     */
    void setExitOnTrip(bool exit_on_trip) { exitOnTrip = exit_on_trip; }

  private:
    WatchdogParams wp;
    EventQueue *queuePtr = nullptr;

    std::thread monitor;
    std::atomic<bool> running{false};
    std::atomic<std::uint64_t> servicedSeen{0};
    std::atomic<std::uint64_t> lastTick{0};
    std::atomic<std::uint64_t> tripCount{0};
    bool exitOnTrip = true;

    std::mutex snapMutex;
    std::string ringDump; ///< guarded by snapMutex
    std::vector<std::uint8_t> checkpointBytes; ///< guarded by snapMutex

    void run();
    void trip(const std::string &reason);
};

} // namespace biglittle

#endif // BIGLITTLE_SNAPSHOT_WATCHDOG_HH
