/**
 * @file
 * Engine-level tests for the deterministic fuzzer: input derivation
 * is a pure function of (seed, target, iteration), the generic
 * mutator is seeded and total, and each failure kind (exception,
 * hang, allocation) is detected and attributed with a reproducible
 * iteration number.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "fuzz/fuzz.hh"

using namespace biglittle;

namespace
{

/** Trivial target: one seed, no structure-aware mutation. */
class BenignTarget : public FuzzTarget
{
  public:
    std::string name() const override { return "benign"; }

    std::vector<std::vector<std::uint8_t>>
    seedInputs() const override
    {
        return {{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}};
    }

    void
    run(const std::vector<std::uint8_t> &input) const override
    {
        (void)input;
    }
};

/** Throws whenever the input starts with an odd byte. */
class ThrowingTarget : public BenignTarget
{
  public:
    std::string name() const override { return "throwing"; }

    void
    run(const std::vector<std::uint8_t> &input) const override
    {
        if (!input.empty() && input[0] % 2 == 1)
            throw std::runtime_error("decoder exploded");
    }
};

/** Burns a fixed amount of CPU on every input. */
class SlowTarget : public BenignTarget
{
  public:
    std::string name() const override { return "slow"; }

    void
    run(const std::vector<std::uint8_t> &input) const override
    {
        (void)input;
        volatile std::uint64_t sink = 0;
        for (std::uint64_t i = 0; i < 50'000'000; ++i)
            sink += i;
    }
};

std::uint64_t fakeHeap = 0;

std::uint64_t
fakeHeapProbe()
{
    return fakeHeap;
}

/** Pretends to allocate 10 MiB per input via the fake probe. */
class HungryTarget : public BenignTarget
{
  public:
    std::string name() const override { return "hungry"; }

    void
    run(const std::vector<std::uint8_t> &input) const override
    {
        (void)input;
        fakeHeap += 10u << 20;
    }
};

} // namespace

TEST(FuzzEngine, MutateBytesIsSeedDeterministic)
{
    const std::vector<std::uint8_t> base = {0, 1, 2, 3, 4, 5, 6, 7,
                                            8, 9, 10, 11, 12, 13};
    Rng a(42), b(42), c(43);
    std::vector<std::uint8_t> ma = base, mb = base, mc = base;
    for (int i = 0; i < 16; ++i) {
        mutateBytes(a, ma);
        mutateBytes(b, mb);
        mutateBytes(c, mc);
    }
    EXPECT_EQ(ma, mb);
    EXPECT_NE(ma, base); // 16 rounds always change something
    EXPECT_NE(ma, mc); // different seed, different walk
}

TEST(FuzzEngine, MutateBytesGrowsEmptyInput)
{
    Rng rng(1);
    std::vector<std::uint8_t> empty;
    mutateBytes(rng, empty);
    EXPECT_FALSE(empty.empty());
}

TEST(FuzzEngine, InputDerivationIsPure)
{
    const BenignTarget target;
    FuzzOptions opts;
    opts.seed = 7;
    const Fuzzer one(opts), two(opts);
    for (std::uint64_t iter = 0; iter < 32; ++iter) {
        EXPECT_EQ(one.inputFor(target, iter),
                  two.inputFor(target, iter))
            << "iteration " << iter;
    }

    FuzzOptions other = opts;
    other.seed = 8;
    const Fuzzer three(other);
    bool anyDiffer = false;
    for (std::uint64_t iter = 4; iter < 32 && !anyDiffer; ++iter)
        anyDiffer = one.inputFor(target, iter) !=
                    three.inputFor(target, iter);
    EXPECT_TRUE(anyDiffer);
}

TEST(FuzzEngine, EarlyIterationsReplaySeedsUnmutated)
{
    const BenignTarget target;
    const Fuzzer fuzzer(FuzzOptions{});
    EXPECT_EQ(fuzzer.inputFor(target, 0),
              target.seedInputs()[0]);
}

TEST(FuzzEngine, CleanTargetProducesNoFindings)
{
    const BenignTarget target;
    FuzzOptions opts;
    opts.iterations = 100;
    const FuzzStats stats = Fuzzer(opts).run(target);
    EXPECT_EQ(stats.iterations, 100u);
    EXPECT_TRUE(stats.clean());
}

TEST(FuzzEngine, ExceptionIsCaughtAndAttributed)
{
    const ThrowingTarget target;
    FuzzOptions opts;
    opts.iterations = 50;
    const FuzzStats stats = Fuzzer(opts).run(target);
    ASSERT_FALSE(stats.clean());
    const FuzzFailure &first = stats.failures.front();
    EXPECT_EQ(first.kind, FuzzFailureKind::exception);
    EXPECT_EQ(first.detail, "decoder exploded");
    EXPECT_EQ(first.target, "throwing");

    // The recorded iteration reproduces the identical finding.
    FuzzOptions repro = opts;
    repro.onlyIteration =
        static_cast<std::int64_t>(first.iteration);
    const FuzzStats again = Fuzzer(repro).run(target);
    ASSERT_EQ(again.failures.size(), 1u);
    EXPECT_EQ(again.failures.front().input, first.input);
    EXPECT_EQ(again.iterations, 1u);
}

TEST(FuzzEngine, HangDetectionUsesTheBudget)
{
    const SlowTarget target;
    FuzzOptions opts;
    opts.iterations = 1;
    opts.budgetMsPerInput = 1; // the 50M-step burn takes far longer
    const FuzzStats flagged = Fuzzer(opts).run(target);
    ASSERT_EQ(flagged.failures.size(), 1u);
    EXPECT_EQ(flagged.failures.front().kind, FuzzFailureKind::hang);

    opts.budgetMsPerInput = 0; // 0 disables the check
    EXPECT_TRUE(Fuzzer(opts).run(target).clean());
}

TEST(FuzzEngine, AllocationCapUsesTheProbe)
{
    const HungryTarget target;
    FuzzOptions opts;
    opts.iterations = 1;
    opts.allocProbe = fakeHeapProbe;
    opts.allocMultiple = 2;
    opts.allocSlack = 1 << 10;
    const FuzzStats stats = Fuzzer(opts).run(target);
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures.front().kind,
              FuzzFailureKind::allocation);
    EXPECT_NE(stats.failures.front().detail.find("cap"),
              std::string::npos);

    // Without a probe the same target runs clean.
    opts.allocProbe = nullptr;
    EXPECT_TRUE(Fuzzer(opts).run(target).clean());
}
