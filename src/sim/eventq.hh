/**
 * @file
 * The event queue: a total order over pending events keyed by
 * (when, priority, sequence).  Supports schedule / reschedule /
 * deschedule, which the platform uses heavily (a task-completion
 * event moves whenever its core's frequency changes).
 */

#ifndef BIGLITTLE_SIM_EVENTQ_HH
#define BIGLITTLE_SIM_EVENTQ_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>

#include "base/random.hh"
#include "base/types.hh"
#include "sim/event.hh"

namespace biglittle
{

class RaceDetector;
class Serializer;

/**
 * How the queue orders events that share a (when, priority) key.
 * `fifo` (schedule order) is the production semantic; `lifo` and
 * `shuffle` are deterministic but *different* valid orders used by
 * the permuted tie-break replay harness to prove that no handler
 * depends on the arbitrary part of the total order
 * (docs/DETERMINISM.md).
 */
enum class TieBreak
{
    fifo, ///< schedule order (the production default)
    lifo, ///< reverse schedule order within each batch
    shuffle, ///< seeded-random order within each batch
};

/** A serviced event as seen by hooks and the recent-event log. */
struct ServicedEvent
{
    Tick when = 0;
    std::int32_t priority = 0;
    std::uint64_t sequence = 0;
    std::string name;
};

/** Deterministic priority queue of events. */
class EventQueue
{
  public:
    /** Called for every serviced event, just before it processes. */
    using ServiceHook = std::function<void(const ServicedEvent &)>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Insert @p event to fire at absolute tick @p when.
     * @p when must not be in the past; the event must be idle.
     */
    void schedule(Event &event, Tick when);

    /** Remove a scheduled event (must currently be scheduled). */
    void deschedule(Event &event);

    /**
     * Move an event to a new tick (deschedule-if-scheduled +
     * schedule).  Same-tick semantic: because the event is
     * re-inserted through schedule(), it always receives a *fresh*
     * sequence number — rescheduling to the current tick (or back to
     * its own tick) re-enters the event at the BACK of its
     * (when, priority) batch, behind every already-pending peer.
     * "Reschedule to now" therefore never jumps ahead of events that
     * were queued first, and repeated reschedule churn cannot
     * perturb the relative order of untouched events.
     */
    void reschedule(Event &event, Tick when);

    /** True when no events are pending. */
    bool empty() const { return queue.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return queue.size(); }

    /** Tick of the next pending event (maxTick when empty). */
    Tick nextTick() const;

    /**
     * Service exactly one event (advances time to it first).
     * @return false if the queue was empty.
     */
    bool serviceOne();

    /**
     * Run events until the queue drains or the next event would fire
     * after @p until.  The clock is then parked exactly at @p until
     * so a subsequent runUntil continues from there.
     */
    void runUntil(Tick until);

    /** Total events serviced since construction. */
    std::uint64_t eventsServiced() const { return serviced; }

    /** Sequence number the next schedule() will hand out. */
    std::uint64_t nextSequenceValue() const { return nextSequence; }

    /**
     * Install (or clear, with nullptr) the single service hook used
     * by trace recording and replay comparison.  The hook fires for
     * every serviced event with its (when, priority, sequence, name)
     * identity, before process() runs.
     */
    void setServiceHook(ServiceHook hook);

    /**
     * Keep a ring buffer of the identities of the last @p n serviced
     * events (0 disables).  The watchdog dumps this ring when a run
     * stalls, so the report shows what the simulation was doing.
     */
    void enableRecentLog(std::size_t n);

    /** The recent-event ring, oldest first. */
    const std::deque<ServicedEvent> &recentLog() const { return recent; }

    /**
     * Select the same-(when, priority) tie-break order (see TieBreak).
     * @p seed feeds the `shuffle` mode's private generator; `fifo`
     * and `lifo` ignore it.  Call before running; switching modes
     * mid-run is legal but makes the run incomparable to either
     * pure order.
     */
    void setTieBreak(TieBreak mode, std::uint64_t seed = 1);

    /** The active tie-break mode. */
    TieBreak tieBreak() const { return tieMode; }

    /**
     * Attach (or detach, with nullptr) the abrace race detector.
     * While attached it observes every schedule/deschedule for
     * provenance and brackets every serviced event so state accesses
     * recorded via noteRead/noteWrite are charged to the right event
     * (sim/abrace.hh).  The detector must outlive its attachment;
     * detach before tearing down components whose destructors
     * deschedule events.
     */
    void setRaceDetector(RaceDetector *detector) { race = detector; }

    /** The attached race detector (nullptr when detached). */
    RaceDetector *raceDetector() const { return race; }

    /**
     * Serialize the queue's externally observable state: clock,
     * counters, and a digest of every pending event's (when,
     * priority, sequence, name-hash) in firing order.  Two runs with
     * identical behavior produce identical bytes; the digest form is
     * used because pending events (closures) cannot themselves be
     * reconstructed from bytes.  There is deliberately no
     * deserialize(): restore re-executes to the checkpoint tick and
     * byte-compares this digest instead (docs/DETERMINISM.md).
     */
    // ablint:allow(serialize-pair): digest-only, restore by replay
    void serialize(Serializer &s) const;

  private:
    struct Cmp
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when() != b->when())
                return a->when() < b->when();
            if (a->priority() != b->priority())
                return a->priority() < b->priority();
            return a->sequence < b->sequence;
        }
    };

    // ablint:allow(pointer-key): Cmp orders by stable fields
    std::set<Event *, Cmp> queue;
    Tick curTick = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t serviced = 0;

    ServiceHook serviceHook;
    std::deque<ServicedEvent> recent;
    std::size_t recentCap = 0;

    TieBreak tieMode = TieBreak::fifo;
    // ablint:allow(rng-stream): fixed tie-break stream, part of the event-order contract
    Rng tieRng{1};
    RaceDetector *race = nullptr;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_EVENTQ_HH
