/**
 * @file
 * Exhaustive truncation tests: every strict prefix of a valid
 * checkpoint and a valid event trace must be rejected with a clean
 * Status — never a crash, hang, or sanitizer report.  Truncation is
 * the single most common real-world corruption (a process killed
 * mid-write, a full disk), so this boundary gets byte-exhaustive
 * coverage rather than sampled fuzzing.  CI runs this suite under
 * ASan+UBSan, which turns any out-of-bounds read in a decoder into
 * a hard failure here.
 */

#include <gtest/gtest.h>

#include "snapshot/checkpoint.hh"
#include "snapshot/event_trace.hh"

using namespace biglittle;

namespace
{

Checkpoint
sampleCheckpoint()
{
    Checkpoint ckpt;
    ckpt.app = "eternity_warrior2";
    ckpt.label = "default";
    ckpt.masterSeed = 11;
    ckpt.tick = 987654;
    ckpt.eventsServiced = 1234;
    ckpt.nextSequence = 56;
    ckpt.add("eventq", {1, 2, 3, 4, 5});
    ckpt.add("sched", std::vector<std::uint8_t>(64, 0xCD));
    ckpt.add("empty", {});
    return ckpt;
}

EventTrace
sampleTrace()
{
    EventTrace trace;
    for (std::uint64_t i = 0; i < 16; ++i) {
        TraceRecord r;
        r.when = 100 * i;
        r.priority = static_cast<std::int32_t>(i) - 8;
        r.sequence = i;
        r.name = "ev" + std::to_string(i);
        trace.records.push_back(std::move(r));
    }
    return trace;
}

} // namespace

TEST(Truncate, EveryCheckpointPrefixIsRejectedGracefully)
{
    const std::vector<std::uint8_t> full =
        sampleCheckpoint().encode();
    ASSERT_TRUE(Checkpoint::decode(full).ok());
    for (std::size_t len = 0; len < full.size(); ++len) {
        const std::vector<std::uint8_t> prefix(
            full.begin(),
            full.begin() + static_cast<std::ptrdiff_t>(len));
        const Result<Checkpoint> result =
            Checkpoint::decode(prefix);
        EXPECT_FALSE(result.ok())
            << "a " << len << "-byte prefix of a " << full.size()
            << "-byte checkpoint decoded successfully";
    }
}

TEST(Truncate, EveryTracePrefixIsRejectedGracefully)
{
    const std::vector<std::uint8_t> full = sampleTrace().encode();
    ASSERT_TRUE(EventTrace::decode(full).ok());
    for (std::size_t len = 0; len < full.size(); ++len) {
        const std::vector<std::uint8_t> prefix(
            full.begin(),
            full.begin() + static_cast<std::ptrdiff_t>(len));
        const Result<EventTrace> result =
            EventTrace::decode(prefix);
        EXPECT_FALSE(result.ok())
            << "a " << len << "-byte prefix of a " << full.size()
            << "-byte trace decoded successfully";
    }
}

TEST(Truncate, SuffixesAndInteriorCutsAreRejectedGracefully)
{
    // Dropping bytes from the front or the middle must be as safe
    // as dropping them from the end.
    const std::vector<std::uint8_t> full =
        sampleCheckpoint().encode();
    for (std::size_t start = 1; start < full.size(); ++start) {
        const std::vector<std::uint8_t> suffix(
            full.begin() + static_cast<std::ptrdiff_t>(start),
            full.end());
        EXPECT_FALSE(Checkpoint::decode(suffix).ok());
    }
    for (std::size_t cut = 8; cut + 8 < full.size(); cut += 7) {
        std::vector<std::uint8_t> gouged = full;
        gouged.erase(gouged.begin() +
                         static_cast<std::ptrdiff_t>(cut),
                     gouged.begin() +
                         static_cast<std::ptrdiff_t>(cut + 8));
        EXPECT_FALSE(Checkpoint::decode(gouged).ok());
    }
}
