/**
 * @file
 * Tests for the string-formatting helpers.
 */

#include <gtest/gtest.h>

#include "base/strutil.hh"

using namespace biglittle;

TEST(StrUtil, FormatBasics)
{
    EXPECT_EQ(format("x=%d", 42), "x=42");
    EXPECT_EQ(format("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(format("%.2f", 3.14159), "3.14");
    EXPECT_EQ(format("empty"), "empty");
}

TEST(StrUtil, FormatLongStrings)
{
    const std::string big(500, 'x');
    EXPECT_EQ(format("%s", big.c_str()), big);
}

TEST(StrUtil, Padding)
{
    EXPECT_EQ(padRight("ab", 5), "ab   ");
    EXPECT_EQ(padLeft("ab", 5), "   ab");
    EXPECT_EQ(padRight("abcdef", 3), "abcdef"); // no truncation
    EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
    EXPECT_EQ(padRight("", 3), "   ");
}

TEST(StrUtil, FreqToString)
{
    EXPECT_EQ(freqToString(1300000), "1.3GHz");
    EXPECT_EQ(freqToString(1900000), "1.9GHz");
    EXPECT_EQ(freqToString(500000), "500MHz");
    EXPECT_EQ(freqToString(800000), "800MHz");
}

TEST(StrUtil, TicksToString)
{
    EXPECT_EQ(ticksToString(2 * oneSec), "2.00s");
    EXPECT_EQ(ticksToString(msToTicks(12) + 340 * oneUs), "12.34ms");
    EXPECT_EQ(ticksToString(usToTicks(5)), "5.00us");
    EXPECT_EQ(ticksToString(123), "123ns");
}

TEST(StrUtil, PercentToString)
{
    EXPECT_EQ(percentToString(0.4783), "47.83");
    EXPECT_EQ(percentToString(0.5, 0), "50");
    EXPECT_EQ(percentToString(1.0, 1), "100.0");
}

TEST(StrUtil, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("a,,b", ','),
              (std::vector<std::string>{"a", "", "b"}));
    EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("--flag", "--"));
    EXPECT_FALSE(startsWith("-f", "--"));
    EXPECT_TRUE(startsWith("abc", ""));
    EXPECT_FALSE(startsWith("", "a"));
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("BigLITTLE"), "biglittle");
    EXPECT_EQ(toLower("already"), "already");
    EXPECT_EQ(toLower("MiXeD 123!"), "mixed 123!");
}
