/**
 * @file
 * Textual (de)serialization of ExperimentConfig: a small key=value
 * format so experimental conditions can be stored in files, shared,
 * and passed to the bench binaries and examples with `--config`.
 *
 * Format: one `key = value` pair per line; `#` starts a comment;
 * blank lines ignored.  Unknown keys are a line-numbered parse error
 * (typos must not silently change an experiment).  Example:
 *
 *   # Section VI-C point: 60 ms sampling
 *   governor = interactive
 *   interactive.sampling_ms = 60
 *   interactive.target_load = 70
 *   sched.up_threshold = 700
 *   sched.down_threshold = 256
 *   sched.half_life_ms = 32
 *   cores.little = 4
 *   cores.big = 4
 *   thermal.enabled = true
 *   label = interval-60ms
 */

#ifndef BIGLITTLE_CORE_CONFIG_IO_HH
#define BIGLITTLE_CORE_CONFIG_IO_HH

#include <string>

#include "base/status.hh"
#include "core/experiment.hh"

namespace biglittle
{

/**
 * Parse a governor name ("interactive", "powersave", ...).
 * Unknown names are invalidArgument, never fatal: governor strings
 * arrive from config files and CLI flags, both untrusted.
 */
[[nodiscard]] Result<GovernorKind>
governorKindFromName(const std::string &name);

/**
 * Parse a config from key=value text.  Starts from the default
 * ExperimentConfig.  Unknown keys and malformed values (typos must
 * not silently change an experiment) come back as invalidArgument
 * with a "config line N:" prefix locating the offender.
 */
[[nodiscard]] Result<ExperimentConfig>
parseExperimentConfig(const std::string &text);

/**
 * Load a config file: notFound when unreadable, otherwise
 * parseExperimentConfig() of its contents.
 */
[[nodiscard]] Result<ExperimentConfig>
loadExperimentConfig(const std::string &path);

/**
 * Serialize a config to the same key=value text (only keys the
 * format covers; platform params are always the Exynos 5422 model).
 * parse(save(cfg)) reproduces cfg for those fields.
 */
std::string saveExperimentConfig(const ExperimentConfig &config);

/** Write saveExperimentConfig() output; unavailable on I/O failure. */
[[nodiscard]] Status writeExperimentConfig(const ExperimentConfig &config,
                                           const std::string &path);

} // namespace biglittle

#endif // BIGLITTLE_CORE_CONFIG_IO_HH
