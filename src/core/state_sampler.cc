#include "core/state_sampler.hh"

#include "base/logging.hh"

namespace biglittle
{

StateSampler::StateSampler(Simulation &sim_in,
                           AsymmetricPlatform &platform, Tick window)
    : sim(sim_in), plat(platform), windowTicks(window)
{
    BL_ASSERT(windowTicks > 0);
    for (const Core *core : plat.cores()) {
        if (core->type() == CoreType::big)
            ++nBig;
        else
            ++nLittle;
    }
    counts.assign((nBig + 1) * (nLittle + 1), 0);
    lastBusyTicks.assign(plat.coreCount(), 0);
}

std::size_t
StateSampler::cell(std::size_t big, std::size_t little) const
{
    BL_ASSERT(big <= nBig && little <= nLittle);
    return big * (nLittle + 1) + little;
}

void
StateSampler::start()
{
    plat.sync();
    for (const Core *core : plat.cores())
        lastBusyTicks[core->id()] = core->busyTicks();
    if (sampleTask == nullptr) {
        sampleTask = &sim.addPeriodic(
            windowTicks, [this](Tick now) { sampleWindow(now); },
            EventPriority::stats, "state-sampler");
    }
    sampleTask->start();
}

void
StateSampler::stop()
{
    if (sampleTask != nullptr)
        sampleTask->cancel();
}

void
StateSampler::sampleWindow(Tick)
{
    plat.sync();
    std::size_t big_active = 0;
    std::size_t little_active = 0;
    for (const Core *core : plat.cores()) {
        const Tick busy = core->busyTicks();
        const bool active = busy > lastBusyTicks[core->id()];
        lastBusyTicks[core->id()] = busy;
        if (!active)
            continue;
        if (core->type() == CoreType::big)
            ++big_active;
        else
            ++little_active;
    }
    ++counts[cell(big_active, little_active)];
    ++totalWindows;
}

std::uint64_t
StateSampler::windowsAt(std::size_t big, std::size_t little) const
{
    return counts[cell(big, little)];
}

double
StateSampler::fractionAt(std::size_t big, std::size_t little) const
{
    if (totalWindows == 0)
        return 0.0;
    return static_cast<double>(windowsAt(big, little)) /
           static_cast<double>(totalWindows);
}

} // namespace biglittle
