#include "base/status.hh"

namespace biglittle
{

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::ok:
        return "ok";
      case StatusCode::invalidArgument:
        return "invalid-argument";
      case StatusCode::failedPrecondition:
        return "failed-precondition";
      case StatusCode::notFound:
        return "not-found";
      case StatusCode::outOfRange:
        return "out-of-range";
      case StatusCode::unavailable:
        return "unavailable";
      case StatusCode::internal:
        return "internal";
    }
    return "unknown";
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(statusCode)) + ": " + msg;
}

} // namespace biglittle
