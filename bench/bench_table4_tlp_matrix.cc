/**
 * @file
 * Table IV: the per-app joint distribution of active big x little
 * core counts per 10 ms window, for all twelve apps.
 *
 * Expected shape (Section V-B): mass concentrated in the big=0 row
 * for most apps; when big cores are used at all, one big core
 * dominates (a single big core absorbs the burst); bbench is the
 * only app with weight spread into the 2-3 big rows.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "bench_util.hh"
#include "core/report.hh"

using namespace biglittle;

int
main(int argc, char **argv)
{
    ArgParser args("bench_table4_tlp_matrix",
                   "Table IV: TLP distributions by core type");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "big_cores", "little0", "little1",
                     "little2", "little3", "little4"});
    }

    const auto results = runApps(baselineConfig(), allApps());
    for (const AppRunResult &r : results) {
        printTlpMatrix(r, csv.get());
        std::puts("");
    }
    return 0;
}
