#include "core/experiment.hh"

#include <memory>

#include "base/logging.hh"
#include "governor/simple_governors.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "workload/behavior.hh"
#include "workload/microbench.hh"

namespace biglittle
{

const char *
governorKindName(GovernorKind kind)
{
    switch (kind) {
      case GovernorKind::interactive:
        return "interactive";
      case GovernorKind::performance:
        return "performance";
      case GovernorKind::powersave:
        return "powersave";
      case GovernorKind::ondemand:
        return "ondemand";
      case GovernorKind::conservative:
        return "conservative";
      case GovernorKind::schedutil:
        return "schedutil";
      case GovernorKind::userspace:
        return "userspace";
    }
    return "unknown";
}

double
AppRunResult::performanceValue() const
{
    if (metric == AppMetric::latency)
        return static_cast<double>(latency) /
               static_cast<double>(oneMs);
    return avgFps;
}

namespace
{

/** Everything a run needs, wired together with correct lifetimes. */
struct Rig
{
    Simulation sim;
    AsymmetricPlatform platform;
    HmpScheduler sched;
    PowerModel power;
    std::vector<std::unique_ptr<Governor>> governors;
    std::vector<std::unique_ptr<ThermalThrottle>> throttles;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<InvariantChecker> checker;

    explicit Rig(const ExperimentConfig &cfg)
        : platform(sim, cfg.platform),
          sched(sim, platform, cfg.sched), power(platform)
    {
        platform.applyCoreConfig(cfg.coreConfig);
        for (std::size_t i = 0; i < platform.clusterCount(); ++i) {
            Cluster &cl = platform.cluster(i);
            governors.push_back(makeGovernor(cfg, cl));
            if (cfg.thermalEnabled) {
                throttles.push_back(std::make_unique<ThermalThrottle>(
                    sim, cl, cfg.thermal));
            }
        }
        if (cfg.fault.enabled) {
            injector = std::make_unique<FaultInjector>(
                sim, platform, sched, cfg.fault);
            for (auto &throttle : throttles)
                injector->addThermal(throttle.get());
            checker = std::make_unique<InvariantChecker>(
                sim, platform, &sched, &power);
            checker->setNext(sched.observer());
            sched.setObserver(checker.get());
        }
    }

    std::unique_ptr<Governor>
    makeGovernor(const ExperimentConfig &cfg, Cluster &cl)
    {
        switch (cfg.governor) {
          case GovernorKind::interactive:
            return std::make_unique<InteractiveGovernor>(
                sim, cl, cfg.interactive);
          case GovernorKind::performance:
            return std::make_unique<PerformanceGovernor>(sim, cl);
          case GovernorKind::powersave:
            return std::make_unique<PowersaveGovernor>(sim, cl);
          case GovernorKind::ondemand:
            return std::make_unique<OndemandGovernor>(sim, cl);
          case GovernorKind::conservative:
            return std::make_unique<ConservativeGovernor>(sim, cl);
          case GovernorKind::schedutil:
            return std::make_unique<SchedutilGovernor>(sim, cl);
          case GovernorKind::userspace: {
            FreqKHz f = cl.type() == CoreType::little
                ? cfg.userspaceLittleFreq : cfg.userspaceBigFreq;
            if (f == 0)
                f = cl.freqDomain().minFreq();
            return std::make_unique<UserspaceGovernor>(sim, cl, f);
          }
        }
        panic("unhandled governor kind");
    }

    void
    startSystem()
    {
        for (auto &gov : governors)
            gov->start();
        for (auto &throttle : throttles)
            throttle->start();
        sched.start();
        if (checker != nullptr)
            checker->start();
        if (injector != nullptr)
            injector->start();
    }
};

} // namespace

Experiment::Experiment(ExperimentConfig config)
    : cfg(std::move(config))
{
}

AppRunResult
Experiment::runApp(const AppSpec &app)
{
    Rig rig(cfg);
    StateSampler sampler(rig.sim, rig.platform, cfg.sampleWindow);
    EfficiencyAnalyzer efficiency(rig.sim, rig.platform,
                                  cfg.sampleWindow);
    AppInstance instance(rig.sim, rig.sched, app);

    rig.startSystem();
    sampler.start();
    efficiency.start();
    const PowerSnapshot before = rig.power.snapshot();
    const Tick start = rig.sim.now();
    instance.start();

    const Tick cap = start +
        (app.metric == AppMetric::latency
             ? std::min(app.duration, cfg.maxSimTime)
             : app.duration);
    if (app.metric == AppMetric::latency) {
        while (!instance.done() && rig.sim.now() < cap)
            rig.sim.runFor(msToTicks(10));
    } else {
        rig.sim.runUntil(cap);
    }

    AppRunResult result;
    result.app = app.name;
    result.configLabel = cfg.label;
    result.metric = app.metric;
    result.simulatedTime = rig.sim.now() - start;
    result.completed =
        app.metric == AppMetric::latency ? instance.done() : true;
    if (app.metric == AppMetric::latency) {
        result.latency = instance.done() ? instance.latency()
                                         : result.simulatedTime;
        if (!instance.done())
            warn("app '%s' hit the simulation cap before finishing",
                 app.name.c_str());
    } else {
        result.avgFps = instance.frameStats().averageFps();
        result.minFps = instance.frameStats().minFps();
        result.frames = instance.frameStats().frames();
    }

    const PowerSnapshot after = rig.power.snapshot();
    result.energy = rig.power.energyBetween(before, after);
    result.avgPowerMw = result.energy.averagePowerMw();

    result.tlp = makeTlpReport(sampler);
    result.efficiency = efficiency.report();
    result.littleResidency =
        makeFreqResidency(rig.platform.littleCluster());
    result.bigResidency = makeFreqResidency(rig.platform.bigCluster());
    result.sched = rig.sched.stats();
    for (const auto &task : rig.sched.tasks()) {
        TaskSummary summary;
        summary.name = task->name();
        summary.instructionsRetired = task->instructionsRetired();
        summary.littleRuntime = task->runtimeOn(CoreType::little);
        summary.bigRuntime = task->runtimeOn(CoreType::big);
        summary.typeMigrations = task->typeMigrations();
        result.tasks.push_back(std::move(summary));
    }
    if (rig.injector != nullptr)
        result.faults = rig.injector->stats();
    if (rig.checker != nullptr) {
        (void)rig.checker->checkNow();
        result.invariantViolations = rig.checker->violationCount();
    }
    return result;
}

KernelRunResult
Experiment::runKernel(const SpecKernel &kernel, CoreType type,
                      FreqKHz freq)
{
    ExperimentConfig run_cfg = cfg;
    run_cfg.governor = GovernorKind::userspace;
    if (type == CoreType::little)
        run_cfg.userspaceLittleFreq = freq;
    else
        run_cfg.userspaceBigFreq = freq;

    Experiment sub(run_cfg);
    Rig rig(sub.cfg);

    // Pin to the first online core of the requested cluster.
    Cluster &cluster = rig.platform.clusterOf(type);
    Core *target = nullptr;
    for (std::size_t i = 0; i < cluster.coreCount(); ++i) {
        if (cluster.core(i).online()) {
            target = &cluster.core(i);
            break;
        }
    }
    if (target == nullptr)
        fatal("no online %s core for kernel '%s'", coreTypeName(type),
              kernel.name.c_str());

    Task &task = rig.sched.createTask(kernel.name, kernel.workClass,
                                      target->id());
    bool finished = false;
    ContinuousBehavior behavior(
        rig.sim, task, Rng(7), kernel.instructions,
        [&finished](Tick) { finished = true; });

    rig.startSystem();
    const PowerSnapshot before = rig.power.snapshot();
    const Tick start = rig.sim.now();
    behavior.start();

    const Tick cap = start + cfg.maxSimTime;
    while (!finished && rig.sim.now() < cap)
        rig.sim.runFor(msToTicks(50));
    if (!finished)
        fatal("kernel '%s' did not finish within the simulation cap",
              kernel.name.c_str());

    KernelRunResult result;
    result.kernel = kernel.name;
    result.coreType = type;
    result.freq = freq;
    result.runtime = behavior.completionTick() - start;
    const PowerSnapshot after = rig.power.snapshot();
    result.energy = rig.power.energyBetween(before, after);
    // Average power over the kernel's own runtime (the run loop may
    // overshoot completion by part of a slice).
    result.avgPowerMw = result.energy.elapsed > 0
        ? result.energy.totalMj() / ticksToSeconds(result.energy.elapsed)
        : 0.0;
    return result;
}

MicrobenchResult
Experiment::runMicrobench(CoreType type, FreqKHz freq,
                          double utilization, Tick duration)
{
    ExperimentConfig run_cfg = cfg;
    run_cfg.governor = GovernorKind::userspace;
    if (type == CoreType::little)
        run_cfg.userspaceLittleFreq = freq;
    else
        run_cfg.userspaceBigFreq = freq;

    Experiment sub(run_cfg);
    Rig rig(sub.cfg);

    Cluster &cluster = rig.platform.clusterOf(type);
    Core *target = nullptr;
    for (std::size_t i = 0; i < cluster.coreCount(); ++i) {
        if (cluster.core(i).online()) {
            target = &cluster.core(i);
            break;
        }
    }
    if (target == nullptr)
        fatal("no online %s core for the microbenchmark",
              coreTypeName(type));

    UtilizationMicrobench bench(rig.sim, rig.sched, target->id(),
                                utilization);
    rig.startSystem();
    const PowerSnapshot before = rig.power.snapshot();
    const Tick start = rig.sim.now();
    const Tick busy_before = target->busyTicks();
    bench.start();
    rig.sim.runUntil(start + duration);

    rig.platform.sync();
    MicrobenchResult result;
    result.coreType = type;
    result.freq = freq;
    result.targetUtilization = utilization;
    result.achievedUtilization =
        static_cast<double>(target->busyTicks() - busy_before) /
        static_cast<double>(duration);
    const PowerSnapshot after = rig.power.snapshot();
    result.avgPowerMw =
        rig.power.energyBetween(before, after).averagePowerMw();
    return result;
}

} // namespace biglittle
