#include "sim/eventq.hh"

#include <vector>

#include "base/logging.hh"

namespace biglittle
{

EventQueue::~EventQueue()
{
    // Detach any events still pending so their destructors do not
    // dereference a dead queue, then let self-owning events free
    // themselves (orphaned() may `delete this`, so iterate a copy).
    std::vector<Event *> pending(queue.begin(), queue.end());
    queue.clear();
    for (Event *e : pending)
        e->queue = nullptr;
    for (Event *e : pending)
        e->orphaned();
}

void
EventQueue::schedule(Event &event, Tick when)
{
    BL_ASSERT(event.queue == nullptr);
    if (when < curTick)
        panic("scheduling event '%s' at %llu, before current tick %llu",
              event.name().c_str(),
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(curTick));
    event.whenTick = when;
    event.sequence = nextSequence++;
    event.queue = this;
    const bool inserted = queue.insert(&event).second;
    BL_ASSERT(inserted);
}

void
EventQueue::deschedule(Event &event)
{
    BL_ASSERT(event.queue == this);
    const std::size_t erased = queue.erase(&event);
    BL_ASSERT(erased == 1);
    event.queue = nullptr;
}

void
EventQueue::reschedule(Event &event, Tick when)
{
    if (event.queue != nullptr)
        deschedule(event);
    schedule(event, when);
}

Tick
EventQueue::nextTick() const
{
    return queue.empty() ? maxTick : (*queue.begin())->when();
}

bool
EventQueue::serviceOne()
{
    if (queue.empty())
        return false;
    Event *event = *queue.begin();
    queue.erase(queue.begin());
    event->queue = nullptr;
    BL_ASSERT(event->whenTick >= curTick);
    curTick = event->whenTick;
    ++serviced;
    event->process();
    return true;
}

void
EventQueue::runUntil(Tick until)
{
    while (!queue.empty() && (*queue.begin())->when() <= until)
        serviceOne();
    if (curTick < until)
        curTick = until;
}

} // namespace biglittle
