/**
 * @file
 * absema: the semantic rule pass.  Reasoning over the entity model
 * (model.hh) instead of single lines, it proves the cross-declaration
 * invariants ablint's lexical rules cannot see:
 *
 *  - serialize-coverage  every plain-value data member of a class in
 *                        serialized_state.txt is referenced by both
 *                        the serialize and deserialize bodies, and
 *                        the two emit the same wire-op sequence;
 *  - schema-drift        the committed per-class field digests
 *                        (state_schema.txt) match the code, and field
 *                        changes come with a checkpointVersion bump;
 *  - fatal-reach         no un-excused fatal() is reachable through
 *                        the call graph from the post-init entry
 *                        points Experiment::runApp / Supervisor::runApp;
 *  - rng-stream          explicit Rng seeds trace to
 *                        deriveStreamSeed()/namedStream()/fork();
 *  - layer-cycle         the #include graph respects the src/ layer
 *                        ranks and is acyclic.
 *
 * Plus stale-allow, the mirror of stale-baseline for inline
 * directives, fed by the AllowUse ledger both passes maintain.
 */

#include "model.hh"

#include "sink.hh"

#include <algorithm>
#include <deque>
#include <functional>
#include <iomanip>
#include <sstream>
#include <tuple>

namespace biglittle::ablint
{

namespace
{

using detail::Sink;
using detail::isIdent;
using detail::isPunct;
using detail::lineAllows;

std::string
hex16(std::uint64_t v)
{
    std::ostringstream out;
    out << std::hex << std::setw(16) << std::setfill('0') << v;
    return out.str();
}

/* ------------------------------------------------------------------ */
/* serialize-coverage                                                  */
/* ------------------------------------------------------------------ */

/**
 * Members outside the wire contract: statics/constexpr, pointers and
 * references (wiring, re-established on restore), const members
 * (construction-time config), std::function callbacks, and *Params /
 * *Spec config structs (restore rebuilds the component tree from the
 * same experiment config before deserializing state into it).
 */
bool
memberExempt(const Member &mem)
{
    if (mem.isStatic)
        return true;
    if (mem.type.find('*') != std::string::npos ||
        mem.type.find('&') != std::string::npos)
        return true;
    if (mem.type.find("function") != std::string::npos)
        return true;
    std::istringstream words(mem.type);
    std::string w;
    while (words >> w) {
        if (w == "const")
            return true;
        const auto ends = [&w](const char *suffix) {
            const std::string s(suffix);
            return w.size() >= s.size() &&
                   w.compare(w.size() - s.size(), s.size(), s) == 0;
        };
        if (ends("Params") || ends("Spec"))
            return true;
    }
    return false;
}

/** The serialize/deserialize flavor pairs a class may implement. */
struct Flavor
{
    const char *put;
    const char *get;
};

constexpr Flavor flavors[] = {
    {"serialize", "deserialize"},
    {"serializeState", "deserializeState"},
    {"serializePolicy", "deserializePolicy"},
};

const FunctionDef *
classFn(const Model &m, const ClassInfo &cls, const std::string &name)
{
    const std::string want = cls.qualName + "::" + name;
    const auto it = m.functionsByName.find(name);
    if (it == m.functionsByName.end())
        return nullptr;
    for (const std::size_t idx : it->second) {
        if (m.functions[idx].qualName == want)
            return &m.functions[idx];
    }
    return nullptr;
}

bool
bodyReferences(const FunctionDef &fn, const std::string &name)
{
    const auto &toks = fn.file->tokens;
    for (std::size_t i = fn.bodyBegin;
         i < fn.bodyEnd && i < toks.size(); ++i) {
        if (toks[i].kind == TokKind::identifier &&
            toks[i].text == name)
            return true;
    }
    return false;
}

/**
 * Canonical wire-op name for a callee on the write (@p put) or read
 * side.  getCount() pairs with putU64() by the Serializer's own
 * contract; a nested serialize/deserialize (any flavor) is one "sub"
 * op.  Empty string: not a wire op.
 */
std::string
wireOp(const std::string &callee, bool put)
{
    static const std::map<std::string, std::string> putMap = {
        {"putU64", "u64"},   {"putU32", "u32"},
        {"putU8", "u8"},     {"putI64", "i64"},
        {"putDouble", "f64"}, {"putString", "str"},
        {"putBool", "bool"}, {"putBytes", "bytes"},
        {"serialize", "sub"}, {"serializeState", "sub"},
        {"serializePolicy", "sub"},
    };
    static const std::map<std::string, std::string> getMap = {
        {"getU64", "u64"},   {"getCount", "u64"},
        {"getU32", "u32"},   {"getU8", "u8"},
        {"getI64", "i64"},   {"getDouble", "f64"},
        {"getString", "str"}, {"getBool", "bool"},
        {"getBytes", "bytes"},
        {"deserialize", "sub"}, {"deserializeState", "sub"},
        {"deserializePolicy", "sub"},
    };
    const auto &table = put ? putMap : getMap;
    const auto it = table.find(callee);
    return it == table.end() ? std::string() : it->second;
}

struct WireSite
{
    std::string op;
    std::string callee;
    int line = 0;
};

std::vector<WireSite>
wireOps(const FunctionDef &fn, bool put)
{
    std::vector<WireSite> ops;
    const auto &toks = fn.file->tokens;
    for (std::size_t i = fn.bodyBegin;
         i + 1 < fn.bodyEnd && i + 1 < toks.size(); ++i) {
        if (toks[i].kind != TokKind::identifier ||
            !isPunct(toks[i + 1], '('))
            continue;
        std::string op = wireOp(toks[i].text, put);
        if (!op.empty())
            ops.push_back({std::move(op), toks[i].text,
                           toks[i].line});
    }
    return ops;
}

void
serializeCoverage(const Model &m,
                  const std::vector<detail::RegistryEntry> &reg,
                  Sink &sink)
{
    for (const auto &entry : reg) {
        const ClassInfo *cls = m.findClass(entry.className);
        if (cls == nullptr || cls->file->isTest)
            continue;
        std::vector<std::pair<const FunctionDef *,
                              const FunctionDef *>> pairs;
        for (const Flavor &fl : flavors) {
            const FunctionDef *put = classFn(m, *cls, fl.put);
            const FunctionDef *get = classFn(m, *cls, fl.get);
            if (put != nullptr && get != nullptr)
                pairs.push_back({put, get});
        }
        if (pairs.empty())
            continue;

        // Member coverage: each plain-value member must be touched
        // by some write body and some read body (base/derived
        // flavors split the state between them).
        for (const Member &mem : cls->members) {
            if (memberExempt(mem))
                continue;
            bool written = false;
            bool read = false;
            for (const auto &[put, get] : pairs) {
                written = written || bodyReferences(*put, mem.name);
                read = read || bodyReferences(*get, mem.name);
            }
            if (written && read)
                continue;
            std::string msg = "member '" + mem.name + "' of '" +
                              cls->qualName + "' is ";
            if (written)
                msg += "written by " +
                       std::string(pairs[0].first->name) +
                       "() but never read back on restore";
            else if (read)
                msg += "read on restore but never written by " +
                       std::string(pairs[0].first->name) + "()";
            else
                msg += "not referenced by its serialize/deserialize "
                       "pair";
            msg += "; serialize it (and bump checkpointVersion) or "
                   "justify with an inline allow";
            sink.add(*cls->file, mem.line, "serialize-coverage",
                     msg);
        }

        // Wire symmetry: the ordered op sequence emitted by the
        // write body must equal the one consumed by the read body.
        for (const auto &[put, get] : pairs) {
            const auto wr = wireOps(*put, true);
            const auto rd = wireOps(*get, false);
            const std::size_t common =
                std::min(wr.size(), rd.size());
            std::size_t k = 0;
            while (k < common && wr[k].op == rd[k].op)
                ++k;
            if (k == wr.size() && k == rd.size())
                continue;
            std::ostringstream msg;
            msg << "wire-format mismatch between "
                << cls->qualName << "::" << put->name << " and "
                << cls->qualName << "::" << get->name << ": ";
            if (k < common) {
                msg << "op " << (k + 1) << " writes '"
                    << wr[k].callee << "' (line " << wr[k].line
                    << ") but reads '" << rd[k].callee
                    << "' (line " << rd[k].line << ")";
            } else if (wr.size() > rd.size()) {
                msg << "write side emits " << wr.size()
                    << " wire ops, read side consumes "
                    << rd.size() << " (first unread: '"
                    << wr[k].callee << "' at line " << wr[k].line
                    << ")";
            } else {
                msg << "read side consumes " << rd.size()
                    << " wire ops, write side emits " << wr.size()
                    << " (first unmatched read: '" << rd[k].callee
                    << "' at line " << rd[k].line << ")";
            }
            sink.add(*put->file, put->line, "serialize-coverage",
                     msg.str());
        }
    }
}

/* ------------------------------------------------------------------ */
/* schema-drift                                                        */
/* ------------------------------------------------------------------ */

constexpr const char *schemaPathName =
    "tools/ablint/state_schema.txt";

struct Manifest
{
    bool present = false;
    bool hasVersion = false;
    std::uint64_t version = 0;
    int versionLine = 0;

    /** class name -> (hex digest, manifest line). */
    std::map<std::string, std::pair<std::string, int>> digests;
};

Manifest
parseManifest(const std::string &text)
{
    Manifest man;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream fields(line);
        std::string a, b;
        if (!(fields >> a))
            continue;
        man.present = true;
        if (a == "version") {
            if (fields >> b) {
                man.hasVersion = true;
                man.version = std::stoull(b);
                man.versionLine = lineNo;
            }
            continue;
        }
        if (fields >> b)
            man.digests[a] = {b, lineNo};
    }
    return man;
}

/**
 * The field-schema digest of one registered class: fnv1a64 over the
 * declaration-ordered name:type lines of its wire members (the same
 * set serialize-coverage polices: plain-value members without an
 * inline serialize-coverage allow).
 */
std::uint64_t
classDigest(const ClassInfo &cls)
{
    std::string text = cls.qualName + "\n";
    for (const Member &mem : cls.members) {
        if (memberExempt(mem))
            continue;
        if (lineAllows(*cls.file, mem.line, "serialize-coverage"))
            continue;
        text += mem.name + ":" + mem.type + "\n";
    }
    return fnv1a64(text);
}

/** Digests of every registry class the model can see. */
std::map<std::string, std::pair<std::uint64_t, const ClassInfo *>>
computeDigests(const Model &m,
               const std::vector<detail::RegistryEntry> &reg)
{
    std::map<std::string, std::pair<std::uint64_t, const ClassInfo *>>
        out;
    for (const auto &entry : reg) {
        const ClassInfo *cls = m.findClass(entry.className);
        if (cls == nullptr || cls->file->isTest)
            continue;
        out[entry.className] = {classDigest(*cls), cls};
    }
    return out;
}

/** checkpointVersion from src/snapshot/checkpoint.hh, or -1. */
long long
findCheckpointVersion(const ScanInput &in)
{
    for (const LexedFile &f : in.files) {
        if (f.path.find("snapshot/checkpoint.hh") ==
            std::string::npos)
            continue;
        const auto &toks = f.tokens;
        for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
            if (isIdent(toks[i], "checkpointVersion") &&
                isPunct(toks[i + 1], '=') &&
                toks[i + 2].kind == TokKind::number)
                return std::stoll(toks[i + 2].text);
        }
    }
    return -1;
}

void
schemaDrift(const ScanInput &in, const Model &m,
            const std::vector<detail::RegistryEntry> &reg,
            Sink &sink, std::vector<Finding> &out)
{
    const auto digests = computeDigests(m, reg);
    if (digests.empty())
        return; // nothing serialized in this input
    const Manifest man = parseManifest(in.schemaText);
    if (!man.present) {
        out.push_back({schemaPathName, 1, "schema-drift",
                       "missing or empty state_schema.txt; generate "
                       "it with `ablint --write-schema`"});
        return;
    }
    const long long version = findCheckpointVersion(in);
    if (version >= 0 && man.hasVersion &&
        man.version != static_cast<std::uint64_t>(version)) {
        std::ostringstream msg;
        msg << "manifest was written at checkpointVersion "
            << man.version << " but src/snapshot/checkpoint.hh says "
            << version << "; rerun `ablint --write-schema`";
        out.push_back({schemaPathName, man.versionLine,
                       "schema-drift", msg.str()});
        return; // per-class diffs would only repeat the story
    }
    for (const auto &[name, entry] : digests) {
        const auto &[digest, cls] = entry;
        const auto it = man.digests.find(name);
        if (it == man.digests.end()) {
            sink.add(*cls->file, cls->line, "schema-drift",
                     "serialized class '" + name +
                         "' has no digest in state_schema.txt; run "
                         "`ablint --write-schema`");
            continue;
        }
        if (it->second.first != hex16(digest)) {
            sink.add(*cls->file, cls->line, "schema-drift",
                     "field schema of '" + name +
                         "' changed (digest " + hex16(digest) +
                         ", manifest has " + it->second.first +
                         ") without a checkpointVersion bump; bump "
                         "checkpointVersion in "
                         "src/snapshot/checkpoint.hh, then run "
                         "`ablint --write-schema`");
        }
    }
    for (const auto &[name, entry] : man.digests) {
        if (digests.count(name) == 0) {
            out.push_back(
                {schemaPathName, entry.second, "schema-drift",
                 "stale manifest entry '" + name +
                     "' (class gone or unregistered); run `ablint "
                     "--write-schema`"});
        }
    }
}

/* ------------------------------------------------------------------ */
/* fatal-reach                                                         */
/* ------------------------------------------------------------------ */

void
fatalReach(const Model &m, Sink &sink)
{
    static const char *const entryPoints[] = {
        "Experiment::runApp",
        "Supervisor::runApp",
    };
    std::deque<std::size_t> queue;
    std::vector<std::size_t> parent(m.functions.size(),
                                    static_cast<std::size_t>(-1));
    std::vector<char> visited(m.functions.size(), 0);
    for (std::size_t i = 0; i < m.functions.size(); ++i) {
        for (const char *entry : entryPoints) {
            if (m.functions[i].qualName == entry) {
                visited[i] = 1;
                queue.push_back(i);
            }
        }
    }
    if (queue.empty())
        return;
    while (!queue.empty()) {
        const std::size_t at = queue.front();
        queue.pop_front();
        for (const std::string &callee : m.functions[at].calls) {
            const auto it = m.functionsByName.find(callee);
            if (it == m.functionsByName.end())
                continue;
            for (const std::size_t next : it->second) {
                if (visited[next] ||
                    m.functions[next].file->isTest)
                    continue;
                visited[next] = 1;
                parent[next] = at;
                queue.push_back(next);
            }
        }
    }
    for (std::size_t i = 0; i < m.functions.size(); ++i) {
        if (!visited[i])
            continue;
        const FunctionDef &fn = m.functions[i];
        if (fn.file->isTest ||
            detail::fatalAllowlisted(fn.file->path))
            continue;
        const auto &toks = fn.file->tokens;
        for (std::size_t t = fn.bodyBegin;
             t + 1 < fn.bodyEnd && t + 1 < toks.size(); ++t) {
            if (!isIdent(toks[t], "fatal") ||
                !isPunct(toks[t + 1], '('))
                continue;
            // A site already justified for the direct-call rule
            // (post-init-fatal) is justified for reachability too.
            if (lineAllows(*fn.file, toks[t].line,
                           "post-init-fatal"))
                continue;
            std::vector<std::string> chain;
            for (std::size_t c = i;
                 c != static_cast<std::size_t>(-1); c = parent[c])
                chain.push_back(m.functions[c].qualName);
            std::string path;
            for (auto it = chain.rbegin(); it != chain.rend();
                 ++it) {
                if (!path.empty())
                    path += " -> ";
                path += *it;
            }
            sink.add(*fn.file, toks[t].line, "fatal-reach",
                     "fatal() is reachable from a post-init entry "
                     "point (" + path + "); return a Status / rely "
                     "on checkpoint rollback instead, or justify "
                     "with an inline allow");
        }
    }
}

/* ------------------------------------------------------------------ */
/* rng-stream                                                          */
/* ------------------------------------------------------------------ */

bool
blessedSeedIdent(const Token &t)
{
    return t.kind == TokKind::identifier &&
           (t.text == "deriveStreamSeed" ||
            t.text == "namedStream" || t.text == "fork");
}

/**
 * Does @p name get assigned (`name = ...;`) from a blessed seed
 * derivation somewhere in @p f?  Single-file, flow-insensitive - the
 * rule's documented approximation.
 */
bool
identTracesToBlessed(const LexedFile &f, const std::string &name)
{
    const auto &toks = f.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], name.c_str()) ||
            !isPunct(toks[i + 1], '='))
            continue;
        if (i + 2 < toks.size() && isPunct(toks[i + 2], '='))
            continue; // ==
        for (std::size_t j = i + 2;
             j < toks.size() && !isPunct(toks[j], ';'); ++j) {
            if (blessedSeedIdent(toks[j]))
                return true;
        }
    }
    return false;
}

void
rngStream(const ScanInput &in, Sink &sink)
{
    for (const LexedFile &f : in.files) {
        if (f.isTest ||
            f.path.find("base/random.") != std::string::npos)
            continue;
        const auto &toks = f.tokens;
        const std::size_t n = toks.size();
        for (std::size_t i = 0; i < n; ++i) {
            if (!isIdent(toks[i], "Rng"))
                continue;
            if (i > 0 && (isIdent(toks[i - 1], "class") ||
                          isIdent(toks[i - 1], "struct")))
                continue;
            // `biglittle::Rng` qualification, not a ternary ':'.
            if (i > 1 && isPunct(toks[i - 1], ':') &&
                isPunct(toks[i - 2], ':'))
                continue;
            if (i + 1 < n && isPunct(toks[i + 1], ':'))
                continue; // Rng::something
            // `Rng(args)` (temporary) or `Rng name(args)` /
            // `Rng name{args}` (declaration with initializer).
            std::size_t open = static_cast<std::size_t>(-1);
            if (i + 1 < n && (isPunct(toks[i + 1], '(') ||
                              isPunct(toks[i + 1], '{')))
                open = i + 1;
            else if (i + 2 < n &&
                     toks[i + 1].kind == TokKind::identifier &&
                     (isPunct(toks[i + 2], '(') ||
                      isPunct(toks[i + 2], '{')))
                open = i + 2;
            if (open == static_cast<std::size_t>(-1))
                continue;
            const char oc = toks[open].text[0];
            const char cc = oc == '(' ? ')' : '}';
            std::vector<std::size_t> args;
            int depth = 0;
            std::size_t j = open;
            for (; j < n; ++j) {
                if (isPunct(toks[j], oc)) {
                    ++depth;
                } else if (isPunct(toks[j], cc)) {
                    if (--depth == 0)
                        break;
                } else if (depth > 0) {
                    args.push_back(j);
                }
            }
            if (args.empty())
                continue; // default-constructed: no seed chosen
            bool blessed = false;
            for (const std::size_t a : args)
                blessed = blessed || blessedSeedIdent(toks[a]);
            if (!blessed && args.size() == 1 &&
                toks[args[0]].kind == TokKind::identifier)
                blessed = identTracesToBlessed(
                    f, toks[args[0]].text);
            if (!blessed) {
                sink.add(f, toks[i].line, "rng-stream",
                         "Rng seeded from an expression not derived "
                         "via deriveStreamSeed()/namedStream()/"
                         "fork(); ad-hoc seeds fork the determinism "
                         "contract (docs/DETERMINISM.md)");
            }
        }
    }
}

/* ------------------------------------------------------------------ */
/* layer-cycle                                                         */
/* ------------------------------------------------------------------ */

/** Layer rank of a src/ directory; -1 when unranked. */
int
layerRank(const std::string &dir)
{
    static const std::map<std::string, int> ranks = {
        {"base", 0},     {"sim", 10},      {"snapshot", 20},
        {"platform", 20}, {"sched", 30},    {"governor", 30},
        {"trace", 40},   {"workload", 40}, {"fault", 40},
        {"core", 50},    {"fuzz", 60},     {"supervise", 60},
    };
    const auto it = ranks.find(dir);
    return it == ranks.end() ? -1 : it->second;
}

/** "src/sched/hmp.hh" -> "sched"; "" when not a src/ subdir path. */
std::string
srcDirOf(const std::string &path)
{
    const std::string prefix = "src/";
    const auto at = path.rfind(prefix, 0) == 0
                        ? prefix.size()
                        : std::string::npos;
    if (at == std::string::npos)
        return "";
    const auto slash = path.find('/', at);
    if (slash == std::string::npos)
        return "";
    return path.substr(at, slash - at);
}

void
layerCycle(const ScanInput &in, const Model &m, Sink &sink)
{
    // Back/cross-edges against the layer ranks.
    for (const IncludeEdge &e : m.includes) {
        if (e.file->isTest)
            continue;
        const std::string from = srcDirOf(e.file->path);
        const auto slash = e.target.find('/');
        if (slash == std::string::npos)
            continue;
        const std::string to = e.target.substr(0, slash);
        const int fromRank = layerRank(from);
        const int toRank = layerRank(to);
        if (fromRank < 0 || toRank < 0 || from == to ||
            toRank < fromRank)
            continue;
        std::ostringstream msg;
        msg << "include of \"" << e.target << "\" (layer '" << to
            << "', rank " << toRank << ") from layer '" << from
            << "' (rank " << fromRank
            << ") is a layering back-edge; the order is base < sim "
               "< {snapshot,platform} < {sched,governor} < "
               "{trace,workload,fault} < core < {fuzz,supervise} "
               "(docs/STATIC_ANALYSIS.md)";
        sink.add(*e.file, e.line, "layer-cycle", msg.str());
    }

    // File-level include cycles (catches same-layer loops the rank
    // check cannot).
    std::map<std::string, std::size_t> byPath;
    for (std::size_t i = 0; i < in.files.size(); ++i) {
        if (!in.files[i].isTest)
            byPath[in.files[i].path] = i;
    }
    struct Edge
    {
        std::size_t to;
        int line;
        std::string target;
    };
    std::vector<std::vector<Edge>> adj(in.files.size());
    for (const IncludeEdge &e : m.includes) {
        if (e.file->isTest)
            continue;
        const auto self = byPath.find(e.file->path);
        const auto tgt = byPath.find("src/" + e.target);
        if (self == byPath.end() || tgt == byPath.end())
            continue;
        adj[self->second].push_back(
            {tgt->second, e.line, e.target});
    }
    std::vector<char> color(in.files.size(), 0); // 0 w, 1 g, 2 b
    std::vector<std::size_t> stack;
    // Iterative DFS carrying the gray stack for path reconstruction.
    std::function<void(std::size_t)> dfs = [&](std::size_t at) {
        color[at] = 1;
        stack.push_back(at);
        for (const Edge &e : adj[at]) {
            if (color[e.to] == 1) {
                std::string path;
                bool seen = false;
                for (const std::size_t s : stack) {
                    if (s == e.to)
                        seen = true;
                    if (!seen)
                        continue;
                    if (!path.empty())
                        path += " -> ";
                    path += in.files[s].path;
                }
                path += " -> " + in.files[e.to].path;
                sink.add(in.files[at], e.line, "layer-cycle",
                         "include cycle: " + path);
            } else if (color[e.to] == 0) {
                dfs(e.to);
            }
        }
        stack.pop_back();
        color[at] = 2;
    };
    for (std::size_t i = 0; i < in.files.size(); ++i) {
        if (color[i] == 0 && !in.files[i].isTest)
            dfs(i);
    }
}

} // namespace

/* ------------------------------------------------------------------ */
/* pass entry points                                                   */
/* ------------------------------------------------------------------ */

std::vector<Finding>
runSemaRules(const ScanInput &in, AllowUse *uses,
             RuleProfile *profile)
{
    std::vector<Finding> out;
    Sink sink{out, uses};
    Model m;
    detail::timeRule(profile, "sema-model-build",
                     [&] { m = buildModel(in.files); });
    const auto reg = detail::parseRegistry(in.registryText);
    detail::timeRule(profile, "serialize-coverage",
                     [&] { serializeCoverage(m, reg, sink); });
    detail::timeRule(profile, "schema-drift",
                     [&] { schemaDrift(in, m, reg, sink, out); });
    detail::timeRule(profile, "fatal-reach",
                     [&] { fatalReach(m, sink); });
    detail::timeRule(profile, "rng-stream",
                     [&] { rngStream(in, sink); });
    detail::timeRule(profile, "layer-cycle",
                     [&] { layerCycle(in, m, sink); });
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule,
                                  a.message) <
                         std::tie(b.file, b.line, b.rule,
                                  b.message);
              });
    return out;
}

std::vector<Finding>
staleAllowFindings(const ScanInput &in, const AllowUse &uses)
{
    std::vector<Finding> out;
    const auto &known = ruleNames();
    for (const LexedFile &f : in.files) {
        for (const AllowDirective &d : f.directives) {
            for (const std::string &rule : d.rules) {
                if (std::find(known.begin(), known.end(), rule) ==
                    known.end()) {
                    out.push_back(
                        {f.path, d.line, "stale-allow",
                         "unknown rule '" + rule +
                             "' in ablint:allow directive"});
                    continue;
                }
                bool used = false;
                for (const int l : {d.line, d.line + 1}) {
                    const auto it = uses.find({f.path, l});
                    used = used ||
                           (it != uses.end() &&
                            it->second.count(rule) > 0);
                }
                if (!used) {
                    out.push_back(
                        {f.path, d.line, "stale-allow",
                         "ablint:allow(" + rule +
                             ") suppresses nothing; remove the "
                             "stale directive"});
                }
            }
        }
    }
    return out;
}

std::vector<Finding>
runAllRules(const ScanInput &in, RuleProfile *profile)
{
    AllowUse uses;
    std::vector<Finding> out = runRules(in, &uses, profile);
    const auto sema = runSemaRules(in, &uses, profile);
    out.insert(out.end(), sema.begin(), sema.end());
    const auto flow = runFlowRules(in, &uses, profile);
    // taint-bound supersedes the one-file lexical deser-bound: when
    // both fire on the same file:line, keep the interprocedural
    // finding (it names the source *and* the sink) and drop the
    // lexical duplicate.
    std::set<std::pair<std::string, int>> taintLines;
    for (const Finding &f : flow) {
        if (f.rule == "taint-bound")
            taintLines.insert({f.file, f.line});
    }
    out.erase(std::remove_if(
                  out.begin(), out.end(),
                  [&](const Finding &f) {
                      return f.rule == "deser-bound" &&
                             taintLines.count({f.file, f.line}) > 0;
                  }),
              out.end());
    out.insert(out.end(), flow.begin(), flow.end());
    const auto stale = staleAllowFindings(in, uses);
    out.insert(out.end(), stale.begin(), stale.end());
    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule,
                                  a.message) <
                         std::tie(b.file, b.line, b.rule,
                                  b.message);
              });
    return out;
}

std::string
renderSchemaManifest(const ScanInput &in)
{
    const Model m = buildModel(in.files);
    const auto reg = detail::parseRegistry(in.registryText);
    const auto digests = computeDigests(m, reg);
    const long long version = findCheckpointVersion(in);
    std::ostringstream out;
    out << "# ablint state-schema manifest - regenerate with: "
           "ablint --write-schema\n"
        << "# One fnv1a64 digest per serialized class, over its "
           "declaration-ordered\n"
        << "# name:type wire-field list.  A digest change without a "
           "checkpointVersion\n"
        << "# bump is a schema-drift finding "
           "(docs/STATIC_ANALYSIS.md).\n"
        << "version " << (version < 0 ? 0 : version) << "\n";
    for (const auto &[name, entry] : digests)
        out << name << " " << hex16(entry.first) << "\n";
    return out.str();
}

std::string
schemaRegenBlocked(const ScanInput &in)
{
    const Manifest man = parseManifest(in.schemaText);
    if (!man.present || !man.hasVersion)
        return ""; // first generation is always fine
    const long long version = findCheckpointVersion(in);
    if (version < 0 ||
        man.version != static_cast<std::uint64_t>(version))
        return ""; // version was bumped: regen is the point
    const Model m = buildModel(in.files);
    const auto reg = detail::parseRegistry(in.registryText);
    const auto digests = computeDigests(m, reg);
    std::string changed;
    for (const auto &[name, entry] : digests) {
        const auto it = man.digests.find(name);
        if (it != man.digests.end() &&
            it->second.first != hex16(entry.first)) {
            if (!changed.empty())
                changed += ", ";
            changed += name;
        }
    }
    if (changed.empty())
        return "";
    return "state_schema.txt: field digests changed for {" +
           changed + "} but checkpointVersion is still " +
           std::to_string(version) +
           "; bump checkpointVersion in src/snapshot/checkpoint.hh "
           "before regenerating";
}

} // namespace biglittle::ablint
