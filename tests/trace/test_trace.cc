/**
 * @file
 * Tests for the trace recorder: event capture from the scheduler
 * and frequency domains, buffer bounding, CSV export, and the text
 * timeline.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "governor/interactive.hh"
#include "platform/platform.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "trace/trace.hh"
#include "workload/apps.hh"
#include "workload/behavior.hh"

using namespace biglittle;

namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    HmpScheduler sched{sim, plat, baselineSchedParams()};
    TraceRecorder trace{sim};

    void
    SetUp() override
    {
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        plat.bigCluster().freqDomain().setFreqNow(1900000);
        trace.attachScheduler(sched);
        sched.start();
    }

    static WorkClass
    pureCompute()
    {
        return WorkClass{0.8, 0.0, 64.0};
    }
};

} // namespace

TEST_F(TraceTest, RecordsWakeupAndSleep)
{
    Task &t = sched.createTask("worker", pureCompute());
    t.submitWork(1e6);
    sim.runFor(msToTicks(50));
    ASSERT_GE(trace.events().size(), 2u);
    EXPECT_EQ(trace.countOf(TraceKind::wakeup), 1u);
    EXPECT_EQ(trace.countOf(TraceKind::sleep), 1u);
    const TraceEvent &wake = trace.events().front();
    EXPECT_EQ(wake.kind, TraceKind::wakeup);
    EXPECT_EQ(wake.taskName, "worker");
    EXPECT_NE(wake.core, invalidCoreId);
}

TEST_F(TraceTest, RecordsUpMigrationWithLoad)
{
    Task &t = sched.createTask("hog", pureCompute());
    t.submitWork(1e12);
    sim.runFor(msToTicks(200));
    ASSERT_EQ(trace.countOf(TraceKind::migrateUp), 1u);
    for (const TraceEvent &e : trace.events()) {
        if (e.kind != TraceKind::migrateUp)
            continue;
        EXPECT_EQ(e.taskName, "hog");
        EXPECT_LT(e.fromCore, 4u); // from a little core
        EXPECT_GE(e.core, 4u); // to a big core
        EXPECT_GT(e.load, 700.0);
    }
}

TEST_F(TraceTest, RecordsFreqChanges)
{
    trace.attachCluster(plat.littleCluster());
    plat.littleCluster().freqDomain().setFreqNow(500000);
    plat.littleCluster().freqDomain().setFreqNow(1000000);
    EXPECT_EQ(trace.countOf(TraceKind::freqChange), 2u);
    const TraceEvent &last = trace.events().back();
    EXPECT_EQ(last.freq, 1000000u);
    EXPECT_EQ(last.taskName, "a7");
}

TEST_F(TraceTest, BufferIsBounded)
{
    TraceRecorder small(sim, 8);
    small.attachScheduler(sched);
    Task &t = sched.createTask("t", pureCompute());
    for (int i = 0; i < 20; ++i) {
        t.submitWork(1e4);
        sim.runFor(msToTicks(2));
    }
    EXPECT_LE(small.events().size(), 8u);
    EXPECT_GT(small.dropped(), 0u);
    EXPECT_EQ(small.observed(),
              small.dropped() + small.events().size());
}

TEST_F(TraceTest, TimelineMentionsEvents)
{
    Task &t = sched.createTask("ui-thread", pureCompute());
    t.submitWork(1e6);
    sim.runFor(msToTicks(20));
    const std::string text = trace.timeline();
    EXPECT_NE(text.find("wakeup"), std::string::npos);
    EXPECT_NE(text.find("ui-thread"), std::string::npos);
    EXPECT_NE(text.find("cpu"), std::string::npos);
}

TEST_F(TraceTest, TimelineRespectsLineLimit)
{
    Task &t = sched.createTask("t", pureCompute());
    for (int i = 0; i < 30; ++i) {
        t.submitWork(1e4);
        sim.runFor(msToTicks(2));
    }
    const std::string text = trace.timeline(5);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST_F(TraceTest, CsvExportRoundTrips)
{
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(1e6);
    sim.runFor(msToTicks(20));
    const std::string path =
        ::testing::TempDir() + "biglittle_trace_test.csv";
    ASSERT_TRUE(trace.writeCsv(path).ok());
    std::ifstream in(path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header,
              "time_ms,kind,task_id,name,core,from_core,freq_khz,"
              "load");
    std::size_t rows = 0;
    std::string line;
    while (std::getline(in, line))
        ++rows;
    EXPECT_EQ(rows, trace.events().size());
    std::remove(path.c_str());
}

TEST_F(TraceTest, ClearDropsBufferNotTotals)
{
    Task &t = sched.createTask("t", pureCompute());
    t.submitWork(1e6);
    sim.runFor(msToTicks(20));
    const auto seen = trace.observed();
    ASSERT_GT(seen, 0u);
    trace.clear();
    EXPECT_TRUE(trace.events().empty());
    EXPECT_EQ(trace.observed(), seen);
}

TEST_F(TraceTest, FullAppRunProducesRichTrace)
{
    trace.attachCluster(plat.littleCluster());
    trace.attachCluster(plat.bigCluster());
    AppInstance app(sim, sched, encoderApp());
    app.start();
    sim.runFor(msToTicks(1000));
    EXPECT_GT(trace.countOf(TraceKind::wakeup), 20u);
    EXPECT_GT(trace.countOf(TraceKind::sleep), 20u);
    EXPECT_GE(trace.countOf(TraceKind::migrateUp), 1u);
}

TEST_F(TraceTest, KindNamesAreStable)
{
    EXPECT_STREQ(traceKindName(TraceKind::wakeup), "wakeup");
    EXPECT_STREQ(traceKindName(TraceKind::sleep), "sleep");
    EXPECT_STREQ(traceKindName(TraceKind::migrateUp), "migrate-up");
    EXPECT_STREQ(traceKindName(TraceKind::migrateDown),
                 "migrate-down");
    EXPECT_STREQ(traceKindName(TraceKind::balance), "balance");
    EXPECT_STREQ(traceKindName(TraceKind::freqChange), "freq-change");
}
