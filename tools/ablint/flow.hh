/**
 * @file
 * abflow: the dataflow layer on top of absema's entity model.
 *
 * buildFlowModel() parses each FunctionDef's parameter list and runs
 * an intraprocedural def-use taint analysis over its body, then
 * composes the per-function results bottom-up over the call graph as
 * summaries (param-in -> return/sink-out) iterated to a fixpoint:
 *
 *  - returnsTaint        the function can return a value derived
 *                        from an untrusted decode surface (a raw
 *                        Deserializer::getU64-family read or a
 *                        std::sto- / ato- / strto-family numeric
 *                        parse) without a sanitizing bound check;
 *  - paramToReturn[i]    parameter i can flow to the return value
 *                        unsanitized (taint passes through);
 *  - paramToSink[i]      parameter i can reach an allocation-size,
 *                        loop-bound or index sink in this function
 *                        (or transitively in a callee) unsanitized.
 *
 * Sanitizers kill taint: assignment from Deserializer::getCount()
 * (the bound is built in), a `<`/`>` comparison against the value
 * outside a loop header, a std::min/std::max/std::clamp wrap, or
 * reassignment from a clean expression.  The engine is token-level
 * and flow-ordered like the rest of ablint: writes inside a nested
 * block merge instead of overwriting (the branch may not execute),
 * and each braced loop body is walked twice back to back so
 * loop-carried flow converges.  Its blind spots are documented in
 * docs/STATIC_ANALYSIS.md.
 *
 * The rules built on the engine (flow_rules.cc): taint-bound,
 * unit-mix, status-drop - see ablint.hh.
 */

#ifndef BIGLITTLE_TOOLS_ABLINT_FLOW_HH
#define BIGLITTLE_TOOLS_ABLINT_FLOW_HH

#include "model.hh"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace biglittle::ablint
{

/** One declared parameter of a function definition. */
struct FlowParam
{
    std::string name;

    /** Declared type as token text ("const Config &" style). */
    std::string type;
};

/** Where a parameter's taint lands, for chain-aware messages. */
struct SinkNote
{
    int line = 0; ///< sink line in the function's own file
    std::string file; ///< repo-relative path of that file
    std::string what; ///< "a resize()", "a loop bound", ...
};

/** The interprocedural facts exported by one function. */
struct FlowSummary
{
    bool returnsTaint = false;

    /** Why the return is tainted (source description), if it is. */
    std::string returnTaintWhy;

    std::vector<bool> paramToReturn; ///< sized like params
    std::vector<bool> paramToSink; ///< sized like params
    std::vector<SinkNote> paramSink; ///< sink info per param
};

/** One function definition with its parsed params and summary. */
struct FlowFunction
{
    /** Points into FlowModel::model.functions. */
    const FunctionDef *def = nullptr;

    std::vector<FlowParam> params;
    FlowSummary summary;
};

/** The flow view of a ScanInput: entity model + summaries. */
struct FlowModel
{
    Model model;

    /** Parallel to model.functions. */
    std::vector<FlowFunction> functions;

    /** FlowFunction indices by last-component name. */
    std::map<std::string, std::vector<std::size_t>> byName;
};

/**
 * Build the flow model: parse parameter lists, then iterate the
 * per-function summaries to a fixpoint over the call graph.
 * @p in must outlive the returned model (token ranges point into
 * its files), matching buildModel().
 */
FlowModel buildFlowModel(const ScanInput &in);

/**
 * Parse a parameter-list token range (exposed for the engine's own
 * golden tests).  `()` and `(void)` both yield no parameters.
 */
std::vector<FlowParam> parseParams(const std::vector<Token> &toks,
                                   std::size_t begin,
                                   std::size_t end);

/** Emission callback for taint findings: (sink line, message). */
using TaintEmitter =
    std::function<void(int line, const std::string &message)>;

/**
 * Run the taint walk over one function body against the summaries
 * in @p fm.  Returns the function's own summary; when @p emit is
 * non-null, also reports source-derived taint reaching a sink (the
 * taint-bound rule's emission path, exposed for engine tests).
 */
FlowSummary analyzeTaint(const FlowFunction &fn, const FlowModel &fm,
                         const TaintEmitter *emit);

} // namespace biglittle::ablint

#endif // BIGLITTLE_TOOLS_ABLINT_FLOW_HH
