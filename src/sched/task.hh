/**
 * @file
 * Task: the schedulable entity.
 *
 * A task alternates between sleeping and having work: a workload
 * behavior submits instruction batches (with the task's WorkClass
 * describing their architectural character), the scheduler runs them
 * on some core, and when the backlog drains the task sleeps and its
 * client is told so it can schedule the next phase.  Tasks carry the
 * HMP load tracker; loads freeze while the task sleeps.
 */

#ifndef BIGLITTLE_SCHED_TASK_HH
#define BIGLITTLE_SCHED_TASK_HH

#include <optional>
#include <string>

#include "base/types.hh"
#include "platform/params.hh"
#include "platform/work_class.hh"
#include "sched/load.hh"

namespace biglittle
{

class Core;
class HmpScheduler;
class Serializer;
class Deserializer;
class Task;

/** Observer a workload installs to drive a task's phase machine. */
class TaskClient
{
  public:
    virtual ~TaskClient() = default;

    /**
     * All submitted work has been executed; the task is now asleep.
     * Typically schedules the next submitWork() via the simulation.
     */
    virtual void onWorkDrained(Task &task) = 0;
};

/** Lifecycle states of a task. */
enum class TaskState
{
    sleeping, ///< no pending work
    queued, ///< waiting on a run queue
    running, ///< executing on a core
    finished, ///< will never run again
};

/** A schedulable thread. */
class Task
{
  public:
    Task(HmpScheduler &sched, TaskId id, std::string name,
         const WorkClass &work_class, double load_half_life_ms,
         std::optional<CoreId> pinned);

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    TaskId id() const { return taskId; }
    const std::string &name() const { return taskName; }
    TaskState state() const { return taskState; }

    const WorkClass &workClass() const { return wc; }

    /** Change the work character; effective from the next slice. */
    void setWorkClass(const WorkClass &work_class) { wc = work_class; }

    /** Core this task is queued/running on (null when sleeping). */
    Core *core() const { return curCore; }

    std::optional<CoreId> pinnedCore() const { return pinned; }

    /** Install the phase-machine observer. */
    void setClient(TaskClient *client) { taskClient = client; }
    TaskClient *client() const { return taskClient; }

    /**
     * Add @p instructions of pending work (must be > 0).  Wakes the
     * task if it was sleeping.  No-op once finished.
     */
    void submitWork(double instructions);

    /** Pending (not yet executed) instructions. */
    double pendingInstructions() const { return pending; }

    /** True when no work is pending. */
    bool drained() const { return pending <= 0.0; }

    /** Mark the task permanently done (must be sleeping). */
    void finish();

    /** HMP load average. */
    LoadTracker &loadTracker() { return load; }
    const LoadTracker &loadTracker() const { return load; }

    /** Lifetime instructions executed. */
    double instructionsRetired() const { return retired; }

    /** Execution time accumulated on cores of @p type. */
    Tick runtimeOn(CoreType type) const
    {
        return type == CoreType::big ? bigRuntime : littleRuntime;
    }

    /** Total execution time on any core. */
    Tick totalRuntime() const { return littleRuntime + bigRuntime; }

    /** Attribute @p dt of execution to cores of @p type. */
    void
    addRuntime(CoreType type, Tick dt)
    {
        (type == CoreType::big ? bigRuntime : littleRuntime) += dt;
    }

    /** Times this task migrated between core types. */
    std::uint64_t typeMigrations() const { return migrations; }

    /** Tick at which the task last became runnable. */
    Tick runnableSince() const { return runnableStart; }

    /** Core the task most recently ran on (wakeup affinity hint). */
    CoreId lastCoreId() const { return lastCore; }

    // ---- scheduler-internal interface ----

    /** Consume executed work (called by the core runner). */
    void consume(double instructions);

    /** Force-drain the backlog at a planned completion point. */
    void consumeAll();

    /** Bookkeeping when the scheduler places/moves/parks the task. */
    void noteQueued(Core &core, Tick now);
    void noteRunning();
    void notePreempted();
    void noteSleeping(Tick now);

    /** Tick the task last went to sleep (maxTick if never slept). */
    Tick sleepSince() const { return sleepStart; }
    void noteTypeMigration() { ++migrations; }

    /**
     * Credit the load tracker for the runnable stretch since the
     * last accrual (the task must have been continuously runnable
     * over that interval).  Called by the scheduler tick and by the
     * core runner whenever the task leaves a run queue, so sub-tick
     * runnable slivers are never lost.
     */
    void accrueLoad(Tick now, double freq_scale);

    /**
     * Write the task's mutable state (lifecycle state, backlog,
     * accounting, load tracker).  The current core is recorded by id;
     * restore resolves it against the owning scheduler's platform, so
     * topology must match.
     */
    void serialize(Serializer &s) const;

    /** Restore state written by serialize(). */
    void deserialize(Deserializer &d);

  private:
    HmpScheduler &sched;
    TaskId taskId; // ablint:allow(serialize-coverage): stable id assigned by the scheduler at creation
    std::string taskName;
    WorkClass wc; // ablint:allow(serialize-coverage): creation-time config from the task spec (covers pinned)
    std::optional<CoreId> pinned;
    TaskClient *taskClient = nullptr;

    TaskState taskState = TaskState::sleeping;
    Core *curCore = nullptr;
    double pending = 0.0;
    double retired = 0.0;
    std::uint64_t migrations = 0;
    Tick runnableStart = 0;
    Tick sleepStart = maxTick;
    Tick loadStamp = 0;
    Tick littleRuntime = 0;
    Tick bigRuntime = 0;
    CoreId lastCore = invalidCoreId;
    LoadTracker load;
};

} // namespace biglittle

#endif // BIGLITTLE_SCHED_TASK_HH
