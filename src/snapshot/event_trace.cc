#include "snapshot/event_trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "base/strutil.hh"

namespace biglittle
{

std::uint64_t
TraceRecord::payloadHash() const
{
    Serializer s;
    s.putU64(when);
    s.putI64(priority);
    s.putU64(sequence);
    s.putString(name);
    return s.digest();
}

namespace
{

std::string
describeRecord(const TraceRecord &r)
{
    return format("t=%llu seq=%llu prio=%d '%s' (hash %016llx)",
                  static_cast<unsigned long long>(r.when),
                  static_cast<unsigned long long>(r.sequence),
                  static_cast<int>(r.priority), r.name.c_str(),
                  static_cast<unsigned long long>(r.payloadHash()));
}

} // namespace

std::string
Divergence::describe() const
{
    std::string out =
        format("first divergence at event #%zu:\n", index);
    out += "  expected: ";
    out += expected ? describeRecord(*expected)
                    : "(no more events in reference trace)";
    out += "\n  actual:   ";
    out += actual ? describeRecord(*actual)
                  : "(run ended before this event)";
    return out;
}

std::vector<std::uint8_t>
EventTrace::encode() const
{
    Serializer s;
    s.putU32(traceMagic);
    s.putU32(traceVersion);
    s.putU64(records.size());
    for (const TraceRecord &r : records) {
        s.putU64(r.when);
        s.putI64(r.priority);
        s.putU64(r.sequence);
        s.putString(r.name);
    }
    s.putU64(s.digest());
    return s.takeBytes();
}

Result<EventTrace>
EventTrace::decode(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8)
        return invalidArgument("event trace truncated");
    const std::size_t body = bytes.size() - 8;
    Deserializer tail(bytes.data() + body, 8);
    if (tail.getU64() != fnv1a64(bytes.data(), body))
        return invalidArgument("event trace checksum mismatch");

    Deserializer d(bytes.data(), body);
    // Cap decode-time allocations at a small multiple of the input:
    // a crafted count or string length must not balloon memory.
    d.limitAllocations(2, 4096);
    if (d.getU32() != traceMagic)
        return invalidArgument("not an event trace (bad magic)");
    const std::uint32_t version = d.getU32();
    if (version != traceVersion) {
        return invalidArgument(format(
            "unsupported trace version %u (this build reads %u)",
            version, traceVersion));
    }
    EventTrace trace;
    // A record is at least when+priority+sequence+name-length =
    // 32 bytes, which bounds any honest count field.
    const std::uint64_t count = d.getCount(32);
    trace.records.reserve(count);
    for (std::uint64_t i = 0; i < count && d.ok(); ++i) {
        TraceRecord r;
        r.when = d.getU64();
        r.priority = static_cast<std::int32_t>(d.getI64());
        r.sequence = d.getU64();
        r.name = d.getString();
        trace.records.push_back(std::move(r));
    }
    if (!d.ok())
        return invalidArgument("event trace body truncated");
    return trace;
}

Status
EventTrace::writeFile(const std::string &path) const
{
    const std::vector<std::uint8_t> bytes = encode();
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return unavailable("cannot open '" + tmp + "' for writing");
        out.write(reinterpret_cast<const char *>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out)
            return unavailable("short write to '" + tmp + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return unavailable("cannot rename '" + tmp + "' to '" + path +
                           "'");
    }
    return okStatus();
}

Result<EventTrace>
EventTrace::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return notFound("cannot open event trace '" + path + "'");
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    return decode(bytes);
}

EventTraceRecorder::~EventTraceRecorder()
{
    detach();
}

void
EventTraceRecorder::attach(EventQueue &queue)
{
    BL_ASSERT(queuePtr == nullptr);
    queuePtr = &queue;
    queue.setServiceHook([this](const ServicedEvent &ev) {
        recorded.records.push_back(
            {ev.when, ev.priority, ev.sequence, ev.name});
    });
}

void
EventTraceRecorder::detach()
{
    if (queuePtr != nullptr) {
        queuePtr->setServiceHook(nullptr);
        queuePtr = nullptr;
    }
}

EventTraceComparer::EventTraceComparer(EventTrace reference_in)
    : reference(std::move(reference_in))
{
}

EventTraceComparer::~EventTraceComparer()
{
    detach();
}

void
EventTraceComparer::attach(EventQueue &queue)
{
    BL_ASSERT(queuePtr == nullptr);
    queuePtr = &queue;
    queue.setServiceHook(
        [this](const ServicedEvent &ev) { check(ev); });
}

void
EventTraceComparer::detach()
{
    if (queuePtr != nullptr) {
        queuePtr->setServiceHook(nullptr);
        queuePtr = nullptr;
    }
}

void
EventTraceComparer::check(const ServicedEvent &ev)
{
    if (firstDivergence)
        return; // everything after the first mismatch is fallout
    const TraceRecord actual{ev.when, ev.priority, ev.sequence,
                             ev.name};
    if (nextIndex >= reference.records.size()) {
        firstDivergence = Divergence{nextIndex, std::nullopt, actual};
        return;
    }
    const TraceRecord &expected = reference.records[nextIndex];
    if (!(expected == actual)) {
        firstDivergence = Divergence{nextIndex, expected, actual};
        return;
    }
    ++nextIndex;
}

void
EventTraceComparer::finish()
{
    if (firstDivergence)
        return;
    if (nextIndex < reference.records.size()) {
        firstDivergence = Divergence{
            nextIndex, reference.records[nextIndex], std::nullopt};
    }
}

std::optional<Divergence>
compareTraces(const EventTrace &expected, const EventTrace &actual)
{
    const std::size_t n =
        std::min(expected.records.size(), actual.records.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (!(expected.records[i] == actual.records[i])) {
            return Divergence{i, expected.records[i],
                              actual.records[i]};
        }
    }
    if (expected.records.size() > n)
        return Divergence{n, expected.records[n], std::nullopt};
    if (actual.records.size() > n)
        return Divergence{n, std::nullopt, actual.records[n]};
    return std::nullopt;
}

} // namespace biglittle
