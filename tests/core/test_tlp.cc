/**
 * @file
 * Tests for the TLP report derived from the state sampler: the
 * Table III column semantics and the Blake TLP metric.
 */

#include <gtest/gtest.h>

#include "core/tlp.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class TlpTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    StateSampler sampler{sim, plat, msToTicks(10)};
};

} // namespace

TEST_F(TlpTest, EmptySamplerYieldsZeroReport)
{
    const TlpReport r = makeTlpReport(sampler);
    EXPECT_DOUBLE_EQ(r.idlePct, 0.0);
    EXPECT_DOUBLE_EQ(r.tlp, 0.0);
    ASSERT_EQ(r.matrixPct.size(), 5u);
    ASSERT_EQ(r.matrixPct[0].size(), 5u);
}

TEST_F(TlpTest, AllIdleIsHundredPercentIdle)
{
    sampler.start();
    sim.runFor(msToTicks(100));
    const TlpReport r = makeTlpReport(sampler);
    EXPECT_DOUBLE_EQ(r.idlePct, 100.0);
    EXPECT_DOUBLE_EQ(r.matrixPct[0][0], 100.0);
}

TEST_F(TlpTest, TwoLittleCoresGiveTlpTwo)
{
    plat.littleCluster().core(0).setBusy(true);
    plat.littleCluster().core(1).setBusy(true);
    sampler.start();
    sim.runFor(msToTicks(200));
    const TlpReport r = makeTlpReport(sampler);
    EXPECT_DOUBLE_EQ(r.idlePct, 0.0);
    EXPECT_DOUBLE_EQ(r.tlp, 2.0);
    EXPECT_DOUBLE_EQ(r.littleSharePct, 100.0);
    EXPECT_DOUBLE_EQ(r.bigSharePct, 0.0);
    EXPECT_DOUBLE_EQ(r.littleTlp, 2.0);
    EXPECT_DOUBLE_EQ(r.bigTlp, 0.0);
}

TEST_F(TlpTest, SharesSplitByCoreCycles)
{
    // 1 big + 3 little busy: big share = 1/4 = 25%.
    plat.bigCluster().core(0).setBusy(true);
    for (int i = 0; i < 3; ++i)
        plat.littleCluster().core(i).setBusy(true);
    sampler.start();
    sim.runFor(msToTicks(100));
    const TlpReport r = makeTlpReport(sampler);
    EXPECT_DOUBLE_EQ(r.bigSharePct, 25.0);
    EXPECT_DOUBLE_EQ(r.littleSharePct, 75.0);
    EXPECT_DOUBLE_EQ(r.tlp, 4.0);
    EXPECT_DOUBLE_EQ(r.anyBigWindowPct, 100.0);
    EXPECT_DOUBLE_EQ(r.littleOnlyWindowPct, 0.0);
}

TEST_F(TlpTest, SharesAlwaysSumToHundredWhenActive)
{
    // Alternating activity pattern.
    sampler.start();
    for (int i = 0; i < 20; ++i) {
        plat.littleCluster().core(i % 4).setBusy(true);
        if (i % 3 == 0)
            plat.bigCluster().core(i % 4).setBusy(true);
        sim.runFor(msToTicks(10));
        plat.littleCluster().core(i % 4).setBusy(false);
        if (i % 3 == 0)
            plat.bigCluster().core(i % 4).setBusy(false);
        sim.runFor(msToTicks(5));
    }
    const TlpReport r = makeTlpReport(sampler);
    EXPECT_NEAR(r.littleSharePct + r.bigSharePct, 100.0, 1e-9);
    EXPECT_NEAR(r.littleTlp + r.bigTlp, r.tlp, 1e-9);
}

TEST_F(TlpTest, MatrixSumsToHundred)
{
    plat.littleCluster().core(0).setBusy(true);
    sampler.start();
    sim.runFor(msToTicks(70));
    plat.bigCluster().core(2).setBusy(true);
    sim.runFor(msToTicks(30));
    const TlpReport r = makeTlpReport(sampler);
    double sum = 0.0;
    for (const auto &row : r.matrixPct)
        for (const double cell : row)
            sum += cell;
    EXPECT_NEAR(sum, 100.0, 1e-9);
    EXPECT_NEAR(r.matrixPct[0][1], 70.0, 1e-9);
    EXPECT_NEAR(r.matrixPct[1][1], 30.0, 1e-9);
}

TEST_F(TlpTest, IdleExcludedFromTlp)
{
    // Active half the time with 2 cores: TLP must be 2, not 1.
    sampler.start();
    for (int i = 0; i < 10; ++i) {
        plat.littleCluster().core(0).setBusy(true);
        plat.littleCluster().core(1).setBusy(true);
        sim.runFor(msToTicks(10));
        plat.littleCluster().core(0).setBusy(false);
        plat.littleCluster().core(1).setBusy(false);
        sim.runFor(msToTicks(10));
    }
    const TlpReport r = makeTlpReport(sampler);
    EXPECT_NEAR(r.idlePct, 50.0, 1e-9);
    EXPECT_NEAR(r.tlp, 2.0, 1e-9);
}
