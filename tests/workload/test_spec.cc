/**
 * @file
 * Tests for the SPEC-like kernel suite definitions.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/spec.hh"

using namespace biglittle;

TEST(SpecSuite, TwelveKernels)
{
    EXPECT_EQ(specSuite().size(), 12u);
}

TEST(SpecSuite, NamesAreUnique)
{
    std::set<std::string> names;
    for (const SpecKernel &k : specSuite())
        EXPECT_TRUE(names.insert(k.name).second) << k.name;
}

TEST(SpecSuite, WorkClassesAreValid)
{
    for (const SpecKernel &k : specSuite()) {
        EXPECT_GE(k.workClass.ilp, 0.0) << k.name;
        EXPECT_LE(k.workClass.ilp, 1.0) << k.name;
        EXPECT_GE(k.workClass.l1MissPerInst, 0.0) << k.name;
        EXPECT_LE(k.workClass.l1MissPerInst, 0.2) << k.name;
        EXPECT_GT(k.workClass.footprintKB, 0.0) << k.name;
        EXPECT_GT(k.instructions, 1e8) << k.name;
    }
}

TEST(SpecSuite, SuiteSpansTheBehaviorSpace)
{
    // At least one clearly compute-bound kernel (tiny footprint,
    // high ILP), one cache-sensitive kernel (between the two L2
    // sizes), and one streaming kernel (far beyond both).
    bool compute = false, cache_sensitive = false, streaming = false;
    for (const SpecKernel &k : specSuite()) {
        if (k.workClass.ilp > 0.85 && k.workClass.footprintKB < 512)
            compute = true;
        if (k.workClass.footprintKB > 512 &&
            k.workClass.footprintKB <= 2048)
            cache_sensitive = true;
        if (k.workClass.footprintKB > 8192)
            streaming = true;
    }
    EXPECT_TRUE(compute);
    EXPECT_TRUE(cache_sensitive);
    EXPECT_TRUE(streaming);
}

TEST(SpecSuite, LookupByName)
{
    EXPECT_EQ(specKernelByName("mcf").name, "mcf");
    EXPECT_EQ(specKernelByName("hmmer").workClass.ilp, 0.92);
    EXPECT_EXIT(specKernelByName("zzz"),
                ::testing::ExitedWithCode(1), "unknown SPEC kernel");
}
