#include "core/freq_residency.hh"

namespace biglittle
{

FreqResidency
makeFreqResidency(Cluster &cluster)
{
    cluster.sync();
    FreqResidency res;
    for (const Opp &opp : cluster.freqDomain().opps()) {
        double ticks = 0.0;
        for (std::size_t i = 0; i < cluster.coreCount(); ++i) {
            ticks +=
                cluster.core(i).busyTicksByFreq().weightAt(opp.freq);
        }
        FreqResidency::Entry entry;
        entry.freq = opp.freq;
        entry.activeSeconds = ticks / static_cast<double>(oneSec);
        entry.fraction = 0.0;
        res.totalActiveSeconds += entry.activeSeconds;
        res.entries.push_back(entry);
    }
    if (res.totalActiveSeconds > 0.0) {
        for (auto &entry : res.entries)
            entry.fraction = entry.activeSeconds /
                             res.totalActiveSeconds;
    }
    return res;
}

} // namespace biglittle
