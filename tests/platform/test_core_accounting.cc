/**
 * @file
 * Tests for the exact event-driven time/energy accounting of cores
 * and clusters: busy-time residency by frequency, energy weights,
 * and hotplug interactions.
 */

#include <gtest/gtest.h>

#include "platform/platform.hh"
#include "sim/simulation.hh"

using namespace biglittle;

namespace
{

class CoreAccountingTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};

    Core &little0() { return plat.littleCluster().core(0); }
    Core &big0() { return plat.bigCluster().core(0); }
};

} // namespace

TEST_F(CoreAccountingTest, InitialState)
{
    EXPECT_TRUE(little0().online());
    EXPECT_FALSE(little0().busy());
    EXPECT_EQ(little0().busyTicks(), 0u);
    EXPECT_EQ(little0().onlineTicks(), 0u);
}

TEST_F(CoreAccountingTest, BusyTimeAccumulatesExactly)
{
    sim.runFor(msToTicks(5));
    little0().setBusy(true);
    sim.runFor(msToTicks(7));
    little0().setBusy(false);
    sim.runFor(msToTicks(3));
    little0().sync();
    EXPECT_EQ(little0().busyTicks(), msToTicks(7));
    EXPECT_EQ(little0().onlineTicks(), msToTicks(15));
}

TEST_F(CoreAccountingTest, BusyByFreqSplitsAtTransition)
{
    FreqDomain &dom = plat.littleCluster().freqDomain();
    dom.setFreqNow(500000);
    little0().setBusy(true);
    sim.runFor(msToTicks(4));
    dom.setFreqNow(1300000); // accounting closes at the old OPP
    sim.runFor(msToTicks(6));
    little0().setBusy(false);

    const auto &hist = little0().busyTicksByFreq();
    EXPECT_DOUBLE_EQ(hist.weightAt(500000),
                     static_cast<double>(msToTicks(4)));
    EXPECT_DOUBLE_EQ(hist.weightAt(1300000),
                     static_cast<double>(msToTicks(6)));
    EXPECT_EQ(little0().busyTicks(), msToTicks(10));
}

TEST_F(CoreAccountingTest, DynWeightMatchesClosedForm)
{
    FreqDomain &dom = plat.littleCluster().freqDomain();
    dom.setFreqNow(1300000); // 1.1 V on the little table
    little0().setBusy(true);
    sim.runFor(oneSec);
    little0().setBusy(false);
    little0().sync();
    // dynWeight = t * V^2 * f_GHz = 1 * 1.1^2 * 1.3
    EXPECT_NEAR(little0().dynWeight(), 1.1 * 1.1 * 1.3, 1e-9);
    EXPECT_NEAR(little0().staticBusyWeight(), 1.1, 1e-9);
    EXPECT_DOUBLE_EQ(little0().staticIdleWeight(), 0.0);
}

TEST_F(CoreAccountingTest, IdleWeightAccumulatesWhileOnline)
{
    plat.littleCluster().freqDomain().setFreqNow(500000); // 0.9 V
    sim.runFor(oneSec);
    little0().sync();
    EXPECT_NEAR(little0().staticIdleWeight(), 0.9, 1e-9);
    EXPECT_DOUBLE_EQ(little0().dynWeight(), 0.0);
}

TEST_F(CoreAccountingTest, OfflineCoreAccumulatesNothing)
{
    big0().setOnline(false);
    sim.runFor(oneSec);
    big0().sync();
    EXPECT_EQ(big0().onlineTicks(), 0u);
    EXPECT_DOUBLE_EQ(big0().staticIdleWeight(), 0.0);
}

TEST_F(CoreAccountingTest, ReonlinedCoreResumesAccounting)
{
    big0().setOnline(false);
    sim.runFor(msToTicks(10));
    big0().setOnline(true);
    sim.runFor(msToTicks(5));
    big0().sync();
    EXPECT_EQ(big0().onlineTicks(), msToTicks(5));
}

TEST_F(CoreAccountingTest, RedundantSetBusyIsNoop)
{
    little0().setBusy(true);
    sim.runFor(msToTicks(2));
    little0().setBusy(true); // no-op
    sim.runFor(msToTicks(2));
    little0().setBusy(false);
    EXPECT_EQ(little0().busyTicks(), msToTicks(4));
}

TEST_F(CoreAccountingTest, SyncIsIdempotent)
{
    little0().setBusy(true);
    sim.runFor(msToTicks(3));
    little0().sync();
    little0().sync();
    little0().sync();
    EXPECT_EQ(little0().busyTicks(), msToTicks(3));
}

TEST_F(CoreAccountingTest, ClusterActiveVsIdleWeights)
{
    Cluster &cl = plat.littleCluster();
    cl.freqDomain().setFreqNow(500000); // 0.9 V
    sim.runFor(oneSec); // idle second
    little0().setBusy(true);
    sim.runFor(oneSec); // active second
    little0().setBusy(false);
    cl.sync();
    EXPECT_NEAR(cl.idleWeight(), 0.9, 1e-9);
    EXPECT_NEAR(cl.activeWeight(), 0.9, 1e-9);
}

TEST_F(CoreAccountingTest, ClusterCounts)
{
    Cluster &cl = plat.littleCluster();
    EXPECT_EQ(cl.onlineCount(), 4u);
    EXPECT_EQ(cl.busyCount(), 0u);
    cl.core(1).setBusy(true);
    cl.core(2).setBusy(true);
    EXPECT_EQ(cl.busyCount(), 2u);
    cl.core(3).setOnline(false);
    EXPECT_EQ(cl.onlineCount(), 3u);
}

TEST_F(CoreAccountingTest, CoreMetadata)
{
    EXPECT_EQ(little0().type(), CoreType::little);
    EXPECT_EQ(big0().type(), CoreType::big);
    EXPECT_EQ(little0().id(), 0u);
    EXPECT_EQ(big0().id(), 4u);
    EXPECT_EQ(little0().name(), "a7.cpu0");
    EXPECT_EQ(big0().name(), "a15.cpu4");
}

TEST_F(CoreAccountingTest, BusyWhileOfflinePanics)
{
    big0().setOnline(false);
    EXPECT_DEATH(big0().setBusy(true), "busy while offline");
}

TEST_F(CoreAccountingTest, OfflineWhileBusyPanics)
{
    big0().setBusy(true);
    EXPECT_DEATH(big0().setOnline(false), "hotplugged off while busy");
}
