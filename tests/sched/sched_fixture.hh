/**
 * @file
 * Shared fixture for scheduler tests: a full platform with an HMP
 * scheduler, fixed frequencies (no governor), and a helper client
 * that records drain events.
 */

#ifndef BIGLITTLE_TESTS_SCHED_FIXTURE_HH
#define BIGLITTLE_TESTS_SCHED_FIXTURE_HH

#include <gtest/gtest.h>

#include <vector>

#include "platform/perf_model.hh"
#include "platform/platform.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"

namespace biglittle::test
{

/** TaskClient that logs drain ticks and can resubmit work. */
class RecordingClient : public TaskClient
{
  public:
    std::vector<Tick> drains;
    double resubmit = 0.0; ///< if > 0, submit this much on drain
    Simulation *sim = nullptr;

    void
    onWorkDrained(Task &task) override
    {
        drains.push_back(sim != nullptr ? sim->now() : 0);
        if (resubmit > 0.0)
            task.submitWork(resubmit);
    }
};

class SchedFixture : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    SchedParams params = baselineSchedParams();
    HmpScheduler sched{sim, plat, params};

    void
    SetUp() override
    {
        // Deterministic speeds: both clusters pinned at max.
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        plat.bigCluster().freqDomain().setFreqNow(1900000);
        sched.start();
    }

    /** A compute-bound work class with no memory time. */
    static WorkClass
    pureCompute()
    {
        return WorkClass{0.8, 0.0, 64.0};
    }
};

} // namespace biglittle::test

#endif // BIGLITTLE_TESTS_SCHED_FIXTURE_HH
