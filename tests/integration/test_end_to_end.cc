/**
 * @file
 * Integration tests: full app runs across governors, scheduler
 * presets, core configurations and the thermal throttle, checking
 * cross-module invariants (energy/time consistency, scheduler
 * sanity, result coherence).
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

AppSpec
shortApp(AppSpec app, Tick duration = msToTicks(3000))
{
    app.duration = duration;
    return app;
}

} // namespace

TEST(EndToEnd, AllTwelveAppsRunUnderTheDefaultSystem)
{
    Experiment experiment;
    for (const AppSpec &app : allApps()) {
        AppSpec a = app;
        if (a.metric == AppMetric::fps)
            a.duration = msToTicks(2000);
        const AppRunResult r = experiment.runApp(a);
        EXPECT_TRUE(r.completed) << a.name;
        EXPECT_GT(r.avgPowerMw, 200.0) << a.name;
        EXPECT_GT(r.tlp.tlp, 0.9) << a.name;
        EXPECT_LE(r.tlp.idlePct, 100.0) << a.name;
        EXPECT_NEAR(r.tlp.littleSharePct + r.tlp.bigSharePct, 100.0,
                    1e-6)
            << a.name;
    }
}

TEST(EndToEnd, EnergyBreakdownIsConsistent)
{
    Experiment experiment;
    const AppRunResult r =
        experiment.runApp(shortApp(eternityWarrior2App()));
    const EnergyBreakdown &e = r.energy;
    EXPECT_GT(e.coreDynamicMj, 0.0);
    EXPECT_GT(e.coreStaticMj, 0.0);
    EXPECT_GT(e.clusterStaticMj, 0.0);
    EXPECT_GT(e.baseMj, 0.0);
    EXPECT_NEAR(e.totalMj(),
                e.coreDynamicMj + e.coreStaticMj + e.clusterStaticMj +
                    e.baseMj,
                1e-9);
    EXPECT_NEAR(r.avgPowerMw,
                e.totalMj() / ticksToSeconds(r.simulatedTime), 1e-6);
}

TEST(EndToEnd, AllGovernorsCompleteAnAppRun)
{
    for (const GovernorKind kind :
         {GovernorKind::interactive, GovernorKind::performance,
          GovernorKind::powersave, GovernorKind::ondemand,
          GovernorKind::userspace}) {
        ExperimentConfig cfg;
        cfg.governor = kind;
        const AppRunResult r =
            Experiment(cfg).runApp(shortApp(videoPlayerApp()));
        EXPECT_GT(r.frames, 10u) << governorKindName(kind);
    }
}

TEST(EndToEnd, AllSchedPresetsCompleteAnAppRun)
{
    for (const SchedParams &p :
         {baselineSchedParams(), conservativeSchedParams(),
          aggressiveSchedParams(), doubleHistorySchedParams(),
          halfHistorySchedParams()}) {
        ExperimentConfig cfg;
        cfg.sched = p;
        const AppRunResult r =
            Experiment(cfg).runApp(photoEditorApp());
        EXPECT_TRUE(r.completed) << p.name;
    }
}

TEST(EndToEnd, AllCoreConfigsCompleteAnAppRun)
{
    for (const CoreConfig &cc : standardCoreConfigs()) {
        ExperimentConfig cfg;
        cfg.coreConfig = cc;
        const AppRunResult r =
            Experiment(cfg).runApp(shortApp(angryBirdApp()));
        EXPECT_GT(r.frames, 50u) << cc.label;
    }
}

TEST(EndToEnd, FewerCoresNeverIncreasePowerMuch)
{
    // Fig. 8 sanity: restricted configurations are strict hardware
    // subsets, so they cannot draw meaningfully more than the full
    // platform.  A small margin is allowed: concentrating the same
    // work on fewer cores pushes the governor to higher frequencies,
    // which can locally offset the hotplug savings.
    const AppSpec app = shortApp(fifa15App(), msToTicks(4000));
    ExperimentConfig base_cfg;
    const double base = Experiment(base_cfg).runApp(app).avgPowerMw;
    for (const CoreConfig &cc : standardCoreConfigs()) {
        ExperimentConfig cfg;
        cfg.coreConfig = cc;
        cfg.label = cc.label;
        const double power = Experiment(cfg).runApp(app).avgPowerMw;
        EXPECT_LE(power, base * 1.05) << cc.label;
    }
}

TEST(EndToEnd, LittleOnlyConfigSlowsLatencyApp)
{
    // bbench's five-way parallel page loads need more than two
    // little cores; restricting to L2 must hurt latency clearly.
    const AppSpec app = bbenchApp();
    ExperimentConfig l2_cfg;
    l2_cfg.coreConfig = {2, 0, "L2"};
    ExperimentConfig base_cfg;
    const Tick base = Experiment(base_cfg).runApp(app).latency;
    const Tick slow = Experiment(l2_cfg).runApp(app).latency;
    EXPECT_GT(slow, base + base / 4);
}

TEST(EndToEnd, ThermalThrottleLimitsBigClusterPower)
{
    // Four endless compute tasks pinned to the big cores saturate
    // the cluster; the interactive governor pushes for max frequency
    // and only the thermal throttle holds the cluster (and so the
    // system power) down.
    auto avg_power = [](bool thermal) {
        Simulation sim;
        AsymmetricPlatform plat(sim, exynos5422Params());
        HmpScheduler sched(sim, plat, baselineSchedParams());
        InteractiveGovernor gov(sim, plat.bigCluster(),
                                defaultInteractiveParams());
        ThermalThrottle throttle(sim, plat.bigCluster());
        PowerModel power(plat);
        gov.start();
        if (thermal)
            throttle.start();
        sched.start();
        for (CoreId id = 4; id < 8; ++id) {
            Task &t = sched.createTask("burn" + std::to_string(id),
                                       WorkClass{0.8, 0.0, 64.0}, id);
            t.submitWork(1e15);
        }
        const PowerSnapshot before = power.snapshot();
        sim.runFor(msToTicks(10000));
        const PowerSnapshot after = power.snapshot();
        return power.energyBetween(before, after).averagePowerMw();
    };
    const double hot = avg_power(false);
    const double cool = avg_power(true);
    EXPECT_GT(hot, 8000.0); // 4 big cores near max: many watts
    EXPECT_LT(cool, 0.6 * hot);
}

TEST(EndToEnd, SchedulerMigratesUnderRealWorkloads)
{
    Experiment experiment;
    const AppRunResult r = experiment.runApp(encoderApp());
    EXPECT_GT(r.sched.migrationsUp, 0u);
    EXPECT_GT(r.sched.wakeups, 10u);
    EXPECT_GT(r.tlp.bigSharePct, 10.0);
}

TEST(EndToEnd, InteractiveBeatsPerformanceOnEnergy)
{
    // The whole point of the DVFS governor: same workload, far less
    // energy than pinning max frequency, with little FPS cost.
    AppSpec app = shortApp(fifa15App(), msToTicks(4000));
    ExperimentConfig perf_cfg;
    perf_cfg.governor = GovernorKind::performance;
    ExperimentConfig inter_cfg;
    const AppRunResult perf = Experiment(perf_cfg).runApp(app);
    const AppRunResult inter = Experiment(inter_cfg).runApp(app);
    EXPECT_LT(inter.avgPowerMw, 0.9 * perf.avgPowerMw);
    EXPECT_GT(inter.avgFps, 0.8 * perf.avgFps);
}
