/**
 * @file
 * Tests for event-trace recording and replay comparison: file format
 * round trips, offline trace diffing, the live recorder/comparer on
 * a real event queue, and first-divergence reporting.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/event.hh"
#include "sim/simulation.hh"
#include "snapshot/event_trace.hh"

using namespace biglittle;

namespace
{

TraceRecord
rec(Tick when, std::uint64_t seq, const std::string &name)
{
    TraceRecord r;
    r.when = when;
    r.priority = 0;
    r.sequence = seq;
    r.name = name;
    return r;
}

EventTrace
sampleTrace()
{
    EventTrace t;
    t.records = {rec(100, 0, "a"), rec(200, 1, "b"),
                 rec(200, 2, "c")};
    return t;
}

} // namespace

TEST(TraceRecord, PayloadHashCoversEveryField)
{
    const TraceRecord base = rec(100, 7, "tick");
    EXPECT_EQ(base.payloadHash(), rec(100, 7, "tick").payloadHash());

    TraceRecord t = base;
    t.when = 101;
    EXPECT_NE(t.payloadHash(), base.payloadHash());
    t = base;
    t.sequence = 8;
    EXPECT_NE(t.payloadHash(), base.payloadHash());
    t = base;
    t.priority = 1;
    EXPECT_NE(t.payloadHash(), base.payloadHash());
    t = base;
    t.name = "tock";
    EXPECT_NE(t.payloadHash(), base.payloadHash());
}

TEST(EventTrace, EncodeDecodeRoundTrip)
{
    const EventTrace t = sampleTrace();
    const Result<EventTrace> back = EventTrace::decode(t.encode());
    ASSERT_TRUE(back.ok()) << back.status().message();
    ASSERT_EQ(back.value().records.size(), 3u);
    EXPECT_TRUE(back.value().records[0] == t.records[0]);
    EXPECT_TRUE(back.value().records[2] == t.records[2]);
    EXPECT_EQ(back.value().encode(), t.encode());
}

TEST(EventTrace, EmptyTraceRoundTrips)
{
    const EventTrace t;
    const Result<EventTrace> back = EventTrace::decode(t.encode());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back.value().records.empty());
}

TEST(EventTrace, CorruptionIsRejected)
{
    auto bytes = sampleTrace().encode();
    bytes[bytes.size() / 2] ^= 0x40;
    EXPECT_FALSE(EventTrace::decode(bytes).ok());
}

TEST(EventTrace, TruncationIsRejected)
{
    auto bytes = sampleTrace().encode();
    bytes.resize(bytes.size() - 3);
    EXPECT_FALSE(EventTrace::decode(bytes).ok());
}

TEST(EventTrace, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "bl_trace_rt.bin";
    const EventTrace t = sampleTrace();
    ASSERT_TRUE(t.writeFile(path).ok());
    const Result<EventTrace> back = EventTrace::readFile(path);
    ASSERT_TRUE(back.ok()) << back.status().message();
    EXPECT_EQ(back.value().encode(), t.encode());
    std::remove(path.c_str());
}

TEST(EventTrace, MissingFileFailsGracefully)
{
    EXPECT_FALSE(EventTrace::readFile("/nonexistent/t.bin").ok());
}

TEST(CompareTraces, IdenticalTracesMatch)
{
    EXPECT_FALSE(
        compareTraces(sampleTrace(), sampleTrace()).has_value());
}

TEST(CompareTraces, FirstDifferenceIsLatched)
{
    const EventTrace a = sampleTrace();
    EventTrace b = sampleTrace();
    b.records[1].name = "B";
    b.records[2].name = "C"; // later fallout must not mask #1
    const auto div = compareTraces(a, b);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->index, 1u);
    ASSERT_TRUE(div->expected.has_value());
    ASSERT_TRUE(div->actual.has_value());
    EXPECT_EQ(div->expected->name, "b");
    EXPECT_EQ(div->actual->name, "B");
}

TEST(CompareTraces, PrematureEndIsADivergence)
{
    const EventTrace a = sampleTrace();
    EventTrace b = sampleTrace();
    b.records.pop_back();
    const auto div = compareTraces(a, b);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->index, 2u);
    EXPECT_TRUE(div->expected.has_value());
    EXPECT_FALSE(div->actual.has_value());
}

TEST(CompareTraces, ExtraEventIsADivergence)
{
    const EventTrace a = sampleTrace();
    EventTrace b = sampleTrace();
    b.records.push_back(rec(300, 3, "extra"));
    const auto div = compareTraces(a, b);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(div->index, 3u);
    EXPECT_FALSE(div->expected.has_value());
    ASSERT_TRUE(div->actual.has_value());
    EXPECT_EQ(div->actual->name, "extra");
}

TEST(Divergence, DescribeNamesTheFirstDivergingEvent)
{
    const auto div = compareTraces(sampleTrace(), [] {
        EventTrace b = sampleTrace();
        b.records[1].name = "B";
        return b;
    }());
    ASSERT_TRUE(div.has_value());
    const std::string text = div->describe();
    EXPECT_NE(text.find("first divergence"), std::string::npos);
    EXPECT_NE(text.find("#1"), std::string::npos);
    EXPECT_NE(text.find("'b'"), std::string::npos);
    EXPECT_NE(text.find("'B'"), std::string::npos);
}

TEST(EventTraceRecorder, CapturesServicedEventsInOrder)
{
    Simulation sim;
    EventTraceRecorder recorder;
    recorder.attach(sim.eventQueue());

    int fired = 0;
    CallbackEvent a([&] { ++fired; }, EventPriority::deferred, "ev.a");
    CallbackEvent b([&] { ++fired; }, EventPriority::deferred, "ev.b");
    sim.eventQueue().schedule(a, 100);
    sim.eventQueue().schedule(b, 50);
    sim.runUntil(200);
    recorder.detach();

    ASSERT_EQ(fired, 2);
    const EventTrace &t = recorder.trace();
    ASSERT_EQ(t.records.size(), 2u);
    EXPECT_EQ(t.records[0].name, "ev.b");
    EXPECT_EQ(t.records[0].when, 50u);
    EXPECT_EQ(t.records[1].name, "ev.a");
    EXPECT_EQ(t.records[1].when, 100u);
    // Sequence numbers reflect schedule order, not firing order.
    EXPECT_EQ(t.records[0].sequence, 1u);
    EXPECT_EQ(t.records[1].sequence, 0u);
}

TEST(EventTraceRecorder, DetachStopsRecording)
{
    Simulation sim;
    EventTraceRecorder recorder;
    recorder.attach(sim.eventQueue());

    CallbackEvent a([] {}, EventPriority::deferred, "ev.a");
    sim.eventQueue().schedule(a, 10);
    sim.runUntil(20);
    recorder.detach();

    CallbackEvent b([] {}, EventPriority::deferred, "ev.b");
    sim.eventQueue().schedule(b, 30);
    sim.runUntil(40);
    EXPECT_EQ(recorder.trace().records.size(), 1u);
}

TEST(EventTraceComparer, IdenticalRunMatches)
{
    const auto run = [](EventTraceRecorder *recorder,
                        EventTraceComparer *comparer) {
        Simulation sim;
        if (recorder != nullptr)
            recorder->attach(sim.eventQueue());
        if (comparer != nullptr)
            comparer->attach(sim.eventQueue());
        CallbackEvent a([] {}, EventPriority::deferred, "ev.a");
        CallbackEvent b([] {}, EventPriority::deferred, "ev.b");
        sim.eventQueue().schedule(a, 100);
        sim.eventQueue().schedule(b, 150);
        sim.runUntil(200);
        if (recorder != nullptr)
            recorder->detach();
        if (comparer != nullptr)
            comparer->detach();
    };

    EventTraceRecorder recorder;
    run(&recorder, nullptr);

    EventTraceComparer comparer(recorder.trace());
    run(nullptr, &comparer);
    comparer.finish();
    EXPECT_FALSE(comparer.diverged());
    EXPECT_EQ(comparer.matched(), 2u);
}

TEST(EventTraceComparer, PerturbedRunDiverges)
{
    Simulation ref;
    EventTraceRecorder recorder;
    recorder.attach(ref.eventQueue());
    CallbackEvent a1([] {}, EventPriority::deferred, "ev.a");
    CallbackEvent b1([] {}, EventPriority::deferred, "ev.b");
    ref.eventQueue().schedule(a1, 100);
    ref.eventQueue().schedule(b1, 150);
    ref.runUntil(200);
    recorder.detach();

    // Same first event, then a different second event.
    Simulation sim;
    EventTraceComparer comparer(recorder.trace());
    comparer.attach(sim.eventQueue());
    CallbackEvent a2([] {}, EventPriority::deferred, "ev.a");
    CallbackEvent b2([] {}, EventPriority::deferred, "ev.rogue");
    sim.eventQueue().schedule(a2, 100);
    sim.eventQueue().schedule(b2, 150);
    sim.runUntil(200);
    comparer.detach();
    comparer.finish();

    ASSERT_TRUE(comparer.diverged());
    EXPECT_EQ(comparer.divergence()->index, 1u);
    EXPECT_EQ(comparer.divergence()->expected->name, "ev.b");
    EXPECT_EQ(comparer.divergence()->actual->name, "ev.rogue");
}

TEST(EventTraceComparer, PrematureEndIsFlaggedByFinish)
{
    Simulation ref;
    EventTraceRecorder recorder;
    recorder.attach(ref.eventQueue());
    CallbackEvent a1([] {}, EventPriority::deferred, "ev.a");
    CallbackEvent b1([] {}, EventPriority::deferred, "ev.b");
    ref.eventQueue().schedule(a1, 100);
    ref.eventQueue().schedule(b1, 150);
    ref.runUntil(200);
    recorder.detach();

    Simulation sim;
    EventTraceComparer comparer(recorder.trace());
    comparer.attach(sim.eventQueue());
    CallbackEvent a2([] {}, EventPriority::deferred, "ev.a");
    sim.eventQueue().schedule(a2, 100);
    sim.runUntil(200);
    comparer.detach();
    EXPECT_FALSE(comparer.diverged()); // not known short until...
    comparer.finish();
    ASSERT_TRUE(comparer.diverged());
    EXPECT_FALSE(comparer.divergence()->actual.has_value());
    EXPECT_EQ(comparer.divergence()->expected->name, "ev.b");
}
