/**
 * @file
 * Property tests over randomized experimental conditions: for any
 * (governor, scheduler parameters, core combination, thermal
 * setting) drawn from a seeded generator, a run must uphold the
 * workbench's global invariants - energy accounting consistency,
 * TLP/efficiency shares summing correctly, per-task runtimes bounded
 * by wall time, and respect for the hotplug mask.
 */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "core/experiment.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

ExperimentConfig
randomConfig(Rng &rng)
{
    ExperimentConfig cfg;
    const GovernorKind kinds[] = {
        GovernorKind::interactive, GovernorKind::performance,
        GovernorKind::powersave, GovernorKind::ondemand,
        GovernorKind::conservative, GovernorKind::schedutil,
        GovernorKind::userspace,
    };
    cfg.governor = kinds[rng.uniformInt(0, 6)];
    cfg.interactive.samplingRate =
        msToTicks(rng.uniformInt(5, 120));
    cfg.interactive.targetLoad = rng.uniform(40.0, 95.0);
    cfg.interactive.goHispeedLoad =
        std::min(99.0, cfg.interactive.targetLoad + 10.0);
    cfg.sched.upThreshold =
        static_cast<std::uint32_t>(rng.uniformInt(300, 1000));
    cfg.sched.downThreshold = static_cast<std::uint32_t>(
        rng.uniformInt(10, cfg.sched.upThreshold - 100));
    cfg.sched.loadHalfLifeMs = rng.uniform(4.0, 128.0);
    cfg.sched.upMigrationBoostFreq =
        rng.chance(0.5) ? 1400000 : 0;
    cfg.coreConfig.littleCores =
        static_cast<std::uint32_t>(rng.uniformInt(1, 4));
    cfg.coreConfig.bigCores =
        static_cast<std::uint32_t>(rng.uniformInt(0, 4));
    cfg.coreConfig.label = "random";
    cfg.thermalEnabled = rng.chance(0.7);
    cfg.userspaceLittleFreq = 0;
    cfg.userspaceBigFreq = 0;
    return cfg;
}

void
checkInvariants(const ExperimentConfig &cfg, const AppRunResult &r)
{
    // Energy accounting.
    EXPECT_GT(r.energy.totalMj(), 0.0);
    EXPECT_GE(r.energy.coreDynamicMj, 0.0);
    EXPECT_GE(r.energy.coreStaticMj, 0.0);
    EXPECT_NEAR(r.avgPowerMw,
                r.energy.totalMj() / ticksToSeconds(r.simulatedTime),
                1e-6);
    EXPECT_GT(r.avgPowerMw, 150.0);
    EXPECT_LT(r.avgPowerMw, 20000.0);

    // TLP shares.
    if (r.tlp.idlePct < 100.0) {
        EXPECT_NEAR(r.tlp.littleSharePct + r.tlp.bigSharePct, 100.0,
                    1e-6);
    }
    EXPECT_LE(r.tlp.tlp,
              static_cast<double>(cfg.coreConfig.littleCores +
                                  cfg.coreConfig.bigCores) +
                  1e-9);
    double matrix_sum = 0.0;
    for (const auto &row : r.tlp.matrixPct)
        for (const double cell : row)
            matrix_sum += cell;
    EXPECT_NEAR(matrix_sum, 100.0, 1e-6);

    // Hotplug mask respected: no activity beyond the online cores.
    for (std::size_t b = cfg.coreConfig.bigCores + 1; b <= 4; ++b)
        for (std::size_t l = 0; l <= 4; ++l)
            EXPECT_DOUBLE_EQ(r.tlp.matrixPct[b][l], 0.0);
    for (std::size_t l = cfg.coreConfig.littleCores + 1; l <= 4; ++l)
        for (std::size_t b = 0; b <= 4; ++b)
            EXPECT_DOUBLE_EQ(r.tlp.matrixPct[b][l], 0.0);
    if (cfg.coreConfig.bigCores == 0) {
        EXPECT_DOUBLE_EQ(r.tlp.bigSharePct, 0.0);
    }

    // Efficiency decomposition sums to 100 when it observed work.
    const EfficiencyReport &e = r.efficiency;
    if (e.executionWindows > 0) {
        EXPECT_NEAR(e.minPct + e.below50Pct + e.from50to70Pct +
                        e.from70to95Pct + e.above95Pct + e.fullPct,
                    100.0, 1e-6);
    }

    // Per-task runtimes bounded by wall time, and consistent.
    for (const TaskSummary &t : r.tasks) {
        EXPECT_LE(t.littleRuntime + t.bigRuntime,
                  r.simulatedTime + oneMs)
            << t.name;
        if (cfg.coreConfig.bigCores == 0) {
            EXPECT_EQ(t.bigRuntime, 0u) << t.name;
        }
        EXPECT_GE(t.instructionsRetired, 0.0);
    }

    // Residency fractions sum to 1 per cluster with activity.
    for (const FreqResidency *res :
         {&r.littleResidency, &r.bigResidency}) {
        if (res->totalActiveSeconds <= 0.0)
            continue;
        double sum = 0.0;
        for (const auto &entry : res->entries)
            sum += entry.fraction;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

class RandomConfigSweep : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(RandomConfigSweep, InvariantsHoldUnderArbitraryConfigs)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    const ExperimentConfig cfg = randomConfig(rng);

    // Rotate through apps so every archetype is exercised.
    const auto apps = allApps();
    AppSpec app = apps[static_cast<std::size_t>(GetParam()) %
                       apps.size()];
    if (app.metric == AppMetric::fps)
        app.duration = msToTicks(1500);
    else
        app.duration = msToTicks(30000);

    Experiment experiment(cfg);
    const AppRunResult result = experiment.runApp(app);
    checkInvariants(cfg, result);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomConfigSweep,
                         ::testing::Range(0, 24));
