/**
 * @file
 * ablint CLI.
 *
 *   ablint --repo <root> [--baseline F] [--registry F]
 *          [--write-baseline F] [--list-rules] [extra paths...]
 *
 * Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
 */

#include "ablint.hh"

#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

int
main(int argc, char **argv)
{
    using namespace biglittle::ablint;

    std::string repo = ".";
    std::string baseline;
    std::string registry;
    std::string writeBaseline;
    std::vector<std::string> extras;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "ablint: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--repo") {
            repo = value();
        } else if (arg == "--baseline") {
            baseline = value();
        } else if (arg == "--registry") {
            registry = value();
        } else if (arg == "--write-baseline") {
            writeBaseline = value();
        } else if (arg == "--list-rules") {
            for (const auto &name : ruleNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: ablint [--repo ROOT] [--baseline FILE]\n"
                "              [--registry FILE] [--write-baseline "
                "FILE]\n"
                "              [--list-rules] [extra paths...]\n"
                "\n"
                "Determinism & error-discipline lint over src/ and\n"
                "tests/.  See docs/STATIC_ANALYSIS.md.\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "ablint: unknown option '%s'\n",
                         arg.c_str());
            return 2;
        } else {
            extras.push_back(arg);
        }
    }

    std::vector<Finding> findings;
    try {
        findings = runOnRepo(repo, baseline, registry, extras);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (!writeBaseline.empty()) {
        std::ofstream out(writeBaseline);
        if (!out) {
            std::fprintf(stderr,
                         "ablint: cannot write baseline '%s'\n",
                         writeBaseline.c_str());
            return 2;
        }
        out << "# ablint suppression baseline: path:line:rule\n"
            << "# regenerate with: ablint --repo . "
               "--write-baseline tools/ablint/baseline.txt\n";
        for (const auto &f : findings) {
            if (f.rule == "stale-baseline")
                continue;
            out << f.file << ":" << f.line << ":" << f.rule << "\n";
        }
        std::printf("ablint: wrote %zu baseline entr%s to %s\n",
                    findings.size(),
                    findings.size() == 1 ? "y" : "ies",
                    writeBaseline.c_str());
        return 0;
    }

    for (const auto &f : findings)
        std::printf("%s\n", f.format().c_str());
    if (findings.empty()) {
        std::printf("ablint: clean\n");
        return 0;
    }
    std::printf("ablint: %zu finding(s)\n", findings.size());
    return 1;
}
