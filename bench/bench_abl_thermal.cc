/**
 * @file
 * Ablation: the thermal throttle.
 *
 * The Monsoon-metered phone in the paper is implicitly thermally
 * limited; our model makes the limit explicit.  This bench compares
 * performance and power with the throttle enabled vs disabled for
 * the apps that stress the big cluster, plus a synthetic
 * fully-parallel big-cluster load where the effect is largest.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"
#include "governor/interactive.hh"
#include "platform/power.hh"
#include "platform/thermal.hh"

using namespace biglittle;

namespace
{

/** Four endless compute hogs pinned to the big cores for 10 s. */
double
saturatedBigPowerMw(bool thermal)
{
    Simulation sim;
    AsymmetricPlatform plat(sim, exynos5422Params());
    HmpScheduler sched(sim, plat, baselineSchedParams());
    InteractiveGovernor gov(sim, plat.bigCluster(),
                            defaultInteractiveParams());
    ThermalThrottle throttle(sim, plat.bigCluster());
    PowerModel power(plat);
    gov.start();
    if (thermal)
        throttle.start();
    sched.start();
    for (CoreId id = 4; id < 8; ++id) {
        Task &t = sched.createTask("burn" + std::to_string(id),
                                   WorkClass{0.8, 0.0, 64.0}, id);
        t.submitWork(1e15);
    }
    const PowerSnapshot before = power.snapshot();
    sim.runFor(msToTicks(10000));
    const PowerSnapshot after = power.snapshot();
    return power.energyBetween(before, after).averagePowerMw();
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_abl_thermal",
                   "ablation: thermal throttling of the big cluster");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "perf_thermal", "perf_unlimited",
                     "power_thermal_mw", "power_unlimited_mw"});
    }

    ExperimentConfig thermal_cfg;
    thermal_cfg.label = "thermal";
    ExperimentConfig unlimited_cfg;
    unlimited_cfg.thermalEnabled = false;
    unlimited_cfg.label = "unlimited";

    const std::vector<AppSpec> apps = {
        bbenchApp(), encoderApp(), virusScannerApp(),
        eternityWarrior2App(),
    };
    const auto with_thermal = runApps(thermal_cfg, apps);
    const auto unlimited = runApps(unlimited_cfg, apps);

    std::printf("%s\n",
                (padRight("app", 20) + padLeft("perf therm", 12) +
                 padLeft("perf unlim", 12) + padLeft("pwr therm", 11) +
                 padLeft("pwr unlim", 11))
                    .c_str());
    std::puts("  (latency ms or avg FPS; power in mW)");
    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::printf("%s%12.1f%12.1f%11.0f%11.0f\n",
                    padRight(apps[i].name, 20).c_str(),
                    with_thermal[i].performanceValue(),
                    unlimited[i].performanceValue(),
                    with_thermal[i].avgPowerMw,
                    unlimited[i].avgPowerMw);
        if (csv) {
            csv->beginRow();
            csv->cell(apps[i].name);
            csv->cell(with_thermal[i].performanceValue());
            csv->cell(unlimited[i].performanceValue());
            csv->cell(with_thermal[i].avgPowerMw);
            csv->cell(unlimited[i].avgPowerMw);
            csv->endRow();
        }
    }
    std::puts("\n(the Table II apps rarely sustain several big "
              "cores long enough to trip the throttle; a synthetic "
              "fully parallel big-cluster load shows the cap)");
    const double hot = saturatedBigPowerMw(false);
    const double cool = saturatedBigPowerMw(true);
    std::printf("%s%12s%12s%11.0f%11.0f\n",
                padRight("4x big hogs (10 s)", 20).c_str(), "-", "-",
                cool, hot);
    if (csv) {
        csv->beginRow();
        csv->cell(std::string("big_saturation"));
        csv->cell(0.0);
        csv->cell(0.0);
        csv->cell(cool);
        csv->cell(hot);
        csv->endRow();
    }
    return 0;
}
