/**
 * @file
 * Tests for the WorkflowDriver: action sequencing, fan-out barriers,
 * think times, and latency measurement.
 */

#include <gtest/gtest.h>

#include "platform/perf_model.hh"
#include "platform/platform.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "workload/workflow.hh"

using namespace biglittle;

namespace
{

class WorkflowTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    HmpScheduler sched{sim, plat, baselineSchedParams()};

    std::unique_ptr<BurstBehavior> ui;
    std::vector<std::unique_ptr<BurstBehavior>> workers;
    std::vector<BurstBehavior *> workerPtrs;

    void
    SetUp() override
    {
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        plat.bigCluster().freqDomain().setFreqNow(1900000);
        sched.start();
        const WorkClass wc{0.8, 0.0, 64.0};
        Task &ui_task = sched.createTask("ui", wc);
        ui = std::make_unique<BurstBehavior>(sim, ui_task, Rng(1));
        for (int i = 0; i < 2; ++i) {
            Task &t = sched.createTask("w" + std::to_string(i), wc);
            workers.push_back(
                std::make_unique<BurstBehavior>(sim, t, Rng(2 + i)));
            workerPtrs.push_back(workers.back().get());
        }
    }

    double
    littleRate()
    {
        return perf_model::instRate(plat.littleCluster().core(0),
                                    WorkClass{0.8, 0.0, 64.0});
    }
};

} // namespace

TEST_F(WorkflowTest, SingleActionCompletes)
{
    std::vector<ActionSpec> actions = {
        {1e6, {2e6, 3e6}, msToTicks(0)},
    };
    WorkflowDriver driver(sim, *ui, workerPtrs, actions, Rng(9), 0.0);
    EXPECT_FALSE(driver.done());
    driver.start();
    sim.runFor(msToTicks(200));
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(driver.actionsCompleted(), 1u);
    EXPECT_GT(driver.latency(), 0u);
}

TEST_F(WorkflowTest, LatencyMatchesCriticalPath)
{
    // One action: ui 1 ms, workers 5 ms and 2 ms in parallel; the
    // latency is the slowest leg (5 ms) as all start together.
    const double r = littleRate();
    std::vector<ActionSpec> actions = {
        {r * 0.001, {r * 0.005, r * 0.002}, msToTicks(0)},
    };
    WorkflowDriver driver(sim, *ui, workerPtrs, actions, Rng(9), 0.0);
    driver.start();
    sim.runFor(msToTicks(100));
    ASSERT_TRUE(driver.done());
    EXPECT_NEAR(static_cast<double>(driver.latency()) /
                    static_cast<double>(oneMs),
                5.0, 0.5);
}

TEST_F(WorkflowTest, ThinkTimeSeparatesActions)
{
    const double r = littleRate();
    std::vector<ActionSpec> actions = {
        {r * 0.001, {0.0, 0.0}, msToTicks(50)},
        {r * 0.001, {0.0, 0.0}, msToTicks(0)},
    };
    WorkflowDriver driver(sim, *ui, workerPtrs, actions, Rng(9), 0.0);
    driver.start();
    sim.runFor(msToTicks(500));
    ASSERT_TRUE(driver.done());
    // ~1 ms + 50 ms think + ~1 ms.
    EXPECT_NEAR(static_cast<double>(driver.latency()) /
                    static_cast<double>(oneMs),
                52.0, 1.0);
}

TEST_F(WorkflowTest, ZeroWorkerEntriesAreSkipped)
{
    std::vector<ActionSpec> actions = {
        {1e6, {0.0, 1e6}, msToTicks(0)},
        {1e6, {}, msToTicks(0)}, // no workers at all
    };
    WorkflowDriver driver(sim, *ui, workerPtrs, actions, Rng(9), 0.0);
    driver.start();
    sim.runFor(msToTicks(500));
    EXPECT_TRUE(driver.done());
    EXPECT_EQ(workers[0]->burstsDone(), 0u);
    EXPECT_EQ(workers[1]->burstsDone(), 1u);
    EXPECT_EQ(ui->burstsDone(), 2u);
}

TEST_F(WorkflowTest, ActionsRunInOrder)
{
    const double r = littleRate();
    std::vector<ActionSpec> actions(
        5, ActionSpec{r * 0.002, {r * 0.002, 0.0}, msToTicks(10)});
    WorkflowDriver driver(sim, *ui, workerPtrs, actions, Rng(9), 0.0);
    driver.start();
    for (int expected = 1; expected <= 5; ++expected) {
        sim.runFor(msToTicks(12));
        EXPECT_EQ(driver.actionsCompleted(),
                  static_cast<std::size_t>(expected));
    }
    EXPECT_TRUE(driver.done());
}

TEST_F(WorkflowTest, JitterPreservesDeterminism)
{
    // Two identical drivers with equal seeds produce identical
    // latencies even with jitter enabled.
    auto run_once = [](std::uint64_t seed) {
        Simulation sim2;
        AsymmetricPlatform plat2(sim2, exynos5422Params());
        plat2.littleCluster().freqDomain().setFreqNow(1300000);
        HmpScheduler sched2(sim2, plat2, baselineSchedParams());
        sched2.start();
        const WorkClass wc{0.8, 0.0, 64.0};
        Task &ui_task = sched2.createTask("ui", wc);
        BurstBehavior ui2(sim2, ui_task, Rng(seed));
        std::vector<ActionSpec> actions(
            4, ActionSpec{5e6, {}, msToTicks(5)});
        WorkflowDriver driver(sim2, ui2, {}, actions, Rng(seed), 0.3);
        driver.start();
        sim2.runFor(msToTicks(1000));
        return driver.latency();
    };
    EXPECT_EQ(run_once(11), run_once(11));
    EXPECT_NE(run_once(11), run_once(12));
}

TEST_F(WorkflowTest, LatencyBeforeDoneAsserts)
{
    std::vector<ActionSpec> actions = {{1e9, {}, 0}};
    WorkflowDriver driver(sim, *ui, workerPtrs, actions, Rng(9));
    driver.start();
    EXPECT_DEATH((void)driver.latency(), "assertion");
}
