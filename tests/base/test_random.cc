/**
 * @file
 * Tests for the deterministic RNG: reproducibility, independence of
 * forked streams, and sanity of the distributions (property-style
 * sweeps over seeds).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "base/random.hh"

using namespace biglittle;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 32; ++i)
        seen.insert(r.next());
    EXPECT_GT(seen.size(), 30u); // not stuck
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng r(7);
    const auto first = r.next();
    r.next();
    r.seed(7);
    EXPECT_EQ(r.next(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(42);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(42);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(-3.0, 7.0);
        ASSERT_GE(v, -3.0);
        ASSERT_LT(v, 7.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniformInt(3, 6);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values hit
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialIsPositive)
{
    Rng r(12);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsConverge)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, LogNormalMedianConverges)
{
    Rng r(14);
    std::vector<double> v;
    const int n = 20001;
    v.reserve(n);
    for (int i = 0; i < n; ++i)
        v.push_back(r.logNormal(8.0, 0.5));
    std::sort(v.begin(), v.end());
    EXPECT_NEAR(v[n / 2], 8.0, 0.25);
    for (double x : v)
        ASSERT_GT(x, 0.0);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(15);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceProbabilityConverges)
{
    Rng r(16);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentOfParentUse)
{
    // The child stream must not change when the parent draws more.
    Rng parent1(99);
    Rng child1 = parent1.fork();
    const auto c1 = child1.next();

    Rng parent2(99);
    Rng child2 = parent2.fork();
    parent2.next();
    parent2.next();
    EXPECT_EQ(child2.next(), c1);
}

/** Property sweep: every seed produces in-range uniforms. */
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedSweep, UniformStaysInRange)
{
    Rng r(GetParam());
    double min = 1.0, max = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const double u = r.uniform();
        min = std::min(min, u);
        max = std::max(max, u);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
    // The stream should cover most of the interval.
    EXPECT_LT(min, 0.01);
    EXPECT_GT(max, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xDEADBEEFull,
                                           0xFFFFFFFFFFFFFFFFull));

TEST(NamedStreams, SameMasterSameNameReproduces)
{
    EXPECT_EQ(deriveStreamSeed(42, "fault"),
              deriveStreamSeed(42, "fault"));
    Rng a = namedStream(42, "app.bbench");
    Rng b = namedStream(42, "app.bbench");
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(NamedStreams, DifferentNamesGiveDifferentStreams)
{
    EXPECT_NE(deriveStreamSeed(42, "fault"),
              deriveStreamSeed(42, "app.bbench"));
    EXPECT_NE(deriveStreamSeed(42, "app.a"),
              deriveStreamSeed(42, "app.b"));
    // Streams must look unrelated, not just start differently.
    Rng a = namedStream(42, "app.a");
    Rng b = namedStream(42, "app.b");
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(NamedStreams, DifferentMastersGiveDifferentStreams)
{
    EXPECT_NE(deriveStreamSeed(1, "fault"),
              deriveStreamSeed(2, "fault"));
}

TEST(NamedStreams, ZeroMasterIsAUsableSeedSpace)
{
    // masterSeed == 0 is the "legacy seeds" sentinel at the config
    // level, but the derivation itself must still work (kernels etc.
    // pass arbitrary masters through).
    EXPECT_NE(deriveStreamSeed(0, "a"), deriveStreamSeed(0, "b"));
}

TEST(NamedStreams, StreamIsIndependentOfSiblingDraws)
{
    // Drawing from one subsystem's stream must never shift a
    // sibling's - the whole point of per-name derivation.
    Rng fault1 = namedStream(9, "fault");
    Rng app1 = namedStream(9, "app.x");
    (void)fault1.next();
    const auto first = app1.next();

    Rng fault2 = namedStream(9, "fault");
    for (int i = 0; i < 100; ++i)
        (void)fault2.next();
    Rng app2 = namedStream(9, "app.x");
    EXPECT_EQ(app2.next(), first);
}
