/**
 * @file
 * Optional libFuzzer harness over the same decode surfaces abfuzz
 * exercises.  Built only with -DBIGLITTLE_LIBFUZZER=ON under clang
 * (the driver comes from -fsanitize=fuzzer); the default GCC/ctest
 * path never compiles this file, so the repo stays fuzzable without
 * clang installed.
 *
 * The first input byte selects the target, the rest is the payload —
 * one binary covers all four surfaces and a coverage-guided run can
 * shift effort between them.  Corpus files from tests/fuzz/corpus/
 * can be used directly by prefixing the selector byte.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fuzz/targets.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    using namespace biglittle;
    if (size == 0)
        return 0;
    static const auto targets = allFuzzTargets();
    const FuzzTarget &target = *targets[data[0] % targets.size()];
    const std::vector<std::uint8_t> input(data + 1, data + size);
    target.run(input);
    return 0;
}
