/**
 * @file
 * Extension: HMP (Exynos 5422) vs cluster migration (Exynos 5410).
 *
 * Section II notes the studied platform's key advance over its
 * predecessor: "any combination of big and little cores can be
 * active, unlike the limitation of the previous big-little
 * implementation, which allowed only either big or little cores".
 * This bench quantifies that advance: each app runs once under the
 * default HMP system and once under a 5410-style whole-cluster
 * switcher, comparing performance and power.
 */

#include <cstdio>

#include "base/argparse.hh"
#include "base/csv.hh"
#include "base/strutil.hh"
#include "bench_util.hh"
#include "governor/interactive.hh"
#include "platform/power.hh"
#include "platform/thermal.hh"
#include "sched/cluster_switcher.hh"

using namespace biglittle;

namespace
{

struct MigrationResult
{
    double perf;
    double powerMw;
    std::uint64_t switches;
};

/** Run @p app under the 5410-style cluster-migration system. */
MigrationResult
runClusterMigration(const AppSpec &app)
{
    Simulation sim;
    PlatformParams params = exynos5422Params();
    params.enforceBootCore = false;
    AsymmetricPlatform plat(sim, params);
    HmpScheduler sched(sim, plat, baselineSchedParams());
    InteractiveGovernor lg(sim, plat.littleCluster(),
                           defaultInteractiveParams());
    InteractiveGovernor bg(sim, plat.bigCluster(),
                           defaultInteractiveParams());
    ThermalThrottle lt(sim, plat.littleCluster());
    ThermalThrottle bt(sim, plat.bigCluster());
    ClusterSwitcher switcher(sim, plat, sched);
    PowerModel power(plat);
    AppInstance instance(sim, sched, app);

    lg.start();
    bg.start();
    lt.start();
    bt.start();
    sched.start();
    switcher.start();
    const PowerSnapshot before = power.snapshot();
    const Tick start = sim.now();
    instance.start();

    if (app.metric == AppMetric::latency) {
        const Tick cap = start + app.duration;
        while (!instance.done() && sim.now() < cap)
            sim.runFor(msToTicks(10));
    } else {
        sim.runUntil(start + app.duration);
    }

    const PowerSnapshot after = power.snapshot();
    MigrationResult result;
    result.perf = app.metric == AppMetric::latency
        ? static_cast<double>(instance.latency()) /
              static_cast<double>(oneMs)
        : instance.frameStats().averageFps();
    result.powerMw =
        power.energyBetween(before, after).averagePowerMw();
    result.switches = switcher.switches();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("bench_abl_cluster_migration",
                   "HMP (5422) vs cluster migration (5410)");
    args.addString("csv", "", "mirror rows into this CSV file");
    args.parse(argc, argv);

    std::unique_ptr<CsvWriter> csv = openCsvOrExit(args);
    if (csv) {
        csv->header({"app", "metric", "perf_hmp", "perf_migration",
                     "perf_loss_pct", "power_hmp_mw",
                     "power_migration_mw", "switches"});
    }

    const auto apps = allApps();
    const auto hmp = runApps(baselineConfig(), apps);

    std::printf("%s\n",
                (padRight("app", 20) + padLeft("HMP", 9) +
                 padLeft("cl-migr", 9) + padLeft("loss %", 8) +
                 padLeft("pwr HMP", 9) + padLeft("pwr migr", 10) +
                 padLeft("switches", 10))
                    .c_str());
    std::puts("  (latency ms or avg FPS; loss = performance cost of "
              "whole-cluster switching)");

    for (std::size_t i = 0; i < apps.size(); ++i) {
        std::fprintf(stderr, "  [cluster-migration] running %s...\n",
                     apps[i].name.c_str());
        const MigrationResult migr = runClusterMigration(apps[i]);
        const double perf_hmp = hmp[i].performanceValue();
        double loss;
        if (apps[i].metric == AppMetric::latency)
            loss = pctChange(migr.perf, perf_hmp);
        else
            loss = -pctChange(migr.perf, perf_hmp);
        std::printf("%s%9.1f%9.1f%8.1f%9.0f%10.0f%10llu\n",
                    padRight(apps[i].name, 20).c_str(), perf_hmp,
                    migr.perf, loss, hmp[i].avgPowerMw, migr.powerMw,
                    static_cast<unsigned long long>(migr.switches));
        if (csv) {
            csv->beginRow();
            csv->cell(apps[i].name);
            csv->cell(std::string(appMetricName(apps[i].metric)));
            csv->cell(perf_hmp);
            csv->cell(migr.perf);
            csv->cell(loss);
            csv->cell(hmp[i].avgPowerMw);
            csv->cell(migr.powerMw);
            csv->cell(static_cast<std::uint64_t>(migr.switches));
        csv->endRow();
        }
    }
    return 0;
}
