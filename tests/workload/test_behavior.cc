/**
 * @file
 * Tests for the thread behaviors: continuous budgets, vsync-paced
 * frame loops (with skips and scene pauses), burst injection, and
 * the duty-cycle microbenchmark behavior.
 */

#include <gtest/gtest.h>

#include "platform/perf_model.hh"
#include "platform/platform.hh"
#include "sched/hmp.hh"
#include "sim/simulation.hh"
#include "workload/behavior.hh"
#include "workload/microbench.hh"

using namespace biglittle;

namespace
{

class BehaviorTest : public ::testing::Test
{
  protected:
    Simulation sim;
    AsymmetricPlatform plat{sim, exynos5422Params()};
    HmpScheduler sched{sim, plat, baselineSchedParams()};

    void
    SetUp() override
    {
        plat.littleCluster().freqDomain().setFreqNow(1300000);
        plat.bigCluster().freqDomain().setFreqNow(1900000);
        sched.start();
    }

    static WorkClass
    pureCompute()
    {
        return WorkClass{0.8, 0.0, 64.0};
    }

    double
    littleRate()
    {
        return perf_model::instRate(plat.littleCluster().core(0),
                                    pureCompute());
    }
};

} // namespace

TEST_F(BehaviorTest, ContinuousCompletesBudget)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    Tick done_at = 0;
    ContinuousBehavior b(sim, t, Rng(1), 10e6,
                         [&](Tick at) { done_at = at; });
    b.start();
    sim.runFor(msToTicks(100));
    EXPECT_TRUE(b.complete());
    EXPECT_GT(done_at, 0u);
    EXPECT_EQ(b.completionTick(), done_at);
    EXPECT_NEAR(t.instructionsRetired(), 10e6, 1.0);
}

TEST_F(BehaviorTest, ContinuousCompletionTimeIsAnalytic)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    ContinuousBehavior b(sim, t, Rng(1), littleRate() * 0.5);
    b.start();
    sim.runFor(msToTicks(2000));
    ASSERT_TRUE(b.complete());
    EXPECT_NEAR(ticksToSeconds(b.completionTick()), 0.5, 0.01);
}

TEST_F(BehaviorTest, PeriodicProducesFramesAtVsyncRate)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    PeriodicSpec spec;
    spec.period = msToTicks(20);
    spec.instPerPeriod = littleRate() * 0.004; // 4 ms per frame
    spec.jitterSigma = 0.0;
    FrameStats stats;
    PeriodicBehavior b(sim, t, Rng(2), spec, &stats);
    b.start();
    sim.runFor(msToTicks(2000));
    // 50 Hz pacing with light frames: ~100 frames in 2 s.
    EXPECT_NEAR(static_cast<double>(b.framesDone()), 100.0, 2.0);
    EXPECT_NEAR(stats.averageFps(), 50.0, 1.0);
}

TEST_F(BehaviorTest, OverloadedPeriodicRunsBackToBack)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    PeriodicSpec spec;
    spec.period = msToTicks(10);
    spec.instPerPeriod = littleRate() * 0.025; // 25 ms per frame
    spec.jitterSigma = 0.0;
    FrameStats stats;
    PeriodicBehavior b(sim, t, Rng(2), spec, &stats);
    b.start();
    sim.runFor(msToTicks(1000));
    // Fully saturated: ~40 FPS equivalent of 25 ms frames.
    EXPECT_NEAR(stats.averageFps(), 40.0, 2.0);
}

TEST_F(BehaviorTest, ActiveProbabilitySkipsFrames)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    PeriodicSpec spec;
    spec.period = msToTicks(10);
    spec.instPerPeriod = littleRate() * 0.001;
    spec.activeProbability = 0.3;
    PeriodicBehavior b(sim, t, Rng(3), spec);
    b.start();
    sim.runFor(msToTicks(5000));
    // ~500 periods at p=0.3: ~150 frames.
    EXPECT_NEAR(static_cast<double>(b.framesDone()), 150.0, 30.0);
}

TEST_F(BehaviorTest, ScenePauseCreatesGaps)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    PeriodicSpec spec;
    spec.period = msToTicks(10);
    spec.instPerPeriod = littleRate() * 0.002;
    spec.jitterSigma = 0.0;
    spec.pauseCycle = msToTicks(100);
    spec.pauseLength = msToTicks(40);
    FrameStats stats;
    PeriodicBehavior b(sim, t, Rng(4), spec, &stats);
    b.start();
    sim.runFor(msToTicks(2000));
    // 40% of the time is paused: ~6 frames per 100 ms cycle.
    EXPECT_NEAR(static_cast<double>(b.framesDone()), 120.0, 15.0);
    // The pause shows up as a >= 40 ms frame interval.
    EXPECT_GT(stats.frameIntervalsMs().max(), 39.0);
}

TEST_F(BehaviorTest, BurstBehaviorRunsInjectedWork)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    BurstBehavior b(sim, t, Rng(5));
    int drains = 0;
    Tick last_drain = 0;
    b.setDrainListener([&](BurstBehavior &, Tick now) {
        ++drains;
        last_drain = now;
    });
    b.start();
    sim.runFor(msToTicks(10));
    EXPECT_EQ(drains, 0); // nothing injected yet
    b.injectBurst(1e6);
    sim.runFor(msToTicks(50));
    EXPECT_EQ(drains, 1);
    EXPECT_EQ(b.burstsDone(), 1u);
    b.injectBurst(1e6);
    sim.runFor(msToTicks(50));
    EXPECT_EQ(drains, 2);
    EXPECT_GT(last_drain, msToTicks(60));
}

TEST_F(BehaviorTest, DutyCycleHoldsTargetUtilization)
{
    for (const double target : {0.25, 0.5, 0.9}) {
        Simulation sim2;
        AsymmetricPlatform plat2(sim2, exynos5422Params());
        plat2.littleCluster().freqDomain().setFreqNow(1300000);
        HmpScheduler sched2(sim2, plat2, baselineSchedParams());
        sched2.start();
        Task &t = sched2.createTask("duty", pureCompute(), CoreId{0});
        DutyCycleBehavior b(sim2, t, Rng(6), target);
        b.start();
        sim2.runFor(msToTicks(4000));
        plat2.sync();
        const double util =
            static_cast<double>(plat2.core(0).busyTicks()) /
            static_cast<double>(sim2.now());
        EXPECT_NEAR(util, target, 0.03) << "target " << target;
    }
}

TEST_F(BehaviorTest, DutyCycleAdaptsToFrequencyChange)
{
    Task &t = sched.createTask("duty", pureCompute(), CoreId{0});
    DutyCycleBehavior b(sim, t, Rng(7), 0.5);
    b.start();
    sim.runFor(msToTicks(1000));
    // Halve the clock: work chunks take twice as long, but the
    // pauses stretch proportionally and utilization stays at 50%.
    plat.littleCluster().freqDomain().setFreqNow(650000);
    plat.sync();
    const Tick busy_before = plat.core(0).busyTicks();
    const Tick t_before = sim.now();
    sim.runFor(msToTicks(3000));
    plat.sync();
    const double util =
        static_cast<double>(plat.core(0).busyTicks() - busy_before) /
        static_cast<double>(sim.now() - t_before);
    EXPECT_NEAR(util, 0.5, 0.03);
}

TEST_F(BehaviorTest, UtilizationMicrobenchWrapsDutyCycle)
{
    Simulation sim2;
    AsymmetricPlatform plat2(sim2, exynos5422Params());
    plat2.bigCluster().freqDomain().setFreqNow(1400000);
    HmpScheduler sched2(sim2, plat2, baselineSchedParams());
    sched2.start();
    UtilizationMicrobench bench(sim2, sched2, CoreId{5}, 0.35);
    EXPECT_DOUBLE_EQ(bench.targetUtilization(), 0.35);
    bench.start();
    sim2.runFor(msToTicks(3000));
    plat2.sync();
    EXPECT_EQ(bench.task().core()->id(), 5u); // pinned
    const double util =
        static_cast<double>(plat2.core(5).busyTicks()) /
        static_cast<double>(sim2.now());
    EXPECT_NEAR(util, 0.35, 0.03);
}

TEST_F(BehaviorTest, BehaviorDetachesClientOnDestruction)
{
    Task &t = sched.createTask("t", pureCompute(), CoreId{0});
    {
        BurstBehavior b(sim, t, Rng(8));
        EXPECT_EQ(t.client(), &b);
    }
    EXPECT_EQ(t.client(), nullptr);
}
