#include "platform/thermal.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/serialize.hh"
#include "platform/power.hh"

namespace biglittle
{

ThermalThrottle::ThermalThrottle(Simulation &sim_in, Cluster &cluster,
                                 const ThermalParams &params)
    : sim(sim_in), clusterRef(cluster), tp(params), temp(params.ambientC),
      lastEval(sim_in.now()),
      ceilingIndex(cluster.freqDomain().opps().size() - 1)
{
    BL_ASSERT(tp.heatCapacityJPerC > 0.0);
    BL_ASSERT(tp.conductanceWPerC > 0.0);
    BL_ASSERT(tp.hotTripC > tp.coolTripC);
    BL_ASSERT(tp.evalPeriod > 0);
}

FreqKHz
ThermalThrottle::ceiling() const
{
    return clusterRef.freqDomain().opps()[ceilingIndex].freq;
}

void
ThermalThrottle::start()
{
    lastEval = sim.now();
    if (evalTask == nullptr) {
        evalTask = &sim.addPeriodic(
            tp.evalPeriod, [this](Tick now) { evaluate(now); },
            offsetPriority(EventPriority::thermal,
                           clusterRef.core(0).id(), clusterSlots),
            clusterRef.name() + ".thermal");
    }
    evalTask->start();
}

void
ThermalThrottle::stop()
{
    if (evalTask != nullptr)
        evalTask->cancel();
}

void
ThermalThrottle::clampTemperature()
{
    // A perturbed sensor may bias the throttle but must never wedge
    // the model: reject NaN/inf and keep the reading in a plausible
    // band so the Euler step stays stable.
    if (!std::isfinite(temp)) {
        warn("%s: non-finite temperature reading; resetting to "
             "ambient", clusterRef.name().c_str());
        temp = tp.ambientC;
        return;
    }
    temp = std::clamp(temp, tp.ambientC, 300.0);
}

void
ThermalThrottle::injectTemperature(double delta_c)
{
    sim.noteWrite(clusterRef.name(), "temp");
    ++spikes;
    temp += delta_c;
    clampTemperature();
}

void
ThermalThrottle::evaluate(Tick now)
{
    const std::string &cluster_name = clusterRef.name();
    sim.noteRead(cluster_name, "power");
    sim.noteWrite(cluster_name, "temp");
    const double dt = ticksToSeconds(now - lastEval);
    lastEval = now;
    const double power_w =
        clusterInstantPowerMw(clusterRef) / 1000.0;
    // Explicit Euler on C*dT/dt = P - G*(T - Tamb); the evaluation
    // period is far below the thermal time constant, so this is
    // stable and accurate enough.
    temp += dt *
            (power_w - tp.conductanceWPerC * (temp - tp.ambientC)) /
            tp.heatCapacityJPerC;
    clampTemperature();

    FreqDomain &domain = clusterRef.freqDomain();
    if (temp > tp.hotTripC && ceilingIndex > 0) {
        --ceilingIndex;
        ++throttles;
        domain.setCeiling(domain.opps()[ceilingIndex].freq);
    } else if (temp < tp.coolTripC &&
               ceilingIndex + 1 < domain.opps().size()) {
        ++ceilingIndex;
        domain.setCeiling(domain.opps()[ceilingIndex].freq);
    }
}

void
ThermalThrottle::serialize(Serializer &s) const
{
    s.putDouble(temp);
    s.putU64(lastEval);
    s.putU64(ceilingIndex);
    s.putU64(throttles);
    s.putU64(spikes);
}

void
ThermalThrottle::deserialize(Deserializer &d)
{
    temp = d.getDouble();
    lastEval = d.getU64();
    ceilingIndex = static_cast<std::size_t>(d.getU64());
    throttles = d.getU64();
    spikes = d.getU64();
    if (!d.ok())
        return;
    FreqDomain &domain = clusterRef.freqDomain();
    BL_ASSERT(ceilingIndex < domain.opps().size());
    domain.setCeiling(domain.opps()[ceilingIndex].freq);
}

} // namespace biglittle
