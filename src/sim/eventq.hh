/**
 * @file
 * The event queue: a total order over pending events keyed by
 * (when, priority, sequence).  Supports schedule / reschedule /
 * deschedule, which the platform uses heavily (a task-completion
 * event moves whenever its core's frequency changes).
 */

#ifndef BIGLITTLE_SIM_EVENTQ_HH
#define BIGLITTLE_SIM_EVENTQ_HH

#include <cstdint>
#include <set>

#include "base/types.hh"
#include "sim/event.hh"

namespace biglittle
{

/** Deterministic priority queue of events. */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Insert @p event to fire at absolute tick @p when.
     * @p when must not be in the past; the event must be idle.
     */
    void schedule(Event &event, Tick when);

    /** Remove a scheduled event (must currently be scheduled). */
    void deschedule(Event &event);

    /** Move a scheduled event to a new tick (deschedule+schedule). */
    void reschedule(Event &event, Tick when);

    /** True when no events are pending. */
    bool empty() const { return queue.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return queue.size(); }

    /** Tick of the next pending event (maxTick when empty). */
    Tick nextTick() const;

    /**
     * Service exactly one event (advances time to it first).
     * @return false if the queue was empty.
     */
    bool serviceOne();

    /**
     * Run events until the queue drains or the next event would fire
     * after @p until.  The clock is then parked exactly at @p until
     * so a subsequent runUntil continues from there.
     */
    void runUntil(Tick until);

    /** Total events serviced since construction. */
    std::uint64_t eventsServiced() const { return serviced; }

  private:
    struct Cmp
    {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when() != b->when())
                return a->when() < b->when();
            if (a->priority() != b->priority())
                return a->priority() < b->priority();
            return a->sequence < b->sequence;
        }
    };

    std::set<Event *, Cmp> queue;
    Tick curTick = 0;
    std::uint64_t nextSequence = 0;
    std::uint64_t serviced = 0;
};

} // namespace biglittle

#endif // BIGLITTLE_SIM_EVENTQ_HH
