/**
 * @file
 * Console table printers that mirror the layout of the paper's
 * tables and figure data series, shared by the bench binaries and
 * the examples.  Each printer can optionally mirror its rows into a
 * CSV file.
 */

#ifndef BIGLITTLE_CORE_REPORT_HH
#define BIGLITTLE_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "sched/hmp.hh"

namespace biglittle
{

class CsvWriter;

/** Table III: idle / little / big / TLP rows per app. */
void printTlpTable(const std::vector<AppRunResult> &results,
                   CsvWriter *csv = nullptr);

/** Table IV: the 5x5 big x little matrix for one app. */
void printTlpMatrix(const AppRunResult &result,
                    CsvWriter *csv = nullptr);

/** Table V: efficiency decomposition rows per app. */
void printEfficiencyTable(const std::vector<AppRunResult> &results,
                          CsvWriter *csv = nullptr);

/**
 * Figs. 9/10: per-app frequency-residency distribution of one
 * cluster (@p big selects which cluster's residency to print).
 */
void printFreqResidencyTable(const std::vector<AppRunResult> &results,
                             bool big, CsvWriter *csv = nullptr);

/** One-line performance/power summary for a run. */
void printRunSummary(const AppRunResult &result);

/**
 * Per-task breakdown of a finished run: instructions retired,
 * execution time split by core type, and type migrations.  Takes
 * the scheduler so it can walk the live task list (call before the
 * rig is torn down).
 */
void printTaskTable(const HmpScheduler &sched,
                    CsvWriter *csv = nullptr);

/** Same table from a completed run's captured task summaries. */
void printTaskTable(const AppRunResult &result,
                    CsvWriter *csv = nullptr);

} // namespace biglittle

#endif // BIGLITTLE_CORE_REPORT_HH
