/**
 * @file
 * abrace integration tests: representative fig09 (baseline config)
 * and fig13 (parameter sweep) runs must be free of same-tick event
 * order conflicts, and a permuted tie-break replay of each must land
 * on a bit-identical end state (docs/DETERMINISM.md).  A deliberately
 * injected same-tick write-write conflict must be caught by both
 * detectors: reported by abrace and visible as a digest divergence
 * under a permuted order.
 */

#include <gtest/gtest.h>

#include "base/serialize.hh"
#include "core/experiment.hh"
#include "sim/abrace.hh"
#include "sim/simulation.hh"
#include "workload/apps.hh"

using namespace biglittle;

namespace
{

/** Shortened run of @p app under @p cfg with abrace attached. */
AppRunResult
runTracked(ExperimentConfig cfg, const AppSpec &app_in,
           TieBreak tie_break)
{
    AppSpec app = app_in;
    if (app.metric == AppMetric::fps)
        app.duration = msToTicks(2500);
    cfg.race.detect = true;
    cfg.race.tieBreak = tie_break;
    Experiment experiment(cfg);
    return experiment.runApp(app);
}

void
expectPermutationInvariant(const ExperimentConfig &cfg,
                           const AppSpec &app)
{
    const AppRunResult fifo = runTracked(cfg, app, TieBreak::fifo);
    EXPECT_EQ(fifo.raceConflicts, 0u) << fifo.raceReport;

    const AppRunResult lifo = runTracked(cfg, app, TieBreak::lifo);
    EXPECT_EQ(lifo.raceConflicts, 0u) << lifo.raceReport;
    const Status lifo_match = compareStateDigests(fifo, lifo);
    EXPECT_TRUE(lifo_match.ok())
        << "lifo rerun diverged: " << lifo_match.toString();

    const AppRunResult shuffled =
        runTracked(cfg, app, TieBreak::shuffle);
    const Status shuffle_match = compareStateDigests(fifo, shuffled);
    EXPECT_TRUE(shuffle_match.ok())
        << "shuffled rerun diverged: " << shuffle_match.toString();

    // The metrics the figures are built from must agree too.
    EXPECT_EQ(fifo.frames, lifo.frames);
    EXPECT_DOUBLE_EQ(fifo.performanceValue(),
                     lifo.performanceValue());
    EXPECT_DOUBLE_EQ(fifo.avgPowerMw, lifo.avgPowerMw);
    EXPECT_DOUBLE_EQ(fifo.performanceValue(),
                     shuffled.performanceValue());
}

} // namespace

TEST(RaceDetect, Fig09BaselineCleanAndPermutationInvariant)
{
    ExperimentConfig cfg;
    cfg.label = "baseline";
    expectPermutationInvariant(cfg, eternityWarrior2App());
}

TEST(RaceDetect, Fig09LatencyAppCleanAndPermutationInvariant)
{
    ExperimentConfig cfg;
    cfg.label = "baseline";
    expectPermutationInvariant(cfg, virusScannerApp());
}

TEST(RaceDetect, Fig13SweepPointCleanAndPermutationInvariant)
{
    // interval-60ms: the first Section VI-C sweep point (Figs 11-13).
    ExperimentConfig cfg;
    cfg.interactive = interval60Params();
    cfg.label = "interval-60ms";
    expectPermutationInvariant(cfg, angryBirdApp());
}

TEST(RaceDetect, InjectedWriteWriteConflictIsCaughtBothWays)
{
    // Two unordered events at one (tick, priority) whose combined
    // effect is order-dependent: x += 1 vs x *= 2.  abrace must
    // report the write-write pair, and a permuted rerun must produce
    // a different state digest.
    const auto run = [](TieBreak tie_break, RaceDetector *race) {
        Simulation sim;
        if (race != nullptr)
            sim.eventQueue().setRaceDetector(race);
        sim.eventQueue().setTieBreak(tie_break, 7);
        std::uint64_t x = 3;
        sim.at(10, [&] {
            sim.noteWrite("toy", "x");
            x += 1;
        }, EventPriority::taskState, "toy.add");
        sim.at(10, [&] {
            sim.noteWrite("toy", "x");
            x *= 2;
        }, EventPriority::taskState, "toy.double");
        sim.runUntil(20);
        if (race != nullptr) {
            race->finish();
            sim.eventQueue().setRaceDetector(nullptr);
        }
        Serializer s;
        s.putU64(x);
        return s.digest();
    };

    RaceDetector race;
    const std::uint64_t fifo_digest = run(TieBreak::fifo, &race);
    ASSERT_EQ(race.conflicts().size(), 1u);
    const RaceDetector::Conflict &c = race.conflicts()[0];
    EXPECT_EQ(c.cell, "toy/x");
    EXPECT_TRUE(c.writeA && c.writeB);
    EXPECT_EQ(c.eventA, "toy.add");
    EXPECT_EQ(c.eventB, "toy.double");
    EXPECT_NE(race.report().find("write-write"), std::string::npos);

    const std::uint64_t lifo_digest = run(TieBreak::lifo, nullptr);
    EXPECT_NE(fifo_digest, lifo_digest)
        << "permuted tie-break failed to expose the injected race";
}

TEST(RaceDetect, FaultInjectionRunIsCleanUnderPermutation)
{
    // The fault injector adds deferred-priority draw/replug events
    // and synthesized work; the whole ensemble must still commute.
    ExperimentConfig cfg;
    cfg.label = "faulty";
    cfg.fault = scaledFaultParams(1.0, 42);
    expectPermutationInvariant(cfg, eternityWarrior2App());
}
