#include "sim/simulation.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/abrace.hh"

namespace biglittle
{

PeriodicTask::PeriodicTask(EventQueue &queue_in, Tick period_in,
                           Callback cb, EventPriority prio,
                           std::string label_in)
    : Event(prio), eq(queue_in), periodTicks(period_in),
      callback(std::move(cb)), label(std::move(label_in))
{
    BL_ASSERT(periodTicks > 0);
    BL_ASSERT(callback != nullptr);
}

void
PeriodicTask::start(Tick phase)
{
    eq.reschedule(*this, eq.now() + periodTicks + phase);
}

void
PeriodicTask::cancel()
{
    if (scheduled())
        eq.deschedule(*this);
}

void
PeriodicTask::setPeriod(Tick period_in)
{
    BL_ASSERT(period_in > 0);
    const Tick old = periodTicks;
    periodTicks = period_in;
    if (scheduled()) {
        // Move the already-queued fire so the new cadence starts
        // from the previous fire point, never into the past.
        const Tick base = when() >= old ? when() - old : 0;
        const Tick target = std::max(base + periodTicks,
                                     eq.now() + 1);
        eq.reschedule(*this, target);
    }
}

void
PeriodicTask::process()
{
    callback(eq.now());
    // The callback may have cancelled-and-restarted us; only chain if
    // we are still idle.
    if (!scheduled())
        eq.schedule(*this, eq.now() + periodTicks);
}

Simulation::OneShot::OneShot(std::function<void()> fn_in,
                             EventPriority prio, std::string label_in)
    : Event(prio), fn(std::move(fn_in)), label(std::move(label_in))
{
}

void
Simulation::OneShot::process()
{
    fn();
    delete this;
}

PeriodicTask &
Simulation::addPeriodic(Tick period, PeriodicTask::Callback cb,
                        EventPriority prio, const std::string &label)
{
    periodics.push_back(
        std::make_unique<PeriodicTask>(queue, period, std::move(cb),
                                       prio, label));
    return *periodics.back();
}

void
Simulation::at(Tick when, std::function<void()> fn, EventPriority prio,
               const std::string &label)
{
    auto *event = new OneShot(std::move(fn), prio, label);
    queue.schedule(*event, when);
}

void
Simulation::after(Tick delay, std::function<void()> fn,
                  EventPriority prio, const std::string &label)
{
    at(queue.now() + delay, std::move(fn), prio, label);
}

void
Simulation::runUntil(Tick until)
{
    queue.runUntil(until);
}

void
Simulation::runFor(Tick delta)
{
    queue.runUntil(queue.now() + delta);
}

void
Simulation::noteRead(std::string_view component, std::string_view field)
{
    if (RaceDetector *detector = queue.raceDetector())
        detector->noteRead(component, field);
}

void
Simulation::noteWrite(std::string_view component, std::string_view field)
{
    if (RaceDetector *detector = queue.raceDetector())
        detector->noteWrite(component, field);
}

} // namespace biglittle
