#include "platform/cache.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace biglittle
{

CacheModel::CacheModel(const CacheParams &params)
    : cacheParams(params)
{
    BL_ASSERT(cacheParams.sizeKB > 0);
}

double
CacheModel::missRatio(double footprint_kb) const
{
    BL_ASSERT(footprint_kb >= 0.0);
    const double size = static_cast<double>(cacheParams.sizeKB);
    if (footprint_kb <= size)
        return missFloor;
    const double uncached = 1.0 - size / footprint_kb;
    const double capacity = std::pow(uncached, reuseExponent);
    return std::min(1.0, missFloor + (1.0 - missFloor) * capacity);
}

} // namespace biglittle
